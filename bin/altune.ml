(* Command-line interface to the reproduction: regenerate each table and
   figure of the paper, inspect benchmarks, or autotune one kernel. *)

module Spapt = Altune_spapt.Spapt
module Kernels = Altune_spapt.Kernels
module Pretty = Altune_kernellang.Pretty
module Lint = Altune_kernellang.Lint
module Verify = Altune_kernellang.Verify
module Drivers = Altune_experiments.Drivers
module Scale = Altune_experiments.Scale
module Adapter = Altune_experiments.Adapter
module Runs = Altune_experiments.Runs
module Learner = Altune_core.Learner
module Checkpoint = Altune_core.Checkpoint
module Fault = Altune_exec.Fault
module Rng = Altune_prng.Rng
module Trace = Altune_obs.Trace
module Obs_metrics = Altune_obs.Metrics
module Manifest = Altune_obs.Manifest
module Summary = Altune_obs.Summary
module Events = Altune_obs.Events
module Bench_diff = Altune_obs.Bench_diff
module Web_report = Altune_report.Web_report
module Dashboard = Altune_report.Dashboard
module Obs_flight = Altune_obs.Flight
module Obs_snapshot = Altune_obs.Snapshot
module Conc_scenarios = Altune_conc.Scenarios
module Conc_explore = Altune_conc.Explore
module Serve_server = Altune_serve.Server
module Serve_daemon = Altune_serve.Daemon
open Cmdliner

let scale_arg =
  let parse s =
    match Scale.of_label s with
    | Some sc -> Ok sc
    | None -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  let print ppf (s : Scale.t) = Format.pp_print_string ppf s.label in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg Scale.quick
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:
          "Experiment scale: $(b,quick) (minutes), $(b,standard) (hours), \
           or $(b,paper) (the paper's full parameters).")

let seed_term =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains for parallel experiment execution (default: the \
           machine's recommended domain count minus one; 1 = sequential). \
           Results are bit-identical at any job count.")

let apply_jobs = function
  | None -> ()
  | Some j ->
      if j < 1 then begin
        Printf.eprintf "--jobs must be at least 1\n";
        exit 2
      end;
      Runs.set_jobs j

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL execution trace (spans for every pool task, \
           learner iteration phase, and simulated profiling run, plus the \
           run manifest) to $(docv).  Tracing never changes experiment \
           output: bytes on stdout are identical with and without it.  \
           Aggregate the file with $(b,altune trace-summary).")

let metrics_term =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Dump the metrics registry (pool queue waits, steals, memo \
           hit/miss counters, ...) to stderr after the command.")

let events_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Write the learner's decision stream (selections with scores and \
           revisit flags, per-evaluation RMSE, reference-set variance and \
           tree-shape introspection) as JSONL to $(docv).  The stream is \
           byte-identical at any $(b,--jobs) count and never changes \
           experiment output.  Render with $(b,altune report).")

let fault_arg =
  let parse s =
    match Fault.of_string s with Ok sp -> Ok sp | Error e -> Error (`Msg e)
  in
  let print ppf sp = Format.pp_print_string ppf (Fault.to_string sp) in
  Arg.conv (parse, print)

let fault_term =
  Arg.(
    value
    & opt (some fault_arg) None
    & info [ "fault-spec" ] ~docv:"SPEC"
        ~doc:
          "Inject deterministic simulated faults into every profiling \
           attempt.  $(docv) is comma-separated $(i,key=value) pairs: \
           $(b,crash), $(b,timeout) and $(b,corrupt) (per-attempt \
           probabilities), $(b,timeout_lost) (simulated seconds lost per \
           timeout), $(b,max_retries) (attempts beyond the first before a \
           configuration is marked dead) and $(b,backoff) (base simulated \
           backoff seconds, doubled per retry).  Fault draws are seeded \
           from each run's key, so results stay bit-identical at any \
           $(b,--jobs) count.")

(* Run [f] under the observability requested on the command line: JSONL
   trace and learner-event sinks stamped with the run manifest, a
   top-level span named after the subcommand, and an optional metrics
   dump.  Experiment stdout is produced by [f] as usual and stays
   byte-identical either way. *)
let with_obs ~command ~trace ~events ~metrics ~scale_label ~seed f =
  let body () =
    Trace.with_span ~name:"command"
      ~attrs:[ ("command", Trace.String command) ]
      f
  in
  let manifest () =
    Manifest.to_json
      (Manifest.capture ~scale:scale_label ~jobs:(Runs.jobs ()) ~seed ())
  in
  let with_events g =
    match events with
    | None -> g ()
    | Some path -> Events.with_file path ~manifest:(manifest ()) g
  in
  let result =
    match trace with
    | None -> with_events f
    | Some path ->
        Trace.with_file path ~manifest:(manifest ()) (fun () ->
            with_events body)
  in
  if metrics then prerr_string (Obs_metrics.render ());
  result

let benchmarks_term =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "benchmarks" ] ~docv:"NAMES"
        ~doc:"Comma-separated benchmark subset (default: all 11).")

let bench_term ~default =
  Arg.(
    value & opt string default
    & info [ "bench" ] ~docv:"NAME" ~doc:"Benchmark name.")

let check_benchmarks = function
  | None -> ()
  | Some names ->
      List.iter
        (fun n ->
          if not (List.mem n Kernels.names) then begin
            Printf.eprintf "unknown benchmark %S; known: %s\n" n
              (String.concat ", " Kernels.names);
            exit 2
          end)
        names

let simple_cmd name ~doc f =
  let command = name in
  let term =
    Term.(
      const (fun scale seed jobs benchmarks fault trace events metrics ->
          check_benchmarks benchmarks;
          apply_jobs jobs;
          Runs.set_fault fault;
          with_obs ~command ~trace ~events ~metrics
            ~scale_label:scale.Scale.label ~seed (fun () ->
              print_string (f ?benchmarks ~scale ~seed ());
              print_newline ()))
      $ scale_term $ seed_term $ jobs_term $ benchmarks_term $ fault_term
      $ trace_term $ events_term $ metrics_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let nobench_cmd name ~doc f =
  let command = name in
  let term =
    Term.(
      const (fun scale seed jobs fault trace events metrics ->
          apply_jobs jobs;
          Runs.set_fault fault;
          with_obs ~command ~trace ~events ~metrics
            ~scale_label:scale.Scale.label ~seed (fun () ->
              print_string (f ~scale ~seed ());
              print_newline ()))
      $ scale_term $ seed_term $ jobs_term $ fault_term $ trace_term
      $ events_term $ metrics_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let ablation_cmd name doc =
  let term =
    Term.(
      const (fun scale seed jobs bench fault trace events metrics ->
          apply_jobs jobs;
          Runs.set_fault fault;
          with_obs ~command:"ablation" ~trace ~events ~metrics
            ~scale_label:scale.Scale.label ~seed (fun () ->
              print_string (Drivers.ablation ~bench ~scale ~seed ());
              print_newline ()))
      $ scale_term $ seed_term $ jobs_term $ bench_term ~default:"gemver"
      $ fault_term $ trace_term $ events_term $ metrics_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let list_cmd name doc =
  let term =
    Term.(
      const (fun () ->
          List.iter
            (fun name ->
              let b = Spapt.create name in
              Printf.printf "%-12s dim=%d space=%.2e knobs=%s\n" name
                (Spapt.dim b) (Spapt.space_size b)
                (String.concat ","
                   (List.map Spapt.knob_name (Spapt.knobs b))))
            Kernels.names)
      $ const ())
  in
  Cmd.v (Cmd.info name ~doc) term

let show_cmd name doc =
  let config_term =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "config" ] ~docv:"INTS"
          ~doc:"Configuration to apply before printing (comma-separated).")
  in
  let raw_term =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:"Print the transformed kernel without constant folding.")
  in
  let term =
    Term.(
      const (fun bench config raw ->
          let b = Spapt.create bench in
          let kernel =
            match config with
            | None -> Spapt.kernel b
            | Some c -> Spapt.transformed b (Array.of_list c)
          in
          let kernel =
            if raw then kernel
            else Altune_kernellang.Simplify.kernel kernel
          in
          print_string (Pretty.to_string kernel))
      $ bench_term ~default:"mm" $ config_term $ raw_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let check_cmd name doc =
  let samples_term =
    Arg.(
      value & opt int 3
      & info [ "samples" ] ~docv:"N"
          ~doc:
            "Random configurations to audit per benchmark, in addition to \
             the default configuration.")
  in
  let fork_audit_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "fork-audit" ] ~docv:"N"
          ~doc:
            "Differential audit of the transformation-prefix trie: \
             resolve $(docv) random configurations per benchmark through \
             the trie and from scratch, and require byte-identical \
             kernels, verdicts and measurements.")
  in
  (* Resolve [n] random configurations through the prefix trie and through
     from-scratch step application, demanding identical results on every
     public surface a learner can observe.  Returns the number of
     mismatches (0 = the trie is inert, as designed). *)
  let fork_audit ~seed name n =
    let b_fork = Spapt.create name in
    let b_flat = Spapt.create name in
    Spapt.set_fork b_flat false;
    let rng =
      Rng.create ~seed:(Rng.derive ~seed [ S "fork-audit"; S name ])
    in
    let configs =
      Array.make (Spapt.dim b_fork) 0
      :: List.init n (fun _ -> Spapt.random_config b_fork rng)
    in
    let mismatches = ref 0 in
    List.iter
      (fun c ->
        let str c = String.concat "," (List.map string_of_int (Array.to_list c)) in
        let complain what =
          incr mismatches;
          Printf.printf "%-12s fork : MISMATCH (%s) at config [%s]\n" name
            what (str c)
        in
        if Spapt.transformed b_fork c <> Spapt.transformed b_flat c then
          complain "transformed kernel";
        let v_fork = Spapt.verify_config b_fork c in
        let v_flat = Spapt.verify_config b_flat c in
        if Verify.ok v_fork <> Verify.ok v_flat then complain "verdict";
        let m_seed = Rng.derive ~seed [ S "fork-measure"; S name; S (str c) ] in
        let sample b =
          Spapt.measure b ~rng:(Rng.create ~seed:m_seed) ~run_index:1 c
        in
        if sample b_fork <> sample b_flat then complain "measurement")
      configs;
    let stats = Spapt.fork_stats b_fork in
    Printf.printf
      "%-12s fork : %d/%d configurations identical (%d nodes, %.0f%% steps \
       reused)\n"
      name
      (List.length configs - !mismatches)
      (List.length configs) stats.Altune_spapt.Fork.nodes
      (100.0 *. Altune_spapt.Fork.reuse_rate stats);
    !mismatches
  in
  let term =
    Term.(
      const (fun seed benchmarks samples fork_samples ->
          check_benchmarks benchmarks;
          let samples = max 0 samples in
          let names =
            match benchmarks with Some ns -> ns | None -> Kernels.names
          in
          let failures = ref 0 in
          List.iter
            (fun name ->
              let b = Spapt.create name in
              let diags = Lint.lint (Spapt.kernel b) in
              (match Lint.errors diags with
              | [] ->
                  Printf.printf "%-12s lint : ok (%d warnings, %d notes)\n"
                    name
                    (Lint.count Lint.Warning diags)
                    (Lint.count Lint.Info diags)
              | errs ->
                  incr failures;
                  Printf.printf "%-12s lint : %d error(s)\n" name
                    (List.length errs);
                  List.iter
                    (fun d ->
                      Printf.printf "  %s\n" (Lint.diagnostic_to_string d))
                    errs);
              let rng =
                Rng.create ~seed:(Rng.derive ~seed [ S "check"; S name ])
              in
              let configs =
                Array.make (Spapt.dim b) 0
                :: List.init samples (fun _ -> Spapt.random_config b rng)
              in
              let sound = ref 0 in
              List.iter
                (fun c ->
                  let v = Spapt.verify_config b c in
                  if Verify.ok v then incr sound
                  else begin
                    incr failures;
                    print_string (Verify.verdict_to_string v);
                    print_newline ()
                  end)
                configs;
              Printf.printf "%-12s audit: %d/%d configurations sound\n" name
                !sound (List.length configs);
              match fork_samples with
              | None -> ()
              | Some n -> failures := !failures + fork_audit ~seed name (max 0 n))
            names;
          if !failures > 0 then begin
            Printf.printf "check: %d failure(s)\n" !failures;
            Stdlib.exit 1
          end
          else
            print_endline
              "check: all kernels lint clean and all audited recipes are \
               sound")
      $ seed_term $ benchmarks_term $ samples_term $ fork_audit_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let trace_summary_cmd name doc =
  let file_term =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"JSONL trace written by $(b,--trace).")
  in
  let max_share_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-share" ] ~docv:"PCT"
          ~doc:
            "Fail (exit 1) if any phase's share of attributed time exceeds \
             $(docv) percent — a cheap perf-regression tripwire for CI.")
  in
  let term =
    Term.(
      const (fun file max_share ->
          match Summary.of_file file with
          | Error e ->
              Printf.eprintf "trace-summary: %s\n" e;
              Stdlib.exit 1
          | Ok s -> (
              print_string (Summary.render s);
              match max_share with
              | None -> ()
              | Some bound -> (
                  match Summary.violations s ~max_share:bound with
                  | [] ->
                      Printf.printf
                        "trace-summary: all phases within the %.1f%% bound\n"
                        bound
                  | vs ->
                      List.iter
                        (fun v -> Printf.printf "trace-summary: %s\n" v)
                        vs;
                      Stdlib.exit 1)))
      $ file_term $ max_share_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let report_cmd name doc =
  let files_term =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILES"
          ~doc:
            "Input files: learner event streams ($(b,--events)), JSONL \
             traces ($(b,--trace)) and bench timing arrays \
             (BENCH_harness.json), in any mix.")
  in
  let out_term =
    Arg.(
      value & opt string "report.html"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the HTML report.")
  in
  let csv_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Also export the learner event stream as CSV to $(docv).")
  in
  let term =
    Term.(
      const (fun files out csv ->
          match Web_report.load files with
          | Error e ->
              Printf.eprintf "report: %s\n" e;
              Stdlib.exit 1
          | Ok inputs ->
              let oc = open_out out in
              output_string oc (Web_report.render inputs);
              close_out oc;
              (match csv with
              | None -> ()
              | Some path ->
                  Web_report.write_events_csv ~path inputs.events);
              Printf.printf
                "report: wrote %s (%d learner events, %d bench records%s)\n"
                out
                (List.length inputs.events)
                (List.length inputs.bench)
                (match csv with
                | None -> ""
                | Some path -> Printf.sprintf "; CSV in %s" path))
      $ files_term $ out_term $ csv_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let bench_diff_cmd name doc =
  let baseline_term =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline BENCH_harness.json.")
  in
  let current_term =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current BENCH_harness.json.")
  in
  let max_regress_term =
    Arg.(
      value & opt float 25.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Fail (exit 1) if any comparable section slowed down by more \
             than $(docv) percent.")
  in
  let term =
    Term.(
      const (fun baseline current max_regress ->
          let load name path =
            match Bench_diff.load path with
            | Ok records -> records
            | Error e ->
                Printf.eprintf "bench-diff: %s: %s\n" name e;
                Stdlib.exit 1
          in
          let d =
            Bench_diff.diff
              ~baseline:(load "baseline" baseline)
              ~current:(load "current" current)
          in
          print_string (Bench_diff.render ~max_regress d);
          match Bench_diff.regressions ~max_regress d with
          | [] ->
              Printf.printf
                "bench-diff: no regression beyond %.1f%% (%d comparable \
                 section(s))\n"
                max_regress
                (List.length d.deltas)
          | rs ->
              Printf.printf "bench-diff: %d section(s) regressed beyond %.1f%%\n"
                (List.length rs) max_regress;
              Stdlib.exit 1)
      $ baseline_term $ current_term $ max_regress_term)
  in
  Cmd.v (Cmd.info name ~doc) term

(* The run key tune stamps on its event stream; resume reuses it so the
   resumed stream is a continuation of the interrupted one. *)
let tune_run_key ~bench ~scale_label =
  Printf.sprintf "%s/%s/tune/0" bench scale_label

(* Everything tune prints after training — shared with [resume] so a
   resumed run's stdout is byte-identical to the uninterrupted run's. *)
let report_tuned b (outcome : Learner.outcome) ~seed =
  Printf.printf
    "trained on %d configurations (%d runs, %.0f simulated s); final RMSE \
     %.4f s\n"
    outcome.distinct_examples outcome.total_runs outcome.total_cost
    outcome.final_rmse;
  (* Search the model for the best predicted configuration with both
     random sampling and hill climbing; keep the better. *)
  let module Search = Altune_core.Search in
  let space =
    Search.space_of_cardinalities
      (Array.of_list (List.map Spapt.knob_cardinality (Spapt.knobs b)))
  in
  let rng = Rng.create ~seed:(seed + 1) in
  let sampled =
    Search.minimize ~rng space ~predict:outcome.predict
      (Search.Random_sampling 20_000)
  in
  let climbed =
    Search.minimize ~rng space ~predict:outcome.predict
      (Search.Hill_climbing { restarts = 10; max_steps = 60 })
  in
  let best =
    if climbed.predicted < sampled.predicted then climbed else sampled
  in
  let default = Array.make (Spapt.dim b) 0 in
  Printf.printf "default config : true runtime %.4f s\n"
    (Spapt.true_runtime b default);
  Printf.printf
    "best predicted : [%s] predicted %.4f s, true %.4f s (%d model \
     queries)\n"
    (String.concat ";" (List.map string_of_int (Array.to_list best.best)))
    best.predicted
    (Spapt.true_runtime b best.best)
    (sampled.evaluations + climbed.evaluations)

let tune_cmd name doc =
  let ckpt_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically serialize the learner state to $(docv) (versioned \
             JSON, atomically replaced) so an interrupted run can be \
             continued with $(b,altune resume).  Checkpointing never \
             changes the run's output.")
  in
  let every_term =
    Arg.(
      value & opt int 10
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Iterations between checkpoints (with $(b,--checkpoint)).")
  in
  let halt_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "halt-at" ] ~docv:"N"
          ~doc:
            "Stop the run at the first checkpoint taken at iteration >= \
             $(docv), leaving the checkpoint file as the resume point \
             (prints nothing to stdout; used to exercise kill-and-resume \
             in tests and CI).  Requires $(b,--checkpoint).")
  in
  let term =
    Term.(
      const (fun scale seed bench fault ckpt every halt_at trace events
                 metrics ->
          with_obs ~command:"tune" ~trace ~events ~metrics
            ~scale_label:scale.Scale.label ~seed
          @@ fun () ->
          let b = Spapt.create bench in
          Spapt.set_pool b (Some (Runs.pool ()));
          let problem = Adapter.problem_of b in
          let dataset = Runs.dataset_for b scale ~seed in
          let run_key = tune_run_key ~bench ~scale_label:scale.Scale.label in
          (* Same derivation as Runs.curves_for: the fault seed comes from
             the run key, never from a stream, so it is schedule-free and
             can be recorded verbatim in the checkpoint. *)
          let fault_seed = Rng.derive ~seed [ S "fault"; S run_key ] in
          let injector =
            Option.map (fun s -> Fault.create s ~seed:fault_seed) fault
          in
          let checkpoint =
            Option.map
              (fun path ->
                let meta =
                  {
                    Checkpoint.bench;
                    scale = scale.Scale.label;
                    seed;
                    every;
                    fault =
                      Option.map
                        (fun s -> (Fault.to_string s, fault_seed))
                        fault;
                  }
                in
                ( every,
                  fun (st : Learner.state) ->
                    Checkpoint.save ~path ~meta dataset st;
                    match halt_at with
                    | Some n when st.Learner.st_iteration >= n -> `Halt
                    | _ -> `Continue ))
              ckpt
          in
          let outcome =
            Events.with_run run_key (fun () ->
                try
                  Some
                    (Learner.run ?fault:injector ?checkpoint
                       ~exec_pool:(Runs.pool ()) problem dataset
                       scale.Scale.adaptive ~rng:(Rng.create ~seed))
                with Learner.Halted -> None)
          in
          match outcome with
          | None ->
              (* Nothing on stdout: the resumed run must reproduce the
                 uninterrupted run's stdout byte-for-byte on its own. *)
              Printf.eprintf
                "tune: halted at checkpoint; continue with 'altune resume \
                 %s'\n"
                (Option.get ckpt)
          | Some outcome -> report_tuned b outcome ~seed)
      $ scale_term $ seed_term $ bench_term ~default:"mm" $ fault_term
      $ ckpt_term $ every_term $ halt_term $ trace_term $ events_term
      $ metrics_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let resume_cmd name doc =
  let ckpt_term =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CKPT"
          ~doc:"Checkpoint file written by $(b,altune tune --checkpoint).")
  in
  let term =
    Term.(
      const (fun path trace events metrics ->
          match Checkpoint.load path with
          | Error e ->
              Printf.eprintf "resume: %s: %s\n" path e;
              Stdlib.exit 1
          | Ok (meta, dataset, state) ->
              let scale =
                match Scale.of_label meta.scale with
                | Some s -> s
                | None ->
                    Printf.eprintf "resume: unknown scale %S in checkpoint\n"
                      meta.scale;
                    Stdlib.exit 1
              in
              if not (List.mem meta.bench Kernels.names) then begin
                Printf.eprintf "resume: unknown benchmark %S in checkpoint\n"
                  meta.bench;
                Stdlib.exit 1
              end;
              let injector =
                match meta.fault with
                | None -> None
                | Some (spec_s, fault_seed) -> (
                    match Fault.of_string spec_s with
                    | Ok sp -> Some (Fault.create sp ~seed:fault_seed)
                    | Error e ->
                        Printf.eprintf
                          "resume: bad fault spec in checkpoint: %s\n" e;
                        Stdlib.exit 1)
              in
              with_obs ~command:"resume" ~trace ~events ~metrics
                ~scale_label:meta.scale ~seed:meta.seed
              @@ fun () ->
              let b = Spapt.create meta.bench in
              Spapt.set_pool b (Some (Runs.pool ()));
              let problem = Adapter.problem_of b in
              let run_key =
                tune_run_key ~bench:meta.bench ~scale_label:meta.scale
              in
              let outcome =
                Events.with_run run_key (fun () ->
                    Learner.run ?fault:injector ~resume:state
                      ~exec_pool:(Runs.pool ()) problem dataset
                      scale.Scale.adaptive
                      ~rng:(Rng.create ~seed:meta.seed))
              in
              report_tuned b outcome ~seed:meta.seed)
      $ ckpt_term $ trace_term $ events_term $ metrics_term)
  in
  Cmd.v (Cmd.info name ~doc) term

(* Append one throughput record to a BENCH_harness.json-format file,
   preserving existing records (same line protocol as bench/main.ml's
   write_harness_json: one "  {...}" line per record). *)
let append_concheck_record ~path ~seed ~schedules ~seconds =
  let manifest = Manifest.capture ~scale:"conc" ~jobs:1 ~seed () in
  let existing =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.length line > 3 && String.sub line 0 3 = "  {" then begin
             let line =
               if line.[String.length line - 1] = ',' then
                 String.sub line 0 (String.length line - 1)
               else line
             in
             lines := line :: !lines
           end
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !lines
    end
  in
  let rate = if seconds > 0.0 then float_of_int schedules /. seconds else 0.0 in
  let fresh =
    Printf.sprintf
      "  {\"section\": \"concheck\", \"scale\": %S, \"jobs\": %d, \
       \"seconds\": %.3f, \"host\": %S, \"cores\": %d, \"git_rev\": %S, \
       \"ocaml\": %S, \"seed\": %d, \"schedules\": %d, \
       \"schedules_per_sec\": %.0f}"
      manifest.scale 1 seconds manifest.hostname manifest.cores
      manifest.git_rev manifest.ocaml_version manifest.seed schedules rate
  in
  let oc = open_out path in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (existing @ [ fresh ]));
  close_out oc

let concheck_cmd name doc =
  let schedules_term =
    Arg.(
      value & opt int 4000
      & info [ "schedules" ] ~docv:"N"
          ~doc:
            "Schedule budget per scenario.  Small scenarios are first \
             enumerated exhaustively (with sleep-set pruning); any \
             remaining budget — and all of it for large scenarios — is \
             spent on seeded PCT and uniform-random schedules.")
  in
  let scenario_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Check only this scenario (see $(b,--list)).")
  in
  let min_distinct_term =
    Arg.(
      value & opt int 1000
      & info [ "min-distinct" ] ~docv:"N"
          ~doc:
            "Fail a scenario that explored fewer than $(docv) distinct \
             interleavings, unless its schedule space was exhausted \
             (exhaustion is a stronger guarantee than any sample size).")
  in
  let report_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the full per-scenario report (including both access \
             sites of every race) to $(docv).")
  in
  let bench_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:
            "Append an aggregate schedules/sec throughput record to \
             $(docv) (BENCH_harness.json format, manifest-stamped).")
  in
  let list_term =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the scenario catalog and exit.")
  in
  let term =
    Term.(
      const (fun schedules seed scenario min_distinct report_file bench_out
                 list ->
          if list then
            List.iter
              (fun (sc : Conc_scenarios.t) ->
                Printf.printf "%-16s %-16s %s\n" sc.name
                  (match sc.expect with
                  | Conc_scenarios.Clean -> "clean"
                  | Conc_scenarios.Race -> "race-fixture"
                  | Conc_scenarios.Deadlock -> "deadlock-fixture")
                  sc.descr)
              Conc_scenarios.all
          else begin
            let scenarios =
              match scenario with
              | None -> Conc_scenarios.all
              | Some n -> (
                  match Conc_scenarios.find n with
                  | Some sc -> [ sc ]
                  | None ->
                      Printf.eprintf
                        "concheck: unknown scenario %S (try --list)\n" n;
                      Stdlib.exit 2)
            in
            let t0 = Unix.gettimeofday () in
            let reports =
              List.map
                (Conc_explore.run_scenario ~budget:schedules ~seed)
                scenarios
            in
            let wall = Unix.gettimeofday () -. t0 in
            let failures = ref 0 in
            List.iter
              (fun (r : Conc_explore.report) ->
                let thin =
                  (not r.exhausted) && r.distinct < min_distinct
                in
                if (not r.passed) || thin then incr failures;
                print_string (Conc_explore.summary_line r);
                print_newline ();
                if thin then
                  Printf.printf
                    "  FAIL: only %d distinct schedules (< %d) and the \
                     space was not exhausted\n"
                    r.distinct min_distinct;
                List.iter
                  (fun v -> Printf.printf "  violation: %s\n" v)
                  r.violations)
              reports;
            let total_schedules =
              List.fold_left
                (fun acc (r : Conc_explore.report) -> acc + r.schedules_run)
                0 reports
            in
            Printf.printf
              "concheck: %d scenario(s), %d schedules in %.2fs (%.0f \
               schedules/sec), seed %d\n"
              (List.length reports) total_schedules wall
              (if wall > 0.0 then float_of_int total_schedules /. wall
               else 0.0)
              seed;
            (match report_file with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                List.iter
                  (fun r -> output_string oc (Conc_explore.report_to_string r))
                  reports;
                close_out oc;
                Printf.printf "concheck: full report in %s\n" path);
            (match bench_out with
            | None -> ()
            | Some path ->
                append_concheck_record ~path ~seed ~schedules:total_schedules
                  ~seconds:wall);
            if !failures > 0 then begin
              Printf.printf "concheck: %d scenario(s) FAILED\n" !failures;
              Stdlib.exit 1
            end
          end)
      $ schedules_term $ seed_term $ scenario_term $ min_distinct_term
      $ report_term $ bench_out_term $ list_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let serve_cmd name doc =
  let socket_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket at $(docv) (one client \
             connection at a time; sessions persist across connections).  \
             Default without $(b,--socket) or $(b,--script): serve \
             stdin/stdout.")
  in
  let script_term =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Read request lines from $(docv) instead of a live transport, \
             writing one response line per request to stdout — a \
             deterministic transcript: same script, same bytes, at any \
             $(b,--jobs) count.")
  in
  let serve_jobs_term =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains in the server's pool; $(b,tick) requests step all \
             live sessions in parallel across them.  Responses are \
             byte-identical at any job count.")
  in
  let max_live_term =
    Arg.(
      value & opt int Serve_server.default_config.Serve_server.max_live
      & info [ "max-live" ] ~docv:"N"
          ~doc:"Admission control: sessions allowed to run concurrently.")
  in
  let max_queue_term =
    Arg.(
      value & opt int Serve_server.default_config.Serve_server.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission control: sessions held in the FIFO queue beyond \
             the live ones before opens are rejected.")
  in
  let budget_cap_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-cap" ] ~docv:"SECONDS"
          ~doc:
            "Reject sessions whose requested simulated-cost budget \
             exceeds $(docv) (and require every session to declare one).")
  in
  let ckpt_dir_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Where graceful shutdown (SIGINT/SIGTERM or a $(b,shutdown) \
             request) checkpoints live sessions opened without an \
             explicit checkpoint path; resume them with $(b,altune \
             resume).")
  in
  let snapshots_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshots" ] ~docv:"FILE"
          ~doc:
            "Append one telemetry snapshot record (counters, gauges, \
             latency-sketch quantiles, GC deltas, queue depth, memo hit \
             rate) to the rotating JSONL series at $(docv) every \
             $(b,--snapshot-every) seconds, plus one final record at \
             shutdown.  Render with $(b,altune dashboard).")
  in
  let snapshot_every_term =
    Arg.(
      value
      & opt float Serve_server.default_config.Serve_server.snapshot_every
      & info [ "snapshot-every" ] ~docv:"SECONDS"
          ~doc:"Snapshot pump cadence (floor: the transport poll interval).")
  in
  let flight_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "flight" ] ~docv:"N"
          ~doc:
            "Keep tracing permanently on into a bounded in-memory flight \
             recorder retaining the last $(docv) spans per domain.  \
             Dumped to $(b,--flight-dump) on SIGUSR1 and into the \
             $(b,--ledger) on any error reply.  Mutually exclusive with \
             $(b,--trace) (which records everything to disk instead).")
  in
  let flight_dump_term =
    Arg.(
      value & opt string "flight-dump.jsonl"
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:"Where a SIGUSR1 dumps the flight recorder.")
  in
  let ledger_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Append-only failure ledger: every request that draws an \
             error reply is recorded as one JSON line with the \
             offending line and the flight recorder's retained spans.")
  in
  let term =
    Term.(
      const (fun socket script jobs max_live max_queue budget_cap
                 checkpoint_dir snapshots snapshot_every flight flight_dump
                 ledger trace events metrics ->
          if jobs < 1 then begin
            Printf.eprintf "--jobs must be at least 1\n";
            Stdlib.exit 2
          end;
          if max_live < 1 then begin
            Printf.eprintf "--max-live must be at least 1\n";
            Stdlib.exit 2
          end;
          if flight <> None && trace <> None then begin
            Printf.eprintf
              "--flight and --trace both claim the trace sink; pick one\n";
            Stdlib.exit 2
          end;
          let recorder =
            Option.map (fun n -> Obs_flight.create ~capacity:n ()) flight
          in
          let config =
            {
              Serve_server.jobs;
              max_live;
              max_queue = max 0 max_queue;
              budget_cap;
              checkpoint_dir;
              snapshot_path = snapshots;
              snapshot_every = Float.max 0.1 snapshot_every;
              flight = recorder;
              ledger_path = ledger;
            }
          in
          with_obs ~command:"serve" ~trace ~events ~metrics
            ~scale_label:"serve" ~seed:0
          @@ fun () ->
          Option.iter Obs_flight.install recorder;
          let server = Serve_server.create config in
          match script with
          | Some path ->
              Serve_daemon.serve_script ~flight_dump server ~path
                ~output:stdout
          | None -> (
              let stop = Serve_daemon.make_stop () in
              let usr1 = Serve_daemon.make_flag () in
              Serve_daemon.install_signal_handlers ~usr1 stop;
              match socket with
              | Some path ->
                  Printf.eprintf "serve: listening on %s\n%!" path;
                  Serve_daemon.serve_socket ~stop ~usr1 ~flight_dump server
                    ~path
              | None ->
                  Serve_daemon.serve_stdio ~stop ~usr1 ~flight_dump server))
      $ socket_term $ script_term $ serve_jobs_term $ max_live_term
      $ max_queue_term $ budget_cap_term $ ckpt_dir_term $ snapshots_term
      $ snapshot_every_term $ flight_term $ flight_dump_term $ ledger_term
      $ trace_term $ events_term $ metrics_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let dashboard_cmd name doc =
  let files_term =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"SNAPSHOTS"
          ~doc:
            "Snapshot JSONL series written by $(b,altune serve \
             --snapshots) (or the bench harness's $(b,--serve-load)).  \
             Rotated predecessors ($(i,FILE.1), $(i,FILE.2), ...) are \
             loaded automatically, oldest first.")
  in
  let out_term =
    Arg.(
      value & opt string "dashboard.html"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the HTML dashboard.")
  in
  let title_term =
    Arg.(
      value & opt string "altune ops dashboard"
      & info [ "title" ] ~docv:"TITLE" ~doc:"Page title.")
  in
  let min_records_term =
    Arg.(
      value & opt int 1
      & info [ "min-records" ] ~docv:"N"
          ~doc:
            "Fail unless at least $(docv) records were loaded — a CI \
             tripwire that the snapshot pump actually ran.")
  in
  let term =
    Term.(
      const (fun files out title min_records ->
          let records = List.concat_map Obs_snapshot.load_all files in
          if List.length records < max 1 min_records then begin
            Printf.eprintf "dashboard: %d record(s) in %s, need %d\n"
              (List.length records)
              (String.concat ", " files)
              (max 1 min_records);
            Stdlib.exit 1
          end;
          let oc = open_out out in
          output_string oc (Dashboard.render ~title records);
          close_out oc;
          Printf.printf "dashboard: wrote %s (%d records)\n" out
            (List.length records))
      $ files_term $ out_term $ title_term $ min_records_term)
  in
  Cmd.v (Cmd.info name ~doc) term

(* The single subcommand roster.  Every command's name and one-line
   summary live in this table and nowhere else — the command group (and
   with it --help's COMMANDS section and the unknown-command error's
   suggestion list) is generated from it, so the rosters cannot drift
   apart again. *)
let command_table =
  [
    ( "table1",
      "Lowest common RMSE, cost, and speed-up (Table 1).",
      fun name doc -> simple_cmd name ~doc Drivers.table1 );
    ( "table2",
      "Variance and CI/mean spreads across each space (Table 2).",
      fun name doc -> simple_cmd name ~doc Drivers.table2 );
    ( "fig1",
      "MAE and optimal sample count over the mm unroll plane (Figure 1).",
      fun name doc -> nobench_cmd name ~doc Drivers.fig1 );
    ( "fig2",
      "adi runtime vs. unroll factor, single samples (Figure 2).",
      fun name doc -> nobench_cmd name ~doc Drivers.fig2 );
    ( "fig5",
      "Profiling-cost reduction bars (Figure 5).",
      fun name doc -> simple_cmd name ~doc Drivers.fig5 );
    ( "fig6",
      "RMSE-vs-cost curves for the three sampling plans (Figure 6).",
      fun name doc -> simple_cmd name ~doc Drivers.fig6 );
    ("ablation", "Design-choice ablations of the adaptive learner.",
     ablation_cmd);
    ("list", "List benchmarks and their tunable spaces.", list_cmd);
    ( "show",
      "Print a benchmark kernel, optionally after transformations.",
      show_cmd );
    ( "check",
      "Lint every benchmark kernel and audit a sample of its \
       transformation space for soundness (legality, dependence \
       re-analysis, access counts, differential execution).",
      check_cmd );
    ( "tune",
      "Train an adaptive model on a benchmark and report the best \
       configuration it finds.",
      tune_cmd );
    ( "resume",
      "Continue an interrupted altune tune run (or a checkpointed serve \
       session) from its checkpoint file, reproducing the uninterrupted \
       run's output byte-for-byte.",
      resume_cmd );
    ( "serve",
      "Run the multi-tenant tuning service: named resumable sessions \
       over newline-delimited JSON (stdin/stdout, a Unix socket, or a \
       request script), multiplexed onto one pool with a shared \
       cross-session memo so identical configurations are profiled once \
       process-wide.",
      serve_cmd );
    ( "dashboard",
      "Render a daemon's snapshot time series (altune serve \
       --snapshots) into a self-contained HTML ops dashboard: latency \
       quantiles, throughput, admission load, memo hit rate and GC \
       activity, with overload tripwires drawn as annotated bands.",
      dashboard_cmd );
    ( "trace-summary",
      "Aggregate a JSONL trace into a per-phase time breakdown \
       (candidate generation, ALC scoring, tree updates, simulated \
       profiling, dataset generation), attributing each span's \
       self-time, with an optional per-phase share bound for CI.",
      trace_summary_cmd );
    ( "report",
      "Render event streams, traces and bench timings into one \
       self-contained HTML report with inline SVG charts \
       (error-vs-cost, variance decay, revisit fraction, sensitivity \
       bars) — no external assets.",
      report_cmd );
    ( "bench-diff",
      "Compare two BENCH_harness.json files and fail on timing \
       regressions.  Only records whose manifest matches (same host, \
       cores, scale and job count) are compared; anything else — other \
       machines, pre-manifest history — is skipped, never guessed at.",
      bench_diff_cmd );
    ( "concheck",
      "Model-check the execution engine's concurrency: run bounded \
       pool/memo/fault scenarios under many deterministically-seeded \
       thread interleavings (cooperative scheduler over the Sync shim), \
       detect data races with FastTrack-style vector clocks (reporting \
       both access sites), detect deadlocks and lost wakeups, and \
       assert that everything the engine promises is schedule-invariant \
       actually is.  Deliberately-broken fixtures validate the detector \
       itself.  Exit 1 on any violation.",
      concheck_cmd );
  ]

let () =
  let doc =
    "Reproduction of 'Minimizing the Cost of Iterative Compilation with \
     Active Learning' (CGO 2017)."
  in
  let info = Cmd.info "altune" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          (List.map (fun (name, doc, make) -> make name doc) command_table)))
