module Spapt = Altune_spapt.Spapt
module Scale = Altune_experiments.Scale
module Adapter = Altune_experiments.Adapter
module Runs = Altune_experiments.Runs
module Learner = Altune_core.Learner
module Checkpoint = Altune_core.Checkpoint
module Cost = Altune_core.Cost
module Fault = Altune_exec.Fault
module Rng = Altune_prng.Rng
module Events = Altune_obs.Events

type config = {
  name : string;
  bench : string;
  scale : Scale.t;
  seed : int;
  fault : Fault.spec option;
  budget : float option;
  n_max : int option;
  checkpoint_path : string option;
}

type phase = Queued | Live | Done | Closed

(* Heavy per-session resources, built at the first step. *)
type mat = {
  problem : Altune_core.Problem.t;
  dataset : Altune_core.Dataset.t;
  settings : Learner.settings;
  fault : Fault.t option;
  fault_seed : int;
}

type t = {
  sid : int;
  config : config;
  share : Spapt.share;
  run_key : string;
  mutable phase : phase;
  mutable mat : mat option;
  mutable state : Learner.state option;  (* resume point after a halt *)
  mutable outcome : Learner.outcome option;
}

let create ~id ~share config =
  {
    sid = id;
    config;
    share;
    run_key = "serve/" ^ config.name;
    phase = Queued;
    mat = None;
    state = None;
    outcome = None;
  }

let id t = t.sid
let config t = t.config
let phase t = t.phase
let admit t = if t.phase = Queued then t.phase <- Live
let close t = t.phase <- Closed
let stock_settings t = t.config.n_max = None && t.config.budget = None

let phase_name = function
  | Queued -> "queued"
  | Live -> "live"
  | Done -> "done"
  | Closed -> "closed"

let settings_of (c : config) =
  let s = c.scale.Scale.adaptive in
  let s =
    match c.n_max with None -> s | Some n -> { s with Learner.n_max = n }
  in
  match c.budget with
  | None -> s
  | Some b -> { s with Learner.stop = Learner.Cost_budget b :: s.Learner.stop }

let materialize t =
  match t.mat with
  | Some m -> m
  | None ->
      let b = Spapt.create t.config.bench in
      Spapt.set_share b (Some t.share);
      let problem = Adapter.problem_of b in
      (* The dataset is generated on a fresh *unhooked* instance: routing
         its measurements through the shared memo would attribute them to
         whichever session computed the (process-wide cached) dataset
         first — a schedule-dependent figure.  Training and evaluation
         measurements all go through [problem], i.e. through the memo. *)
      let dataset =
        Runs.dataset_for (Spapt.create t.config.bench) t.config.scale
          ~seed:t.config.seed
      in
      (* Fault seed exactly as [altune tune] derives it, so a served
         session (and its checkpoints) reproduces the standalone run. *)
      let tune_key =
        Printf.sprintf "%s/%s/tune/0" t.config.bench t.config.scale.Scale.label
      in
      let fault_seed =
        Rng.derive ~seed:t.config.seed [ S "fault"; S tune_key ]
      in
      let fault =
        Option.map (fun sp -> Fault.create sp ~seed:fault_seed) t.config.fault
      in
      let m =
        {
          problem;
          dataset;
          settings = settings_of t.config;
          fault;
          fault_seed;
        }
      in
      t.mat <- Some m;
      m

let step ?exec_pool t ~iterations =
  if t.phase <> Live then
    Error
      (Printf.sprintf "session %S is %s, not live" t.config.name
         (phase_name t.phase))
  else if iterations < 1 then Error "iterations must be at least 1"
  else begin
    let m = materialize t in
    let target =
      (match t.state with
      | Some st -> st.Learner.st_iteration
      | None -> m.settings.Learner.n_init)
      + iterations
    in
    let saved = ref None in
    let checkpoint =
      ( 1,
        fun (st : Learner.state) ->
          if st.Learner.st_iteration >= target then begin
            saved := Some st;
            `Halt
          end
          else `Continue )
    in
    let halted =
      Events.with_run t.run_key (fun () ->
          try
            Some
              (Learner.run ?fault:m.fault ~checkpoint ?resume:t.state
                 ?exec_pool m.problem m.dataset m.settings
                 ~rng:(Rng.create ~seed:t.config.seed))
          with Learner.Halted -> None)
    in
    (match halted with
    | Some outcome ->
        t.outcome <- Some outcome;
        t.state <- None;
        t.phase <- Done
    | None -> t.state <- !saved);
    Ok ()
  end

let save_checkpoint t ~path =
  if not (stock_settings t) then
    Error
      (Printf.sprintf
         "session %S has non-stock settings (n_max/budget override); altune \
          resume rebuilds settings from the scale label, so its checkpoint \
          would not resume faithfully"
         t.config.name)
  else
    match (t.phase, t.state) with
    | Done, _ ->
        Error
          (Printf.sprintf "session %S already completed" t.config.name)
    | _, None ->
        Error
          (Printf.sprintf "session %S has no progress to checkpoint"
             t.config.name)
    | _, Some st ->
        let m = materialize t in
        let meta =
          {
            Checkpoint.bench = t.config.bench;
            scale = t.config.scale.Scale.label;
            seed = t.config.seed;
            every = 1;
            fault =
              Option.map
                (fun sp -> (Fault.to_string sp, m.fault_seed))
                t.config.fault;
          }
        in
        Checkpoint.save ~path ~meta m.dataset st;
        Ok st.Learner.st_iteration

let view t ~position =
  let v_state : Protocol.session_state =
    match t.phase with
    | Queued -> Protocol.Queued
    | Live -> Protocol.Live
    | Done -> Protocol.Done
    | Closed -> Protocol.Closed
  in
  let base =
    {
      Protocol.v_session = t.config.name;
      v_state;
      v_position = position;
      v_iteration = 0;
      v_examples = 0;
      v_observations = 0;
      v_cost_s = 0.0;
      v_rmse = None;
    }
  in
  match (t.outcome, t.state) with
  | Some (o : Learner.outcome), _ ->
      let iteration =
        match List.rev o.curve with
        | [] -> 0
        | (last : Learner.eval_point) :: _ -> last.iteration
      in
      {
        base with
        v_iteration = iteration;
        v_examples = o.distinct_examples;
        v_observations = o.total_runs;
        v_cost_s = o.total_cost;
        v_rmse = Some o.final_rmse;
      }
  | None, Some (st : Learner.state) ->
      let c = st.st_cost in
      {
        base with
        v_iteration = st.st_iteration;
        v_examples = List.length st.st_obs;
        v_observations = c.Cost.snap_runs;
        v_cost_s =
          c.Cost.snap_run_seconds +. c.Cost.snap_compile_seconds
          +. c.Cost.snap_failure_seconds;
        v_rmse =
          (match List.rev st.st_curve with
          | [] -> None
          | (last : Learner.eval_point) :: _ -> Some last.rmse);
      }
  | None, None -> base
