module Json = Altune_obs.Json

type open_params = {
  o_session : string;
  o_bench : string;
  o_scale : string;
  o_seed : int;
  o_fault : string option;
  o_budget : float option;
  o_n_max : int option;
  o_checkpoint : string option;
}

type request =
  | Open of open_params
  | Step of { session : string; iterations : int }
  | Tick of { iterations : int }
  | Status of { session : string }
  | Checkpoint of { session : string; path : string option }
  | Close of { session : string }
  | Stats
  | Stats_full
  | Prom
  | Shutdown

type session_state = Queued | Live | Done | Closed

type session_view = {
  v_session : string;
  v_state : session_state;
  v_position : int option;
  v_iteration : int;
  v_examples : int;
  v_observations : int;
  v_cost_s : float;
  v_rmse : float option;
}

type memo_stats = {
  m_lookups : int;
  m_entries : int;
  m_hits : int;
  m_shared_keys : int;
  m_cross_hits : int;
}

type server_stats = {
  s_opened : int;
  s_live : int;
  s_queued : int;
  s_done : int;
  s_closed : int;
  s_max_live : int;
  s_max_queue : int;
  s_memo : memo_stats;
}

type reply =
  | R_session of session_view
  | R_tick of session_view list
  | R_stats of server_stats
  | R_stats_full of Json.t
  | R_prom of string
  | R_checkpoint of { session : string; path : string; iteration : int }
  | R_close of { session : string; admitted : string list }
  | R_shutdown of { checkpointed : (string * string) list }

type response = { r_id : int option; r_result : (reply, string) result }

(* --- Requests --------------------------------------------------------- *)

let opt name f = function None -> [] | Some v -> [ (name, f v) ]

let request_to_json ?id req =
  let id_field = opt "id" (fun i -> Json.Int i) id in
  let fields =
    match req with
    | Open p ->
        [ ("req", Json.String "open"); ("session", Json.String p.o_session);
          ("bench", Json.String p.o_bench); ("scale", Json.String p.o_scale);
          ("seed", Json.Int p.o_seed) ]
        @ opt "fault" (fun s -> Json.String s) p.o_fault
        @ opt "budget" (fun b -> Json.Float b) p.o_budget
        @ opt "n_max" (fun n -> Json.Int n) p.o_n_max
        @ opt "checkpoint" (fun s -> Json.String s) p.o_checkpoint
    | Step { session; iterations } ->
        [ ("req", Json.String "step"); ("session", Json.String session);
          ("iterations", Json.Int iterations) ]
    | Tick { iterations } ->
        [ ("req", Json.String "tick"); ("iterations", Json.Int iterations) ]
    | Status { session } ->
        [ ("req", Json.String "status"); ("session", Json.String session) ]
    | Checkpoint { session; path } ->
        [ ("req", Json.String "checkpoint"); ("session", Json.String session) ]
        @ opt "path" (fun s -> Json.String s) path
    | Close { session } ->
        [ ("req", Json.String "close"); ("session", Json.String session) ]
    | Stats -> [ ("req", Json.String "stats") ]
    | Stats_full -> [ ("req", Json.String "stats_full") ]
    | Prom -> [ ("req", Json.String "prom") ]
    | Shutdown -> [ ("req", Json.String "shutdown") ]
  in
  Json.Obj (id_field @ fields)

let request_to_line ?id req = Json.to_string (request_to_json ?id req)

let str_field j name =
  match Option.bind (Json.member name j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S field" name)

let opt_str_field j name =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_string_opt v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "non-string %S field" name))

let opt_int_field j name =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "non-integer %S field" name))

let opt_float_field j name =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_float_opt v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "non-number %S field" name))

let ( let* ) = Result.bind

let request_of_json j =
  match j with
  | Json.Obj _ -> (
      let* id = opt_int_field j "id" in
      let* kind = str_field j "req" in
      let* req =
        match kind with
        | "open" ->
            let* o_session = str_field j "session" in
            let* o_bench = str_field j "bench" in
            let* scale = opt_str_field j "scale" in
            let* seed = opt_int_field j "seed" in
            let* o_fault = opt_str_field j "fault" in
            let* o_budget = opt_float_field j "budget" in
            let* o_n_max = opt_int_field j "n_max" in
            let* o_checkpoint = opt_str_field j "checkpoint" in
            Ok
              (Open
                 {
                   o_session;
                   o_bench;
                   o_scale = Option.value scale ~default:"smoke";
                   o_seed = Option.value seed ~default:42;
                   o_fault;
                   o_budget;
                   o_n_max;
                   o_checkpoint;
                 })
        | "step" ->
            let* session = str_field j "session" in
            let* n = opt_int_field j "iterations" in
            Ok (Step { session; iterations = Option.value n ~default:1 })
        | "tick" ->
            let* n = opt_int_field j "iterations" in
            Ok (Tick { iterations = Option.value n ~default:1 })
        | "status" ->
            let* session = str_field j "session" in
            Ok (Status { session })
        | "checkpoint" ->
            let* session = str_field j "session" in
            let* path = opt_str_field j "path" in
            Ok (Checkpoint { session; path })
        | "close" ->
            let* session = str_field j "session" in
            Ok (Close { session })
        | "stats" -> Ok Stats
        | "stats_full" -> Ok Stats_full
        | "prom" -> Ok Prom
        | "shutdown" -> Ok Shutdown
        | other -> Error (Printf.sprintf "unknown request %S" other)
      in
      Ok (id, req))
  | _ -> Error "request must be a JSON object"

let request_of_line line =
  match Json.of_string line with
  | Error e -> Error (None, "malformed JSON: " ^ e)
  | Ok j -> (
      (* Even when the request itself is bad, echo any usable id so the
         client can correlate the error with its request. *)
      let id = Option.bind (Json.member "id" j) Json.to_int_opt in
      match request_of_json j with
      | Ok r -> Ok r
      | Error e -> Error (id, e))

(* --- Responses -------------------------------------------------------- *)

let state_to_string = function
  | Queued -> "queued"
  | Live -> "live"
  | Done -> "done"
  | Closed -> "closed"

let state_of_string = function
  | "queued" -> Ok Queued
  | "live" -> Ok Live
  | "done" -> Ok Done
  | "closed" -> Ok Closed
  | s -> Error (Printf.sprintf "unknown session state %S" s)

let view_fields v =
  [ ("session", Json.String v.v_session);
    ("state", Json.String (state_to_string v.v_state)) ]
  @ opt "position" (fun p -> Json.Int p) v.v_position
  @ [ ("iteration", Json.Int v.v_iteration);
      ("examples", Json.Int v.v_examples);
      ("observations", Json.Int v.v_observations);
      ("cost_s", Json.Float v.v_cost_s) ]
  @ opt "rmse" (fun r -> Json.Float r) v.v_rmse

let memo_to_json m =
  Json.Obj
    [ ("lookups", Json.Int m.m_lookups); ("entries", Json.Int m.m_entries);
      ("hits", Json.Int m.m_hits); ("shared_keys", Json.Int m.m_shared_keys);
      ("cross_hits", Json.Int m.m_cross_hits) ]

let reply_fields = function
  | R_session v -> (("reply", Json.String "session") :: view_fields v)
  | R_tick vs ->
      [ ("reply", Json.String "tick");
        ("stepped", Json.List (List.map (fun v -> Json.Obj (view_fields v)) vs))
      ]
  | R_stats s ->
      [ ("reply", Json.String "stats"); ("opened", Json.Int s.s_opened);
        ("live", Json.Int s.s_live); ("queued", Json.Int s.s_queued);
        ("done", Json.Int s.s_done); ("closed", Json.Int s.s_closed);
        ("max_live", Json.Int s.s_max_live);
        ("max_queue", Json.Int s.s_max_queue);
        ("memo", memo_to_json s.s_memo) ]
  | R_stats_full data -> [ ("reply", Json.String "stats_full"); ("data", data) ]
  | R_prom text -> [ ("reply", Json.String "prom"); ("text", Json.String text) ]
  | R_checkpoint { session; path; iteration } ->
      [ ("reply", Json.String "checkpoint"); ("session", Json.String session);
        ("path", Json.String path); ("iteration", Json.Int iteration) ]
  | R_close { session; admitted } ->
      [ ("reply", Json.String "close"); ("session", Json.String session);
        ("admitted", Json.List (List.map (fun s -> Json.String s) admitted))
      ]
  | R_shutdown { checkpointed } ->
      [ ("reply", Json.String "shutdown");
        ( "checkpointed",
          Json.List
            (List.map
               (fun (s, p) ->
                 Json.Obj
                   [ ("session", Json.String s); ("path", Json.String p) ])
               checkpointed) ) ]

let response_to_json r =
  let id_field = opt "id" (fun i -> Json.Int i) r.r_id in
  match r.r_result with
  | Ok reply ->
      Json.Obj (id_field @ [ ("ok", Json.Bool true) ] @ reply_fields reply)
  | Error e ->
      Json.Obj
        (id_field @ [ ("ok", Json.Bool false); ("error", Json.String e) ])

let response_to_line r = Json.to_string (response_to_json r)

let view_of_json j =
  let* v_session = str_field j "session" in
  let* state_s = str_field j "state" in
  let* v_state = state_of_string state_s in
  let* v_position = opt_int_field j "position" in
  let* v_iteration = opt_int_field j "iteration" in
  let* v_examples = opt_int_field j "examples" in
  let* v_observations = opt_int_field j "observations" in
  let* v_cost_s = opt_float_field j "cost_s" in
  let* v_rmse = opt_float_field j "rmse" in
  let req name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing %S field" name)
  in
  let* v_iteration = req "iteration" v_iteration in
  let* v_examples = req "examples" v_examples in
  let* v_observations = req "observations" v_observations in
  let* v_cost_s = req "cost_s" v_cost_s in
  Ok
    {
      v_session;
      v_state;
      v_position;
      v_iteration;
      v_examples;
      v_observations;
      v_cost_s;
      v_rmse;
    }

let int_field j name =
  match opt_int_field j name with
  | Ok (Some i) -> Ok i
  | Ok None -> Error (Printf.sprintf "missing %S field" name)
  | Error e -> Error e

let memo_of_json j =
  let* m_lookups = int_field j "lookups" in
  let* m_entries = int_field j "entries" in
  let* m_hits = int_field j "hits" in
  let* m_shared_keys = int_field j "shared_keys" in
  let* m_cross_hits = int_field j "cross_hits" in
  Ok { m_lookups; m_entries; m_hits; m_shared_keys; m_cross_hits }

let reply_of_json j =
  let* kind = str_field j "reply" in
  match kind with
  | "session" ->
      let* v = view_of_json j in
      Ok (R_session v)
  | "tick" -> (
      match Json.member "stepped" j with
      | Some (Json.List items) ->
          let* vs =
            List.fold_right
              (fun item acc ->
                let* acc = acc in
                let* v = view_of_json item in
                Ok (v :: acc))
              items (Ok [])
          in
          Ok (R_tick vs)
      | _ -> Error "missing or non-list \"stepped\" field")
  | "stats" ->
      let* s_opened = int_field j "opened" in
      let* s_live = int_field j "live" in
      let* s_queued = int_field j "queued" in
      let* s_done = int_field j "done" in
      let* s_closed = int_field j "closed" in
      let* s_max_live = int_field j "max_live" in
      let* s_max_queue = int_field j "max_queue" in
      let* s_memo =
        match Json.member "memo" j with
        | Some m -> memo_of_json m
        | None -> Error "missing \"memo\" field"
      in
      Ok
        (R_stats
           {
             s_opened;
             s_live;
             s_queued;
             s_done;
             s_closed;
             s_max_live;
             s_max_queue;
             s_memo;
           })
  | "stats_full" -> (
      match Json.member "data" j with
      | Some data -> Ok (R_stats_full data)
      | None -> Error "missing \"data\" field")
  | "prom" ->
      let* text = str_field j "text" in
      Ok (R_prom text)
  | "checkpoint" ->
      let* session = str_field j "session" in
      let* path = str_field j "path" in
      let* iteration = int_field j "iteration" in
      Ok (R_checkpoint { session; path; iteration })
  | "close" -> (
      let* session = str_field j "session" in
      match Json.member "admitted" j with
      | Some (Json.List items) ->
          let* admitted =
            List.fold_right
              (fun item acc ->
                let* acc = acc in
                match Json.to_string_opt item with
                | Some s -> Ok (s :: acc)
                | None -> Error "non-string entry in \"admitted\"")
              items (Ok [])
          in
          Ok (R_close { session; admitted })
      | _ -> Error "missing or non-list \"admitted\" field")
  | "shutdown" -> (
      match Json.member "checkpointed" j with
      | Some (Json.List items) ->
          let* checkpointed =
            List.fold_right
              (fun item acc ->
                let* acc = acc in
                let* s = str_field item "session" in
                let* p = str_field item "path" in
                Ok ((s, p) :: acc))
              items (Ok [])
          in
          Ok (R_shutdown { checkpointed })
      | _ -> Error "missing or non-list \"checkpointed\" field")
  | other -> Error (Printf.sprintf "unknown reply %S" other)

let response_of_line line =
  match Json.of_string line with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok j -> (
      let* r_id = opt_int_field j "id" in
      match Option.bind (Json.member "ok" j) Json.to_bool_opt with
      | Some true ->
          let* reply = reply_of_json j in
          Ok { r_id; r_result = Ok reply }
      | Some false ->
          let* e = str_field j "error" in
          Ok { r_id; r_result = Error e }
      | None -> Error "missing or non-boolean \"ok\" field")
