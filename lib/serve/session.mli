(** One tenant's tuning session: a resumable {!Altune_core.Learner.run}
    advanced in increments.

    A session is the same run [altune tune] would perform for its
    (benchmark, scale, seed) — same dataset, same learner stream, same
    fault-seed derivation — except that its simulated compile/measure
    results are obtained through the server's shared cross-session memo
    (the [share] hook of {!Altune_spapt.Spapt.set_share}).  Because the
    computation behind every memo key is deterministic, sharing changes
    who {e pays} for an evaluation, never its value, so a served
    session's learner stream is byte-identical to the standalone run's.

    Stepping works by running the learner with a checkpoint callback at
    every iteration that halts once the target iteration is reached and
    holds the captured state as the next step's resume point; a run that
    completes (iteration cap or cost budget) before the target instead
    yields its final outcome and the session becomes [Done]. *)

type config = {
  name : string;
  bench : string;
  scale : Altune_experiments.Scale.t;
  seed : int;
  fault : Altune_exec.Fault.spec option;
  budget : float option;
      (** Extra [Cost_budget] stop criterion, simulated seconds. *)
  n_max : int option;  (** Override of the scale's iteration cap. *)
  checkpoint_path : string option;
      (** Where graceful shutdown checkpoints this session. *)
}

type phase = Queued | Live | Done | Closed

type t

val create : id:int -> share:Altune_spapt.Spapt.share -> config -> t
(** A fresh session in phase [Queued].  Heavy resources (benchmark
    instance, dataset, fault injector) materialize lazily at the first
    step, so queueing hundreds of sessions is cheap. *)

val id : t -> int
(** Admission order: the [id] passed to {!create}. *)

val config : t -> config
val phase : t -> phase

val admit : t -> unit
(** [Queued] -> [Live].  No-op in any other phase. *)

val close : t -> unit
(** Any phase -> [Closed]. *)

val step :
  ?exec_pool:Altune_exec.Pool.t -> t -> iterations:int -> (unit, string) result
(** Advance a [Live] session by [iterations] learner iterations (at
    least 1); afterwards the phase is [Live] (halted at the target) or
    [Done] (the run completed first).  Safe to call concurrently for
    {e distinct} sessions (the server's tick fans sessions out over its
    pool); a single session must only be stepped by one domain at a
    time.  [?exec_pool] is forwarded to {!Altune_core.Learner.run} for
    the surrogate's internal parallelism (results are identical without
    it). *)

val stock_settings : t -> bool
(** Whether the session runs its scale's unmodified settings — the
    precondition for {!save_checkpoint}, because [altune resume]
    rebuilds settings from the scale label alone. *)

val save_checkpoint : t -> path:string -> (int, string) result
(** Serialize the session's resume state with
    {!Altune_core.Checkpoint.save}, returning its iteration.  The file
    is a regular tune checkpoint: [altune resume] continues it to the
    same bytes the uninterrupted standalone run would print.  Errors if
    the session has non-stock settings, has never been stepped, or
    already completed. *)

val view : t -> position:int option -> Protocol.session_view
(** Deterministic snapshot for status replies ([position] is the queue
    slot when queued). *)
