(** The multi-tenant tuning server: session store, admission control,
    and the shared cross-session memo.

    One server owns one {!Altune_exec.Pool} and one compute-once
    {!Altune_exec.Memo} keyed by (benchmark, configuration); every
    session's simulated compile/measure evaluations go through that memo,
    so identical configurations demanded by different tenants are
    computed exactly once process-wide.

    {b Admission policy.}  [open] admits a session immediately while
    fewer than [max_live] sessions are live, queues it FIFO while the
    queue is shorter than [max_queue], and rejects it otherwise (or when
    its budget exceeds [budget_cap]).  Slots free when a session
    completes or is closed; the queue head is promoted at the end of the
    request that freed the slot — a deterministic point, so the
    admission sequence is a pure function of the request sequence.

    {b Determinism.}  Replies carry only simulated quantities, and the
    memo accounting is aggregated per key as a session->count multiset
    with the lowest-admission-order toucher as each key's canonical
    owner, so every reported figure is independent of domain scheduling:
    a fixed request script produces byte-identical responses at any
    [jobs] count. *)

type config = {
  jobs : int;  (** Domains in the server's pool (>= 1). *)
  max_live : int;  (** Live-session cap (admission control). *)
  max_queue : int;  (** Queued-session cap beyond the live ones. *)
  budget_cap : float option;
      (** Reject sessions asking for a larger simulated-cost budget. *)
  checkpoint_dir : string option;
      (** Default directory for shutdown checkpoints of sessions opened
          without an explicit checkpoint path. *)
  snapshot_path : string option;
      (** Rotating JSONL telemetry time series ({!snapshot} appends to
          it); [None] disables the pump entirely. *)
  snapshot_every : float;
      (** Pump cadence in seconds, honored by the daemon's poll loops
          (the server itself only snapshots when asked). *)
  flight : Altune_obs.Flight.t option;
      (** Flight recorder whose retained spans are dumped into failure
          ledger records and by {!flight_dump_to}. *)
  ledger_path : string option;
      (** Failure ledger (append-only JSONL): every request that draws
          an error reply is recorded with the offending line and the
          flight recorder's contents. *)
}

val default_config : config
(** [jobs = 1], [max_live = 8], [max_queue = 64], no budget cap, no
    checkpoint directory, telemetry off ([snapshot_path = None],
    [snapshot_every = 10.0], no flight recorder, no ledger). *)

type t

val create : config -> t

val handle : t -> Protocol.request -> (Protocol.reply, string) result
(** Dispatch one request.  Requests are handled one at a time; [Tick]
    fans the live sessions out over the server's pool internally. *)

val handle_line : t -> string -> string
(** Parse one request line, dispatch it, and render the response line
    (no trailing newline).  Malformed input and handler exceptions both
    become error responses — the server never dies on bad input. *)

val graceful_stop : t -> (string * string) list
(** Checkpoint every live session that has progress, stock settings and
    a checkpoint path (explicit, or derived from [checkpoint_dir]),
    refuse new work, and shut the pool down.  Returns the (session,
    path) pairs in admission order.  Idempotent; also invoked by the
    [Shutdown] request. *)

val stopped : t -> bool
val stats : t -> Protocol.server_stats
val memo_stats : t -> Protocol.memo_stats

(** {2 Live telemetry}

    The server always maintains latency sketches (per-request wire time,
    per-step learner time, queue wait, shared-memo wait) and live/queued
    gauges in the process-wide {!Altune_obs.Metrics} registry.  They
    never touch the protocol stream: response bytes are identical with
    telemetry on or off, at any job count. *)

val snapshot : t -> Altune_obs.Json.t
(** Build one snapshot record — counters, gauges, sketch summaries,
    [Gc.quick_stat] deltas since the previous snapshot, queue depth,
    memo hit rate, stamped with the run manifest, every object's keys
    sorted — and append it to [snapshot_path]'s rotating series when
    configured.  Returns the record either way. *)

val snapshot_every : t -> float
(** The configured pump cadence (for the transport loops). *)

val snapshots_on : t -> bool
(** Whether a snapshot series is configured. *)

val stats_full_json : t -> Altune_obs.Json.t
(** The [Stats_full] payload: server stats, full metrics snapshot, GC
    state and uptime as one JSON object. *)

val flight_dump_to : t -> string -> unit
(** Write the flight recorder's retained span lines to a file
    (truncating it); no-op without a recorder.  Wired to SIGUSR1 by the
    daemon loops. *)
