(** The multi-tenant tuning server: session store, admission control,
    and the shared cross-session memo.

    One server owns one {!Altune_exec.Pool} and one compute-once
    {!Altune_exec.Memo} keyed by (benchmark, configuration); every
    session's simulated compile/measure evaluations go through that memo,
    so identical configurations demanded by different tenants are
    computed exactly once process-wide.

    {b Admission policy.}  [open] admits a session immediately while
    fewer than [max_live] sessions are live, queues it FIFO while the
    queue is shorter than [max_queue], and rejects it otherwise (or when
    its budget exceeds [budget_cap]).  Slots free when a session
    completes or is closed; the queue head is promoted at the end of the
    request that freed the slot — a deterministic point, so the
    admission sequence is a pure function of the request sequence.

    {b Determinism.}  Replies carry only simulated quantities, and the
    memo accounting is aggregated per key as a session->count multiset
    with the lowest-admission-order toucher as each key's canonical
    owner, so every reported figure is independent of domain scheduling:
    a fixed request script produces byte-identical responses at any
    [jobs] count. *)

type config = {
  jobs : int;  (** Domains in the server's pool (>= 1). *)
  max_live : int;  (** Live-session cap (admission control). *)
  max_queue : int;  (** Queued-session cap beyond the live ones. *)
  budget_cap : float option;
      (** Reject sessions asking for a larger simulated-cost budget. *)
  checkpoint_dir : string option;
      (** Default directory for shutdown checkpoints of sessions opened
          without an explicit checkpoint path. *)
}

val default_config : config
(** [jobs = 1], [max_live = 8], [max_queue = 64], no budget cap, no
    checkpoint directory. *)

type t

val create : config -> t

val handle : t -> Protocol.request -> (Protocol.reply, string) result
(** Dispatch one request.  Requests are handled one at a time; [Tick]
    fans the live sessions out over the server's pool internally. *)

val handle_line : t -> string -> string
(** Parse one request line, dispatch it, and render the response line
    (no trailing newline).  Malformed input and handler exceptions both
    become error responses — the server never dies on bad input. *)

val graceful_stop : t -> (string * string) list
(** Checkpoint every live session that has progress, stock settings and
    a checkpoint path (explicit, or derived from [checkpoint_dir]),
    refuse new work, and shut the pool down.  Returns the (session,
    path) pairs in admission order.  Idempotent; also invoked by the
    [Shutdown] request. *)

val stopped : t -> bool
val stats : t -> Protocol.server_stats
val memo_stats : t -> Protocol.memo_stats
