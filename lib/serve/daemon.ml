let make_stop () = Atomic.make false
let make_flag = make_stop

let install_signal_handlers ?usr1 stop =
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  (* SIGINT may be unavailable in exotic environments; serve what we can. *)
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ | Sys_error _ -> ());
  match usr1 with
  | None -> ()
  | Some flag -> (
      let handler = Sys.Signal_handle (fun _ -> Atomic.set flag true) in
      try Sys.set_signal Sys.sigusr1 handler
      with Invalid_argument _ | Sys_error _ -> ())

let finish server =
  if not (Server.stopped server) then ignore (Server.graceful_stop server)

(* The telemetry pump: called between requests and on idle polls.  It
   drains a pending SIGUSR1 into a flight-recorder dump and appends a
   record to the snapshot series every [snapshot_every] seconds.  Both
   are pure side channels — nothing is written to the protocol stream,
   so transcripts stay byte-identical with the pump running. *)
let pump ?usr1 ?(flight_dump = "flight-dump.jsonl") server =
  let last = ref (Unix.gettimeofday ()) in
  fun () ->
    (match usr1 with
    | Some flag when Atomic.exchange flag false ->
        Server.flight_dump_to server flight_dump
    | _ -> ());
    if Server.snapshots_on server && not (Server.stopped server) then begin
      let now = Unix.gettimeofday () in
      if now -. !last >= Server.snapshot_every server then begin
        last := now;
        ignore (Server.snapshot server)
      end
    end

let respond server output line =
  let line = String.trim line in
  if line <> "" then begin
    output_string output (Server.handle_line server line);
    output_char output '\n';
    flush output
  end

let serve_channel ?(stop = make_stop ()) ?usr1 ?flight_dump server ~input
    ~output =
  let tick = pump ?usr1 ?flight_dump server in
  let rec loop () =
    if Atomic.get stop || Server.stopped server then ()
    else
      match input_line input with
      | exception End_of_file -> ()
      | line ->
          respond server output line;
          tick ();
          loop ()
  in
  loop ();
  finish server

let serve_script ?usr1 ?flight_dump server ~path ~output =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> serve_channel ?usr1 ?flight_dump server ~input:ic ~output)

(* Poll-driven line loop over a raw fd, so a pending signal is noticed
   within [poll] seconds even when no request is in flight (buffered
   [input_line] would block until the next byte).  [tick] runs once per
   poll round — the pump's cadence floor is the poll interval. *)
let serve_fd ~stop ~poll ~tick server fd output =
  let pending = Queue.create () in
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let eof = ref false in
  let feed () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> eof := true
    | n ->
        for i = 0 to n - 1 do
          match Bytes.get chunk i with
          | '\n' ->
              Queue.add (Buffer.contents acc) pending;
              Buffer.clear acc
          | c -> Buffer.add_char acc c
        done
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec loop () =
    if Atomic.get stop || Server.stopped server then ()
    else if not (Queue.is_empty pending) then begin
      respond server output (Queue.pop pending);
      tick ();
      loop ()
    end
    else if !eof then ()
    else begin
      (match Unix.select [ fd ] [] [] poll with
      | [], _, _ -> ()
      | _ -> feed ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      tick ();
      loop ()
    end
  in
  loop ()

let serve_stdio ?(stop = make_stop ()) ?usr1 ?flight_dump server =
  let tick = pump ?usr1 ?flight_dump server in
  serve_fd ~stop ~poll:0.2 ~tick server Unix.stdin stdout;
  finish server

let serve_socket ?(stop = make_stop ()) ?usr1 ?flight_dump server ~path =
  let tick = pump ?usr1 ?flight_dump server in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      finish server)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        if Atomic.get stop || Server.stopped server then ()
        else begin
          (match Unix.select [ sock ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept sock with
              | client, _ ->
                  let output = Unix.out_channel_of_descr client in
                  Fun.protect
                    ~finally:(fun () ->
                      (try flush output with Sys_error _ -> ());
                      try Unix.close client with Unix.Unix_error _ -> ())
                    (fun () ->
                      serve_fd ~stop ~poll:0.2 ~tick server client output)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          tick ();
          accept_loop ()
        end
      in
      accept_loop ())
