let make_stop () = Atomic.make false

let install_signal_handlers stop =
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  (* SIGINT may be unavailable in exotic environments; serve what we can. *)
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm handler with Invalid_argument _ | Sys_error _ -> ()

let finish server =
  if not (Server.stopped server) then ignore (Server.graceful_stop server)

let respond server output line =
  let line = String.trim line in
  if line <> "" then begin
    output_string output (Server.handle_line server line);
    output_char output '\n';
    flush output
  end

let serve_channel ?(stop = make_stop ()) server ~input ~output =
  let rec loop () =
    if Atomic.get stop || Server.stopped server then ()
    else
      match input_line input with
      | exception End_of_file -> ()
      | line ->
          respond server output line;
          loop ()
  in
  loop ();
  finish server

let serve_script server ~path ~output =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> serve_channel server ~input:ic ~output)

(* Poll-driven line loop over a raw fd, so a pending signal is noticed
   within [poll] seconds even when no request is in flight (buffered
   [input_line] would block until the next byte). *)
let serve_fd ~stop ~poll server fd output =
  let pending = Queue.create () in
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let eof = ref false in
  let feed () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> eof := true
    | n ->
        for i = 0 to n - 1 do
          match Bytes.get chunk i with
          | '\n' ->
              Queue.add (Buffer.contents acc) pending;
              Buffer.clear acc
          | c -> Buffer.add_char acc c
        done
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec loop () =
    if Atomic.get stop || Server.stopped server then ()
    else if not (Queue.is_empty pending) then begin
      respond server output (Queue.pop pending);
      loop ()
    end
    else if !eof then ()
    else begin
      (match Unix.select [ fd ] [] [] poll with
      | [], _, _ -> ()
      | _ -> feed ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let serve_stdio ?(stop = make_stop ()) server =
  serve_fd ~stop ~poll:0.2 server Unix.stdin stdout;
  finish server

let serve_socket ?(stop = make_stop ()) server ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      finish server)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        if Atomic.get stop || Server.stopped server then ()
        else begin
          (match Unix.select [ sock ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept sock with
              | client, _ ->
                  let output = Unix.out_channel_of_descr client in
                  Fun.protect
                    ~finally:(fun () ->
                      (try flush output with Sys_error _ -> ());
                      try Unix.close client with Unix.Unix_error _ -> ())
                    (fun () -> serve_fd ~stop ~poll:0.2 server client output)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ())
