(** Wire protocol of the tuning service: newline-delimited JSON.

    Each request is one JSON object on one line, discriminated by its
    ["req"] field and optionally carrying a client-chosen integer ["id"];
    each response is one JSON object on one line echoing that id, with
    ["ok": true] and a ["reply"]-discriminated payload on success or
    ["ok": false] and an ["error"] string on failure.

    Determinism contract: every quantity a reply carries is a
    {e simulated} quantity (loop iterations, simulated profiling cost,
    held-out RMSE) — never a wall-clock time — so the byte stream of
    responses to a fixed request script is identical at any [--jobs]
    count and on any host. *)

type open_params = {
  o_session : string;  (** Client-chosen session name (must be fresh). *)
  o_bench : string;  (** SPAPT benchmark name. *)
  o_scale : string;  (** Scale label; default ["smoke"]. *)
  o_seed : int;  (** Master seed; default [42]. *)
  o_fault : string option;  (** [Fault.of_string] spec, if injecting. *)
  o_budget : float option;
      (** Per-session simulated-cost budget (extra stop criterion). *)
  o_n_max : int option;  (** Override of the scale's iteration cap. *)
  o_checkpoint : string option;
      (** Where graceful shutdown checkpoints this session. *)
}

type request =
  | Open of open_params
  | Step of { session : string; iterations : int }
      (** Advance one session by [iterations] learner iterations. *)
  | Tick of { iterations : int }
      (** Advance {e every} live session by [iterations], fanned out in
          admission order over the server's domain pool. *)
  | Status of { session : string }
  | Checkpoint of { session : string; path : string option }
  | Close of { session : string }
  | Stats
  | Stats_full
      (** Full telemetry scrape: server stats, metrics snapshot
          (including latency sketches), GC and pool state as one JSON
          payload.  Unlike every other reply this carries wall-clock
          quantities — keep it out of transcripts that are diffed
          across job counts. *)
  | Prom
      (** Prometheus text exposition ({!Altune_obs.Metrics.render_prom})
          as a single string reply — scrape the daemon over the socket
          with no extra listener. *)
  | Shutdown

type session_state = Queued | Live | Done | Closed

type session_view = {
  v_session : string;
  v_state : session_state;
  v_position : int option;  (** 0-based queue position, when queued. *)
  v_iteration : int;  (** Learner loop iterations completed. *)
  v_examples : int;  (** Distinct configurations profiled. *)
  v_observations : int;  (** Total profiling runs. *)
  v_cost_s : float;  (** Cumulative simulated cost, seconds. *)
  v_rmse : float option;  (** Latest held-out RMSE, once evaluated. *)
}

type memo_stats = {
  m_lookups : int;  (** Evaluation lookups through the shared memo. *)
  m_entries : int;  (** Distinct (kernel, config) keys — each computed once. *)
  m_hits : int;  (** [lookups - entries]: evaluations served from cache. *)
  m_shared_keys : int;  (** Keys touched by two or more sessions. *)
  m_cross_hits : int;
      (** Lookups by sessions other than a key's canonical owner (the
          lowest-admission-order session that touched it) — the work
          multi-tenancy saved.  Schedule-independent by construction. *)
}

type server_stats = {
  s_opened : int;  (** Sessions admitted or queued since startup. *)
  s_live : int;  (** Currently live (a gauge, not a cumulative count). *)
  s_queued : int;  (** Current queue depth. *)
  s_done : int;
  s_closed : int;
  s_max_live : int;  (** Live-session capacity — [s_live]'s ceiling. *)
  s_max_queue : int;  (** Queue capacity — [s_queued]'s ceiling. *)
  s_memo : memo_stats;
}

type reply =
  | R_session of session_view
  | R_tick of session_view list  (** Stepped sessions, admission order. *)
  | R_stats of server_stats
  | R_stats_full of Altune_obs.Json.t  (** Opaque telemetry payload. *)
  | R_prom of string
  | R_checkpoint of { session : string; path : string; iteration : int }
  | R_close of { session : string; admitted : string list }
      (** [admitted]: sessions this close promoted from the queue. *)
  | R_shutdown of { checkpointed : (string * string) list }
      (** (session, checkpoint path) pairs, admission order. *)

type response = { r_id : int option; r_result : (reply, string) result }

val request_to_json : ?id:int -> request -> Altune_obs.Json.t
val request_to_line : ?id:int -> request -> string

val request_of_json :
  Altune_obs.Json.t -> (int option * request, string) result

val request_of_line :
  string -> (int option * request, int option * string) result
(** Parse one request line.  On a malformed line the error still carries
    any ["id"] that could be parsed, so the error reply can echo it. *)

val response_to_json : response -> Altune_obs.Json.t
val response_to_line : response -> string
val response_of_line : string -> (response, string) result
