module Spapt = Altune_spapt.Spapt
module Kernels = Altune_spapt.Kernels
module Scale = Altune_experiments.Scale
module Fault = Altune_exec.Fault
module Memo = Altune_exec.Memo
module Pool = Altune_exec.Pool
module Json = Altune_obs.Json
module Metrics = Altune_obs.Metrics
module Trace = Altune_obs.Trace
module Quantile = Altune_obs.Quantile
module Flight = Altune_obs.Flight
module Snapshot = Altune_obs.Snapshot
module Manifest = Altune_obs.Manifest

type config = {
  jobs : int;
  max_live : int;
  max_queue : int;
  budget_cap : float option;
  checkpoint_dir : string option;
  snapshot_path : string option;
  snapshot_every : float;
  flight : Flight.t option;
  ledger_path : string option;
}

let default_config =
  {
    jobs = 1;
    max_live = 8;
    max_queue = 64;
    budget_cap = None;
    checkpoint_dir = None;
    snapshot_path = None;
    snapshot_every = 10.0;
    flight = None;
    ledger_path = None;
  }

(* Live telemetry: latency sketches and load gauges registered in the
   process-wide Metrics registry (so one scrape sees them next to the
   pool's and memo's instruments), plus the snapshot pump's state.
   None of it ever writes to the protocol stream — replies stay
   byte-identical at any job count whether telemetry is on or off. *)
type telemetry = {
  wire : Metrics.sketch;  (* per-request handle_line latency, seconds *)
  step : Metrics.sketch;  (* per-Session.step learner latency *)
  queue_wait : Metrics.sketch;  (* open-queued -> promoted *)
  memo_wait : Metrics.sketch;  (* shared-memo lookup latency *)
  live_gauge : Metrics.gauge;
  queue_gauge : Metrics.gauge;
  requests : Metrics.counter;
  errors : Metrics.counter;
  started_ns : int64;
  manifest : Manifest.t;
  queued_at : (string, int64) Hashtbl.t;  (* session -> ns when queued *)
  writer : Snapshot.writer option;
  mutable snap_seq : int;
  mutable last_gc : Gc.stat;
}

type t = {
  config : config;
  pool : Pool.t;
  memo : (string * string, float * float) Memo.t;
  (* Cross-session accounting: per (bench, config-key), how many
     evaluation lookups each session made.  A multiset, not an event
     log: under parallel ticks the per-key totals are schedule-free
     even though the interleaving of lookups is not. *)
  acc_lock : Mutex.t;
  acc : (string * string, (int, int) Hashtbl.t) Hashtbl.t;
  sessions : (string, Session.t) Hashtbl.t;
  mutable order : string list;  (* admission order, newest first *)
  mutable queue : string list;  (* FIFO of queued names, head first *)
  mutable opened : int;
  mutable stopped : bool;
  tele : telemetry;
}

let create config =
  if config.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if config.max_live < 1 then
    invalid_arg "Server.create: max_live must be >= 1";
  {
    config;
    pool = Pool.create ~jobs:config.jobs ();
    memo = Memo.create ~name:"serve.memo" ();
    acc_lock = Mutex.create ();
    acc = Hashtbl.create 4096;
    sessions = Hashtbl.create 64;
    order = [];
    queue = [];
    opened = 0;
    stopped = false;
    tele =
      {
        wire = Metrics.sketch "serve.wire_seconds";
        step = Metrics.sketch "serve.step_seconds";
        queue_wait = Metrics.sketch "serve.queue_wait_seconds";
        memo_wait = Metrics.sketch "serve.memo_wait_seconds";
        live_gauge = Metrics.gauge "serve.sessions.live";
        queue_gauge = Metrics.gauge "serve.queue.depth";
        requests = Metrics.counter "serve.requests";
        errors = Metrics.counter "serve.errors";
        started_ns = Trace.now_ns ();
        manifest = Manifest.capture ~jobs:config.jobs ();
        queued_at = Hashtbl.create 64;
        writer = Option.map Snapshot.create config.snapshot_path;
        snap_seq = 0;
        last_gc = Gc.quick_stat ();
      };
  }

let stopped t = t.stopped

(* --- Shared-memo accounting ------------------------------------------- *)

let note_lookup t ~session_id key =
  Mutex.lock t.acc_lock;
  let per =
    match Hashtbl.find_opt t.acc key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace t.acc key h;
        h
  in
  Hashtbl.replace per session_id
    (1 + Option.value ~default:0 (Hashtbl.find_opt per session_id));
  Mutex.unlock t.acc_lock

let seconds_between t0 t1 = Int64.to_float (Int64.sub t1 t0) /. 1e9

let share_for t ~session_id ~bench : Spapt.share =
 fun ~key compute ->
  let k = (bench, key) in
  note_lookup t ~session_id k;
  let t0 = Trace.now_ns () in
  let v = Memo.find_or_compute t.memo k compute in
  Metrics.record t.tele.memo_wait (seconds_between t0 (Trace.now_ns ()));
  v

let memo_stats t =
  Mutex.lock t.acc_lock;
  let entries = Hashtbl.length t.acc in
  let lookups = ref 0 in
  let shared = ref 0 in
  let cross = ref 0 in
  Hashtbl.iter
    (fun _ per ->
      let total = Hashtbl.fold (fun _ c a -> a + c) per 0 in
      lookups := !lookups + total;
      if Hashtbl.length per > 1 then incr shared;
      (* Canonical owner = lowest admission order, not whoever computed
         first: compute order depends on scheduling, admission does not. *)
      let owner = Hashtbl.fold (fun sid _ a -> min sid a) per max_int in
      cross := !cross + (total - Hashtbl.find per owner))
    t.acc;
  Mutex.unlock t.acc_lock;
  {
    Protocol.m_lookups = !lookups;
    m_entries = entries;
    m_hits = !lookups - entries;
    m_shared_keys = !shared;
    m_cross_hits = !cross;
  }

(* --- Session store ----------------------------------------------------- *)

let find t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "no session %S" name)

let in_admission_order t = List.rev t.order

let live_names t =
  List.filter
    (fun n -> Session.phase (Hashtbl.find t.sessions n) = Session.Live)
    (in_admission_order t)

let count_phase t p =
  List.length
    (List.filter
       (fun n -> Session.phase (Hashtbl.find t.sessions n) = p)
       (in_admission_order t))

let queue_position t name =
  let rec index i = function
    | [] -> None
    | n :: _ when String.equal n name -> Some i
    | _ :: rest -> index (i + 1) rest
  in
  index 0 t.queue

let view t s =
  Session.view s ~position:(queue_position t (Session.config s).Session.name)

(* Promote queued sessions into freed live slots, FIFO.  Called at the
   end of every request that can free a slot, so the admission sequence
   is a deterministic function of the request sequence. *)
let promote t =
  let rec go admitted =
    if count_phase t Session.Live >= t.config.max_live then List.rev admitted
    else
      match t.queue with
      | [] -> List.rev admitted
      | name :: rest ->
          t.queue <- rest;
          (match Hashtbl.find_opt t.tele.queued_at name with
          | Some t0 ->
              Metrics.record t.tele.queue_wait
                (seconds_between t0 (Trace.now_ns ()));
              Hashtbl.remove t.tele.queued_at name
          | None -> ());
          Session.admit (Hashtbl.find t.sessions name);
          go (name :: admitted)
  in
  go []

let stats t =
  {
    Protocol.s_opened = t.opened;
    s_live = count_phase t Session.Live;
    s_queued = List.length t.queue;
    s_done = count_phase t Session.Done;
    s_closed = count_phase t Session.Closed;
    s_max_live = t.config.max_live;
    s_max_queue = t.config.max_queue;
    s_memo = memo_stats t;
  }

let update_gauges t =
  Metrics.set_gauge t.tele.live_gauge
    (float_of_int (count_phase t Session.Live));
  Metrics.set_gauge t.tele.queue_gauge (float_of_int (List.length t.queue))

(* --- Open -------------------------------------------------------------- *)

let session_config (p : Protocol.open_params) :
    (Session.config, string) result =
  if String.length p.o_session = 0 then Error "empty session name"
  else if not (List.mem p.o_bench Kernels.names) then
    Error
      (Printf.sprintf "unknown benchmark %S; known: %s" p.o_bench
         (String.concat ", " Kernels.names))
  else
    match Scale.of_label p.o_scale with
    | None -> Error (Printf.sprintf "unknown scale %S" p.o_scale)
    | Some scale -> (
        match
          match p.o_fault with
          | None -> Ok None
          | Some s -> (
              match Fault.of_string s with
              | Ok sp -> Ok (Some sp)
              | Error e -> Error ("bad fault spec: " ^ e))
        with
        | Error e -> Error e
        | Ok fault ->
            if
              (match p.o_budget with Some b -> b <= 0.0 | None -> false)
              || (match p.o_n_max with Some n -> n < 1 | None -> false)
            then Error "budget and n_max must be positive"
            else
              Ok
                {
                  Session.name = p.o_session;
                  bench = p.o_bench;
                  scale;
                  seed = p.o_seed;
                  fault;
                  budget = p.o_budget;
                  n_max = p.o_n_max;
                  checkpoint_path = p.o_checkpoint;
                })

let handle_open t (p : Protocol.open_params) =
  if Hashtbl.mem t.sessions p.o_session then
    Error (Printf.sprintf "session %S already exists" p.o_session)
  else
    match session_config p with
    | Error e -> Error e
    | Ok cfg -> (
        match (t.config.budget_cap, cfg.Session.budget) with
        | Some cap, Some b when b > cap ->
            Error
              (Printf.sprintf
                 "budget %.0fs exceeds the server's per-session cap of %.0fs"
                 b cap)
        | Some cap, None ->
            (* A capped server only admits sessions that declare a
               budget: unbounded work cannot be admission-controlled. *)
            Error
              (Printf.sprintf
                 "this server requires a per-session budget (cap %.0fs)" cap)
        | _ ->
            let live = count_phase t Session.Live in
            let queued = List.length t.queue in
            if live >= t.config.max_live && queued >= t.config.max_queue then
              Error
                (Printf.sprintf
                   "server at capacity: %d live, %d queued" live queued)
            else begin
              let id = t.opened in
              t.opened <- t.opened + 1;
              let share =
                share_for t ~session_id:id ~bench:cfg.Session.bench
              in
              let s = Session.create ~id ~share cfg in
              Hashtbl.replace t.sessions cfg.Session.name s;
              t.order <- cfg.Session.name :: t.order;
              if live < t.config.max_live then Session.admit s
              else begin
                t.queue <- t.queue @ [ cfg.Session.name ];
                Hashtbl.replace t.tele.queued_at cfg.Session.name
                  (Trace.now_ns ())
              end;
              Ok (Protocol.R_session (view t s))
            end)

(* --- Checkpointing ----------------------------------------------------- *)

let checkpoint_path_for t (s : Session.t) ~explicit =
  match explicit with
  | Some p -> Some p
  | None -> (
      match (Session.config s).Session.checkpoint_path with
      | Some p -> Some p
      | None ->
          Option.map
            (fun dir ->
              Filename.concat dir ((Session.config s).Session.name ^ ".ck.json"))
            t.config.checkpoint_dir)

let handle_checkpoint t s ~path =
  match checkpoint_path_for t s ~explicit:path with
  | None ->
      Error
        (Printf.sprintf
           "no checkpoint path for session %S (pass one, open with \
            \"checkpoint\", or start the server with a checkpoint \
            directory)"
           (Session.config s).Session.name)
  | Some path -> (
      match Session.save_checkpoint s ~path with
      | Error e -> Error e
      | Ok iteration ->
          Ok
            (Protocol.R_checkpoint
               {
                 session = (Session.config s).Session.name;
                 path;
                 iteration;
               }))

(* --- Telemetry: snapshots, full scrape, failure ledger ----------------- *)

let sorted_obj fields =
  Json.Obj (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)

let gc_json (g : Gc.stat) =
  sorted_obj
    [
      ("compactions", Json.Int g.compactions);
      ("heap_words", Json.Int g.heap_words);
      ("major_collections", Json.Int g.major_collections);
      ("major_words", Json.Float g.major_words);
      ("minor_collections", Json.Int g.minor_collections);
      ("minor_words", Json.Float g.minor_words);
      ("promoted_words", Json.Float g.promoted_words);
    ]

let memo_json (m : Protocol.memo_stats) =
  let hit_rate =
    if m.m_lookups = 0 then 0.0
    else float_of_int m.m_hits /. float_of_int m.m_lookups
  in
  sorted_obj
    [
      ("cross_hits", Json.Int m.m_cross_hits);
      ("entries", Json.Int m.m_entries);
      ("hit_rate", Json.Float hit_rate);
      ("hits", Json.Int m.m_hits);
      ("lookups", Json.Int m.m_lookups);
      ("shared_keys", Json.Int m.m_shared_keys);
    ]

let sketch_summaries t =
  sorted_obj
    [
      ("memo_wait", Quantile.summary_json (Metrics.sketch_data t.tele.memo_wait));
      ("queue_wait", Quantile.summary_json (Metrics.sketch_data t.tele.queue_wait));
      ("step", Quantile.summary_json (Metrics.sketch_data t.tele.step));
      ("wire", Quantile.summary_json (Metrics.sketch_data t.tele.wire));
    ]

(* One record of the snapshot time series.  Every key is sorted at every
   level, so two records differing only in load are textually comparable
   — the snapshot determinism contract (DESIGN.md §10): the *shape* is a
   pure function of the schema version, only the measured values vary. *)
let snapshot_record t =
  let s = stats t in
  let now = Gc.quick_stat () in
  let prev = t.tele.last_gc in
  t.tele.last_gc <- now;
  let seq = t.tele.snap_seq in
  t.tele.snap_seq <- seq + 1;
  let gc_delta =
    sorted_obj
      [
        ("compactions", Json.Int (now.compactions - prev.compactions));
        ("heap_words", Json.Int now.heap_words);
        ( "major_collections",
          Json.Int (now.major_collections - prev.major_collections) );
        ("major_words", Json.Float (now.major_words -. prev.major_words));
        ( "minor_collections",
          Json.Int (now.minor_collections - prev.minor_collections) );
        ("minor_words", Json.Float (now.minor_words -. prev.minor_words));
        ("promoted_words", Json.Float (now.promoted_words -. prev.promoted_words));
      ]
  in
  sorted_obj
    ([
       ("closed", Json.Int s.s_closed);
       ("done", Json.Int s.s_done);
       ("ev", Json.String "snapshot");
       ("gc", gc_delta);
       ("live", Json.Int s.s_live);
       ("max_live", Json.Int s.s_max_live);
       ("max_queue", Json.Int s.s_max_queue);
       ("memo", memo_json s.s_memo);
       ("opened", Json.Int s.s_opened);
       ("pool_jobs", Json.Int t.config.jobs);
       ("queued", Json.Int s.s_queued);
       ("requests", Json.Int (Metrics.counter_value t.tele.requests));
       ("errors", Json.Int (Metrics.counter_value t.tele.errors));
       ("seq", Json.Int seq);
       ("sketches", sketch_summaries t);
       ("ts", Json.Float (Unix.gettimeofday ()));
       ( "uptime_s",
         Json.Float (seconds_between t.tele.started_ns (Trace.now_ns ())) );
     ]
    @ Manifest.fields t.tele.manifest)

let snapshot t =
  let record = snapshot_record t in
  if not t.stopped then
    Option.iter (fun w -> Snapshot.write w record) t.tele.writer;
  record

let snapshot_every t = t.config.snapshot_every
let snapshots_on t = Option.is_some t.tele.writer

let stats_full_json t =
  sorted_obj
    [
      ("gc", gc_json (Gc.quick_stat ()));
      ("metrics", Metrics.snapshot ());
      ( "server",
        let s = stats t in
        sorted_obj
          [
            ("closed", Json.Int s.s_closed);
            ("done", Json.Int s.s_done);
            ("live", Json.Int s.s_live);
            ("max_live", Json.Int s.s_max_live);
            ("max_queue", Json.Int s.s_max_queue);
            ("memo", memo_json s.s_memo);
            ("opened", Json.Int s.s_opened);
            ("pool_jobs", Json.Int t.config.jobs);
            ("queued", Json.Int s.s_queued);
          ] );
      ( "uptime_s",
        Json.Float (seconds_between t.tele.started_ns (Trace.now_ns ())) );
    ]

(* Append one failure record — the error, the request line that caused
   it, and the flight recorder's retained spans — to the ledger file.
   Best-effort: diagnostics must never take the server down. *)
let ledger_append t ~line msg =
  match t.config.ledger_path with
  | None -> ()
  | Some path -> (
      try
        let oc =
          open_out_gen [ Open_append; Open_creat ] 0o644 path
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            let flight_lines =
              match t.config.flight with
              | None -> []
              | Some f -> Flight.dump f
            in
            let record =
              sorted_obj
                [
                  ("error", Json.String msg);
                  ("ev", Json.String "ledger");
                  ( "flight",
                    Json.List
                      (List.map (fun l -> Json.String l) flight_lines) );
                  ("request", Json.String line);
                  ("ts", Json.Float (Unix.gettimeofday ()));
                ]
            in
            output_string oc (Json.to_string record);
            output_char oc '\n')
      with Sys_error _ -> ())

let flight_dump_to t path =
  match t.config.flight with
  | None -> ()
  | Some f -> (
      try
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              (Flight.dump f))
      with Sys_error _ -> ())

let graceful_stop t =
  if t.stopped then []
  else begin
    (* Final snapshot before the writer closes, so even a short scripted
       run leaves at least one record in the series. *)
    (try ignore (snapshot t) with Sys_error _ -> ());
    Option.iter Snapshot.close t.tele.writer;
    t.stopped <- true;
    let checkpointed =
      List.filter_map
        (fun name ->
          let s = Hashtbl.find t.sessions name in
          if Session.phase s <> Session.Live then None
          else
            match checkpoint_path_for t s ~explicit:None with
            | None -> None
            | Some path -> (
                match Session.save_checkpoint s ~path with
                | Ok _ -> Some (name, path)
                | Error _ -> None))
        (in_admission_order t)
    in
    Pool.shutdown t.pool;
    checkpointed
  end

(* --- Dispatch ----------------------------------------------------------- *)

let timed_step t s ~iterations =
  let t0 = Trace.now_ns () in
  let r = Session.step ~exec_pool:t.pool s ~iterations in
  Metrics.record t.tele.step (seconds_between t0 (Trace.now_ns ()));
  r

let handle t (req : Protocol.request) =
  if
    t.stopped
    && not
         (match req with
         | Protocol.Stats | Protocol.Stats_full | Protocol.Prom -> true
         | _ -> false)
  then Error "server is shut down"
  else
    match req with
    | Protocol.Open p -> handle_open t p
    | Protocol.Step { session; iterations } -> (
        match find t session with
        | Error e -> Error e
        | Ok s -> (
            match timed_step t s ~iterations with
            | Error e -> Error e
            | Ok () ->
                ignore (promote t);
                Ok (Protocol.R_session (view t s))))
    | Protocol.Tick { iterations } ->
        if iterations < 1 then Error "iterations must be at least 1"
        else begin
          let names = live_names t in
          let sessions = List.map (Hashtbl.find t.sessions) names in
          let results =
            Pool.map
              ~label:(fun i -> "serve.step " ^ List.nth names i)
              t.pool
              (fun s -> timed_step t s ~iterations)
              sessions
          in
          (* All sessions were live and iterations >= 1, so individual
             steps cannot fail; keep the check as a tripwire. *)
          List.iter
            (function Ok () -> () | Error e -> failwith e)
            results;
          ignore (promote t);
          Ok (Protocol.R_tick (List.map (view t) sessions))
        end
    | Protocol.Status { session } -> (
        match find t session with
        | Error e -> Error e
        | Ok s -> Ok (Protocol.R_session (view t s)))
    | Protocol.Checkpoint { session; path } -> (
        match find t session with
        | Error e -> Error e
        | Ok s -> handle_checkpoint t s ~path)
    | Protocol.Close { session } -> (
        match find t session with
        | Error e -> Error e
        | Ok s ->
            if Session.phase s = Session.Closed then
              Error (Printf.sprintf "session %S already closed" session)
            else begin
              t.queue <-
                List.filter (fun n -> not (String.equal n session)) t.queue;
              Session.close s;
              let admitted = promote t in
              Ok (Protocol.R_close { session; admitted })
            end)
    | Protocol.Stats -> Ok (Protocol.R_stats (stats t))
    | Protocol.Stats_full -> Ok (Protocol.R_stats_full (stats_full_json t))
    | Protocol.Prom -> Ok (Protocol.R_prom (Metrics.render_prom ()))
    | Protocol.Shutdown ->
        let checkpointed = graceful_stop t in
        Ok (Protocol.R_shutdown { checkpointed })

let handle t req =
  let result = handle t req in
  update_gauges t;
  result

let handle_line t line =
  let t0 = Trace.now_ns () in
  let response =
    match Protocol.request_of_line line with
    | Error (id, msg) ->
        Metrics.incr t.tele.errors;
        ledger_append t ~line msg;
        { Protocol.r_id = id; r_result = Error msg }
    | Ok (id, req) ->
        let result =
          try handle t req with
          | Failure e -> Error e
          | Invalid_argument e -> Error e
        in
        (match result with
        | Error msg ->
            Metrics.incr t.tele.errors;
            ledger_append t ~line msg
        | Ok _ -> ());
        { Protocol.r_id = id; r_result = result }
  in
  let rendered = Protocol.response_to_line response in
  Metrics.incr t.tele.requests;
  Metrics.record t.tele.wire (seconds_between t0 (Trace.now_ns ()));
  rendered
