module Spapt = Altune_spapt.Spapt
module Kernels = Altune_spapt.Kernels
module Scale = Altune_experiments.Scale
module Fault = Altune_exec.Fault
module Memo = Altune_exec.Memo
module Pool = Altune_exec.Pool

type config = {
  jobs : int;
  max_live : int;
  max_queue : int;
  budget_cap : float option;
  checkpoint_dir : string option;
}

let default_config =
  {
    jobs = 1;
    max_live = 8;
    max_queue = 64;
    budget_cap = None;
    checkpoint_dir = None;
  }

type t = {
  config : config;
  pool : Pool.t;
  memo : (string * string, float * float) Memo.t;
  (* Cross-session accounting: per (bench, config-key), how many
     evaluation lookups each session made.  A multiset, not an event
     log: under parallel ticks the per-key totals are schedule-free
     even though the interleaving of lookups is not. *)
  acc_lock : Mutex.t;
  acc : (string * string, (int, int) Hashtbl.t) Hashtbl.t;
  sessions : (string, Session.t) Hashtbl.t;
  mutable order : string list;  (* admission order, newest first *)
  mutable queue : string list;  (* FIFO of queued names, head first *)
  mutable opened : int;
  mutable stopped : bool;
}

let create config =
  if config.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if config.max_live < 1 then
    invalid_arg "Server.create: max_live must be >= 1";
  {
    config;
    pool = Pool.create ~jobs:config.jobs ();
    memo = Memo.create ~name:"serve.memo" ();
    acc_lock = Mutex.create ();
    acc = Hashtbl.create 4096;
    sessions = Hashtbl.create 64;
    order = [];
    queue = [];
    opened = 0;
    stopped = false;
  }

let stopped t = t.stopped

(* --- Shared-memo accounting ------------------------------------------- *)

let note_lookup t ~session_id key =
  Mutex.lock t.acc_lock;
  let per =
    match Hashtbl.find_opt t.acc key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace t.acc key h;
        h
  in
  Hashtbl.replace per session_id
    (1 + Option.value ~default:0 (Hashtbl.find_opt per session_id));
  Mutex.unlock t.acc_lock

let share_for t ~session_id ~bench : Spapt.share =
 fun ~key compute ->
  let k = (bench, key) in
  note_lookup t ~session_id k;
  Memo.find_or_compute t.memo k compute

let memo_stats t =
  Mutex.lock t.acc_lock;
  let entries = Hashtbl.length t.acc in
  let lookups = ref 0 in
  let shared = ref 0 in
  let cross = ref 0 in
  Hashtbl.iter
    (fun _ per ->
      let total = Hashtbl.fold (fun _ c a -> a + c) per 0 in
      lookups := !lookups + total;
      if Hashtbl.length per > 1 then incr shared;
      (* Canonical owner = lowest admission order, not whoever computed
         first: compute order depends on scheduling, admission does not. *)
      let owner = Hashtbl.fold (fun sid _ a -> min sid a) per max_int in
      cross := !cross + (total - Hashtbl.find per owner))
    t.acc;
  Mutex.unlock t.acc_lock;
  {
    Protocol.m_lookups = !lookups;
    m_entries = entries;
    m_hits = !lookups - entries;
    m_shared_keys = !shared;
    m_cross_hits = !cross;
  }

(* --- Session store ----------------------------------------------------- *)

let find t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "no session %S" name)

let in_admission_order t = List.rev t.order

let live_names t =
  List.filter
    (fun n -> Session.phase (Hashtbl.find t.sessions n) = Session.Live)
    (in_admission_order t)

let count_phase t p =
  List.length
    (List.filter
       (fun n -> Session.phase (Hashtbl.find t.sessions n) = p)
       (in_admission_order t))

let queue_position t name =
  let rec index i = function
    | [] -> None
    | n :: _ when String.equal n name -> Some i
    | _ :: rest -> index (i + 1) rest
  in
  index 0 t.queue

let view t s =
  Session.view s ~position:(queue_position t (Session.config s).Session.name)

(* Promote queued sessions into freed live slots, FIFO.  Called at the
   end of every request that can free a slot, so the admission sequence
   is a deterministic function of the request sequence. *)
let promote t =
  let rec go admitted =
    if count_phase t Session.Live >= t.config.max_live then List.rev admitted
    else
      match t.queue with
      | [] -> List.rev admitted
      | name :: rest ->
          t.queue <- rest;
          Session.admit (Hashtbl.find t.sessions name);
          go (name :: admitted)
  in
  go []

let stats t =
  {
    Protocol.s_opened = t.opened;
    s_live = count_phase t Session.Live;
    s_queued = List.length t.queue;
    s_done = count_phase t Session.Done;
    s_closed = count_phase t Session.Closed;
    s_memo = memo_stats t;
  }

(* --- Open -------------------------------------------------------------- *)

let session_config (p : Protocol.open_params) :
    (Session.config, string) result =
  if String.length p.o_session = 0 then Error "empty session name"
  else if not (List.mem p.o_bench Kernels.names) then
    Error
      (Printf.sprintf "unknown benchmark %S; known: %s" p.o_bench
         (String.concat ", " Kernels.names))
  else
    match Scale.of_label p.o_scale with
    | None -> Error (Printf.sprintf "unknown scale %S" p.o_scale)
    | Some scale -> (
        match
          match p.o_fault with
          | None -> Ok None
          | Some s -> (
              match Fault.of_string s with
              | Ok sp -> Ok (Some sp)
              | Error e -> Error ("bad fault spec: " ^ e))
        with
        | Error e -> Error e
        | Ok fault ->
            if
              (match p.o_budget with Some b -> b <= 0.0 | None -> false)
              || (match p.o_n_max with Some n -> n < 1 | None -> false)
            then Error "budget and n_max must be positive"
            else
              Ok
                {
                  Session.name = p.o_session;
                  bench = p.o_bench;
                  scale;
                  seed = p.o_seed;
                  fault;
                  budget = p.o_budget;
                  n_max = p.o_n_max;
                  checkpoint_path = p.o_checkpoint;
                })

let handle_open t (p : Protocol.open_params) =
  if Hashtbl.mem t.sessions p.o_session then
    Error (Printf.sprintf "session %S already exists" p.o_session)
  else
    match session_config p with
    | Error e -> Error e
    | Ok cfg -> (
        match (t.config.budget_cap, cfg.Session.budget) with
        | Some cap, Some b when b > cap ->
            Error
              (Printf.sprintf
                 "budget %.0fs exceeds the server's per-session cap of %.0fs"
                 b cap)
        | Some cap, None ->
            (* A capped server only admits sessions that declare a
               budget: unbounded work cannot be admission-controlled. *)
            Error
              (Printf.sprintf
                 "this server requires a per-session budget (cap %.0fs)" cap)
        | _ ->
            let live = count_phase t Session.Live in
            let queued = List.length t.queue in
            if live >= t.config.max_live && queued >= t.config.max_queue then
              Error
                (Printf.sprintf
                   "server at capacity: %d live, %d queued" live queued)
            else begin
              let id = t.opened in
              t.opened <- t.opened + 1;
              let share =
                share_for t ~session_id:id ~bench:cfg.Session.bench
              in
              let s = Session.create ~id ~share cfg in
              Hashtbl.replace t.sessions cfg.Session.name s;
              t.order <- cfg.Session.name :: t.order;
              if live < t.config.max_live then Session.admit s
              else t.queue <- t.queue @ [ cfg.Session.name ];
              Ok (Protocol.R_session (view t s))
            end)

(* --- Checkpointing ----------------------------------------------------- *)

let checkpoint_path_for t (s : Session.t) ~explicit =
  match explicit with
  | Some p -> Some p
  | None -> (
      match (Session.config s).Session.checkpoint_path with
      | Some p -> Some p
      | None ->
          Option.map
            (fun dir ->
              Filename.concat dir ((Session.config s).Session.name ^ ".ck.json"))
            t.config.checkpoint_dir)

let handle_checkpoint t s ~path =
  match checkpoint_path_for t s ~explicit:path with
  | None ->
      Error
        (Printf.sprintf
           "no checkpoint path for session %S (pass one, open with \
            \"checkpoint\", or start the server with a checkpoint \
            directory)"
           (Session.config s).Session.name)
  | Some path -> (
      match Session.save_checkpoint s ~path with
      | Error e -> Error e
      | Ok iteration ->
          Ok
            (Protocol.R_checkpoint
               {
                 session = (Session.config s).Session.name;
                 path;
                 iteration;
               }))

let graceful_stop t =
  if t.stopped then []
  else begin
    t.stopped <- true;
    let checkpointed =
      List.filter_map
        (fun name ->
          let s = Hashtbl.find t.sessions name in
          if Session.phase s <> Session.Live then None
          else
            match checkpoint_path_for t s ~explicit:None with
            | None -> None
            | Some path -> (
                match Session.save_checkpoint s ~path with
                | Ok _ -> Some (name, path)
                | Error _ -> None))
        (in_admission_order t)
    in
    Pool.shutdown t.pool;
    checkpointed
  end

(* --- Dispatch ----------------------------------------------------------- *)

let handle t (req : Protocol.request) =
  if t.stopped && req <> Protocol.Stats then Error "server is shut down"
  else
    match req with
    | Protocol.Open p -> handle_open t p
    | Protocol.Step { session; iterations } -> (
        match find t session with
        | Error e -> Error e
        | Ok s -> (
            match Session.step ~exec_pool:t.pool s ~iterations with
            | Error e -> Error e
            | Ok () ->
                ignore (promote t);
                Ok (Protocol.R_session (view t s))))
    | Protocol.Tick { iterations } ->
        if iterations < 1 then Error "iterations must be at least 1"
        else begin
          let names = live_names t in
          let sessions = List.map (Hashtbl.find t.sessions) names in
          let results =
            Pool.map
              ~label:(fun i -> "serve.step " ^ List.nth names i)
              t.pool
              (fun s -> Session.step ~exec_pool:t.pool s ~iterations)
              sessions
          in
          (* All sessions were live and iterations >= 1, so individual
             steps cannot fail; keep the check as a tripwire. *)
          List.iter
            (function Ok () -> () | Error e -> failwith e)
            results;
          ignore (promote t);
          Ok (Protocol.R_tick (List.map (view t) sessions))
        end
    | Protocol.Status { session } -> (
        match find t session with
        | Error e -> Error e
        | Ok s -> Ok (Protocol.R_session (view t s)))
    | Protocol.Checkpoint { session; path } -> (
        match find t session with
        | Error e -> Error e
        | Ok s -> handle_checkpoint t s ~path)
    | Protocol.Close { session } -> (
        match find t session with
        | Error e -> Error e
        | Ok s ->
            if Session.phase s = Session.Closed then
              Error (Printf.sprintf "session %S already closed" session)
            else begin
              t.queue <-
                List.filter (fun n -> not (String.equal n session)) t.queue;
              Session.close s;
              let admitted = promote t in
              Ok (Protocol.R_close { session; admitted })
            end)
    | Protocol.Stats -> Ok (Protocol.R_stats (stats t))
    | Protocol.Shutdown ->
        let checkpointed = graceful_stop t in
        Ok (Protocol.R_shutdown { checkpointed })

let handle_line t line =
  match Protocol.request_of_line line with
  | Error (id, msg) ->
      Protocol.response_to_line { r_id = id; r_result = Error msg }
  | Ok (id, req) ->
      let result =
        try handle t req with
        | Failure e -> Error e
        | Invalid_argument e -> Error e
      in
      Protocol.response_to_line { r_id = id; r_result = result }
