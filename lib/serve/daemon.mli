(** Transport loops for the tuning server: scripted, stdio, and Unix
    socket, all speaking the newline-delimited {!Protocol}.

    Every loop guarantees a graceful exit: on end of input, a [shutdown]
    request, or a SIGINT/SIGTERM (when handlers are installed), the
    server's {!Server.graceful_stop} runs — checkpointing every
    checkpointable live session and shutting the pool down — before the
    loop returns, so the caller can flush observability sinks and exit
    0.  A session checkpointed this way resumes with [altune resume] to
    the same bytes the uninterrupted standalone run would print.

    {b Telemetry pump.}  Every loop also drives the server's live
    telemetry between requests (and, for the fd-based loops, on idle
    polls): a snapshot record is appended to the configured series every
    {!Server.snapshot_every} seconds, and a pending SIGUSR1 (the [usr1]
    flag) dumps the flight recorder to [flight_dump].  Neither writes a
    byte to the protocol stream. *)

val make_stop : unit -> bool Atomic.t
(** A fresh stop flag, initially false. *)

val make_flag : unit -> bool Atomic.t
(** A fresh signal flag (e.g. for SIGUSR1), initially false. *)

val install_signal_handlers : ?usr1:bool Atomic.t -> bool Atomic.t -> unit
(** Route SIGINT and SIGTERM to setting the stop flag, and — when
    [usr1] is given — SIGUSR1 to setting that flag.  The serve loops
    poll both between requests; nothing extra is written to the
    protocol stream on a signal. *)

val serve_script :
  ?usr1:bool Atomic.t ->
  ?flight_dump:string ->
  Server.t ->
  path:string ->
  output:out_channel ->
  unit
(** Feed the request lines of the file at [path] to the server,
    writing one response line per request to [output] (flushed per
    line).  Blank lines are skipped.  Stops early after a [shutdown]
    request.  Deterministic: same script, same server config => same
    output bytes, at any [jobs] — snapshots and flight dumps go to
    their own files, never to [output]. *)

val serve_channel :
  ?stop:bool Atomic.t ->
  ?usr1:bool Atomic.t ->
  ?flight_dump:string ->
  Server.t ->
  input:in_channel ->
  output:out_channel ->
  unit
(** Blocking request/response loop over arbitrary channels (tests, or
    callers managing their own transport).  The pump runs after each
    request, not on idle (blocking reads can't poll). *)

val serve_stdio :
  ?stop:bool Atomic.t -> ?usr1:bool Atomic.t -> ?flight_dump:string ->
  Server.t -> unit
(** Serve stdin/stdout, polling [stop] between reads so signals
    interrupt a quiet connection promptly. *)

val serve_socket :
  ?stop:bool Atomic.t -> ?usr1:bool Atomic.t -> ?flight_dump:string ->
  Server.t -> path:string -> unit
(** Listen on a Unix domain socket at [path] (replacing any stale
    socket file), serving one client connection at a time; sessions
    persist across connections.  Returns once [stop] is set or a client
    sent [shutdown]; removes the socket file on the way out. *)
