module Linalg = Altune_stats.Linalg
module Descriptive = Altune_stats.Descriptive
module Surrogate = Altune_core.Surrogate

type params = {
  lengthscale : float option;
  noise_variance : float option;
  jitter : float;
  max_points : int;
}

let default_params =
  { lengthscale = None; noise_variance = None; jitter = 1e-8;
    max_points = 2000 }

type fitted = {
  chol : float array array;
  alpha : float array;  (* K^-1 (y - mean) *)
  y_mean : float;
  lengthscale : float;
  signal_var : float;
  noise_var : float;
}

type t = {
  params : params;
  dim : int;
  noise_hint : float option;
  mutable xs : float array list;  (* newest first *)
  mutable ys : float list;
  mutable n : int;
  mutable fit : fitted option;  (* None = stale *)
}

let create ?(params = default_params) ?noise_hint ~dim () =
  if dim <= 0 then invalid_arg "Gp.create: dim must be positive";
  { params; dim; noise_hint; xs = []; ys = []; n = 0; fit = None }

let n_observations t = t.n

let observe t x y =
  if Array.length x <> t.dim then
    invalid_arg "Gp.observe: wrong feature dimension";
  if t.n < t.params.max_points then begin
    t.xs <- Array.copy x :: t.xs;
    t.ys <- y :: t.ys;
    t.n <- t.n + 1;
    t.fit <- None
  end

let sq_dist a b =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    s := !s +. (d *. d)
  done;
  !s

let kernel ~lengthscale ~signal_var a b =
  signal_var *. exp (-.sq_dist a b /. (2.0 *. lengthscale *. lengthscale))

(* Median pairwise distance over (a subsample of) the data: the standard
   lengthscale heuristic. *)
let median_distance xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  if n < 2 then 1.0
  else begin
    let step = max 1 (n / 40) in
    let ds = ref [] in
    let i = ref 0 in
    while !i < n do
      let j = ref (!i + step) in
      while !j < n do
        ds := sqrt (sq_dist xs.(!i) xs.(!j)) :: !ds;
        j := !j + step
      done;
      i := !i + step
    done;
    match !ds with
    | [] -> 1.0
    | ds ->
        let d = Descriptive.median (Array.of_list ds) in
        if d > 0.0 then d else 1.0
  end

let refit t =
  let xs = Array.of_list t.xs in
  let ys = Array.of_list t.ys in
  let n = Array.length xs in
  let y_mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 ys /. float_of_int n
  in
  let signal_var =
    if n < 2 then 1.0 else Float.max 1e-8 (Descriptive.variance ys)
  in
  let lengthscale =
    match t.params.lengthscale with
    | Some l -> l
    | None -> median_distance t.xs
  in
  let noise_var =
    match t.params.noise_variance with
    | Some v -> v
    | None -> (
        match t.noise_hint with
        | Some v -> Float.max 1e-8 v
        | None -> 0.05 *. signal_var)
  in
  let k = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let v = kernel ~lengthscale ~signal_var xs.(i) xs.(j) in
      k.(i).(j) <- v;
      k.(j).(i) <- v
    done;
    k.(i).(i) <- k.(i).(i) +. noise_var +. t.params.jitter
  done;
  let chol = Linalg.cholesky k in
  let centered = Array.map (fun y -> y -. y_mean) ys in
  let alpha = Linalg.cholesky_solve chol centered in
  let f = { chol; alpha; y_mean; lengthscale; signal_var; noise_var } in
  t.fit <- Some f;
  f

let fitted t =
  match t.fit with
  | Some f when t.n > 0 -> Some f
  | Some _ | None -> if t.n = 0 then None else Some (refit t)

let k_vector t (f : fitted) x =
  let xs = Array.of_list t.xs in
  Array.map
    (fun xi -> kernel ~lengthscale:f.lengthscale ~signal_var:f.signal_var xi x)
    xs

let predict t x =
  match fitted t with
  | None ->
      (* Prior: zero mean, unit-ish variance. *)
      { Surrogate.mean = 0.0; variance = 1.0 }
  | Some f ->
      let kx = k_vector t f x in
      let mean = f.y_mean +. Linalg.dot kx f.alpha in
      let v = Linalg.cholesky_solve f.chol kx in
      let latent = f.signal_var -. Linalg.dot kx v in
      { Surrogate.mean; variance = Float.max 0.0 latent +. f.noise_var }

let alc_scores t ~candidates ~refs =
  match fitted t with
  | None -> Array.map (fun _ -> 1.0) candidates
  | Some f ->
      let nrefs = float_of_int (max 1 (Array.length refs)) in
      (* Precompute per-reference kernel vectors once. *)
      let ref_ks = Array.map (fun z -> k_vector t f z) refs in
      Array.map
        (fun x ->
          let kx = k_vector t f x in
          let v = Linalg.cholesky_solve f.chol kx in
          let var_x =
            Float.max 1e-12 (f.signal_var -. Linalg.dot kx v)
          in
          let denom = var_x +. f.noise_var in
          let total = ref 0.0 in
          Array.iteri
            (fun i z ->
              let cov =
                kernel ~lengthscale:f.lengthscale ~signal_var:f.signal_var z
                  x
                -. Linalg.dot ref_ks.(i) v
              in
              total := !total +. (cov *. cov /. denom))
            refs;
          !total /. nrefs)
        candidates

module Gp_surrogate = struct
  type nonrec t = t

  let name = "gp"
  let observe = observe
  let predict = predict
  let alc_scores = alc_scores
  let n_observations = n_observations
  let tree_stats _ = None

  (* The GP refits from scratch per observation; nothing to fan out. *)
  let set_pool _ _ = ()
end

let factory ?(params = default_params) () : Surrogate.factory =
 fun ~noise_hint ~rng ~dim ->
  ignore rng;
  Surrogate.Pack ((module Gp_surrogate), create ~params ?noise_hint ~dim ())
