type loc = int

type ops = {
  o_mutex : unit -> int;
  o_lock : int -> unit;
  o_unlock : int -> unit;
  o_cond : unit -> int;
  o_wait : cond:int -> mutex:int -> unit;
  o_signal : int -> unit;
  o_broadcast : int -> unit;
  o_spawn : (unit -> unit) -> int;
  o_join : int -> unit;
  o_self : unit -> int;
  o_loc : string -> int;
  o_read : loc -> site:string -> unit;
  o_write : loc -> site:string -> unit;
}

type mutex = Real_mutex of Mutex.t | Virt_mutex of int
type cond = Real_cond of Condition.t | Virt_cond of int
type handle = Real_domain of unit Domain.t | Virt_thread of int

(* Real mode is the resting state: [state] is [None] and the hot-path
   cost of the shim is this one load plus a constructor match.  The ref
   is only ever written by [with_ops], which owns the whole process for
   the duration (model checking is single-domain by construction). *)
let state : ops option ref = ref None

let virtual_mode () = Option.is_some !state

let with_ops ops f =
  (match !state with
  | Some _ -> invalid_arg "Sync.with_ops: virtual mode is not reentrant"
  | None -> ());
  state := Some ops;
  Fun.protect ~finally:(fun () -> state := None) f

let no_ops what =
  invalid_arg
    (Printf.sprintf
       "Sync: virtual %s used outside the Sync.with_ops scope that created it"
       what)

let mutex () =
  match !state with
  | None -> Real_mutex (Mutex.create ())
  | Some o -> Virt_mutex (o.o_mutex ())

let lock = function
  | Real_mutex m -> Mutex.lock m
  | Virt_mutex id -> (
      match !state with Some o -> o.o_lock id | None -> no_ops "mutex")

let unlock = function
  | Real_mutex m -> Mutex.unlock m
  | Virt_mutex id -> (
      match !state with Some o -> o.o_unlock id | None -> no_ops "mutex")

let cond () =
  match !state with
  | None -> Real_cond (Condition.create ())
  | Some o -> Virt_cond (o.o_cond ())

let wait c m =
  match (c, m) with
  | Real_cond c, Real_mutex m -> Condition.wait c m
  | Virt_cond c, Virt_mutex m -> (
      match !state with
      | Some o -> o.o_wait ~cond:c ~mutex:m
      | None -> no_ops "condition")
  | _ -> invalid_arg "Sync.wait: mixed real/virtual condition and mutex"

let signal = function
  | Real_cond c -> Condition.signal c
  | Virt_cond id -> (
      match !state with Some o -> o.o_signal id | None -> no_ops "condition")

let broadcast = function
  | Real_cond c -> Condition.broadcast c
  | Virt_cond id -> (
      match !state with Some o -> o.o_broadcast id | None -> no_ops "condition")

let spawn f =
  match !state with
  | None -> Real_domain (Domain.spawn f)
  | Some o -> Virt_thread (o.o_spawn f)

let join = function
  | Real_domain d -> Domain.join d
  | Virt_thread id -> (
      match !state with Some o -> o.o_join id | None -> no_ops "thread")

let self_id () =
  match !state with
  | None -> (Domain.self () :> int)
  | Some o -> o.o_self ()

let loc name =
  match !state with None -> -1 | Some o -> o.o_loc name

let read l ~site =
  match !state with None -> () | Some o -> if l >= 0 then o.o_read l ~site

let write l ~site =
  match !state with None -> () | Some o -> if l >= 0 then o.o_write l ~site
