module Trace = Altune_obs.Trace
module Metrics = Altune_obs.Metrics

type event =
  | Task_started of { index : int; label : string }
  | Task_finished of { index : int; label : string; wall_seconds : float }

(* A batch is one map call; tasks carry their batch so that a helper
   draining the queue can complete tasks of any in-flight batch.
   [enqueued_ns]/[submitter] feed the queue-wait histogram and the
   helping-scheduler steal counter.  [b_loc] names the [remaining]
   counter to the race checker (each batch is its own cell). *)
type batch = { mutable remaining : int; b_loc : Sync.loc }

type task = {
  batch : batch;
  run : unit -> unit;
  enqueued_ns : int64;
  submitter : int;  (* domain id that enqueued the task *)
}

(* Process-wide instruments (shared across pools): where task time goes. *)
let m_tasks = lazy (Metrics.counter "pool.tasks")
let m_steals = lazy (Metrics.counter "pool.steals")
let m_wait = lazy (Metrics.histogram "pool.queue_wait_seconds")
let m_run = lazy (Metrics.histogram "pool.task_seconds")

(* All synchronization and shared-access instrumentation goes through
   [Sync]: real primitives in production (byte-identical behaviour), the
   model-checking scheduler under [Altune_conc].  [q_loc]/[stop_loc]
   name the queue and the stop flag to the race checker; both are
   protected by [lock], which the checker verifies rather than trusts. *)
type t = {
  n_jobs : int;
  lock : Sync.mutex;
  work : Sync.cond;
      (* Signalled when tasks are pushed, a batch drains, or on stop. *)
  queue : task Queue.t;
  q_loc : Sync.loc;
  mutable stop : bool;
  stop_loc : Sync.loc;
  mutable domains : Sync.handle array;
  on_event : (event -> unit) option;
  event_lock : Sync.mutex;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)
let jobs t = t.n_jobs

(* Run one queued task.  Called with [t.lock] held; returns with it held.
   [task.run] never raises (map wraps it). *)
let step t task =
  Sync.unlock t.lock;
  Metrics.observe (Lazy.force m_wait)
    (Int64.to_float (Int64.sub (Trace.now_ns ()) task.enqueued_ns) /. 1e9);
  if Sync.self_id () <> task.submitter then
    Metrics.incr (Lazy.force m_steals);
  task.run ();
  Sync.lock t.lock;
  Sync.write task.batch.b_loc ~site:"pool.step: remaining decrement";
  task.batch.remaining <- task.batch.remaining - 1;
  if task.batch.remaining = 0 then Sync.broadcast t.work

let worker t =
  Sync.lock t.lock;
  let rec loop () =
    Sync.read t.stop_loc ~site:"pool.worker: stop check";
    if t.stop then Sync.unlock t.lock
    else begin
      Sync.write t.q_loc ~site:"pool.worker: queue take";
      match Queue.take_opt t.queue with
      | Some task ->
          step t task;
          loop ()
      | None ->
          Sync.wait t.work t.lock;
          loop ()
    end
  in
  loop ()

let create ?on_event ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be at least 1";
  let t =
    {
      n_jobs = jobs;
      lock = Sync.mutex ();
      work = Sync.cond ();
      queue = Queue.create ();
      q_loc = Sync.loc "pool.queue";
      stop = false;
      stop_loc = Sync.loc "pool.stop";
      domains = [||];
      on_event;
      event_lock = Sync.mutex ();
    }
  in
  t.domains <- Array.init (jobs - 1) (fun _ -> Sync.spawn (fun () -> worker t));
  t

let shutdown t =
  Sync.lock t.lock;
  Sync.write t.stop_loc ~site:"pool.shutdown: stop set";
  t.stop <- true;
  Sync.broadcast t.work;
  Sync.unlock t.lock;
  let domains = t.domains in
  t.domains <- [||];
  Array.iter Sync.join domains

let with_pool ?on_event ~jobs f =
  let t = create ?on_event ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Submit a batch and help execute until it drains.  The submitter may be
   the main domain or a worker running a task that fanned out again; either
   way it only blocks when its batch has tasks running on other domains. *)
let run_batch t thunks =
  let n = Array.length thunks in
  if n > 0 then begin
    let batch = { remaining = n; b_loc = Sync.loc "pool.batch.remaining" } in
    Sync.write batch.b_loc ~site:"pool.run_batch: batch created";
    let enqueued_ns = Trace.now_ns () in
    let submitter = Sync.self_id () in
    Sync.lock t.lock;
    Sync.write t.q_loc ~site:"pool.run_batch: enqueue";
    Array.iter
      (fun run -> Queue.add { batch; run; enqueued_ns; submitter } t.queue)
      thunks;
    Sync.broadcast t.work;
    let rec help () =
      Sync.read batch.b_loc ~site:"pool.run_batch: drain check";
      if batch.remaining > 0 then begin
        Sync.write t.q_loc ~site:"pool.run_batch: help take";
        (match Queue.take_opt t.queue with
        | Some task -> step t task
        | None -> Sync.wait t.work t.lock);
        help ()
      end
    in
    help ();
    Sync.unlock t.lock
  end

let emit t ev =
  match t.on_event with
  | None -> ()
  | Some f ->
      Sync.lock t.event_lock;
      Fun.protect ~finally:(fun () -> Sync.unlock t.event_lock) (fun () -> f ev)

let mapi ?label t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let results = Array.make n None in
  let errors = Array.make n None in
  (* One race-checker cell per result slot: slot [i] is written by
     whichever domain runs task [i] and read back by the submitter after
     the drain — distinct slots must not be conflated into one cell or
     unrelated tasks would look racy. *)
  let slot_locs =
    if Sync.virtual_mode () then
      Array.init n (fun i -> Sync.loc (Printf.sprintf "pool.mapi.slot[%d]" i))
    else Array.make n (-1)
  in
  let label i =
    match label with Some l -> l i | None -> Printf.sprintf "task %d" i
  in
  (* Tasks may execute on any domain; propagating the submitter's trace
     context keeps the span tree identical at every job count. *)
  let ctx = Trace.current () in
  let thunks =
    Array.init n (fun i () ->
        match
          let lbl = label i in
          let t0 = Unix.gettimeofday () in
          Metrics.incr (Lazy.force m_tasks);
          emit t (Task_started { index = i; label = lbl });
          let v =
            Trace.with_ctx ctx (fun () ->
                Trace.with_span ~name:"pool.task"
                  ~attrs:[ ("label", Trace.String lbl); ("index", Trace.Int i) ]
                  (fun () -> f i items.(i)))
          in
          let wall_seconds = Unix.gettimeofday () -. t0 in
          Metrics.observe (Lazy.force m_run) wall_seconds;
          emit t (Task_finished { index = i; label = lbl; wall_seconds });
          v
        with
        | v ->
            Sync.write slot_locs.(i) ~site:"pool.mapi: result store";
            results.(i) <- Some v
        | exception e ->
            (* Capture the backtrace before anything else can run: a later
               re-raise (e.g. of a nested fan-out's failure, surfaced here
               on whichever domain helped drain the inner batch) must carry
               the original raise site, not the helper's frames. *)
            let bt = Printexc.get_raw_backtrace () in
            Sync.write slot_locs.(i) ~site:"pool.mapi: error store";
            errors.(i) <- Some (e, bt))
  in
  run_batch t thunks;
  (* The batch has fully drained: re-raise the first failure by task
     index, so the surfaced error is schedule-independent too. *)
  Array.iteri
    (fun i err ->
      Sync.read slot_locs.(i) ~site:"pool.mapi: error read-back";
      match err with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  List.init n (fun i ->
      Sync.read slot_locs.(i) ~site:"pool.mapi: result read-back";
      match results.(i) with
      | Some v -> v
      | None ->
          (* Unreachable if the batch drained correctly; a descriptive
             failure beats [assert false] if that invariant ever breaks. *)
          raise
            (Failure
               (Printf.sprintf
                  "Pool.mapi: task %d (%s) finished with neither result nor \
                   error — batch accounting bug"
                  i (label i))))

let map ?label t f xs = mapi ?label t (fun _ x -> f x) xs

let map_reduce ?label t ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map ?label t f xs)
