(** Domain-safe, compute-once memo table.

    {!find_or_compute} guarantees that for any key the compute function
    runs at most once at a time and its result is shared: if a second
    domain asks for a key that is already being computed, it blocks until
    the first computation finishes instead of duplicating the (possibly
    multi-second) work.  If the computation raises, the entry is dropped
    and the exception propagates to the computing caller; a blocked waiter
    then takes over and retries the computation itself. *)

type ('k, 'v) t

val create : ?size:int -> ?name:string -> unit -> ('k, 'v) t
(** [name] (default ["memo"]) prefixes the table's
    [Altune_obs.Metrics] counters [<name>.hits], [<name>.misses] and
    [<name>.waits] (waits = callers that blocked on an in-flight
    computation instead of duplicating it). *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute t k compute] returns the cached value for [k],
    computing (and caching) it with [compute] on a miss.  [compute] runs
    outside the table lock, so unrelated keys never serialize; it must not
    recursively ask for [k] (that would deadlock by definition of
    compute-once). *)

type outcome =
  | Computed  (** this caller ran [compute]. *)
  | Hit  (** the value was already published. *)
  | Waited  (** blocked on another caller's in-flight computation. *)

val find_or_compute_outcome :
  ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v * outcome
(** {!find_or_compute} plus how the value was obtained — the sharing
    hook consumers (e.g. a multi-tenant server attributing cross-session
    cache traffic) build their accounting on.  Note the outcome is a
    property of the {e schedule} (who got there first), so deterministic
    accounting must aggregate outcomes into schedule-independent
    quantities (e.g. lookups and distinct keys), not record them
    per-caller. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Completed entries only; [None] for absent or in-flight keys. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Whether [k] has a completed entry. *)

val clear : ('k, 'v) t -> unit
(** Drops completed entries.  In-flight computations finish and publish
    normally (callers already waiting on them still get their value). *)

val length : ('k, 'v) t -> int
(** Number of completed entries. *)
