module Rng = Altune_prng.Rng

type spec = {
  crash : float;
  timeout : float;
  timeout_lost : float;
  corrupt : float;
  max_retries : int;
  backoff : float;
}

let default =
  {
    crash = 0.0;
    timeout = 0.0;
    timeout_lost = 10.0;
    corrupt = 0.0;
    max_retries = 3;
    backoff = 1.0;
  }

let of_string s =
  let ( let* ) = Result.bind in
  let parse_float key v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Result.Ok f
    | _ -> Error (Printf.sprintf "fault spec: %s: not a number: %S" key v)
  in
  let parse_prob key v =
    let* f = parse_float key v in
    if f < 0.0 || f > 1.0 then
      Error (Printf.sprintf "fault spec: %s: probability out of [0,1]: %s" key v)
    else Result.Ok f
  in
  let parse_pos key v =
    let* f = parse_float key v in
    if f < 0.0 then
      Error (Printf.sprintf "fault spec: %s: must be non-negative: %s" key v)
    else Result.Ok f
  in
  let fields =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let step acc field =
    let* spec = acc in
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "fault spec: expected key=value, got %S" field)
    | Some i -> (
        let key = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        match key with
        | "crash" ->
            let* p = parse_prob key v in
            Result.Ok { spec with crash = p }
        | "timeout" ->
            let* p = parse_prob key v in
            Result.Ok { spec with timeout = p }
        | "timeout_lost" ->
            let* f = parse_pos key v in
            Result.Ok { spec with timeout_lost = f }
        | "corrupt" ->
            let* p = parse_prob key v in
            Result.Ok { spec with corrupt = p }
        | "max_retries" -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Result.Ok { spec with max_retries = n }
            | _ ->
                Error
                  (Printf.sprintf
                     "fault spec: max_retries: not a non-negative integer: %S" v))
        | "backoff" ->
            let* f = parse_pos key v in
            Result.Ok { spec with backoff = f }
        | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
  in
  let* spec = List.fold_left step (Result.Ok default) fields in
  if spec.crash +. spec.timeout +. spec.corrupt > 1.0 then
    Error "fault spec: crash + timeout + corrupt probabilities exceed 1"
  else Result.Ok spec

let to_string spec =
  Printf.sprintf
    "crash=%g,timeout=%g,timeout_lost=%g,corrupt=%g,max_retries=%d,backoff=%g"
    spec.crash spec.timeout spec.timeout_lost spec.corrupt spec.max_retries
    spec.backoff

type t = { t_spec : spec; t_seed : int }

let create spec ~seed = { t_spec = spec; t_seed = seed }
let spec t = t.t_spec
let seed t = t.t_seed

type verdict = Ok | Crash | Timeout of float | Corrupt

let draw t ~key ~attempt =
  let s = t.t_spec in
  if s.crash = 0.0 && s.timeout = 0.0 && s.corrupt = 0.0 then Ok
  else begin
    (* One-shot generator per (key, attempt): the verdict is a pure
       function of (seed, spec, key, attempt), independent of call order
       and of every other stream in the program. *)
    let rng =
      Rng.create ~seed:(Rng.derive ~seed:t.t_seed [ S "fault"; S key; I attempt ])
    in
    let u = Rng.uniform rng in
    if u < s.crash then Crash
    else if u < s.crash +. s.timeout then Timeout s.timeout_lost
    else if u < s.crash +. s.timeout +. s.corrupt then Corrupt
    else Ok
  end

let backoff_seconds spec ~failures =
  if failures <= 0 then 0.0
  else spec.backoff *. Float.of_int (1 lsl min (failures - 1) 30)
