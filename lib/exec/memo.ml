module Metrics = Altune_obs.Metrics

type 'v state = In_progress | Ready of 'v

(* Synchronization goes through [Sync] (real primitives in production,
   the model-checking scheduler under [Altune_conc]); [tbl_loc] names
   the table to the race checker as a single cell, which is exactly the
   protocol: every touch of [tbl] must hold [lock]. *)
type ('k, 'v) t = {
  lock : Sync.mutex;
  done_cond : Sync.cond;  (* a computation published or was dropped *)
  tbl : ('k, 'v state) Hashtbl.t;
  tbl_loc : Sync.loc;
  hits : Metrics.counter;
  misses : Metrics.counter;
  waits : Metrics.counter;
}

let create ?(size = 64) ?(name = "memo") () =
  {
    lock = Sync.mutex ();
    done_cond = Sync.cond ();
    tbl = Hashtbl.create size;
    tbl_loc = Sync.loc (name ^ ".tbl");
    hits = Metrics.counter (name ^ ".hits");
    misses = Metrics.counter (name ^ ".misses");
    waits = Metrics.counter (name ^ ".waits");
  }

type outcome = Computed | Hit | Waited

let find_or_compute_outcome t k compute =
  Sync.lock t.lock;
  let rec acquire ~waited =
    Sync.read t.tbl_loc ~site:"memo.find_or_compute: lookup";
    match Hashtbl.find_opt t.tbl k with
    | Some (Ready v) ->
        Sync.unlock t.lock;
        Metrics.incr t.hits;
        (v, if waited then Waited else Hit)
    | Some In_progress ->
        if not waited then Metrics.incr t.waits;
        Sync.wait t.done_cond t.lock;
        acquire ~waited:true
    | None -> (
        Sync.write t.tbl_loc ~site:"memo.find_or_compute: claim in-progress";
        Hashtbl.replace t.tbl k In_progress;
        Sync.unlock t.lock;
        Metrics.incr t.misses;
        match compute () with
        | v ->
            Sync.lock t.lock;
            Sync.write t.tbl_loc ~site:"memo.find_or_compute: publish";
            Hashtbl.replace t.tbl k (Ready v);
            Sync.broadcast t.done_cond;
            Sync.unlock t.lock;
            (v, Computed)
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Sync.lock t.lock;
            Sync.write t.tbl_loc ~site:"memo.find_or_compute: drop failed";
            Hashtbl.remove t.tbl k;
            Sync.broadcast t.done_cond;
            Sync.unlock t.lock;
            Printexc.raise_with_backtrace e bt)
  in
  acquire ~waited:false

let find_or_compute t k compute = fst (find_or_compute_outcome t k compute)

let find_opt t k =
  Sync.lock t.lock;
  Sync.read t.tbl_loc ~site:"memo.find_opt: lookup";
  let r =
    match Hashtbl.find_opt t.tbl k with
    | Some (Ready v) -> Some v
    | Some In_progress | None -> None
  in
  Sync.unlock t.lock;
  r

let mem t k = Option.is_some (find_opt t k)

let clear t =
  Sync.lock t.lock;
  Sync.write t.tbl_loc ~site:"memo.clear";
  (* Keep in-flight markers: their computers will publish under this same
     lock and any current waiters still expect the value to appear. *)
  let in_flight =
    Hashtbl.fold
      (fun k s acc -> match s with In_progress -> k :: acc | Ready _ -> acc)
      t.tbl []
  in
  Hashtbl.reset t.tbl;
  List.iter (fun k -> Hashtbl.replace t.tbl k In_progress) in_flight;
  Sync.unlock t.lock

let length t =
  Sync.lock t.lock;
  Sync.read t.tbl_loc ~site:"memo.length";
  let n =
    Hashtbl.fold
      (fun _ s acc -> match s with Ready _ -> acc + 1 | In_progress -> acc)
      t.tbl 0
  in
  Sync.unlock t.lock;
  n
