module Metrics = Altune_obs.Metrics

type 'v state = In_progress | Ready of 'v

type ('k, 'v) t = {
  lock : Mutex.t;
  done_cond : Condition.t;  (* a computation published or was dropped *)
  tbl : ('k, 'v state) Hashtbl.t;
  hits : Metrics.counter;
  misses : Metrics.counter;
  waits : Metrics.counter;
}

let create ?(size = 64) ?(name = "memo") () =
  {
    lock = Mutex.create ();
    done_cond = Condition.create ();
    tbl = Hashtbl.create size;
    hits = Metrics.counter (name ^ ".hits");
    misses = Metrics.counter (name ^ ".misses");
    waits = Metrics.counter (name ^ ".waits");
  }

let find_or_compute t k compute =
  Mutex.lock t.lock;
  let rec acquire ~waited =
    match Hashtbl.find_opt t.tbl k with
    | Some (Ready v) ->
        Mutex.unlock t.lock;
        Metrics.incr t.hits;
        v
    | Some In_progress ->
        if not waited then Metrics.incr t.waits;
        Condition.wait t.done_cond t.lock;
        acquire ~waited:true
    | None -> (
        Hashtbl.replace t.tbl k In_progress;
        Mutex.unlock t.lock;
        Metrics.incr t.misses;
        match compute () with
        | v ->
            Mutex.lock t.lock;
            Hashtbl.replace t.tbl k (Ready v);
            Condition.broadcast t.done_cond;
            Mutex.unlock t.lock;
            v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.lock;
            Hashtbl.remove t.tbl k;
            Condition.broadcast t.done_cond;
            Mutex.unlock t.lock;
            Printexc.raise_with_backtrace e bt)
  in
  acquire ~waited:false

let find_opt t k =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl k with
    | Some (Ready v) -> Some v
    | Some In_progress | None -> None
  in
  Mutex.unlock t.lock;
  r

let mem t k = Option.is_some (find_opt t k)

let clear t =
  Mutex.lock t.lock;
  (* Keep in-flight markers: their computers will publish under this same
     lock and any current waiters still expect the value to appear. *)
  let in_flight =
    Hashtbl.fold
      (fun k s acc -> match s with In_progress -> k :: acc | Ready _ -> acc)
      t.tbl []
  in
  Hashtbl.reset t.tbl;
  List.iter (fun k -> Hashtbl.replace t.tbl k In_progress) in_flight;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n =
    Hashtbl.fold
      (fun _ s acc -> match s with Ready _ -> acc + 1 | In_progress -> acc)
      t.tbl 0
  in
  Mutex.unlock t.lock;
  n
