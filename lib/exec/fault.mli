(** Seeded, deterministic fault injection for the experiment harness.

    Real iterative-compilation campaigns lose training examples to compiler
    crashes, timed-out profiling runs, and corrupted measurements.  This
    module simulates those failure modes reproducibly: each (config, attempt)
    pair gets a one-shot generator derived from the fault seed with
    {!Altune_prng.Rng.derive}, so the verdict depends only on the seed, the
    spec, and the key — never on scheduling — and the same run produces the
    same faults at any [--jobs].

    Fault draws consume nothing from the learner's own random stream, so a
    run with no fault spec is byte-identical to one where this module does
    not exist. *)

type spec = {
  crash : float;  (** probability a compile/profile attempt crashes *)
  timeout : float;  (** probability an attempt times out *)
  timeout_lost : float;  (** simulated seconds lost to one timeout *)
  corrupt : float;  (** probability a measurement is corrupted (discarded) *)
  max_retries : int;  (** attempts beyond the first before a config is dead *)
  backoff : float;  (** base simulated backoff seconds, doubled per retry *)
}
(** Probabilities are per-attempt and drawn in order crash, then timeout,
    then corrupt (a single uniform variate partitions the three). *)

val default : spec
(** All probabilities zero, [max_retries = 3], [timeout_lost = 10.],
    [backoff = 1.]. *)

val of_string : string -> (spec, string) result
(** Parse a comma-separated [key=value] spec, e.g.
    ["crash=0.05,timeout=0.02,corrupt=0.01,max_retries=3"].  Keys:
    [crash], [timeout], [timeout_lost], [corrupt], [max_retries],
    [backoff]; omitted keys keep their {!default} value.  Probabilities
    must lie in [0, 1]. *)

val to_string : spec -> string
(** Canonical round-trippable rendering of a spec (all keys, in the order
    listed above). *)

type t
(** A fault injector: a spec plus the seed its draws derive from. *)

val create : spec -> seed:int -> t

val spec : t -> spec
val seed : t -> int

type verdict =
  | Ok  (** the attempt succeeds *)
  | Crash  (** the compile/profile attempt crashes outright *)
  | Timeout of float  (** the attempt times out, losing this many seconds *)
  | Corrupt  (** the measurement completes but its value is garbage *)

val draw : t -> key:string -> attempt:int -> verdict
(** [draw t ~key ~attempt] is the deterministic verdict for attempt number
    [attempt] (0-based) at [key] (typically the config's string key).  Uses
    a one-shot derived generator, so the result is independent of call
    order and of every other stream in the program. *)

val backoff_seconds : spec -> failures:int -> float
(** [backoff_seconds spec ~failures] is the simulated backoff charged after
    the [failures]-th consecutive failure (1-based):
    [backoff *. 2^(failures-1)]. *)
