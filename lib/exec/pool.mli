(** Deterministic fixed-size domain pool.

    A pool owns [jobs - 1] worker domains plus the submitting domain, which
    takes part in executing queued tasks while it waits for its batch — so
    [jobs = 1] spawns no domains at all and runs every task inline, and a
    task may itself call {!map} on the same pool (nested fan-out) without
    deadlocking: the inner call simply helps drain the queue.

    Determinism contract: {!map} returns results in input order regardless
    of the execution interleaving, and {!map_reduce} folds them in input
    order.  Tasks therefore see the same inputs and produce the same
    outputs at any job count {e provided} they do not share mutable state;
    derive per-task RNG seeds explicitly (e.g. with
    [Altune_prng.Rng.derive]) instead of sharing a generator.

    Failure contract: if tasks raise, every task of the batch is still
    executed (no silent loss), and the exception of the {e lowest-indexed}
    failing task is re-raised with its backtrace once the batch has
    drained.  The backtrace is captured at the original raise site, so a
    failure inside a {e nested} fan-out — where the helping scheduler may
    execute the inner task on any domain — surfaces the raising task's
    frames, not the helper's.

    Observability: every task runs inside an [Altune_obs.Trace] span named
    ["pool.task"] (with [label]/[index] attributes) parented to the
    submitter's span context, so traced span trees are identical at any
    job count.  The pool also feeds process-wide metrics: counters
    ["pool.tasks"] and ["pool.steals"] (tasks executed by a domain other
    than their submitter — the helping scheduler at work) and histograms
    ["pool.queue_wait_seconds"] and ["pool.task_seconds"]. *)

type t

type event =
  | Task_started of { index : int; label : string }
  | Task_finished of { index : int; label : string; wall_seconds : float }
      (** Progress events, delivered to the [on_event] callback of
          {!create}.  Delivery is serialized by the pool (the callback is
          never invoked concurrently with itself), but may come from any
          domain. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1. *)

val create : ?on_event:(event -> unit) -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs] must be
    at least 1.  An exception escaping [on_event] is recorded as a failure
    of the task that emitted the event. *)

val jobs : t -> int

val map : ?label:(int -> string) -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs] on the pool and
    returns the results in input order.  [label] names task [i] for
    progress events (default ["task i"]). *)

val mapi : ?label:(int -> string) -> t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val map_reduce :
  ?label:(int -> string) ->
  t ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** Parallel map, then an in-order sequential fold — the fold order is
    fixed by the input order, so the result is schedule-independent. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Must not be called while a
    {!map} is in flight. *)

val with_pool : ?on_event:(event -> unit) -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
