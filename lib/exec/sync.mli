(** Virtual synchronization shim for the execution engine.

    Every [Mutex]/[Condition]/[Domain] operation and every instrumented
    shared-memory access in [lib/exec] goes through this interface.  In
    production ({e real} mode, the default) each operation is a direct
    one-branch dispatch to the corresponding stdlib primitive — no
    semantic change, and outputs are byte-identical to calling the
    primitives directly.  Under {!with_ops} ({e virtual} mode) the
    operations are routed to a registered implementation instead —
    [Altune_conc] installs a cooperative model-checking scheduler there,
    which lets the {e same} [Pool]/[Memo]/[Fault] code run under
    controlled, explored interleavings with a vector-clock race detector
    watching the instrumented accesses.

    Access instrumentation ({!loc}, {!read}, {!write}) is free in real
    mode beyond a single global-ref load and branch: [read]/[write] are
    no-ops, and {!loc} returns a dummy.  Virtual objects must only be
    used inside the {!with_ops} scope that created them. *)

type mutex
type cond
type handle
(** A spawned worker: a real [Domain.t] or a virtual thread id. *)

type loc = int
(** Identity of one instrumented shared-memory cell (e.g. {e this}
    batch's [remaining] counter).  Real mode: the dummy [-1]. *)

(** The virtual implementation contract, installed by {!with_ops}.
    Mutexes, conditions, locs and threads are named by small ints that
    the implementation allocates. *)
type ops = {
  o_mutex : unit -> int;
  o_lock : int -> unit;
  o_unlock : int -> unit;
  o_cond : unit -> int;
  o_wait : cond:int -> mutex:int -> unit;
  o_signal : int -> unit;
  o_broadcast : int -> unit;
  o_spawn : (unit -> unit) -> int;
  o_join : int -> unit;
  o_self : unit -> int;
  o_loc : string -> int;
  o_read : loc -> site:string -> unit;
  o_write : loc -> site:string -> unit;
}

val with_ops : ops -> (unit -> 'a) -> 'a
(** [with_ops ops f] runs [f] in virtual mode: objects created by [f]
    are virtual and their operations are routed through [ops].  Restores
    real mode afterwards (also on exceptions).  Not reentrant and not
    for concurrent use with real pools: the model checker owns the
    process while it runs (tests and [altune concheck] only). *)

val virtual_mode : unit -> bool

val mutex : unit -> mutex
val lock : mutex -> unit
val unlock : mutex -> unit

val cond : unit -> cond
val wait : cond -> mutex -> unit
val signal : cond -> unit
val broadcast : cond -> unit

val spawn : (unit -> unit) -> handle
val join : handle -> unit

val self_id : unit -> int
(** Real mode: [(Domain.self () :> int)]; virtual: the thread id. *)

val loc : string -> loc
(** [loc name] registers one shared cell for race checking; [name]
    identifies it in race reports ("pool.batch.remaining", ...). *)

val read : loc -> site:string -> unit
(** Note a read of an instrumented cell; [site] is the source location
    reported if this access races.  No-op in real mode. *)

val write : loc -> site:string -> unit
