(* Integer-only folding: float literals are left untouched except for
   exact identities, so evaluation order and rounding never change. *)

let rec expr (e : Ast.expr) : Ast.expr =
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> e
  | Index (a, subs) -> Index (a, List.map expr subs)
  | Neg a -> (
      match expr a with
      | Int_lit n -> Int_lit (-n)
      | Neg inner -> inner
      | a' -> Neg a')
  | Sqrt a -> Sqrt (expr a)
  | Binop (op, a, b) -> binop op (expr a) (expr b)

and binop op (a : Ast.expr) (b : Ast.expr) : Ast.expr =
  match (op, a, b) with
  (* Constant folding on integers. *)
  | Ast.Add, Int_lit x, Int_lit y -> Int_lit (x + y)
  | Sub, Int_lit x, Int_lit y -> Int_lit (x - y)
  | Mul, Int_lit x, Int_lit y -> Int_lit (x * y)
  | Idiv, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x / y)
  | Mod, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x mod y)
  | Min, Int_lit x, Int_lit y -> Int_lit (min x y)
  | Max, Int_lit x, Int_lit y -> Int_lit (max x y)
  (* Additive and multiplicative identities. *)
  | Add, Int_lit 0, e | Add, e, Int_lit 0 -> e
  | Sub, e, Int_lit 0 -> e
  | Mul, Int_lit 1, e | Mul, e, Int_lit 1 -> e
  | Mul, (Int_lit 0 as z), _ | Mul, _, (Int_lit 0 as z) -> z
  | Idiv, e, Int_lit 1 -> e
  (* x - x and min/max of equal subtrees. *)
  | Sub, x, y when x = y -> Int_lit 0
  | (Min | Max), x, y when x = y -> x
  (* Reassociate (e + c1) + c2 -> e + (c1+c2), also for Sub tails. *)
  | Add, Binop (Add, e, Int_lit c1), Int_lit c2 ->
      binop Add e (Int_lit (c1 + c2))
  | Add, Binop (Sub, e, Int_lit c1), Int_lit c2 ->
      binop Sub e (Int_lit (c1 - c2))
  | Sub, Binop (Add, e, Int_lit c1), Int_lit c2 ->
      binop Add e (Int_lit (c1 - c2))
  | Sub, Binop (Sub, e, Int_lit c1), Int_lit c2 ->
      binop Sub e (Int_lit (c1 + c2))
  | _ -> Binop (op, a, b)

let literal_value (e : Ast.expr) =
  match e with
  | Int_lit n -> Some (float_of_int n)
  | Float_lit x -> Some x
  | Var _ | Index _ | Binop _ | Neg _ | Sqrt _ -> None

let rec cond_value (c : Ast.cond) : bool option =
  match c with
  | Cmp (op, a, b) -> (
      match (literal_value (expr a), literal_value (expr b)) with
      | Some x, Some y ->
          Some
            (match op with
            | Eq -> x = y
            | Ne -> x <> y
            | Lt -> x < y
            | Le -> x <= y
            | Gt -> x > y
            | Ge -> x >= y)
      | _ -> None)
  | And (a, b) -> (
      match (cond_value a, cond_value b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Or (a, b) -> (
      match (cond_value a, cond_value b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | Not a -> Option.map not (cond_value a)

let rec cond (c : Ast.cond) : Ast.cond option =
  match cond_value c with
  | Some _ -> None
  | None -> (
      match c with
      | Cmp (op, a, b) -> Some (Cmp (op, expr a, expr b))
      | And (a, b) -> (
          match (cond a, cond b) with
          | Some a', Some b' -> Some (And (a', b'))
          | None, rest | rest, None -> (
              (* One side folded: if true, the other side remains; if
                 false, cond_value above would have caught it. *)
              match rest with Some r -> Some r | None -> None))
      | Or (a, b) -> (
          match (cond a, cond b) with
          | Some a', Some b' -> Some (Or (a', b'))
          | None, rest | rest, None -> (
              match rest with Some r -> Some r | None -> None))
      | Not a -> Option.map (fun a' -> Ast.Not a') (cond a))

let rec stmt (s : Ast.stmt) : Ast.stmt =
  match s with
  | Assign (Scalar_lhs x, e) -> Assign (Scalar_lhs x, expr e)
  | Assign (Array_lhs (a, subs), e) ->
      Assign (Array_lhs (a, List.map expr subs), expr e)
  | Seq ss -> Ast.seq (List.map stmt ss)
  | For l -> (
      let lo = expr l.lo and hi = expr l.hi in
      match (lo, hi) with
      | Int_lit a, Int_lit b when a > b -> Ast.seq []
      | Int_lit a, Int_lit b when a = b ->
          (* Single iteration: substitute and drop the loop. *)
          stmt (Ast.subst ~var:l.index ~by:(Int_lit a) l.body)
      | _ -> For { l with lo; hi; body = stmt l.body })
  | If (c, t, e) -> (
      match cond_value c with
      | Some true -> stmt t
      | Some false -> (
          match e with Some e -> stmt e | None -> Ast.seq [])
      | None -> (
          let t' = stmt t and e' = Option.map stmt e in
          match cond c with
          | Some c' -> If (c', t', e')
          | None ->
              invalid_arg
                (Format.asprintf
                   "Simplify.stmt: condition %a folded to a constant even \
                    though cond_value could not evaluate it; cond and \
                    cond_value disagree"
                   Pretty.pp_cond c)))

let kernel (k : Ast.kernel) =
  {
    k with
    body = stmt k.body;
    arrays =
      List.map
        (fun (d : Ast.array_decl) -> { d with dims = List.map expr d.dims })
        k.arrays;
  }
