type severity = Error | Warning | Info

type loc = { loops : string list; stmt : int; detail : string }

type diagnostic = {
  severity : severity;
  code : string;
  loc : loc;
  message : string;
}

let pp_severity ppf s =
  Format.pp_print_string ppf
    (match s with Error -> "error" | Warning -> "warning" | Info -> "note")

let pp_loc ppf l =
  (match (l.stmt, l.loops) with
  | 0, _ -> Format.pp_print_string ppf "declarations"
  | n, [] -> Format.fprintf ppf "statement %d" n
  | n, loops ->
      Format.fprintf ppf "statement %d in loop %s" n
        (String.concat " > " loops));
  if l.detail <> "" then Format.fprintf ppf ", at %s" l.detail

let pp_diagnostic ppf d =
  Format.fprintf ppf "%a[%s] %a: %s" pp_severity d.severity d.code pp_loc
    d.loc d.message

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d

let errors = List.filter (fun d -> d.severity = Error)
let count s = List.fold_left (fun n d -> if d.severity = s then n + 1 else n) 0

(* --- Interval arithmetic over index expressions ---

   Sound over-approximation of the value range of an integer expression
   given ranges for the loop indices (and point ranges for parameters).
   A step > 1 widens the index range to every value between the bounds,
   which stays sound.  [None] = no usable bound. *)

type interval = { ilo : int; ihi : int }

let point n = { ilo = n; ihi = n }

let rec eval_iv env (e : Ast.expr) : interval option =
  match e with
  | Int_lit n -> Some (point n)
  | Var x -> Hashtbl.find_opt env x
  | Neg a ->
      Option.map (fun i -> { ilo = -i.ihi; ihi = -i.ilo }) (eval_iv env a)
  | Binop (op, a, b) -> (
      match (eval_iv env a, eval_iv env b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some { ilo = x.ilo + y.ilo; ihi = x.ihi + y.ihi }
          | Sub -> Some { ilo = x.ilo - y.ihi; ihi = x.ihi - y.ilo }
          | Mul ->
              let products =
                [ x.ilo * y.ilo; x.ilo * y.ihi; x.ihi * y.ilo; x.ihi * y.ihi ]
              in
              Some
                {
                  ilo = List.fold_left min max_int products;
                  ihi = List.fold_left max min_int products;
                }
          | Min -> Some { ilo = min x.ilo y.ilo; ihi = min x.ihi y.ihi }
          | Max -> Some { ilo = max x.ilo y.ilo; ihi = max x.ihi y.ihi }
          | Idiv ->
              (* OCaml's truncated division is monotone in the numerator
                 for a positive constant divisor. *)
              if y.ilo = y.ihi && y.ilo > 0 then
                Some { ilo = x.ilo / y.ilo; ihi = x.ihi / y.ilo }
              else None
          | Mod ->
              if y.ilo = y.ihi && y.ilo > 0 then
                let m = y.ilo - 1 in
                if x.ilo >= 0 then Some { ilo = 0; ihi = m }
                else Some { ilo = -m; ihi = m }
              else None
          | Div -> None)
      | _ -> None)
  | Float_lit _ | Index _ | Sqrt _ -> None

let expr_snippet e = Format.asprintf "%a" Pretty.pp_expr e

let rec dup_of = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else dup_of rest

let lint ?(param_overrides = []) (k : Ast.kernel) =
  let diags = ref [] in
  let emit severity code ?(loops = []) ?(stmt = 0) ?(detail = "") fmt =
    Format.kasprintf
      (fun message ->
        diags := { severity; code; loc = { loops; stmt; detail }; message }
                 :: !diags)
      fmt
  in
  let is_param x = List.mem_assoc x k.params in
  let is_scalar x = List.mem x k.scalars in

  (* Declaration-level checks. *)
  (match dup_of (List.map fst k.params) with
  | Some x ->
      emit Error "duplicate-declaration" ~detail:x
        "parameter %s is declared more than once" x
  | None -> ());
  (match dup_of k.scalars with
  | Some x ->
      emit Error "duplicate-declaration" ~detail:x
        "scalar %s is declared more than once" x
  | None -> ());
  (match dup_of (List.map (fun (d : Ast.array_decl) -> d.array_name) k.arrays)
   with
  | Some a ->
      emit Error "duplicate-declaration" ~detail:a
        "array %s is declared more than once" a
  | None -> ());
  List.iter
    (fun s ->
      if is_param s then
        emit Warning "scalar-shadows-param" ~detail:s
          "scalar %s has the same name as a parameter; the parameter wins \
           on lookup, making the scalar unreachable"
          s)
    k.scalars;

  (* Parameter environment (point intervals), with overrides applied. *)
  let ivals : (string, interval) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (name, v) -> Hashtbl.replace ivals name (point v)) k.params;
  List.iter
    (fun (name, v) ->
      if is_param name then Hashtbl.replace ivals name (point v)
      else
        emit Warning "unknown-parameter-override" ~detail:name
          "override for %s does not match any declared parameter" name)
    param_overrides;
  let subst_params e =
    List.fold_left
      (fun e (name, _) ->
        match Hashtbl.find_opt ivals name with
        | Some { ilo; ihi } when ilo = ihi ->
            Ast.subst_expr ~var:name ~by:(Int_lit ilo) e
        | _ -> e)
      e k.params
  in

  (* Array ranks and concrete per-dimension extents (when computable). *)
  let rank : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let extents : (string, int option array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.array_decl) ->
      Hashtbl.replace rank d.array_name (List.length d.dims);
      let exts =
        Array.of_list
          (List.mapi
             (fun i dim ->
               List.iter
                 (fun x ->
                   if not (is_param x) then
                     emit Error "unbound-variable" ~detail:(expr_snippet dim)
                       "dimension %d of array %s references %s, which is \
                        not a parameter (loop indices and scalars are not \
                        in scope for extents)"
                       i d.array_name x)
                 (Ast.free_vars dim);
               match eval_iv ivals dim with
               | Some { ilo; ihi } when ilo = ihi ->
                   if ilo <= 0 then
                     emit Error "nonpositive-extent"
                       ~detail:(expr_snippet dim)
                       "dimension %d of array %s evaluates to %d under the \
                        current parameters; extents must be positive"
                       i d.array_name ilo;
                   Some ilo
               | _ -> None)
             d.dims)
      in
      Hashtbl.replace extents d.array_name exts)
    k.arrays;

  let arrays_read : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let arrays_written : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let seen_indices : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let stmt_counter = ref 0 in
  (* False while walking the body of a loop that may execute zero times
     under the current parameters (e.g. the main loop of an unroll whose
     factor exceeds the trip count).  A definitely-out-of-range subscript
     there is dead code, not a definite error. *)
  let live = ref true in

  (* Scope + integer-typedness of an expression in index position
     (subscript or loop bound): only integer literals, loop indices,
     parameters, and integer arithmetic are allowed there — anything
     float-valued would make the interpreter's [as_int] fail at runtime. *)
  let rec check_index_expr ~bound ~loops ~stmt ~code e0 =
    let detail = expr_snippet e0 in
    let rec go (e : Ast.expr) =
      match e with
      | Int_lit _ -> ()
      | Float_lit x ->
          emit Error code ~loops ~stmt ~detail
            "float literal %g in an integer index position" x
      | Var x ->
          if List.mem x bound || is_param x then ()
          else if is_scalar x then
            emit Error code ~loops ~stmt ~detail
              "scalar %s is float-valued and cannot be used in an integer \
               index position"
              x
          else
            emit Error "unbound-variable" ~loops ~stmt ~detail
              "variable %s is not an enclosing loop index, parameter, or \
               scalar"
              x
      | Index (a, subs) ->
          emit Error code ~loops ~stmt ~detail
            "array element %s[...] is float-valued and cannot be used in \
             an integer index position"
            a;
          check_access ~is_write:false ~bound ~loops ~stmt a subs
      | Binop (Div, a, b) ->
          emit Error code ~loops ~stmt ~detail
            "float division in an integer index position (use integer \
             division)";
          go a;
          go b
      | Sqrt a ->
          emit Error code ~loops ~stmt ~detail
            "sqrt in an integer index position";
          go a
      | Binop (_, a, b) ->
          go a;
          go b
      | Neg a -> go a
    in
    go e0

  and check_access ~is_write ~bound ~loops ~stmt a subs =
    if is_write then Hashtbl.replace arrays_written a ()
    else Hashtbl.replace arrays_read a ();
    let detail = expr_snippet (Index (a, subs)) in
    (match Hashtbl.find_opt rank a with
    | None ->
        emit Error "unknown-array" ~loops ~stmt ~detail
          "array %s is not declared" a
    | Some r ->
        if r <> List.length subs then
          emit Error "rank-mismatch" ~loops ~stmt ~detail
            "array %s is declared with rank %d but used with rank %d" a r
            (List.length subs));
    List.iteri
      (fun d sub ->
        check_index_expr ~bound ~loops ~stmt ~code:"non-integer-subscript"
          sub;
        match Hashtbl.find_opt extents a with
        | None -> ()
        | Some exts when d >= Array.length exts -> ()
        | Some exts -> (
            match exts.(d) with
            | None -> ()
            | Some ext -> (
                match eval_iv ivals sub with
                | None -> ()
                | Some { ilo; ihi } ->
                    if ihi < 0 || ilo >= ext then begin
                      if !live then
                        emit Error "out-of-bounds" ~loops ~stmt ~detail
                          "subscript %s in dimension %d of %s always lies \
                           outside [0, %d): its value range is [%d, %d]"
                          (expr_snippet sub) d a ext ilo ihi
                      else
                        emit Warning "may-out-of-bounds" ~loops ~stmt ~detail
                          "subscript %s in dimension %d of %s lies outside \
                           [0, %d) (value range [%d, %d]), but an enclosing \
                           loop may execute zero times"
                          (expr_snippet sub) d a ext ilo ihi
                    end
                    else if ilo < 0 || ihi >= ext then
                      emit Warning "may-out-of-bounds" ~loops ~stmt ~detail
                        "subscript %s in dimension %d of %s may leave \
                         [0, %d): its value range is [%d, %d]"
                        (expr_snippet sub) d a ext ilo ihi)))
      subs;
    (* Affine classification against the enclosing loop indices. *)
    let non_affine =
      List.filteri
        (fun _ sub ->
          Dependence.affine_view ~loop_indices:bound (subst_params sub)
          = None)
        subs
    in
    match non_affine with
    | [] -> ()
    | sub :: _ ->
        emit Info "non-affine-access" ~loops ~stmt ~detail
          "subscript %s is not affine in the enclosing loop indices; the \
           machine model treats this access as a worst-case gather"
          (expr_snippet sub)
  in

  let rec check_value_expr ~bound ~loops ~stmt (e : Ast.expr) =
    match e with
    | Int_lit _ | Float_lit _ -> ()
    | Var x ->
        if not (List.mem x bound || is_param x || is_scalar x) then
          emit Error "unbound-variable" ~loops ~stmt ~detail:x
            "variable %s is not an enclosing loop index, parameter, or \
             scalar"
            x
    | Index (a, subs) -> check_access ~is_write:false ~bound ~loops ~stmt a subs
    | Binop (_, a, b) ->
        check_value_expr ~bound ~loops ~stmt a;
        check_value_expr ~bound ~loops ~stmt b
    | Neg a | Sqrt a -> check_value_expr ~bound ~loops ~stmt a
  in
  let rec check_cond ~bound ~loops ~stmt (c : Ast.cond) =
    match c with
    | Cmp (_, a, b) ->
        check_value_expr ~bound ~loops ~stmt a;
        check_value_expr ~bound ~loops ~stmt b
    | And (a, b) | Or (a, b) ->
        check_cond ~bound ~loops ~stmt a;
        check_cond ~bound ~loops ~stmt b
    | Not a -> check_cond ~bound ~loops ~stmt a
  in

  let rec walk ~bound ~loops (s : Ast.stmt) =
    match s with
    | Assign (lhs, rhs) ->
        incr stmt_counter;
        let stmt = !stmt_counter in
        (match lhs with
        | Scalar_lhs x ->
            if List.mem x bound then
              emit Error "assign-to-index" ~loops ~stmt ~detail:x
                "assignment to loop index %s" x
            else if is_param x then
              emit Error "assign-to-param" ~loops ~stmt ~detail:x
                "assignment to problem-size parameter %s" x
            else if not (is_scalar x) then
              emit Error "unbound-variable" ~loops ~stmt ~detail:x
                "assignment to undeclared scalar %s" x
        | Array_lhs (a, subs) ->
            check_access ~is_write:true ~bound ~loops ~stmt a subs);
        check_value_expr ~bound ~loops ~stmt rhs
    | Seq ss -> List.iter (walk ~bound ~loops) ss
    | If (c, t, e) ->
        incr stmt_counter;
        check_cond ~bound ~loops ~stmt:!stmt_counter c;
        walk ~bound ~loops t;
        Option.iter (walk ~bound ~loops) e
    | For l ->
        incr stmt_counter;
        let stmt = !stmt_counter in
        let detail = l.index in
        if l.step <= 0 then
          emit Error "nonpositive-step" ~loops ~stmt ~detail
            "loop %s has step %d; steps must be positive" l.index l.step;
        if List.mem l.index bound then
          emit Error "duplicate-loop-index" ~loops ~stmt ~detail
            "loop index %s rebinds an enclosing loop's index" l.index
        else if Hashtbl.mem seen_indices l.index then
          emit Error "duplicate-loop-index" ~loops ~stmt ~detail
            "loop index %s is reused by another loop in this kernel"
            l.index;
        Hashtbl.replace seen_indices l.index ();
        if is_param l.index then
          emit Warning "index-shadows-param" ~loops ~stmt ~detail
            "loop index %s shadows a parameter of the same name" l.index;
        if is_scalar l.index then
          emit Warning "index-shadows-scalar" ~loops ~stmt ~detail
            "loop index %s shadows a scalar of the same name" l.index;
        check_index_expr ~bound ~loops ~stmt ~code:"non-integer-bound" l.lo;
        check_index_expr ~bound ~loops ~stmt ~code:"non-integer-bound" l.hi;
        let lo_iv = eval_iv ivals l.lo and hi_iv = eval_iv ivals l.hi in
        let definitely_empty =
          match (lo_iv, hi_iv) with
          | Some lo, Some hi -> hi.ihi < lo.ilo
          | _ -> false
        in
        let definitely_nonempty =
          match (lo_iv, hi_iv) with
          | Some lo, Some hi -> hi.ilo >= lo.ihi
          | _ -> false
        in
        if definitely_empty then
          emit Warning "empty-loop" ~loops ~stmt ~detail
            "loop %s never executes under the current parameters (bounds \
             %s .. %s)"
            l.index (expr_snippet l.lo) (expr_snippet l.hi);
        let index_iv =
          match (lo_iv, hi_iv) with
          | Some lo, Some hi when not definitely_empty ->
              Some { ilo = lo.ilo; ihi = hi.ihi }
          | _ -> None
        in
        let saved = Hashtbl.find_opt ivals l.index in
        (match index_iv with
        | Some iv -> Hashtbl.replace ivals l.index iv
        | None -> Hashtbl.remove ivals l.index);
        let saved_live = !live in
        live := saved_live && definitely_nonempty;
        walk ~bound:(l.index :: bound) ~loops:(loops @ [ l.index ]) l.body;
        live := saved_live;
        (match saved with
        | Some iv -> Hashtbl.replace ivals l.index iv
        | None -> Hashtbl.remove ivals l.index)
  in
  walk ~bound:[] ~loops:[] k.body;

  (* Whole-kernel dataflow notes. *)
  List.iter
    (fun (d : Ast.array_decl) ->
      let a = d.array_name in
      match (Hashtbl.mem arrays_read a, Hashtbl.mem arrays_written a) with
      | true, true -> ()
      | true, false ->
          emit Info "read-never-written" ~detail:a
            "array %s is read but never written (kernel input)" a
      | false, true ->
          emit Info "write-never-read" ~detail:a
            "array %s is written but never read (kernel output)" a
      | false, false ->
          emit Warning "unused-array" ~detail:a
            "array %s is declared but never accessed" a)
    k.arrays;
  List.rev !diags

let check ?param_overrides k =
  let diags = lint ?param_overrides k in
  if errors diags = [] then Ok () else Error diags
