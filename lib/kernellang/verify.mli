(** Transformation-soundness checker: an independent audit of what
    {!Transform} emits.

    The optimization search trusts {!Transform} to produce kernels that
    are (a) well-formed and (b) semantically equal to the original — a
    silent violation corrupts every runtime the machine model derives
    from the transformed nest, and no downstream test would notice.  This
    module re-establishes both properties from scratch for a given
    sequence of transformation {!step}s:

    - {b legality} is re-derived from {!Dependence} on the pre-step
      kernel, separately from the gating inside {!Transform} (unroll and
      skew are unconditionally legal; tiling requires the tiled loops to
      be pairwise interchangeable; unroll-and-jam, reversal, fusion and
      distribution use their dedicated dependence predicates);
    - the post-step kernel must {b lint} clean ({!Ast.validate} plus
      {!Lint} with no errors);
    - {b dependence analysis re-runs} on the transformed AST and every
      direction vector must remain lexicographically non-negative;
    - {b iteration-count preservation}: the per-array load and store
      counts of an interpreter run must be identical before and after
      (these transformations reorder iterations, they never add or drop
      statement instances);
    - {b differential execution}: original and transformed kernels run on
      identical pseudo-random inputs at small problem sizes and every
      array and scalar must match within a relative tolerance.

    Verdicts are structured (per step, per check, with a failure message)
    rather than a boolean, so an [altune check] audit or a fuzzing
    counterexample pinpoints which transformation broke which property. *)

type step =
  | Unroll of { index : string; factor : int }
  | Tile_nest of (string * int) list
      (** Loops of one rectangular tile nest, outermost first, with their
          tile sizes (1 = untouched), as {!Transform.tile_nest}. *)
  | Unroll_and_jam of { index : string; factor : int }
  | Skew of { outer : string; inner : string; factor : int }
  | Reverse of { index : string }
  | Fuse of { first : string; second : string }
  | Distribute of { index : string }

val step_to_string : step -> string

val apply_step : step -> Ast.kernel -> (Ast.kernel, Transform.error) result

val apply_steps :
  step list -> Ast.kernel -> (Ast.kernel, Transform.error) result
(** Left-to-right application, stopping at the first refusal. *)

val normalize_steps : step list -> step list
(** Drop the steps {!Transform} treats as exact no-ops (unroll and
    unroll-and-jam at factor 1; tile-nest entries with tile <= 1, the
    whole step when nothing remains), so that recipes differing only in
    identity steps share one canonical form.  Applying the normalized
    list yields a byte-identical kernel to applying the original,
    provided every dropped step names an existing loop (recipe
    generators guarantee this; the fork audit re-checks it
    differentially). *)

val step_key : step -> string
(** Canonical injective key for a step — equal keys iff equal steps.
    The transformation-prefix trie uses these as edge labels. *)

type status = Pass | Fail of string | Skipped of string

type check = { check_name : string; status : status }

type step_report = { step : string; checks : check list }

type verdict = { subject : string; reports : step_report list }

val ok : verdict -> bool
(** No check anywhere failed (skips do not fail a verdict). *)

val failures : verdict -> (string * check) list
(** Failed checks with their step labels, in order. *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string

val legality : Ast.kernel -> step -> status
(** Dependence-derived legality of applying [step] to the kernel,
    computed without consulting {!Transform}. *)

val legality_in : Dependence.summary -> Ast.kernel -> step -> status
(** {!legality} against a precomputed dependence summary of the same
    kernel: callers holding a cached summary (the fork trie) skip the
    per-query re-analysis.  Fusion and distribution still consult the
    kernel directly — their predicates are regional, not summary-based. *)

val well_formed : ?param_overrides:(string * int) list -> Ast.kernel -> status
(** {!Ast.validate} plus {!Lint} with no errors — the "well-formed" check
    of {!run} and {!check_pair}. *)

val dependences_sound : Ast.kernel -> status
(** Re-run the dependence analysis and require every direction vector to
    be lexicographically non-negative (the analysis' normalization
    invariant) — the "dependences" check of {!run} and {!check_pair}. *)

val summary_sound : Dependence.summary -> status
(** {!dependences_sound} against a precomputed summary. *)

val check_pair :
  ?param_overrides:(string * int) list ->
  ?tolerance:float ->
  original:Ast.kernel ->
  transformed:Ast.kernel ->
  unit ->
  check list
(** The post-state checks alone (lint, dependence re-analysis, access
    counts, differential execution) for an original/transformed pair,
    without knowledge of which steps produced it — the cheap whole-recipe
    variant the [~verify] problem gate uses. *)

val run :
  ?param_overrides:(string * int) list ->
  ?tolerance:float ->
  ?subject:string ->
  Ast.kernel ->
  step list ->
  verdict
(** Audit a transformation sequence step by step: each step is checked
    for legality, applied, and its output checked against the pre-step
    kernel with {!check_pair}.  A step that {!Transform} refuses is
    recorded as a failed "applies" check and the remaining steps are
    skipped.  [param_overrides] selects small problem sizes for the
    interpreter-based checks (differential execution at default sizes is
    usually prohibitively slow). *)

val default_array_init : string -> int -> float
(** The deterministic pseudo-random input filler used for differential
    runs: a hash of (array name, flat offset) mapped into [0.5, 1.5), so
    no element is zero (kernels divide by array elements) and any two
    runs see identical inputs. *)
