(** Static well-formedness verifier for kernels.

    {!Ast.validate} answers the minimal structural question ("can this
    kernel be interpreted at all?"); the linter goes further and checks
    the properties the data-generation pipeline silently relies on:

    - scoping: every variable bound, no duplicate loop indices or
      declarations, no assignment to a loop index or parameter, no
      shadowing of parameters/scalars by loop indices;
    - types and shapes: subscripts, loop bounds, and array extents must be
      integer-valued (no float literals, float division, square roots,
      array elements, or float scalars in index positions), arrays used at
      their declared rank;
    - loop-bound sanity: positive steps, detection of loops whose constant
      bounds make them empty;
    - bounds: interval analysis of every subscript against the declared
      extents under the (possibly overridden) problem-size parameters —
      accesses that are definitely out of bounds are errors, accesses that
      may go out of bounds are warnings;
    - dataflow: arrays that are read but never written (kernel inputs) and
      written but never read (kernel outputs) are reported as notes,
      declared-but-unused arrays as warnings;
    - affine classification: every array access whose subscripts are not
      affine in the enclosing loop indices is reported as a note (the
      machine model treats such accesses as worst-case gathers).

    Diagnostics are structured values carrying a location (the chain of
    enclosing loops plus the statement's textual ordinal) and a snippet of
    the offending expression, so a failed check in a 10k-configuration
    audit pinpoints the exact access. *)

type severity = Error | Warning | Info

type loc = {
  loops : string list;  (** Enclosing loop indices, outermost first. *)
  stmt : int;
      (** Textual ordinal of the enclosing assignment/loop/branch
          statement, counted from 1; 0 for declaration-level
          diagnostics. *)
  detail : string;  (** Pretty-printed snippet of the offending term. *)
}

type diagnostic = {
  severity : severity;
  code : string;
      (** Stable kebab-case identifier of the check, e.g.
          ["out-of-bounds"], ["non-affine-access"]. *)
  loc : loc;
  message : string;
}

val pp_severity : Format.formatter -> severity -> unit
val pp_loc : Format.formatter -> loc -> unit
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string

val lint :
  ?param_overrides:(string * int) list -> Ast.kernel -> diagnostic list
(** All diagnostics for the kernel, in textual order.  Bounds are checked
    under the kernel's default parameter values overridden by
    [param_overrides]. *)

val errors : diagnostic list -> diagnostic list
(** The [Error]-severity subset. *)

val count : severity -> diagnostic list -> int

val check :
  ?param_overrides:(string * int) list ->
  Ast.kernel ->
  (unit, diagnostic list) result
(** [Ok ()] when the kernel lints without errors; [Error all_diagnostics]
    otherwise (warnings and notes included for context). *)
