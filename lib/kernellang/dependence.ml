type direction = Lt | Eq | Gt | Star
type kind = Flow | Anti | Output

type dependence = {
  kind : kind;
  array : string;
  directions : (string * direction) list;
}

let direction_string = function
  | Lt -> "<"
  | Eq -> "="
  | Gt -> ">"
  | Star -> "*"

let kind_string = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

let pp_dependence ppf d =
  Format.fprintf ppf "%s dependence on %s (%s)" (kind_string d.kind) d.array
    (String.concat ", "
       (List.map
          (fun (l, dir) -> l ^ ":" ^ direction_string dir)
          d.directions))

(* --- Access collection --- *)

type access = {
  array : string;
  is_write : bool;
  subscripts : Ast.expr list;
  loops : string list;  (* enclosing loop indices, outermost first *)
  site : int;  (* textual order of the statement *)
}

let collect_stmt ~loops:loops0 (stmt0 : Ast.stmt) =
  let counter = ref 0 in
  let accesses = ref [] in
  let scalars_written = ref [] in
  let rec exprs_reads loops e =
    match (e : Ast.expr) with
    | Int_lit _ | Float_lit _ | Var _ -> ()
    | Index (a, subs) ->
        accesses :=
          { array = a; is_write = false; subscripts = subs; loops;
            site = !counter }
          :: !accesses;
        List.iter (exprs_reads loops) subs
    | Binop (_, x, y) ->
        exprs_reads loops x;
        exprs_reads loops y
    | Neg x | Sqrt x -> exprs_reads loops x
  in
  let rec cond_reads loops c =
    match (c : Ast.cond) with
    | Cmp (_, a, b) ->
        exprs_reads loops a;
        exprs_reads loops b
    | And (a, b) | Or (a, b) ->
        cond_reads loops a;
        cond_reads loops b
    | Not a -> cond_reads loops a
  in
  let rec go loops (s : Ast.stmt) =
    match s with
    | Assign (lhs, rhs) ->
        incr counter;
        (match lhs with
        | Scalar_lhs x ->
            if not (List.mem x !scalars_written) then
              scalars_written := x :: !scalars_written
        | Array_lhs (a, subs) ->
            accesses :=
              { array = a; is_write = true; subscripts = subs; loops;
                site = !counter }
              :: !accesses;
            List.iter (exprs_reads loops) subs);
        exprs_reads loops rhs
    | Seq ss -> List.iter (go loops) ss
    | For l -> go (loops @ [ l.index ]) l.body
    | If (c, t, e) ->
        cond_reads loops c;
        go loops t;
        Option.iter (go loops) e
  in
  go loops0 stmt0;
  (List.rev !accesses, !scalars_written)

let collect_accesses (k : Ast.kernel) = collect_stmt ~loops:[] k.body

(* --- Affine subscript views --- *)

(* A subscript as [coeffs . indices + constant]; [None] when not affine in
   the loop indices (with parameters treated as opaque but constant, which
   keeps e.g. [i * N] non-affine only if [N] is itself an index). *)
type affine = { coeffs : (string * int) list; constant : int }

let rec affine_of ~loop_indices (e : Ast.expr) : affine option =
  match e with
  | Int_lit n -> Some { coeffs = []; constant = n }
  | Var x ->
      if List.mem x loop_indices then
        Some { coeffs = [ (x, 1) ]; constant = 0 }
      else None (* parameter or scalar: opaque *)
  | Neg a ->
      Option.map
        (fun { coeffs; constant } ->
          {
            coeffs = List.map (fun (v, c) -> (v, -c)) coeffs;
            constant = -constant;
          })
        (affine_of ~loop_indices a)
  | Binop (Add, a, b) -> combine ~loop_indices a b ( + )
  | Binop (Sub, a, b) -> combine ~loop_indices a b ( - )
  | Binop (Mul, Int_lit n, b) -> scale ~loop_indices n b
  | Binop (Mul, a, Int_lit n) -> scale ~loop_indices n a
  | Binop ((Mul | Div | Idiv | Mod | Min | Max), _, _)
  | Index _ | Float_lit _ | Sqrt _ ->
      None

and combine ~loop_indices a b op =
  match (affine_of ~loop_indices a, affine_of ~loop_indices b) with
  | Some x, Some y ->
      let merged =
        List.fold_left
          (fun acc (v, c) ->
            match List.assoc_opt v acc with
            | Some c0 -> (v, op c0 c) :: List.remove_assoc v acc
            | None -> (v, op 0 c) :: acc)
          x.coeffs y.coeffs
      in
      Some
        {
          coeffs = List.filter (fun (_, c) -> c <> 0) merged;
          constant = op x.constant y.constant;
        }
  | _ -> None

and scale ~loop_indices n e =
  Option.map
    (fun { coeffs; constant } ->
      {
        coeffs = List.map (fun (v, c) -> (v, n * c)) coeffs;
        constant = n * constant;
      })
    (affine_of ~loop_indices e)

let affine_view ~loop_indices e =
  Option.map
    (fun { coeffs; constant } -> (coeffs, constant))
    (affine_of ~loop_indices e)

(* --- Per-dimension dependence tests --- *)

(* What one subscript pair tells us.  [Exact (coeffs, delta)] is a linear
   constraint over iteration-distance variables: sum_v c_v * d_v = delta
   (the equal-coefficient case, which covers ZIV, strong SIV, and the
   delta-test MIV that loop skewing produces).  [Vague vars] carries no
   usable relation for those variables. *)
type dim_info =
  | Independent
  | Unknown
  | Exact of (string * int) list * int
  | Vague of string list

let test_dimension ~loop_indices s1 s2 =
  match (affine_of ~loop_indices s1, affine_of ~loop_indices s2) with
  | None, _ | _, None -> Unknown
  | Some a1, Some a2 ->
      let vars =
        List.sort_uniq compare
          (List.map fst a1.coeffs @ List.map fst a2.coeffs)
      in
      let coeff side v = Option.value ~default:0 (List.assoc_opt v side) in
      let equal_coeffs =
        List.for_all (fun v -> coeff a1.coeffs v = coeff a2.coeffs v) vars
      in
      if equal_coeffs then begin
        (* src: sum c_v I_v + k1 = sink: sum c_v J_v + k2, with
           J = I + d:  sum c_v d_v = k1 - k2. *)
        let delta = a1.constant - a2.constant in
        let coeffs =
          List.filter_map
            (fun v ->
              let c = coeff a1.coeffs v in
              if c = 0 then None else Some (v, c))
            vars
        in
        match coeffs with
        | [] -> if delta = 0 then Exact ([], 0) else Independent
        | _ -> Exact (coeffs, delta)
      end
      else Vague vars

(* Solve the collected constraints: propagate exactly-known distances
   through linear constraints until fixpoint.  Returns [None] when the
   system is infeasible (no dependence), otherwise the per-variable
   direction for every common loop. *)
let solve_dimensions common dims =
  let known : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let vague : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let constraints = ref [] in
  let infeasible = ref false in
  let learn v d =
    match Hashtbl.find_opt known v with
    | Some d0 -> if d0 <> d then infeasible := true
    | None -> Hashtbl.replace known v d
  in
  List.iter
    (fun dim ->
      match dim with
      | Independent -> infeasible := true
      | Unknown -> ()
      | Vague vars -> List.iter (fun v -> Hashtbl.replace vague v ()) vars
      | Exact ([], delta) -> if delta <> 0 then infeasible := true
      | Exact ([ (v, c) ], delta) ->
          if delta mod c <> 0 then infeasible := true
          else learn v (delta / c)
      | Exact (coeffs, delta) -> constraints := (coeffs, delta) :: !constraints)
    dims;
  let progress = ref true in
  while !progress && not !infeasible do
    progress := false;
    constraints :=
      List.filter_map
        (fun (coeffs, delta) ->
          let unknowns, resolved =
            List.partition
              (fun (v, _) -> not (Hashtbl.mem known v))
              coeffs
          in
          let residual =
            List.fold_left
              (fun acc (v, c) -> acc - (c * Hashtbl.find known v))
              delta resolved
          in
          match unknowns with
          | [] ->
              if residual <> 0 then infeasible := true;
              progress := true;
              None
          | [ (v, c) ] ->
              if residual mod c <> 0 then infeasible := true
              else learn v (residual / c);
              progress := true;
              None
          | _ :: _ :: _ -> Some (unknowns, residual))
        !constraints
  done;
  if !infeasible then None
  else begin
    (* Variables still inside unsolved multi-var constraints are
       unconstrained for our purposes. *)
    List.iter
      (fun (coeffs, _) ->
        List.iter (fun (v, _) -> Hashtbl.replace vague v ()) coeffs)
      !constraints;
    Some
      (List.map
         (fun v ->
           match Hashtbl.find_opt known v with
           | Some d when d > 0 -> (v, Lt)
           | Some d when d < 0 -> (v, Gt)
           | Some _ -> (v, Eq)
           | None -> (v, Star))
         common)
  end

(* --- Building dependences --- *)

let directions_for ~loop_indices (a1 : access) (a2 : access) =
  let common = List.filter (fun l -> List.mem l a2.loops) a1.loops in
  if List.length a1.subscripts <> List.length a2.subscripts then
    Some (List.map (fun l -> (l, Star)) common)
  else begin
    let dims =
      List.map2
        (fun s1 s2 -> test_dimension ~loop_indices s1 s2)
        a1.subscripts a2.subscripts
    in
    solve_dimensions common dims
  end

(* Keep loop order (outermost first) in the direction vector. *)
let order_directions loops dirs =
  List.filter_map
    (fun l -> Option.map (fun d -> (l, d)) (List.assoc_opt l dirs))
    loops

let flip_direction = function Lt -> Gt | Gt -> Lt | Eq -> Eq | Star -> Star

(* Normalize to lexicographically non-negative: if the leading definite
   direction is Gt, flip the vector (and the kind's source/sink roles). *)
let normalize kind dirs =
  let rec leading = function
    | [] -> Eq
    | (_, Eq) :: rest -> leading rest
    | (_, d) :: _ -> d
  in
  match leading dirs with
  | Gt ->
      let kind' =
        match kind with Flow -> Anti | Anti -> Flow | Output -> Output
      in
      (kind', List.map (fun (l, d) -> (l, flip_direction d)) dirs)
  | Lt | Eq | Star -> (kind, dirs)

(* Map each loop index to the index variable its lower bound equals, if
   any: the strip-mine pattern [for i = i_t to min(i_t + T - 1, hi)].
   An [Eq] direction on the point loop then forces [Eq] on the tile loop
   (same point, same tile), which keeps dependence vectors precise on
   tiled kernels. *)
let bound_parents (k : Ast.kernel) =
  let rec go acc (s : Ast.stmt) =
    match s with
    | Assign _ -> acc
    | Seq ss -> List.fold_left go acc ss
    | If (_, t, e) ->
        let acc = go acc t in
        (match e with None -> acc | Some e -> go acc e)
    | For l ->
        let acc =
          match l.lo with
          | Var u -> (l.index, u) :: acc
          | _ -> acc
        in
        go acc l.body
  in
  go [] k.body

let propagate_bound_eq parents dirs =
  let dirs = ref dirs in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (child, parent) ->
        match (List.assoc_opt child !dirs, List.assoc_opt parent !dirs) with
        | Some Eq, Some Star ->
            dirs := (parent, Eq) :: List.remove_assoc parent !dirs;
            changed := true
        | _ -> ())
      parents
  done;
  !dirs

let dependences (k : Ast.kernel) =
  let accesses, scalars_written = collect_accesses k in
  let parents = bound_parents k in
  let loop_indices = Ast.loop_indices k.body in
  let deps = ref [] in
  let arr = Array.of_list accesses in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a1 = arr.(i) and a2 = arr.(j) in
      if a1.array = a2.array && (a1.is_write || a2.is_write)
         && not (i = j && not a1.is_write)
      then begin
        match directions_for ~loop_indices a1 a2 with
        | None -> ()
        | Some dirs ->
            let kind =
              match (a1.is_write, a2.is_write) with
              | true, true -> Output
              | true, false -> Flow
              | false, true -> Anti
              | false, false ->
                  invalid_arg
                    (Printf.sprintf
                       "Dependence.dependences: read/read pair on array %s \
                        reached dependence classification (the pair filter \
                        requires at least one write)"
                       a1.array)
            in
            let dirs = propagate_bound_eq parents dirs in
            let ordered = order_directions a1.loops dirs in
            let kind, ordered = normalize kind ordered in
            (* Self-pairs with an all-Eq vector are the same access in the
               same iteration: not a dependence. *)
            let all_eq = List.for_all (fun (_, d) -> d = Eq) ordered in
            if not (i = j && all_eq) then
              deps := { kind; array = a1.array; directions = ordered } :: !deps
      end
    done
  done;
  (* Scalar accumulators: conservative all-Star dependence over every loop. *)
  List.iter
    (fun s ->
      deps :=
        {
          kind = Flow;
          array = s;
          directions = List.map (fun l -> (l, Star)) loop_indices;
        }
        :: !deps)
    scalars_written;
  List.rev !deps

(* A summary is the dependence set computed once and queried many times:
   the legality predicates below only ever inspect direction vectors, so
   callers that ask several questions about the same kernel (tile-nest
   permutability is a pairwise sweep; the fork trie re-audits cached
   nodes) can pay for [dependences] once. *)
type summary = { all : dependence list }

let summarize k = { all = dependences k }
let summary_dependences s = s.all

let carried_in s loop =
  List.filter
    (fun d ->
      let rec go = function
        | [] -> false
        | (l, dir) :: rest ->
            if l = loop then dir = Lt || dir = Gt || dir = Star
            else if dir = Eq then go rest
            else if dir = Star then
              (* Could be Eq here and carried later. *)
              go rest
            else false (* definitely carried by an outer loop *)
      in
      go d.directions)
    s.all

let carried_by k loop = carried_in (summarize k) loop

let parallel k loop = carried_by k loop = []

(* Enumerate the concrete direction vectors a Star-bearing vector stands
   for, keeping only lexicographically non-negative ones (the normalized
   representatives). *)
let expansions dirs =
  let max_stars = 7 in
  let stars = List.length (List.filter (fun (_, d) -> d = Star) dirs) in
  if stars > max_stars then [ dirs ] (* give up: treated as blocking *)
  else begin
    let rec go = function
      | [] -> [ [] ]
      | (l, Star) :: rest ->
          let tails = go rest in
          List.concat_map
            (fun d -> List.map (fun t -> (l, d) :: t) tails)
            [ Lt; Eq; Gt ]
      | (l, d) :: rest -> List.map (fun t -> (l, d) :: t) (go rest)
    in
    let lex_nonneg v =
      let rec lead = function
        | [] -> true
        | (_, Eq) :: rest -> lead rest
        | (_, Lt) :: _ -> true
        | (_, Gt) :: _ -> false
        | (l, Star) :: _ ->
            invalid_arg
              (Printf.sprintf
                 "Dependence.expansions: direction for loop %s is still Star \
                  after expansion (expansion must substitute every Star)"
                 l)
      in
      lead v
    in
    List.filter lex_nonneg (go dirs)
  end

let lex_negative v =
  let rec lead = function
    | [] -> false
    | (_, Eq) :: rest -> lead rest
    | (_, Gt) :: _ -> true
    | (_, Lt) :: _ -> false
    | (_, Star) :: _ -> true (* conservative *)
  in
  lead v

(* Reorder a direction vector according to a permutation of loop names. *)
let permute order v =
  List.filter_map
    (fun l -> Option.map (fun d -> (l, d)) (List.assoc_opt l v))
    order
  @ List.filter (fun (l, _) -> not (List.mem l order)) v

let interchange_in s ~outer ~inner =
  let deps = s.all in
  List.for_all
    (fun d ->
      let relevant =
        List.exists (fun (l, _) -> l = outer) d.directions
        && List.exists (fun (l, _) -> l = inner) d.directions
      in
      (not relevant)
      || List.for_all
           (fun v ->
             let loops = List.map fst v in
             let swapped =
               List.map
                 (fun l ->
                   if l = outer then inner
                   else if l = inner then outer
                   else l)
                 loops
             in
             not (lex_negative (permute swapped v)))
           (expansions d.directions))
    deps

let interchange_legal k ~outer ~inner = interchange_in (summarize k) ~outer ~inner

let jam_in s loop =
  (* Unroll-and-jam of [loop] interleaves its iterations inside all loops
     nested within it: legal iff sinking [loop] to the innermost position
     never reverses a dependence. *)
  let deps = s.all in
  List.for_all
    (fun d ->
      let loops = List.map fst d.directions in
      (not (List.mem loop loops))
      || List.for_all
           (fun v ->
             let order =
               List.filter (fun l -> l <> loop) loops @ [ loop ]
             in
             not (lex_negative (permute order v)))
           (expansions d.directions))
    deps

let jam_legal k loop = jam_in (summarize k) loop

(* Shared safety core for fusion and distribution: every access pair
   between an "earlier" and a "later" code region touching a common array
   (with at least one write) must be aligned or forward at [index] —
   the earlier region's iteration never exceeds the later region's for
   the same element.  Written scalars shared across regions always
   block. *)
let regions_orderable ~loop_indices ~index earlier later =
  let acc_e, sw_e = earlier and acc_l, sw_l = later in
  (* Scalar reads are invisible to the access list, so any written scalar
     in either region conservatively blocks reordering. *)
  sw_e = [] && sw_l = []
  && List.for_all
       (fun (a : access) ->
         List.for_all
           (fun (b : access) ->
             if a.array <> b.array || ((not a.is_write) && not b.is_write)
             then true
             else begin
               match directions_for ~loop_indices a b with
               | None -> true
               | Some dirs -> (
                   match List.assoc_opt index dirs with
                   | Some (Lt | Eq) -> true
                   | Some (Gt | Star) | None -> false)
             end)
           acc_l)
       acc_e

let fusion_legal (k : Ast.kernel) ~first ~second =
  match (Ast.find_loop k.body first, Ast.find_loop k.body second) with
  | Some l1, Some l2 ->
      let loop_indices = Ast.loop_indices k.body in
      (* View the second body in the first loop's index space. *)
      let renamed_body =
        Ast.subst ~var:l2.index ~by:(Ast.Var l1.index) l2.body
      in
      let earlier = collect_stmt ~loops:[ l1.index ] l1.body in
      let later = collect_stmt ~loops:[ l1.index ] renamed_body in
      regions_orderable ~loop_indices ~index:l1.index earlier later
  | _ -> false

let distribution_legal (k : Ast.kernel) index =
  match Ast.find_loop k.body index with
  | None -> false
  | Some l -> (
      let loop_indices = Ast.loop_indices k.body in
      let groups =
        match l.body with
        | Seq ss -> List.map (collect_stmt ~loops:[ index ]) ss
        | other -> [ collect_stmt ~loops:[ index ] other ]
      in
      let rec pairs = function
        | [] -> true
        | earlier :: rest ->
            List.for_all
              (fun later ->
                regions_orderable ~loop_indices ~index earlier later)
              rest
            && pairs rest
      in
      pairs groups)
