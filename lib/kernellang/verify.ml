type step =
  | Unroll of { index : string; factor : int }
  | Tile_nest of (string * int) list
  | Unroll_and_jam of { index : string; factor : int }
  | Skew of { outer : string; inner : string; factor : int }
  | Reverse of { index : string }
  | Fuse of { first : string; second : string }
  | Distribute of { index : string }

let step_to_string = function
  | Unroll { index; factor } -> Printf.sprintf "unroll %s x%d" index factor
  | Tile_nest spec ->
      Printf.sprintf "tile %s"
        (String.concat " "
           (List.map (fun (l, t) -> Printf.sprintf "%s:%d" l t) spec))
  | Unroll_and_jam { index; factor } ->
      Printf.sprintf "unroll-and-jam %s x%d" index factor
  | Skew { outer; inner; factor } ->
      Printf.sprintf "skew %s/%s by %d" outer inner factor
  | Reverse { index } -> "reverse " ^ index
  | Fuse { first; second } -> Printf.sprintf "fuse %s+%s" first second
  | Distribute { index } -> "distribute " ^ index

let apply_step step k =
  match step with
  | Unroll { index; factor } -> Transform.unroll ~index ~factor k
  | Tile_nest spec -> Transform.tile_nest spec k
  | Unroll_and_jam { index; factor } ->
      Transform.unroll_and_jam ~index ~factor k
  | Skew { outer; inner; factor } -> Transform.skew ~outer ~inner ~factor k
  | Reverse { index } -> Transform.reverse ~index k
  | Fuse { first; second } -> Transform.fuse ~first ~second k
  | Distribute { index } -> Transform.distribute ~index k

let apply_steps steps k =
  List.fold_left (fun acc s -> Result.bind acc (apply_step s)) (Ok k) steps

(* Drop the steps {!Transform} treats as exact no-ops, so that two recipes
   differing only in identity steps share one canonical form.  This is
   byte-preserving: unroll / unroll-and-jam at factor 1 return the kernel
   unchanged, and [Transform.tile_nest] ignores every spec entry with tile
   <= 1 (an all-identity nest applies no rewrite at all).  Factors < 1 are
   kept — those are refusals, and normalization must not turn an error
   into a success.  The one behavioral caveat: a factor-1 step naming a
   missing loop fails in Transform but vanishes here; recipe generators
   only emit existing loops, and the fork-audit differential check covers
   the trie's use of this. *)
let normalize_steps steps =
  List.filter_map
    (fun s ->
      match s with
      | Unroll { factor = 1; _ } | Unroll_and_jam { factor = 1; _ } -> None
      | Tile_nest spec -> (
          match List.filter (fun (_, t) -> t > 1) spec with
          | [] -> None
          | spec' -> Some (Tile_nest spec'))
      | Unroll _ | Unroll_and_jam _ | Skew _ | Reverse _ | Fuse _
      | Distribute _ ->
          Some s)
    steps

(* Canonical injective key for a (normalized) step: trie edges are keyed
   by these.  Loop indices are identifiers (no ':' or '='), so the
   tag/separator scheme cannot collide across or within variants. *)
let step_key = function
  | Unroll { index; factor } -> Printf.sprintf "u:%s:%d" index factor
  | Tile_nest spec ->
      "t:"
      ^ String.concat ":"
          (List.map (fun (l, t) -> Printf.sprintf "%s=%d" l t) spec)
  | Unroll_and_jam { index; factor } -> Printf.sprintf "j:%s:%d" index factor
  | Skew { outer; inner; factor } ->
      Printf.sprintf "s:%s:%s:%d" outer inner factor
  | Reverse { index } -> "r:" ^ index
  | Fuse { first; second } -> Printf.sprintf "f:%s:%s" first second
  | Distribute { index } -> "d:" ^ index

type status = Pass | Fail of string | Skipped of string

type check = { check_name : string; status : status }

type step_report = { step : string; checks : check list }

type verdict = { subject : string; reports : step_report list }

let failures v =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun c ->
          match c.status with Fail _ -> Some (r.step, c) | _ -> None)
        r.checks)
    v.reports

let ok v = failures v = []

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>%s: %s" v.subject
    (if ok v then "ok" else "FAILED");
  List.iter
    (fun r ->
      let failed =
        List.filter
          (fun c -> match c.status with Fail _ -> true | _ -> false)
          r.checks
      in
      let skipped =
        List.filter
          (fun c -> match c.status with Skipped _ -> true | _ -> false)
          r.checks
      in
      if failed = [] then begin
        if skipped = [] then
          Format.fprintf ppf "@;<1 2>%s: ok (%d checks)" r.step
            (List.length r.checks)
        else
          Format.fprintf ppf "@;<1 2>%s: skipped (%s)" r.step
            (match (List.hd skipped).status with
            | Skipped why -> why
            | Pass | Fail _ -> "")
      end
      else
        List.iter
          (fun c ->
            match c.status with
            | Fail m ->
                Format.fprintf ppf "@;<1 2>%s: %s FAILED: %s" r.step
                  c.check_name m
            | Pass | Skipped _ -> ())
          failed)
    v.reports;
  Format.fprintf ppf "@]"

let verdict_to_string v = Format.asprintf "%a" pp_verdict v

(* --- Legality, re-derived from the dependence analysis --- *)

let legality_in summary k step : status =
  try
    match step with
    | Unroll _ ->
        (* Body replication plus a remainder loop: iteration order is
           untouched, so unrolling needs no dependence argument. *)
        Pass
    | Skew _ ->
        (* Unimodular reindexing; the body sees the original index. *)
        Pass
    | Tile_nest spec -> (
        (* Rectangular tiling hoists every tile loop above every point
           loop of the nest, which is sound iff the tiled loops are
           pairwise interchangeable. *)
        let tiled =
          List.filter_map (fun (l, t) -> if t > 1 then Some l else None) spec
        in
        let rec pairs = function
          | [] | [ _ ] -> []
          | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
        in
        match
          List.find_opt
            (fun (a, b) ->
              not (Dependence.interchange_in summary ~outer:a ~inner:b))
            (pairs tiled)
        with
        | None -> Pass
        | Some (a, b) ->
            Fail
              (Printf.sprintf
                 "tile nest is not permutable: interchanging %s and %s \
                  would reverse a dependence"
                 a b))
    | Unroll_and_jam { index; _ } ->
        if Dependence.jam_in summary index then Pass
        else
          Fail
            (Printf.sprintf
               "unroll-and-jam of %s would reverse a dependence when its \
                iterations are interleaved innermost"
               index)
    | Reverse { index } -> (
        match Dependence.carried_in summary index with
        | [] -> Pass
        | d :: _ ->
            Fail
              (Format.asprintf
                 "loop %s carries a %a, which reversal would flip" index
                 Dependence.pp_dependence d))
    | Fuse { first; second } ->
        (* Fusion/distribution legality works on per-region access sets,
           not the kernel-wide dependence list, so the summary does not
           apply — these recompute from the kernel. *)
        if Dependence.fusion_legal k ~first ~second then Pass
        else
          Fail
            (Printf.sprintf
               "fusing %s and %s would let the first body overtake a value \
                the second body still needs"
               first second)
    | Distribute { index } ->
        if Dependence.distribution_legal k index then Pass
        else
          Fail
            (Printf.sprintf
               "distributing %s would reorder a cross-statement dependence \
                carried by the loop"
               index)
  with e -> Fail ("legality analysis raised: " ^ Printexc.to_string e)

let legality k step : status =
  match step with
  | Unroll _ | Skew _ -> Pass
  | Tile_nest _ | Unroll_and_jam _ | Reverse _ | Fuse _ | Distribute _ -> (
      match Dependence.summarize k with
      | exception e ->
          Fail ("legality analysis raised: " ^ Printexc.to_string e)
      | summary -> legality_in summary k step)

(* --- Interpreter-based checks --- *)

let default_array_init name i =
  let h = Hashtbl.hash (name, i) land 0xFFFF in
  (float_of_int h /. 65536.0) +. 0.5

type run_result = {
  arrays : (string * float array) list;
  scalars : (string * float) list;
  counts : (string * (int * int)) list;  (* array -> (loads, stores) *)
}

let execute ?param_overrides (k : Ast.kernel) =
  let env = Interp.init ?param_overrides ~array_init:default_array_init k in
  let counts : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  Interp.set_access_hook env (fun a _off is_write ->
      let loads, stores =
        Option.value ~default:(0, 0) (Hashtbl.find_opt counts a)
      in
      Hashtbl.replace counts a
        (if is_write then (loads, stores + 1) else (loads + 1, stores)));
  Interp.run env k;
  {
    arrays =
      List.map
        (fun (d : Ast.array_decl) ->
          (d.array_name, Interp.read_array env d.array_name))
        k.arrays;
    scalars = List.map (fun s -> (s, Interp.read_scalar env s)) k.scalars;
    counts =
      List.sort compare (Hashtbl.fold (fun a c acc -> (a, c) :: acc) counts []);
  }

let well_formed ?param_overrides k : status =
  match Ast.validate k with
  | Error e ->
      Fail (Format.asprintf "Ast.validate: %a" Ast.pp_validation_error e)
  | Ok () -> (
      match Lint.errors (Lint.lint ?param_overrides k) with
      | [] -> Pass
      | errs ->
          Fail
            (Printf.sprintf "%d lint error(s); first: %s" (List.length errs)
               (Lint.diagnostic_to_string (List.hd errs))))

let lex_negative dirs =
  let rec go = function
    | [] -> false
    | (_, Dependence.Eq) :: rest -> go rest
    | (_, Dependence.Gt) :: _ -> true
    | (_, (Dependence.Lt | Dependence.Star)) :: _ -> false
  in
  go dirs

let summary_sound summary : status =
  match
    List.find_opt
      (fun (d : Dependence.dependence) -> lex_negative d.directions)
      (Dependence.summary_dependences summary)
  with
  | None -> Pass
  | Some d ->
      Fail
        (Format.asprintf
           "normalization invariant violated: %a is lexicographically \
            negative"
           Dependence.pp_dependence d)

let dependences_sound k : status =
  match Dependence.summarize k with
  | exception e -> Fail ("dependence analysis raised: " ^ Printexc.to_string e)
  | summary -> summary_sound summary

let approx_equal ~tolerance a b =
  Float.abs (a -. b)
  <= tolerance *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_pair ?param_overrides ?(tolerance = 1e-9) ~original ~transformed ()
    =
  let wf =
    {
      check_name = "well-formed";
      status = well_formed ?param_overrides transformed;
    }
  in
  let deps =
    { check_name = "dependences"; status = dependences_sound transformed }
  in
  let exec_checks =
    try
      let r0 = execute ?param_overrides original in
      let r1 = execute ?param_overrides transformed in
      let count_status =
        if r0.counts = r1.counts then Pass
        else begin
          let describe cs =
            String.concat ", "
              (List.map
                 (fun (a, (l, s)) ->
                   Printf.sprintf "%s: %d loads / %d stores" a l s)
                 cs)
          in
          Fail
            (Printf.sprintf
               "per-array access counts differ (iteration instances were \
                added or dropped): original {%s} vs transformed {%s}"
               (describe r0.counts) (describe r1.counts))
        end
      in
      let diff_status =
        let bad = ref None in
        List.iter2
          (fun (na, va) (nb, vb) ->
            if !bad = None then begin
              if na <> nb || Array.length va <> Array.length vb then
                bad :=
                  Some
                    (Printf.sprintf "array layout differs (%s vs %s)" na nb)
              else
                Array.iteri
                  (fun i x ->
                    if !bad = None && not (approx_equal ~tolerance x vb.(i))
                    then
                      bad :=
                        Some
                          (Printf.sprintf
                             "array %s differs at flat offset %d: %.17g vs \
                              %.17g"
                             na i x vb.(i)))
                  va
            end)
          r0.arrays r1.arrays;
        List.iter2
          (fun (ns, x) (_, y) ->
            if !bad = None && not (approx_equal ~tolerance x y) then
              bad :=
                Some
                  (Printf.sprintf "scalar %s differs: %.17g vs %.17g" ns x y))
          r0.scalars r1.scalars;
        match !bad with None -> Pass | Some m -> Fail m
      in
      [
        { check_name = "access-counts"; status = count_status };
        { check_name = "differential"; status = diff_status };
      ]
    with e ->
      [
        {
          check_name = "execution";
          status = Fail ("interpreter run failed: " ^ Printexc.to_string e);
        };
      ]
  in
  wf :: deps :: exec_checks

let run ?param_overrides ?tolerance ?(subject = "kernel") k steps =
  let original_report =
    {
      step = "original";
      checks =
        [
          {
            check_name = "well-formed";
            status = well_formed ?param_overrides k;
          };
          { check_name = "dependences"; status = dependences_sound k };
        ];
    }
  in
  let rec go cur acc = function
    | [] -> List.rev acc
    | s :: rest -> (
        let label = step_to_string s in
        let leg = { check_name = "legality"; status = legality cur s } in
        match apply_step s cur with
        | Error e ->
            let applies =
              {
                check_name = "applies";
                status = Fail (Transform.error_to_string e);
              }
            in
            let skipped =
              List.map
                (fun s' ->
                  {
                    step = step_to_string s';
                    checks =
                      [
                        {
                          check_name = "all";
                          status = Skipped "an earlier step failed to apply";
                        };
                      ];
                  })
                rest
            in
            List.rev_append acc
              ({ step = label; checks = [ leg; applies ] } :: skipped)
        | Ok k' ->
            let checks =
              leg
              :: { check_name = "applies"; status = Pass }
              :: check_pair ?param_overrides ?tolerance ~original:cur
                   ~transformed:k' ()
            in
            go k' ({ step = label; checks } :: acc) rest)
  in
  { subject; reports = original_report :: go k [] steps }
