(** Data-dependence analysis over loop nests.

    Computes the flow (read-after-write), anti (write-after-read) and
    output (write-after-write) dependences carried by the loops of a
    kernel, with distance/direction information for affine subscript
    pairs, and answers the legality questions the transformations need:

    - {!carried_by}: does any dependence have a non-[=] direction at a
      given loop — i.e. is the loop parallel?
    - {!interchange_legal}: would swapping two nest levels reverse a
      dependence (produce a [(<, >)] leading pair)?
    - {!jam_legal}: is unroll-and-jam of a loop safe — equivalent to the
      loop being interchangeable inward past its immediate inner loop?

    Subscript pairs are tested with standard conservative ZIV/SIV tests
    (Banerjee-style): exact for the equal-coefficient single-index
    subscripts produced by this IR's kernels, conservative ("maybe
    dependent, any direction") otherwise. *)

type direction = Lt | Eq | Gt | Star  (** [Star] = unknown/any. *)

type kind = Flow | Anti | Output

type dependence = {
  kind : kind;
  array : string;
  directions : (string * direction) list;
      (** Per enclosing loop (outermost first), the direction of the
          dependence: source iteration relative to sink iteration. *)
}

val pp_dependence : Format.formatter -> dependence -> unit

val affine_view :
  loop_indices:string list -> Ast.expr -> ((string * int) list * int) option
(** [affine_view ~loop_indices e] is [Some (coeffs, constant)] when [e] is
    affine in the listed loop indices (variables outside the list make the
    expression non-affine: they are opaque to subscript analysis), [None]
    otherwise.  Shared with {!Lint}'s affine-access classification. *)

val dependences : Ast.kernel -> dependence list
(** All loop-carried or loop-independent dependences between array
    accesses in the kernel, one entry per (access pair, array).
    Scalar dependences are reported with [array] = the scalar name and
    all-[Star] directions (scalars defeat analysis conservatively). *)

type summary
(** The dependence set of one kernel, computed once by {!summarize} and
    shared across the [_in] query variants below.  Everything the
    interchange/jam/reversal predicates need is the direction vectors, so
    a caller asking several legality questions about the same kernel (a
    pairwise tile-nest permutability sweep, the fork trie's cached-node
    audit) pays for {!dependences} once instead of per query. *)

val summarize : Ast.kernel -> summary

val summary_dependences : summary -> dependence list
(** The underlying dependence list, identical to {!dependences} on the
    summarized kernel (used by audits that compare a cached summary
    against a fresh analysis). *)

val carried_by : Ast.kernel -> string -> dependence list
(** Dependences carried by the named loop: direction at that loop is
    [Lt], [Gt] or [Star] (and [Eq] at all enclosing outer loops). *)

val carried_in : summary -> string -> dependence list
(** {!carried_by} against a precomputed summary. *)

val parallel : Ast.kernel -> string -> bool
(** [parallel k loop] is [true] when no dependence is carried by [loop] —
    its iterations can execute in any order. *)

val interchange_legal : Ast.kernel -> outer:string -> inner:string -> bool
(** Conservative: [true] only when no dependence has direction pair
    [(Lt, Gt)] (or involving [Star]) at the two loops. *)

val interchange_in : summary -> outer:string -> inner:string -> bool
(** {!interchange_legal} against a precomputed summary. *)

val jam_legal : Ast.kernel -> string -> bool
(** Unroll-and-jam of [loop] is safe when interchanging [loop] with every
    loop nested inside it down to the innermost level is legal. *)

val jam_in : summary -> string -> bool
(** {!jam_legal} against a precomputed summary. *)

val fusion_legal : Ast.kernel -> first:string -> second:string -> bool
(** May the two (bound-compatible, adjacent) loops be fused?  True when
    every cross-body access pair on a common array (at least one side a
    write) is aligned or forward at the shared index — the first body's
    iteration never exceeds the second body's for the same element — and
    no written scalar is shared. *)

val distribution_legal : Ast.kernel -> string -> bool
(** May the named loop be distributed over its top-level body statements?
    True when every access pair between an earlier and a later statement
    (on a common array, at least one write) is aligned or forward at the
    loop index, and no written scalar spans statements. *)
