module Ast = Altune_kernellang.Ast
module Transform = Altune_kernellang.Transform
module Verify = Altune_kernellang.Verify
module Analysis = Altune_kernellang.Analysis
module Machine = Altune_machine.Machine
module Noise = Altune_noise.Noise
module Rng = Altune_prng.Rng
module Distributions = Altune_stats.Distributions
module Pool = Altune_exec.Pool
module Metrics = Altune_obs.Metrics

type knob =
  | Tile of { loop : string; sizes : int array }
  | Jam of { loop : string; max_factor : int }
  | Unroll of { loop : string; max_factor : int }

let knob_cardinality = function
  | Tile { sizes; _ } -> Array.length sizes
  | Jam { max_factor; _ } | Unroll { max_factor; _ } -> max_factor

let knob_name = function
  | Tile { loop; _ } -> "tile:" ^ loop
  | Jam { loop; _ } -> "jam:" ^ loop
  | Unroll { loop; _ } -> "unroll:" ^ loop

type spec = {
  knobs : knob list;
  tile_nests : string list list;
      (* Loops tiled together as one rectangular nest, outermost first. *)
  base_sigma : float;  (* mean relative noise before the field *)
  field_sd : float;  (* lognormal spread of the per-config noise field *)
  extra_channels : Noise.channel list;
}

let tile_sizes = [| 1; 2; 4; 8; 16; 32; 64 |]
let small_tiles = [| 1; 2; 4; 8; 16; 32 |]

(* Per-benchmark tunable spaces.  Knob order defines both the
   configuration layout and the feature order.  Jam knobs are offered only
   on loops where unroll-and-jam is legal (perfect nest, writes indexed by
   the jammed loop); the test suite checks totality over random configs. *)
let specs =
  [
    ( "adi",
      {
        knobs =
          [
            Tile { loop = "i1"; sizes = small_tiles };
            Tile { loop = "j1"; sizes = small_tiles };
            Tile { loop = "i2"; sizes = small_tiles };
            Tile { loop = "j2"; sizes = small_tiles };
            Jam { loop = "i1"; max_factor = 8 };
            Unroll { loop = "i2"; max_factor = 8 };
            Unroll { loop = "j1"; max_factor = 30 };
            Unroll { loop = "j2"; max_factor = 30 };
          ];
        tile_nests = [ [ "i1"; "j1" ]; [ "i2"; "j2" ] ];
        base_sigma = 4.0e-3;
        field_sd = 1.0;
        (* adi is the paper's one counter-example: its noise is dominated
           by layout effects that persist within a run but differ across
           runs, so a single observation carries a bias only averaging
           removes.  A strong layout channel reproduces that: the adaptive
           plan's sparse samples hit a floor the 35-observation baseline
           averages away. *)
        extra_channels =
          [ Noise.Layout { buckets = 6; amplitude = 0.04 } ];
      } );
    ( "atax",
      {
        knobs =
          [
            Tile { loop = "j1"; sizes = tile_sizes };
            Tile { loop = "j2"; sizes = tile_sizes };
            Unroll { loop = "j1"; max_factor = 32 };
            Unroll { loop = "j2"; max_factor = 32 };
            Unroll { loop = "i1"; max_factor = 8 };
            Unroll { loop = "i2"; max_factor = 8 };
          ];
        tile_nests = [ [ "j1" ]; [ "j2" ] ];
        base_sigma = 4.0e-3;
        field_sd = 1.0;
        extra_channels = [];
      } );
    ( "bicgkernel",
      {
        knobs =
          [
            Tile { loop = "j1"; sizes = tile_sizes };
            Tile { loop = "j2"; sizes = tile_sizes };
            Unroll { loop = "j1"; max_factor = 32 };
            Unroll { loop = "j2"; max_factor = 32 };
            Unroll { loop = "i2"; max_factor = 8 };
          ];
        tile_nests = [ [ "j1" ]; [ "j2" ] ];
        base_sigma = 2.7e-3;
        field_sd = 1.1;
        extra_channels = [];
      } );
    ( "correlation",
      {
        knobs =
          [
            Tile { loop = "j3"; sizes = small_tiles };
            Tile { loop = "k3"; sizes = small_tiles };
            Unroll { loop = "j1"; max_factor = 16 };
            Unroll { loop = "j2"; max_factor = 16 };
            Unroll { loop = "k3"; max_factor = 32 };
            Unroll { loop = "j3"; max_factor = 8 };
          ];
        tile_nests = [ [ "j3" ]; [ "k3" ] ];
        base_sigma = 5.0e-2;
        field_sd = 0.9;
        extra_channels =
          [ Noise.Burst { probability = 0.05; mu = -1.5; sigma = 1.0 } ];
      } );
    ( "dgemv3",
      {
        knobs =
          [
            Tile { loop = "j1"; sizes = tile_sizes };
            Tile { loop = "j2"; sizes = tile_sizes };
            Tile { loop = "j3"; sizes = tile_sizes };
            Unroll { loop = "j1"; max_factor = 32 };
            Unroll { loop = "j2"; max_factor = 32 };
            Unroll { loop = "j3"; max_factor = 32 };
            Unroll { loop = "i1"; max_factor = 8 };
            Unroll { loop = "i2"; max_factor = 8 };
            Unroll { loop = "i3"; max_factor = 8 };
          ];
        tile_nests = [ [ "j1" ]; [ "j2" ]; [ "j3" ] ];
        base_sigma = 4.0e-3;
        field_sd = 1.1;
        extra_channels = [];
      } );
    ( "gemver",
      {
        knobs =
          [
            Tile { loop = "i1"; sizes = small_tiles };
            Tile { loop = "j1"; sizes = small_tiles };
            Tile { loop = "j2"; sizes = tile_sizes };
            Tile { loop = "j4"; sizes = tile_sizes };
            Jam { loop = "i1"; max_factor = 8 };
            Unroll { loop = "j1"; max_factor = 16 };
            Unroll { loop = "j2"; max_factor = 16 };
            Unroll { loop = "i3"; max_factor = 8 };
            Unroll { loop = "j4"; max_factor = 16 };
          ];
        tile_nests = [ [ "i1"; "j1" ]; [ "j2" ]; [ "j4" ] ];
        base_sigma = 8.5e-3;
        field_sd = 1.0;
        extra_channels = [];
      } );
    ( "hessian",
      {
        knobs =
          [
            Tile { loop = "i"; sizes = small_tiles };
            Tile { loop = "j"; sizes = small_tiles };
            Jam { loop = "i"; max_factor = 8 };
            Unroll { loop = "j"; max_factor = 30 };
          ];
        tile_nests = [ [ "i"; "j" ] ];
        base_sigma = 2.4e-3;
        field_sd = 1.2;
        extra_channels = [];
      } );
    ( "jacobi",
      {
        knobs =
          [
            Tile { loop = "i1"; sizes = small_tiles };
            Tile { loop = "j1"; sizes = small_tiles };
            Jam { loop = "i1"; max_factor = 8 };
            Unroll { loop = "j1"; max_factor = 30 };
            Jam { loop = "i2"; max_factor = 8 };
            Unroll { loop = "j2"; max_factor = 16 };
          ];
        tile_nests = [ [ "i1"; "j1" ] ];
        base_sigma = 2.3e-3;
        field_sd = 1.3;
        extra_channels = [];
      } );
    ( "lu",
      {
        knobs =
          [
            Tile { loop = "j"; sizes = tile_sizes };
            Unroll { loop = "j"; max_factor = 32 };
            Unroll { loop = "i"; max_factor = 8 };
            Unroll { loop = "k"; max_factor = 4 };
          ];
        tile_nests = [ [ "j" ] ];
        base_sigma = 1.2e-3;
        field_sd = 1.0;
        extra_channels = [];
      } );
    ( "mm",
      {
        knobs =
          [
            Tile { loop = "i"; sizes = tile_sizes };
            Tile { loop = "j"; sizes = tile_sizes };
            Tile { loop = "k"; sizes = tile_sizes };
            Jam { loop = "i"; max_factor = 8 };
            Unroll { loop = "j"; max_factor = 16 };
            Unroll { loop = "k"; max_factor = 32 };
          ];
        tile_nests = [ [ "i"; "j"; "k" ] ];
        base_sigma = 1.3e-3;
        field_sd = 1.0;
        extra_channels = [];
      } );
    ( "mvt",
      {
        knobs =
          [
            Tile { loop = "j1"; sizes = tile_sizes };
            Tile { loop = "j2"; sizes = tile_sizes };
            Jam { loop = "i1"; max_factor = 8 };
            Unroll { loop = "j1"; max_factor = 32 };
            Unroll { loop = "j2"; max_factor = 32 };
          ];
        tile_nests = [ [ "j1" ]; [ "j2" ] ];
        base_sigma = 1.4e-3;
        field_sd = 1.1;
        extra_channels = [];
      } );
  ]

type share =
  key:string -> (unit -> float * float) -> float * float

(* Bounded per-instance evaluation cache: a hashtable for lookup plus a
   second-chance ("clock") ring for eviction.  A hit sets the entry's
   reference bit; insertion at capacity sweeps the ring, giving each
   referenced entry one reprieve before it goes.  Every cached value is a
   deterministic function of the configuration, so eviction can only cost
   recomputation, never change a result — long serve sessions stop
   growing without bound (the old table never evicted). *)
type cache_entry = { value : float * float; mutable referenced : bool }

type cache = {
  table : (int array, cache_entry) Hashtbl.t;
  ring : int array Queue.t;  (* exactly the live keys, insertion order *)
  capacity : int;
}

let cache_hits = lazy (Metrics.counter "spapt.cache.hits")
let cache_misses = lazy (Metrics.counter "spapt.cache.misses")
let cache_evictions = lazy (Metrics.counter "spapt.cache.evictions")
let cache_entries = lazy (Metrics.gauge "spapt.cache.entries")

let cache_create capacity =
  { table = Hashtbl.create 1024; ring = Queue.create (); capacity }

let cache_find c key =
  match Hashtbl.find_opt c.table key with
  | Some e ->
      e.referenced <- true;
      Metrics.incr (Lazy.force cache_hits);
      Some e.value
  | None ->
      Metrics.incr (Lazy.force cache_misses);
      None

let cache_add c key value =
  if not (Hashtbl.mem c.table key) then begin
    while Hashtbl.length c.table >= c.capacity do
      (* The ring holds every live key, so the pop cannot raise while the
         table is non-empty; a full sweep clears every reference bit, so
         the loop terminates. *)
      let k = Queue.pop c.ring in
      match Hashtbl.find_opt c.table k with
      | Some e when e.referenced ->
          e.referenced <- false;
          Queue.push k c.ring
      | Some _ ->
          Hashtbl.remove c.table k;
          Metrics.incr (Lazy.force cache_evictions)
      | None -> ()
    done;
    let key = Array.copy key in
    Hashtbl.replace c.table key { value; referenced = false };
    Queue.push key c.ring;
    Metrics.set_gauge (Lazy.force cache_entries)
      (float_of_int (Hashtbl.length c.table))
  end

type t = {
  bench_name : string;
  kernel : Ast.kernel;
  spec : spec;
  machine : Machine.config;
  noise : Noise.t;
  cache : cache;  (* config -> (true runtime, compile seconds) *)
  salt : int;  (* per-benchmark seed of the noise field *)
  fork : Fork.t;
      (* Transformation-prefix trie: resolves recipes by reusing the
         deepest cached prefix.  Resolved kernels are byte-identical to
         from-scratch application, so it stays on by default; [set_fork]
         exists for differential baselines and benchmarks. *)
  mutable fork_enabled : bool;
  mutable pool : Pool.t option;
      (* When set, [prepare] fans candidate evaluations out on this pool
         (slot-indexed, order-preserving) instead of computing them one
         by one on first use. *)
  mutable share : share option;
      (* When set, evaluation results are obtained through this function
         instead of the private cache — the hook a multi-tenant server
         uses to route (kernel, config) evaluations through one shared
         compute-once memo.  The private cache is bypassed entirely so a
         hooked instance holds no mutable evaluation state of its own
         (several hooked instances may then be driven from different
         domains at once). *)
}

let name t = t.bench_name
let kernel t = t.kernel
let knobs t = t.spec.knobs
let dim t = List.length t.spec.knobs

let space_size t =
  List.fold_left
    (fun acc k -> acc *. float_of_int (knob_cardinality k))
    1.0 t.spec.knobs

let create ?(machine = Machine.default) ?(cache_capacity = 8192) bench_name =
  let spec = List.assoc bench_name specs in
  let kernel = Kernels.kernel bench_name in
  let noise =
    Noise.create
      (Noise.Gaussian_rel 1.0 (* scaled per configuration *)
      :: Noise.Burst { probability = 0.01; mu = -3.0; sigma = 1.0 }
      :: Noise.Drift { period = 500.0; amplitude = 0.002 }
      :: spec.extra_channels)
  in
  {
    bench_name;
    kernel;
    spec;
    machine;
    noise;
    cache = cache_create cache_capacity;
    (* Structured derivation, not Hashtbl.hash: the polymorphic hash is
       not stable across OCaml versions, and this salt seeds the noise
       field of every simulated measurement. *)
    salt =
      Rng.derive ~seed:0x5eed [ Rng.S "spapt.noise-field"; Rng.S bench_name ];
    fork = Fork.create kernel;
    fork_enabled = true;
    pool = None;
    share = None;
  }

let set_share t share = t.share <- share
let set_fork t on = t.fork_enabled <- on
let fork_enabled t = t.fork_enabled
let fork_stats t = Fork.stats t.fork
let set_pool t pool = t.pool <- pool

let all () = List.map (fun (n, _) -> create n) specs

let config_valid t config =
  Array.length config = dim t
  && List.for_all2
       (fun k v -> v >= 0 && v < knob_cardinality k)
       t.spec.knobs
       (Array.to_list config)

let check_config t config =
  if not (config_valid t config) then
    invalid_arg
      (Printf.sprintf "Spapt: invalid configuration for %s" t.bench_name)

let random_config t rng =
  let ks = Array.of_list t.spec.knobs in
  Array.map (fun k -> Rng.int rng (knob_cardinality k)) ks

(* Knob value (tile size or factor) from the raw configuration entry. *)
let knob_value k raw =
  match k with
  | Tile { sizes; _ } -> sizes.(raw)
  | Jam _ | Unroll _ -> raw + 1

let recipe t config =
  check_config t config;
  let values =
    List.mapi (fun i k -> (k, knob_value k config.(i))) t.spec.knobs
  in
  let tile_size loop =
    match
      List.find_opt
        (fun (k, _) ->
          match k with Tile { loop = l; _ } -> l = loop | _ -> false)
        values
    with
    | Some (_, v) -> v
    | None -> 1
  in
  (* Identity steps (factor 1, all-1 tile nests) are dropped rather than
     applied as no-ops, so an audit only sees steps that change the
     kernel. *)
  let tiles =
    List.filter_map
      (fun nest ->
        let spec = List.map (fun l -> (l, tile_size l)) nest in
        if List.for_all (fun (_, s) -> s = 1) spec then None
        else Some (Verify.Tile_nest spec))
      t.spec.tile_nests
  in
  (* Jams innermost-first (knob lists are outermost-first): jamming an
     outer loop absorbs the already-jammed inner loop's body whole. *)
  let jams =
    List.filter_map
      (fun (k, v) ->
        match k with
        | Jam { loop; _ } when v > 1 ->
            Some (Verify.Unroll_and_jam { index = loop; factor = v })
        | Tile _ | Jam _ | Unroll _ -> None)
      (List.rev values)
  in
  let unrolls =
    List.filter_map
      (fun (k, v) ->
        match k with
        | Unroll { loop; _ } when v > 1 ->
            Some (Verify.Unroll { index = loop; factor = v })
        | Tile _ | Jam _ | Unroll _ -> None)
      values
  in
  tiles @ jams @ unrolls

let transformed t config =
  let steps = recipe t config in
  let result =
    if t.fork_enabled then Fork.resolve t.fork steps
    else Verify.apply_steps steps t.kernel
  in
  match result with
  | Ok k -> k
  | Error e ->
      invalid_arg
        (Printf.sprintf "Spapt %s: transformation recipe failed: %s"
           t.bench_name
           (Transform.error_to_string e))

(* Problem sizes small enough for interpreter-based soundness checks;
   the test suite uses the same table. *)
let small_params t =
  match t.bench_name with
  | "adi" -> [ ("N", 7); ("T", 2) ]
  | "atax" | "bicgkernel" | "dgemv3" | "gemver" | "mvt" ->
      [ ("N", 9); ("T", 2) ]
  | "correlation" -> [ ("M", 8); ("N", 7); ("T", 1) ]
  | "hessian" | "jacobi" -> [ ("N", 8); ("T", 2) ]
  | "lu" | "mm" -> [ ("N", 7); ("T", 1) ]
  | _ -> []

let verify_config t config =
  let subject =
    Printf.sprintf "%s [%s]" t.bench_name
      (String.concat "," (List.map string_of_int (Array.to_list config)))
  in
  if t.fork_enabled then
    Fork.audit
      ~param_overrides:(small_params t)
      ~subject t.fork (recipe t config)
  else
    Verify.run
      ~param_overrides:(small_params t)
      ~subject t.kernel (recipe t config)

let features t config =
  check_config t config;
  let ks = Array.of_list t.spec.knobs in
  Array.mapi
    (fun i raw ->
      (* Scale and centre against the uniform distribution over the knob's
         range: mean (c-1)/2, standard deviation sqrt((c^2 - 1) / 12). *)
      let c = float_of_int (knob_cardinality ks.(i)) in
      let mean = (c -. 1.0) /. 2.0 in
      let sd = sqrt (((c *. c) -. 1.0) /. 12.0) in
      if sd = 0.0 then 0.0 else (float_of_int raw -. mean) /. sd)
    config

(* The expensive step behind every measurement: transform the kernel,
   re-analyze it, and price it on the machine model.  Pure in [t]'s
   immutable fields, so concurrent calls (e.g. two shared-memo computes
   for different configs on different instances) are safe. *)
let compute_evaluation t config =
  let k = transformed t config in
  let e = Machine.evaluate t.machine k in
  (e.Machine.runtime, e.Machine.compile)

let config_key config =
  String.concat "," (List.map string_of_int (Array.to_list config))

let evaluate t config =
  match t.share with
  | Some via ->
      via ~key:(config_key config) (fun () -> compute_evaluation t config)
  | None -> (
      match cache_find t.cache config with
      | Some v -> v
      | None ->
          let v = compute_evaluation t config in
          cache_add t.cache config v;
          v)

let prepare t configs =
  match t.share with
  | Some _ ->
      (* A hooked instance holds no private evaluation state; batching
         would race the server's compute-once memo for no benefit. *)
      ()
  | None -> (
      let seen = Hashtbl.create 16 in
      let missing =
        List.filter
          (fun c ->
            if
              (not (config_valid t c))
              || Hashtbl.mem t.cache.table c
              || Hashtbl.mem seen c
            then false
            else begin
              Hashtbl.add seen c ();
              true
            end)
          configs
      in
      match missing with
      | [] | [ _ ] -> () (* nothing worth batching *)
      | batch ->
          (* compute_evaluation is deterministic and mutates only the
             mutex-guarded fork trie, so fanning it out and writing the
             slot-indexed results back sequentially yields byte-identical
             cache contents at any job count. *)
          let results =
            match t.pool with
            | Some pool when Pool.jobs pool > 1 ->
                (* One task per worker, not per config: a single
                   evaluation is ~ms-scale, so per-config tasks would
                   drown in scheduling overhead.  Contiguous chunks keep
                   the concatenated results in input order. *)
                let jobs = Pool.jobs pool in
                let n = List.length batch in
                let arr = Array.of_list batch in
                let chunk i =
                  let lo = i * n / jobs and hi = (i + 1) * n / jobs in
                  Array.to_list (Array.sub arr lo (hi - lo))
                in
                let chunks =
                  List.filter (fun c -> c <> []) (List.init jobs chunk)
                in
                List.concat
                  (Pool.map
                     ~label:(fun i -> Printf.sprintf "spapt.eval chunk %d" i)
                     pool
                     (fun cs -> List.map (fun c -> compute_evaluation t c) cs)
                     chunks)
            | _ -> List.map (fun c -> compute_evaluation t c) batch
          in
          List.iter2 (fun c v -> cache_add t.cache c v) batch results)

let true_runtime t config = fst (evaluate t config)
let compile_seconds t config = snd (evaluate t config)

(* Heteroskedastic noise field: a deterministic lognormal multiplier per
   configuration.  Hash -> uniform -> normal quantile keeps it smooth-free
   but reproducible; the lognormal tail yields the rare extremely-noisy
   configurations of Table 2. *)
let noise_sigma t config =
  check_config t config;
  (* Rng.derive, not Hashtbl.hash: the polymorphic hash truncates its
     input and is free to change across OCaml releases, which would
     silently reshuffle every configuration's noise level. *)
  let h =
    Rng.derive ~seed:t.salt
      (List.map (fun v -> Rng.I v) (Array.to_list config))
    land 0x3FFFFFFF
  in
  let u = (float_of_int h +. 0.5) /. 1073741824.0 in
  let z = Distributions.normal_quantile u in
  t.spec.base_sigma *. exp (t.spec.field_sd *. (z -. (0.5 *. t.spec.field_sd)))

let measure t ~rng ~run_index config =
  let sigma = noise_sigma t config in
  let model = Noise.scale_gaussian t.noise sigma in
  Noise.sample model ~rng ~run_index ~true_value:(true_runtime t config)

let mean_runtime t ~rng ~n config =
  if n <= 0 then invalid_arg "Spapt.mean_runtime: n must be positive";
  let acc = ref 0.0 in
  for run_index = 1 to n do
    acc := !acc +. measure t ~rng ~run_index config
  done;
  !acc /. float_of_int n
