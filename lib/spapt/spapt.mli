(** The 11 SPAPT autotuning search problems used in the paper's
    evaluation.

    Each benchmark bundles a kernel, its tunable transformation knobs
    (cache-tile sizes, register-tile / unroll-and-jam factors, unroll
    factors — the parameter kinds of SPAPT), a machine model, and a
    calibrated measurement-noise model.  A configuration is a point in the
    integer knob space; measuring it once yields one noisy runtime sample,
    exactly the operation whose count the paper minimizes. *)

type knob =
  | Tile of { loop : string; sizes : int array }
      (** Cache-tile size chosen from [sizes] (1 = off).  Loops sharing a
          [group] are tiled together into one rectangular tile nest. *)
  | Jam of { loop : string; max_factor : int }
      (** Register tiling by unroll-and-jam, factor in [1 .. max_factor]. *)
  | Unroll of { loop : string; max_factor : int }
      (** Plain unrolling, factor in [1 .. max_factor]. *)

val knob_cardinality : knob -> int
val knob_name : knob -> string

type t
(** A benchmark: immutable description plus a memo table of evaluated
    configurations. *)

val name : t -> string
val kernel : t -> Altune_kernellang.Ast.kernel
val knobs : t -> knob list
val dim : t -> int
(** Number of knobs = feature dimensionality. *)

val space_size : t -> float
(** Product of knob cardinalities. *)

val create :
  ?machine:Altune_machine.Machine.config -> ?cache_capacity:int -> string -> t
(** [create name] builds the named benchmark with its calibrated noise
    model.  Raises [Not_found] for unknown names.  [cache_capacity]
    (default 8192) bounds the private evaluation cache; at capacity,
    entries are evicted second-chance ("clock") oldest-unreferenced
    first.  Eviction only ever costs recomputation — every cached value
    is a deterministic function of its configuration.  The cache exports
    [spapt.cache.hits]/[.misses]/[.evictions] counters and the
    [spapt.cache.entries] gauge to {!Altune_obs.Metrics}. *)

val all : unit -> t list
(** All 11 benchmarks, Table 1 order. *)

val random_config : t -> Altune_prng.Rng.t -> int array
(** Uniform configuration; entry [i] ranges over knob [i]'s values. *)

val config_valid : t -> int array -> bool

val recipe : t -> int array -> Altune_kernellang.Verify.step list
(** The configuration's transformation steps in application order (tile
    nests, then unroll-and-jams innermost-first, then unrolls), with
    identity steps dropped.  Raises [Invalid_argument] if the
    configuration is out of range. *)

val transformed : t -> int array -> Altune_kernellang.Ast.kernel
(** The kernel with the configuration's transformations applied —
    [recipe] run through {!Altune_kernellang.Verify.apply_steps}.  Raises
    [Invalid_argument] if the configuration is out of range; transformation
    recipes are total over valid configurations.  With forking enabled
    (the default) the recipe is resolved through the benchmark's
    transformation-prefix trie ({!Fork}), which is byte-identical to
    from-scratch application. *)

val set_fork : t -> bool -> unit
(** Enable or disable prefix-trie resolution for {!transformed},
    {!verify_config} and every measurement behind them.  Disabling is
    for differential baselines (e.g. [altune check --fork-audit], the
    [--fork] bench section): resolved kernels are byte-identical either
    way. *)

val fork_enabled : t -> bool

val fork_stats : t -> Fork.stats
(** Prefix-reuse counters of the benchmark's trie. *)

val set_pool : t -> Altune_exec.Pool.t option -> unit
(** Give the benchmark an execution pool for {!prepare} to fan batches
    out on.  [None] (the default) computes batches sequentially. *)

val prepare : t -> int array list -> unit
(** Warm the evaluation cache for a batch of configurations about to be
    measured: uncached members (deduplicated, invalid ones skipped) are
    evaluated — in parallel on the {!set_pool} pool when one is set with
    jobs > 1 — and the results written back in input order.  Because
    every evaluation is deterministic, a warmed cache changes no
    observable output at any job count; subsequent {!measure} /
    {!true_runtime} calls just stop paying for the transform.  No-op
    when a {!set_share} hook is installed (the shared memo owns
    evaluation state) and for batches smaller than two. *)

val small_params : t -> (string * int) list
(** Problem-size overrides small enough for interpreter-based soundness
    checks of this benchmark. *)

val verify_config : t -> int array -> Altune_kernellang.Verify.verdict
(** Independent step-by-step soundness audit of the configuration's
    recipe ({!Altune_kernellang.Verify.run} at [small_params]). *)

val features : t -> int array -> float array
(** Scaled-and-centred feature vector (the paper's Section 4.5
    normalization), deterministic per benchmark. *)

type share =
  key:string -> (unit -> float * float) -> float * float
(** A sharing function for evaluation results: given a configuration's
    string key (same format as {!Altune_core.Problem.key}) and the
    thunk computing [(true runtime, compile seconds)], return the
    result — typically from a process-wide compute-once memo keyed by
    (kernel, config). *)

val set_share : t -> share option -> unit
(** [set_share t (Some via)] routes every evaluation of [t] (the
    transform + dependence re-analysis + machine-model pricing behind
    {!true_runtime}, {!compile_seconds} and {!measure}) through [via]
    instead of [t]'s private per-instance cache, which is then bypassed
    entirely.  This is the cross-session sharing hook of the tuning
    server: many sessions, each with its own [t], evaluate any given
    (kernel, config) pair exactly once process-wide.  [via] must be
    deterministic per key (the default computation is) and domain-safe
    if hooked instances are driven in parallel.  [set_share t None]
    restores the private cache. *)

val true_runtime : t -> int array -> float
(** Deterministic machine-model runtime, memoized per configuration. *)

val compile_seconds : t -> int array -> float
(** Simulated compile cost of the configuration's binary. *)

val noise_sigma : t -> int array -> float
(** The configuration's relative noise level — the heteroskedastic field
    (most configurations are quiet; a hash-derived lognormal tail makes
    some extremely noisy, as in the paper's Table 2). *)

val measure : t -> rng:Altune_prng.Rng.t -> run_index:int -> int array -> float
(** One noisy runtime measurement, in seconds. *)

val mean_runtime : t -> rng:Altune_prng.Rng.t -> n:int -> int array -> float
(** Mean of [n] fresh measurements (the fixed sampling plan's label). *)
