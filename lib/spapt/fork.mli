(** Transformation-prefix trie: compilation forking for recipe batches.

    Sibling candidates in an autotuning batch usually share a recipe
    prefix (same tile nest, different unroll factor).  Re-running
    {!Altune_kernellang.Verify.apply_steps} from scratch re-transforms
    and re-analyzes that shared prefix once per sibling; the trie pays
    for each distinct prefix once.  Nodes are keyed by the normalized
    step list ({!Altune_kernellang.Verify.normalize_steps}, edges
    labelled with {!Altune_kernellang.Verify.step_key}); each node
    caches the kernel transformed up to that prefix and, on demand, its
    re-run dependence analysis.  Resolving a recipe walks to the deepest
    cached ancestor and applies only the suffix.

    Determinism contract: a resolved kernel is {e byte-identical} to
    from-scratch application — cached nodes were produced by the same
    [apply_step] calls on the same ASTs, and normalization only drops
    steps {!Altune_kernellang.Transform} treats as exact no-ops.  The
    trie is therefore safe to leave enabled for measurement paths that
    promise bit-reproducible output.  [altune check --fork-audit]
    re-establishes this differentially on sampled recipes.

    Thread safety: all trie state is guarded by one mutex; step
    application and dependence analysis run outside the lock and insert
    first-wins (concurrent inserts compute identical values).  Safe to
    share across {!Altune_exec.Pool} tasks. *)

module Ast = Altune_kernellang.Ast
module Verify = Altune_kernellang.Verify
module Transform = Altune_kernellang.Transform
module Dependence = Altune_kernellang.Dependence

type t

val create : ?max_nodes:int -> Ast.kernel -> t
(** A trie rooted at the untransformed kernel.  At most [max_nodes]
    (default 4096) prefixes are cached; past the cap, resolution still
    works but stops inserting (no eviction: trie nodes are shared
    ancestors, evicting one would orphan its subtree). *)

val root_kernel : t -> Ast.kernel

val resolve :
  t -> Verify.step list -> (Ast.kernel, Transform.error) result
(** The kernel with the steps applied, byte-identical to
    [Verify.apply_steps (Verify.normalize_steps steps) (root_kernel t)]
    (and hence to applying the raw steps, by the normalization
    contract).  Reuses the deepest cached prefix and caches every new
    prefix on the way down. *)

val resolved_summary :
  t -> Verify.step list -> (Dependence.summary, Transform.error) result
(** The dependence summary of the resolved kernel, cached at its trie
    node (computed at most once per node). *)

val audit :
  ?param_overrides:(string * int) list ->
  ?tolerance:float ->
  ?subject:string ->
  t ->
  Verify.step list ->
  Verify.verdict
(** Trie-accelerated {!Altune_kernellang.Verify.run} over the normalized
    steps: pre-step kernels come from cached nodes and legality consults
    cached dependence summaries ({!Verify.legality_in}), while the
    interpreter-based checks still execute in full.  The verdict is
    identical to [Verify.run] on the same normalized step list. *)

type stats = {
  nodes : int;  (** Cached prefixes, root excluded. *)
  resolves : int;  (** [resolve]/[audit] walks performed. *)
  steps_reused : int;  (** Steps satisfied by a cached node. *)
  steps_applied : int;  (** Steps applied (and cached) on a miss. *)
  summaries_reused : int;
  summaries_computed : int;
}

val stats : t -> stats

val reuse_rate : stats -> float
(** [steps_reused / (steps_reused + steps_applied)]; 0 before any
    resolution. *)
