module Ast = Altune_kernellang.Ast
module Verify = Altune_kernellang.Verify
module Transform = Altune_kernellang.Transform
module Dependence = Altune_kernellang.Dependence

type node = {
  kernel : Ast.kernel;
  children : (string, node) Hashtbl.t;  (* Verify.step_key -> child *)
  mutable summary : Dependence.summary option;
      (* Computed at most once, outside the lock, published under it.
         Deliberately not Lazy.t: lazy forcing is not domain-safe, and
         the trie is shared across pool tasks. *)
}

type stats = {
  nodes : int;
  resolves : int;
  steps_reused : int;
  steps_applied : int;
  summaries_reused : int;
  summaries_computed : int;
}

type t = {
  root : node;
  max_nodes : int;
  lock : Mutex.t;
  mutable stats : stats;
}

let mk_node kernel = { kernel; children = Hashtbl.create 4; summary = None }

let create ?(max_nodes = 4096) kernel =
  {
    root = mk_node kernel;
    max_nodes;
    lock = Mutex.create ();
    stats =
      {
        nodes = 0;
        resolves = 0;
        steps_reused = 0;
        steps_applied = 0;
        summaries_reused = 0;
        summaries_computed = 0;
      };
  }

let root_kernel t = t.root.kernel

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let stats t = with_lock t (fun () -> t.stats)

let reuse_rate s =
  let total = s.steps_reused + s.steps_applied in
  if total = 0 then 0.0
  else float_of_int s.steps_reused /. float_of_int total

(* Advance one (normalized) step from a walk position.  A cached child is
   a pure lookup; a miss applies the step outside the lock and inserts
   first-wins — if another domain inserted meanwhile, its node is adopted
   (the values are deterministic, so both are byte-identical).  Past
   [max_nodes] the walk falls off the trie and continues uncached. *)
let advance t node_opt kernel step =
  let key = Verify.step_key step in
  let cached =
    match node_opt with
    | None -> None
    | Some n -> with_lock t (fun () -> Hashtbl.find_opt n.children key)
  in
  match cached with
  | Some child ->
      with_lock t (fun () ->
          t.stats <-
            { t.stats with steps_reused = t.stats.steps_reused + 1 });
      Ok (Some child, child.kernel)
  | None -> (
      match Verify.apply_step step kernel with
      | Error e -> Error e
      | Ok k' ->
          let child =
            match node_opt with
            | None -> None
            | Some n ->
                with_lock t (fun () ->
                    match Hashtbl.find_opt n.children key with
                    | Some existing -> Some existing
                    | None ->
                        if t.stats.nodes >= t.max_nodes then None
                        else begin
                          let c = mk_node k' in
                          Hashtbl.replace n.children key c;
                          t.stats <-
                            { t.stats with nodes = t.stats.nodes + 1 };
                          Some c
                        end)
          in
          with_lock t (fun () ->
              t.stats <-
                { t.stats with steps_applied = t.stats.steps_applied + 1 });
          (match child with
          | Some c -> Ok (Some c, c.kernel)
          | None -> Ok (None, k')))

let count_resolve t =
  with_lock t (fun () ->
      t.stats <- { t.stats with resolves = t.stats.resolves + 1 })

let resolve_node t steps =
  let steps = Verify.normalize_steps steps in
  count_resolve t;
  let rec go node_opt kernel = function
    | [] -> Ok (node_opt, kernel)
    | s :: rest -> (
        match advance t node_opt kernel s with
        | Error _ as e -> e
        | Ok (n', k') -> go n' k' rest)
  in
  go (Some t.root) t.root.kernel steps

let resolve t steps = Result.map snd (resolve_node t steps)

let node_summary t node =
  match with_lock t (fun () -> node.summary) with
  | Some s ->
      with_lock t (fun () ->
          t.stats <-
            {
              t.stats with
              summaries_reused = t.stats.summaries_reused + 1;
            });
      s
  | None ->
      let s = Dependence.summarize node.kernel in
      with_lock t (fun () ->
          t.stats <-
            {
              t.stats with
              summaries_computed = t.stats.summaries_computed + 1;
            };
          match node.summary with
          | Some s' -> s'
          | None ->
              node.summary <- Some s;
              s)

let resolved_summary t steps =
  match resolve_node t steps with
  | Error _ as e -> e
  | Ok (Some n, _) -> Ok (node_summary t n)
  | Ok (None, k) ->
      let s = Dependence.summarize k in
      with_lock t (fun () ->
          t.stats <-
            {
              t.stats with
              summaries_computed = t.stats.summaries_computed + 1;
            });
      Ok s

(* Trie-accelerated Verify.run.  The control flow and every emitted
   status mirror Verify.run on the normalized step list exactly; the
   only differences are where the pre-step kernel and its dependence
   summary come from. *)
let audit ?param_overrides ?tolerance ?(subject = "kernel") t steps =
  let steps = Verify.normalize_steps steps in
  count_resolve t;
  let dep_status node =
    match node_summary t node with
    | exception e ->
        Verify.Fail ("dependence analysis raised: " ^ Printexc.to_string e)
    | s -> Verify.summary_sound s
  in
  let original_report =
    {
      Verify.step = "original";
      checks =
        [
          {
            Verify.check_name = "well-formed";
            status = Verify.well_formed ?param_overrides t.root.kernel;
          };
          { Verify.check_name = "dependences"; status = dep_status t.root };
        ];
    }
  in
  let legality node_opt cur s =
    match s with
    | Verify.Unroll _ | Verify.Skew _ -> Verify.Pass
    | _ -> (
        match node_opt with
        | None -> Verify.legality cur s
        | Some n -> (
            match node_summary t n with
            | exception e ->
                Verify.Fail
                  ("legality analysis raised: " ^ Printexc.to_string e)
            | summary -> Verify.legality_in summary cur s))
  in
  let rec go node_opt cur acc = function
    | [] -> List.rev acc
    | s :: rest -> (
        let label = Verify.step_to_string s in
        let leg =
          { Verify.check_name = "legality"; status = legality node_opt cur s }
        in
        match advance t node_opt cur s with
        | Error e ->
            let applies =
              {
                Verify.check_name = "applies";
                status = Verify.Fail (Transform.error_to_string e);
              }
            in
            let skipped =
              List.map
                (fun s' ->
                  {
                    Verify.step = Verify.step_to_string s';
                    checks =
                      [
                        {
                          Verify.check_name = "all";
                          status =
                            Verify.Skipped "an earlier step failed to apply";
                        };
                      ];
                  })
                rest
            in
            List.rev_append acc
              ({ Verify.step = label; checks = [ leg; applies ] } :: skipped)
        | Ok (n', k') ->
            let checks =
              leg
              :: { Verify.check_name = "applies"; status = Verify.Pass }
              :: Verify.check_pair ?param_overrides ?tolerance ~original:cur
                   ~transformed:k' ()
            in
            go n' k' ({ Verify.step = label; checks } :: acc) rest)
  in
  {
    Verify.subject;
    reports = original_report :: go (Some t.root) t.root.kernel [] steps;
  }
