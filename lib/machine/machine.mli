(** Analytic machine model.

    Plays the role of the paper's Core i7-4770K + gcc testbed: given the
    static summary of a (transformed) kernel, it estimates a deterministic
    "true" runtime in seconds.  The model captures exactly the effects the
    tuned transformations trade off:

    - {b loop overhead}: every loop iteration pays a compare/increment/
      branch cost, so unrolling helps by shrinking iteration counts;
    - {b cache behaviour}: per-access miss costs from a reuse-scope
      analysis — for each access, the largest enclosing loop whose working
      set fits in a cache level determines where its misses are served, so
      tiling helps by shrinking working sets;
    - {b register pressure}: too many simultaneously-live values in an
      innermost body cause spills, so aggressive unroll-and-jam eventually
      backfires;
    - {b instruction-cache pressure}: unrolled bodies that outgrow the
      I-cache pay a per-iteration penalty, producing the climb-then-plateau
      runtime shape the paper's Figure 2 shows;
    - {b issue width}: straight-line work is throughput-limited.

    The model is deliberately analytic (no trace simulation): autotuning
    experiments evaluate hundreds of thousands of configurations. *)

type cache_level = {
  size_bytes : float;
  line_bytes : float;
  latency_cycles : float;
}

type config = {
  l1 : cache_level;
  l2 : cache_level;
  memory_latency : float;  (** Cycles to serve an L2 miss. *)
  frequency_ghz : float;
  issue_width : float;  (** Instructions retired per cycle. *)
  num_fp_registers : int;
  icache_bytes : float;
  icache_penalty : float
      (** Extra cycles per innermost iteration and per I-cache-size excess
          factor once the unrolled body overflows the I-cache. *);
  flop_cycles : float;
  iop_cycles : float;
  loop_overhead_cycles : float;  (** Per loop iteration. *)
  loop_setup_cycles : float;  (** Per loop entry. *)
  spill_cycles : float;  (** Per excess live value per iteration. *)
  element_bytes : float;  (** Array element size (doubles). *)
  bytes_per_instruction : float;  (** For I-cache footprint estimation. *)
}

val default : config
(** Loosely modeled on the paper's i7-4770K: 32 KB L1 / 256 KB L2, 3.4 GHz,
    4-wide issue, 16 architectural FP registers. *)

type breakdown = {
  compute_cycles : float;
  memory_cycles : float;
  overhead_cycles : float;
  spill_penalty_cycles : float;
  icache_penalty_cycles : float;
  total_cycles : float;
  seconds : float;
}

val estimate : config -> Altune_kernellang.Analysis.t -> breakdown
(** Full cost breakdown for an analyzed kernel. *)

val runtime_seconds : config -> Altune_kernellang.Analysis.t -> float
(** [(estimate cfg a).seconds]. *)

val compile_seconds : config -> Altune_kernellang.Ast.kernel -> float
(** Compilation-time model: a fixed invocation cost plus a per-AST-node
    cost, so heavily unrolled variants take visibly longer to "compile",
    as they do with a real compiler. *)

val ast_size : Altune_kernellang.Ast.kernel -> int
(** Node count of a kernel, the compile-time driver. *)

type evaluation = { runtime : float; compile : float }
(** Both priced quantities of one transformed kernel — what a tuner needs
    per candidate, in one call. *)

val evaluate : config -> Altune_kernellang.Ast.kernel -> evaluation
(** [{runtime = runtime_seconds cfg (Analysis.analyze k); compile =
    compile_seconds cfg k}].  Pure, so batch callers may fan kernels out
    across domains and keep slot-indexed results deterministic. *)

val evaluate_all :
  config -> Altune_kernellang.Ast.kernel list -> evaluation list
(** [evaluate] over a batch, in input order. *)
