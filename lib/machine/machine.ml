module Analysis = Altune_kernellang.Analysis
module Ast = Altune_kernellang.Ast

type cache_level = {
  size_bytes : float;
  line_bytes : float;
  latency_cycles : float;
}

type config = {
  l1 : cache_level;
  l2 : cache_level;
  memory_latency : float;
  frequency_ghz : float;
  issue_width : float;
  num_fp_registers : int;
  icache_bytes : float;
  icache_penalty : float;
  flop_cycles : float;
  iop_cycles : float;
  loop_overhead_cycles : float;
  loop_setup_cycles : float;
  spill_cycles : float;
  element_bytes : float;
  bytes_per_instruction : float;
}

let default =
  {
    l1 = { size_bytes = 32_768.0; line_bytes = 64.0; latency_cycles = 4.0 };
    l2 = { size_bytes = 262_144.0; line_bytes = 64.0; latency_cycles = 12.0 };
    memory_latency = 180.0;
    frequency_ghz = 3.4;
    issue_width = 4.0;
    num_fp_registers = 16;
    (* Sized like the decoded-uop cache rather than the 32 KB L1I: that is
       the structure unrolled loop bodies actually overflow first. *)
    icache_bytes = 6144.0;
    icache_penalty = 6.0;
    flop_cycles = 0.5;
    iop_cycles = 0.05;
    loop_overhead_cycles = 2.0;
    loop_setup_cycles = 6.0;
    spill_cycles = 6.0;
    element_bytes = 8.0;
    bytes_per_instruction = 4.0;
  }

type breakdown = {
  compute_cycles : float;
  memory_cycles : float;
  overhead_cycles : float;
  spill_penalty_cycles : float;
  icache_penalty_cycles : float;
  total_cycles : float;
  seconds : float;
}

(* A stream groups accesses to the same array with identical affine
   coefficients: translated copies of one another, as unrolling produces.
   [distinct] counts distinct constant offsets (separate addresses),
   [mult] total accesses per iteration (for latency accounting). *)
type stream = { rep : Analysis.access; distinct : float; mult : float }

let streams_of_accesses (accesses : Analysis.access list) : stream list =
  let module M = Map.Make (struct
    type t = string * (string * float) list * bool

    let compare = compare
  end) in
  let add acc (a : Analysis.access) =
    let key = (a.array, a.coeffs, a.affine) in
    let offsets, mult =
      match M.find_opt key acc with
      | Some (offsets, mult) -> (offsets, mult)
      | None -> ([], 0.0)
    in
    let offsets =
      if List.mem a.offset offsets then offsets else a.offset :: offsets
    in
    M.add key (offsets, mult +. 1.0) acc
  in
  let grouped = List.fold_left add M.empty accesses in
  M.fold
    (fun (array, coeffs, affine) (offsets, mult) acc ->
      {
        rep = { array; coeffs; affine; offset = 0.0; is_write = false };
        distinct = float_of_int (List.length offsets);
        mult;
      }
      :: acc)
    grouped []

(* Distinct bytes a stream touches across one full execution of the loop
   window [chain] (outermost first).  Bounded both by the iteration-space
   product and by the address span of the affine stream; the [distinct]
   translated copies of an unrolled stream fill in the gaps the enlarged
   loop step leaves. *)
let footprint cfg (chain : Analysis.loop_node list) (st : stream) =
  let a = st.rep in
  if not a.affine then
    (* Unknown pattern: worst case, one line per iteration of the window. *)
    List.fold_left (fun acc (l : Analysis.loop_node) -> acc *. Float.max 1.0 l.trips)
      cfg.l1.line_bytes chain
  else begin
    let product = ref 1.0 in
    let span = ref 0.0 in
    let min_stride = ref infinity in
    List.iter
      (fun (l : Analysis.loop_node) ->
        match List.assoc_opt l.index a.coeffs with
        | Some c when c <> 0.0 ->
            let stride = Float.abs c *. float_of_int l.step in
            product := !product *. Float.max 1.0 l.trips;
            span := !span +. (stride *. Float.max 0.0 (l.trips -. 1.0));
            min_stride := Float.min !min_stride stride
        | Some _ | None -> ())
      chain;
    let elements =
      Float.min (!product *. st.distinct) (!span +. st.distinct)
    in
    (* Cache-line granularity: elements reached with a stride of a full
       line or more each occupy their own line; dense strides pack.  The
       distinct copies of a merged stream divide the effective stride. *)
    let bytes_per_element =
      if !min_stride = infinity then cfg.element_bytes
      else
        Float.min cfg.l1.line_bytes
          (Float.max cfg.element_bytes
             (!min_stride /. st.distinct *. cfg.element_bytes))
    in
    Float.max cfg.l1.line_bytes (elements *. bytes_per_element)
  end

(* Working set of one full execution of [node]: sum of the footprints of
   every access in its subtree, each taken over the loops between [node]
   and the access.  Overlap between accesses to the same array is ignored
   (conservative). *)
let working_set cfg (node : Analysis.loop_node) =
  let rec go chain node =
    let own =
      List.fold_left
        (fun acc st -> acc +. footprint cfg chain st)
        0.0
        (streams_of_accesses node.Analysis.accesses)
    in
    List.fold_left
      (fun acc child -> acc +. go (chain @ [ child ]) child)
      own node.Analysis.children
  in
  go [ node ] node

(* Memory cost of one access executed [executions] times total, where
   [path] is the chain of enclosing loops outermost-first (last element is
   the loop whose body contains the access).

   Reuse-scope analysis: for a cache level C, find the outermost enclosing
   loop whose full-execution working set fits in C; everything fetched
   during one execution of that loop stays resident, so the number of
   fetches that miss C is (executions of that loop) x (distinct lines the
   access touches during one such execution). *)
let access_cost cfg ~path ~ws_of_suffix (st : stream) =
  let a = st.rep in
  let n = List.length path in
  (* entries.(j) = number of times loop path[j] is entered; trips
     products of enclosing loops. *)
  let trips = Array.of_list (List.map (fun (l : Analysis.loop_node) -> Float.max 1.0 l.trips) path) in
  let entries = Array.make n 1.0 in
  for j = 1 to n - 1 do
    entries.(j) <- entries.(j - 1) *. trips.(j - 1)
  done;
  let total_executions = entries.(n - 1) *. trips.(n - 1) in
  let total_accesses = total_executions *. st.mult in
  let lines_touched j =
    (* Distinct lines touched during one full execution of path[j..]. *)
    let window = List.filteri (fun i _ -> i >= j) path in
    footprint cfg window st /. cfg.l1.line_bytes
  in
  let fetches_beyond level_size =
    (* Outermost j such that the working set of path[j..] fits. *)
    let rec find j =
      if j >= n then None
      else if ws_of_suffix j <= level_size then Some j
      else find (j + 1)
    in
    match find 0 with
    | Some j -> entries.(j) *. lines_touched j
    | None ->
        (* Not even one innermost-loop execution fits: miss on every
           access. *)
        total_accesses
  in
  if not a.affine then
    (* Gather: every execution reaches L2, half reach memory. *)
    total_accesses
    *. (cfg.l2.latency_cycles +. (0.5 *. cfg.memory_latency))
  else begin
    let l1_misses = Float.min (fetches_beyond cfg.l1.size_bytes) total_accesses in
    let l2_misses = Float.min (fetches_beyond cfg.l2.size_bytes) l1_misses in
    (total_accesses *. cfg.l1.latency_cycles)
    +. (l1_misses *. (cfg.l2.latency_cycles -. cfg.l1.latency_cycles))
    +. (l2_misses *. cfg.memory_latency)
  end

let zero =
  {
    compute_cycles = 0.0;
    memory_cycles = 0.0;
    overhead_cycles = 0.0;
    spill_penalty_cycles = 0.0;
    icache_penalty_cycles = 0.0;
    total_cycles = 0.0;
    seconds = 0.0;
  }

let add_breakdown a b =
  {
    compute_cycles = a.compute_cycles +. b.compute_cycles;
    memory_cycles = a.memory_cycles +. b.memory_cycles;
    overhead_cycles = a.overhead_cycles +. b.overhead_cycles;
    spill_penalty_cycles = a.spill_penalty_cycles +. b.spill_penalty_cycles;
    icache_penalty_cycles = a.icache_penalty_cycles +. b.icache_penalty_cycles;
    total_cycles = 0.0;
    seconds = 0.0;
  }

(* Live float values in an innermost iteration: loop-invariant array
   elements are register-promoted, each statement needs a destination, and
   a few scratch temporaries. *)
let register_pressure (node : Analysis.loop_node) =
  let invariant =
    List.filter
      (fun (a : Analysis.access) ->
        a.affine && not (List.mem_assoc node.index a.coeffs))
      node.accesses
  in
  (* Identical invariant references (e.g. the read and write of an
     accumulator) share one register. *)
  let distinct =
    List.sort_uniq compare
      (List.map
         (fun (a : Analysis.access) -> (a.array, a.coeffs, a.offset))
         invariant)
  in
  List.length distinct + int_of_float node.stmts + 4

let rec cost_of_node cfg ~path ~path_ws (node : Analysis.loop_node) =
  (* [path_ws] carries the working set of each ancestor (computed once at
     that level) so suffix lookups do not recompute subtree footprints. *)
  let path = path @ [ node ] in
  let path_ws = path_ws @ [ working_set cfg node ] in
  let n = List.length path in
  let entries =
    List.fold_left
      (fun acc (l : Analysis.loop_node) -> acc *. Float.max 1.0 l.trips)
      1.0
      (List.filteri (fun i _ -> i < n - 1) path)
  in
  let iterations = entries *. Float.max 0.0 node.trips in
  let ws_arr = Array.of_list path_ws in
  let ws_of_suffix j = if j >= Array.length ws_arr then 0.0 else ws_arr.(j) in
  let mem =
    List.fold_left
      (fun acc st -> acc +. access_cost cfg ~path ~ws_of_suffix st)
      0.0
      (streams_of_accesses node.accesses)
  in
  let insts = (2.0 *. node.stmts) +. node.flops +. node.iops in
  let compute_per_iter =
    Float.max
      ((node.flops *. cfg.flop_cycles) +. (node.iops *. cfg.iop_cycles))
      (insts /. cfg.issue_width)
  in
  let compute = iterations *. compute_per_iter in
  let overhead =
    (entries *. cfg.loop_setup_cycles)
    +. (iterations *. cfg.loop_overhead_cycles)
  in
  let spill =
    if node.children = [] then begin
      let pressure = register_pressure node in
      let excess = float_of_int (max 0 (pressure - cfg.num_fp_registers)) in
      iterations *. excess *. cfg.spill_cycles
    end
    else 0.0
  in
  let icache =
    if node.children = [] then begin
      let code_bytes =
        Analysis.innermost_code_size node *. cfg.bytes_per_instruction
      in
      let overflow = Float.max 0.0 ((code_bytes /. cfg.icache_bytes) -. 1.0) in
      iterations *. overflow *. cfg.icache_penalty
    end
    else 0.0
  in
  let own =
    {
      zero with
      compute_cycles = compute;
      memory_cycles = mem;
      overhead_cycles = overhead;
      spill_penalty_cycles = spill;
      icache_penalty_cycles = icache;
    }
  in
  List.fold_left
    (fun acc child -> add_breakdown acc (cost_of_node cfg ~path ~path_ws child))
    own node.children

let estimate cfg (a : Analysis.t) =
  let b =
    List.fold_left
      (fun acc root ->
        add_breakdown acc (cost_of_node cfg ~path:[] ~path_ws:[] root))
      zero a.roots
  in
  let straightline = a.straightline_stmts *. 2.0 /. cfg.issue_width in
  let total =
    b.compute_cycles +. b.memory_cycles +. b.overhead_cycles
    +. b.spill_penalty_cycles +. b.icache_penalty_cycles +. straightline
  in
  {
    b with
    compute_cycles = b.compute_cycles +. straightline;
    total_cycles = total;
    seconds = total /. (cfg.frequency_ghz *. 1e9);
  }

let runtime_seconds cfg a = (estimate cfg a).seconds

let rec expr_size (e : Ast.expr) =
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> 1
  | Index (_, subs) -> 1 + List.fold_left (fun n s -> n + expr_size s) 0 subs
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Neg a | Sqrt a -> 1 + expr_size a

let rec cond_size (c : Ast.cond) =
  match c with
  | Cmp (_, a, b) -> 1 + expr_size a + expr_size b
  | And (a, b) | Or (a, b) -> 1 + cond_size a + cond_size b
  | Not a -> 1 + cond_size a

let rec stmt_size (s : Ast.stmt) =
  match s with
  | Assign (Scalar_lhs _, e) -> 2 + expr_size e
  | Assign (Array_lhs (_, subs), e) ->
      2 + expr_size e + List.fold_left (fun n s -> n + expr_size s) 0 subs
  | Seq ss -> List.fold_left (fun n s -> n + stmt_size s) 0 ss
  | For l -> 2 + expr_size l.lo + expr_size l.hi + stmt_size l.body
  | If (c, t, e) -> (
      1 + cond_size c + stmt_size t
      + match e with None -> 0 | Some e -> stmt_size e)

let ast_size (k : Ast.kernel) = stmt_size k.body

(* ~60 ms invocation overhead plus per-node cost, roughly gcc -O2 on small
   kernels. *)
let compile_seconds _cfg (k : Ast.kernel) =
  0.06 +. (2e-5 *. float_of_int (ast_size k))

type evaluation = { runtime : float; compile : float }

let evaluate cfg (k : Ast.kernel) =
  {
    runtime = runtime_seconds cfg (Analysis.analyze k);
    compile = compile_seconds cfg k;
  }

let evaluate_all cfg ks = List.map (evaluate cfg) ks
