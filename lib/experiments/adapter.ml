module Spapt = Altune_spapt.Spapt
module Verify = Altune_kernellang.Verify
module Problem = Altune_core.Problem

let problem_of ?(verify = false) bench =
  (* One audit per distinct configuration: measurements repeat configs
     (the fixed plan measures each 35 times), the audit result does not
     change between repeats. *)
  let audited : (int array, unit) Hashtbl.t = Hashtbl.create 64 in
  let gate c =
    if not (Hashtbl.mem audited c) then begin
      let verdict = Spapt.verify_config bench c in
      if not (Verify.ok verdict) then
        failwith
          (Format.asprintf
             "Adapter: unsound transformation recipe rejected:@\n%a"
             Verify.pp_verdict verdict);
      Hashtbl.replace audited (Array.copy c) ()
    end
  in
  {
    Problem.name = Spapt.name bench;
    dim = Spapt.dim bench;
    space_size = Spapt.space_size bench;
    random_config = (fun rng -> Spapt.random_config bench rng);
    features = (fun c -> Spapt.features bench c);
    measure =
      (fun ~rng ~run_index c ->
        if verify then gate c;
        Spapt.measure bench ~rng ~run_index c);
    compile_seconds = (fun c -> Spapt.compile_seconds bench c);
    prepare = (fun cs -> Spapt.prepare bench cs);
  }
