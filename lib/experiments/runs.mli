(** Shared execution of the three sampling plans on a benchmark, fanned
    out over the process-wide domain pool, with compute-once caching so
    Table 1, Figure 5 and Figure 6 do not recompute one another's runs
    (and two domains never duplicate a run).

    Every (plan, repetition) pair runs as one pool task with its own
    derived RNG seed and its own problem instance, so curves are
    bit-identical at any job count. *)

type plan_curves = {
  bench : string;
  all_observations : Altune_core.Experiment.curve;  (** Fixed 35. *)
  one_observation : Altune_core.Experiment.curve;  (** Fixed 1. *)
  variable_observations : Altune_core.Experiment.curve;  (** Adaptive. *)
}

val set_jobs : ?on_event:(Altune_exec.Pool.event -> unit) -> int -> unit
(** [set_jobs j] fixes the parallelism of the shared pool (the CLI's
    [-j/--jobs]); [1] means fully sequential.  Replaces any existing pool,
    so call it before experiments start.  [on_event] receives the pool's
    per-task progress events (for live reporting).  Default without a
    call: [Altune_exec.Pool.default_jobs ()]. *)

val jobs : unit -> int
(** Parallelism of the shared pool ([set_jobs]'s value, or the default). *)

val set_fault : Altune_exec.Fault.spec option -> unit
(** [set_fault (Some spec)] injects deterministic faults (the CLI's
    [--fault-spec]) into every learner run launched by {!curves_for} and
    the drivers; each run's injector is seeded from its run key, so
    results stay bit-identical at any job count.  Set it before
    experiments start (cached curves are keyed by the spec).  [None]
    (the default) disables injection. *)

val fault_spec : unit -> Altune_exec.Fault.spec option

val pool : unit -> Altune_exec.Pool.t
(** The shared pool, created on first use.  Drivers fan benchmarks out on
    it; {!curves_for} fans repetitions out on it (nested use is safe). *)

val dataset_for :
  Altune_spapt.Spapt.t -> Scale.t -> seed:int -> Altune_core.Dataset.t
(** Cached dataset for a benchmark at a scale (deterministic per seed). *)

val curves_for :
  Altune_spapt.Spapt.t -> Scale.t -> seed:int -> plan_curves
(** Curves for all three plans, averaged over [scale.reps] repetitions
    with seeds derived from [seed]; cached per (benchmark, scale, seed). *)

val clear_cache : unit -> unit
