(** Adapts a SPAPT benchmark to the active learner's abstract
    {!Altune_core.Problem.t} interface. *)

val problem_of : ?verify:bool -> Altune_spapt.Spapt.t -> Altune_core.Problem.t
(** With [~verify:true], every configuration is audited with
    {!Altune_spapt.Spapt.verify_config} before its first measurement, and
    an unsound recipe fails fast with the full structured verdict in the
    exception message ([Failure]) instead of silently feeding a corrupted
    runtime to the learner.  Each distinct configuration is audited once;
    repeat measurements reuse the cached approval.  Default [false]
    (audits interpret the kernel twice per new configuration, which
    dominates the simulated measurement cost). *)
