module Spapt = Altune_spapt.Spapt
module Rng = Altune_prng.Rng
module Learner = Altune_core.Learner
module Experiment = Altune_core.Experiment
module Welford = Altune_stats.Welford
module Descriptive = Altune_stats.Descriptive
module Report = Altune_report.Report
module Pool = Altune_exec.Pool
module Fault = Altune_exec.Fault

let default_benchmarks = Altune_spapt.Kernels.names

let bench_list = function
  | Some names -> List.map Spapt.create names
  | None -> List.map Spapt.create default_benchmarks

(* Fan a per-benchmark computation out across the shared pool.  Each task
   owns its benchmark value exclusively (Spapt.t memoizes ground truth
   internally, so it must not be shared between concurrent tasks); results
   come back in benchmark order, keeping reports schedule-independent.
   The whole fan-out is one traced span, with each benchmark a child
   [pool.task] span. *)
let map_benches ~section f benches =
  let names = Array.of_list (List.map Spapt.name benches) in
  Altune_obs.Trace.with_span
    ~name:(Printf.sprintf "driver.%s" section)
    (fun () ->
      Pool.map
        ~label:(fun i -> Printf.sprintf "%s/%s" section names.(i))
        (Runs.pool ()) f benches)

(* A speed-up can be undefined — a plan whose every run died under fault
   injection yields nan/inf costs — and [Descriptive.geometric_mean]
   rejects non-positive entries.  Summary cells degrade to "n/a" instead
   of raising mid-render; with all entries finite and positive the output
   is unchanged. *)
let ratio_cell v =
  if Float.is_finite v && v > 0.0 then Printf.sprintf "%.2f" v else "n/a"

let geo_mean_cell speedups =
  match List.filter (fun v -> Float.is_finite v && v > 0.0) speedups with
  | [] -> "n/a"
  | ok -> Printf.sprintf "%.2f" (Descriptive.geometric_mean (Array.of_list ok))

(* --- Table 1 --- *)

let table1_rows ~scale ~seed benches =
  map_benches ~section:"table1"
    (fun bench ->
      let pc = Runs.curves_for bench scale ~seed in
      let cmp =
        Experiment.compare_curves ~baseline:pc.all_observations
          ~ours:pc.variable_observations
      in
      (Spapt.name bench, Spapt.space_size bench, cmp))
    benches

let table1 ?benchmarks ~scale ~seed () =
  let rows = table1_rows ~scale ~seed (bench_list benchmarks) in
  let speedups = List.map (fun (_, _, c) -> c.Experiment.speedup) rows in
  let geo = geo_mean_cell speedups in
  let body =
    List.map
      (fun (name, space, (c : Experiment.comparison)) ->
        [
          name;
          Report.sci space;
          Report.f3 c.lowest_common_rmse;
          Report.sci c.cost_baseline;
          Report.sci c.cost_ours;
          ratio_cell c.speedup;
        ])
      rows
    @ [ [ "geometric mean"; ""; ""; ""; ""; geo ] ]
  in
  Printf.sprintf
    "Table 1: lowest common RMS error, profiling cost to reach it, speed-up\n\
     (scale=%s, seed=%d, %d repetition(s); costs are simulated seconds)\n\n%s"
    scale.Scale.label seed scale.Scale.reps
    (Report.Table.render
       ~headers:
         [
           "benchmark";
           "search space";
           "lowest common RMSE";
           "cost baseline (s)";
           "cost ours (s)";
           "speed-up";
         ]
       ~rows:body)

(* --- Table 2 --- *)

let table2_row bench ~scale ~seed =
  let rng =
    Rng.create ~seed:(Rng.derive ~seed [ S "table2"; S (Spapt.name bench) ])
  in
  let n = scale.Scale.table2_configs in
  let variances = Array.make n 0.0 in
  let ci35 = Array.make n 0.0 in
  let ci5 = Array.make n 0.0 in
  let ci2 = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let config = Spapt.random_config bench rng in
    let w35 = ref Welford.empty in
    for run_index = 1 to 35 do
      w35 := Welford.add !w35 (Spapt.measure bench ~rng ~run_index config)
    done;
    let w5 = ref Welford.empty in
    for run_index = 1 to 5 do
      w5 := Welford.add !w5 (Spapt.measure bench ~rng ~run_index config)
    done;
    let w2 = ref Welford.empty in
    for run_index = 1 to 2 do
      w2 := Welford.add !w2 (Spapt.measure bench ~rng ~run_index config)
    done;
    variances.(i) <- Welford.variance !w35;
    ci35.(i) <- Welford.ci_over_mean !w35;
    ci5.(i) <- Welford.ci_over_mean !w5;
    ci2.(i) <- Welford.ci_over_mean !w2
  done;
  let s3 a = Descriptive.summary a in
  ((s3 variances, s3 ci35, s3 ci5), (ci35, ci5, ci2))

(* The paper's Section 4.3 post-hoc validation: what fraction of examples
   breach a CI/mean threshold under each fixed plan?  (Paper: 5% of
   35-observation examples breach 1%; 0.5% breach 5%; 3.3% of
   5-observation and 5% of 2-observation examples breach 5%.) *)
let breach_fractions rows =
  let frac threshold a =
    let n = Array.length a in
    let hits = Array.fold_left (fun acc c -> if c > threshold then acc + 1 else acc) 0 a in
    100.0 *. float_of_int hits /. float_of_int (max 1 n)
  in
  let all35 = Array.concat (List.map (fun (c35, _, _) -> c35) rows) in
  let all5 = Array.concat (List.map (fun (_, c5, _) -> c5) rows) in
  let all2 = Array.concat (List.map (fun (_, _, c2) -> c2) rows) in
  String.concat "\n"
    [
      "Post-hoc sampling-plan validation (paper Section 4.3): breaches of";
      "the 95% CI/mean threshold across all sampled examples:";
      Printf.sprintf
        "  35 observations: %.1f%% breach 1%%, %.1f%% breach 5%%  (paper: 5%%, 0.5%%)"
        (frac 0.01 all35) (frac 0.05 all35);
      Printf.sprintf
        "   5 observations: %.1f%% breach 5%%              (paper: 3.3%%)"
        (frac 0.05 all5);
      Printf.sprintf
        "   2 observations: %.1f%% breach 5%%              (paper: 5%%)"
        (frac 0.05 all2);
    ]

let table2 ?benchmarks ~scale ~seed () =
  let results =
    map_benches ~section:"table2"
      (fun bench ->
        let ( (vmin, vmean, vmax),
              (c35min, c35mean, c35max),
              (c5min, c5mean, c5max) ), samples =
          table2_row bench ~scale ~seed
        in
        ( [
            Spapt.name bench;
            Report.sci vmin;
            Report.sci vmean;
            Report.sci vmax;
            Report.sci c35min;
            Report.sci c35mean;
            Report.sci c35max;
            Report.sci c5min;
            Report.sci c5mean;
            Report.sci c5max;
          ],
          samples ))
      (bench_list benchmarks)
  in
  let rows = List.map fst results in
  let raw = List.map snd results in
  Printf.sprintf
    "Table 2: spread of runtime variance and 95%% CI/mean (35- and 5-sample)\n\
     (scale=%s: %d random configurations per benchmark)\n\n%s\n%s\n"
    scale.Scale.label scale.Scale.table2_configs
    (breach_fractions raw)
    (Report.Table.render
       ~headers:
         [
           "benchmark";
           "var min";
           "var mean";
           "var max";
           "35s CI/m min";
           "35s CI/m mean";
           "35s CI/m max";
           "5s CI/m min";
           "5s CI/m mean";
           "5s CI/m max";
         ]
       ~rows)

(* --- Figure 1: mm unroll-factor grid --- *)

(* Knob indices in the mm configuration: 0..2 tiles, 3 jam i, 4 unroll j,
   5 unroll k.  The motivation sweep varies the two unroll knobs with all
   other optimizations off, mirroring the paper's (i1, i2) unroll plane. *)
let mm_grid_config ~j ~k = [| 0; 0; 0; 0; j; k |]

let fig1 ~scale ~seed () =
  let bench = Spapt.create "mm" in
  let rng = Rng.create ~seed:(Rng.derive ~seed [ S "fig1" ]) in
  let rows = min scale.Scale.fig1_max_grid 16 in
  let cols = min scale.Scale.fig1_max_grid 32 in
  let n_obs = scale.Scale.n_obs in
  (* Per grid point: n_obs measurements; MAE of a single observation and
     the smallest k whose k-sample mean stays within the threshold. *)
  let samples =
    Array.init rows (fun j ->
        Array.init cols (fun k ->
            let config = mm_grid_config ~j ~k in
            Array.init n_obs (fun run_index ->
                Spapt.measure bench ~rng ~run_index config)))
  in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  let grand_mean =
    mean (Array.concat (Array.to_list (Array.map Array.concat
      (Array.map Array.to_list samples))))
  in
  (* The paper's 0.1 ms threshold was ~0.12% of mm's mean runtime; apply
     the same relative threshold to our scale. *)
  let threshold = 0.0012 *. grand_mean in
  let mae_one j k =
    let s = samples.(j).(k) in
    let m = mean s in
    mean (Array.map (fun y -> Float.abs (y -. m)) s)
  in
  let optimal_samples j k =
    let s = samples.(j).(k) in
    let m = mean s in
    let boot = 40 in
    let rec find n =
      if n >= Array.length s then Array.length s
      else begin
        (* Bootstrap estimate of E|mean_n - m|. *)
        let acc = ref 0.0 in
        for _ = 1 to boot do
          let sub = ref 0.0 in
          for _ = 1 to n do
            sub := !sub +. s.(Rng.int rng (Array.length s))
          done;
          acc := !acc +. Float.abs ((!sub /. float_of_int n) -. m)
        done;
        if !acc /. float_of_int boot <= threshold then n else find (n + 1)
      end
    in
    find 1
  in
  let mae_map = Array.init rows (fun j -> Array.init cols (mae_one j)) in
  let opt_map = Array.init rows (fun j -> Array.init cols (optimal_samples j)) in
  let mae_opt j k =
    let s = samples.(j).(k) in
    let m = mean s in
    let n = opt_map.(j).(k) in
    let acc = ref 0.0 in
    let boot = 40 in
    for _ = 1 to boot do
      let sub = ref 0.0 in
      for _ = 1 to n do
        sub := !sub +. s.(Rng.int rng (Array.length s))
      done;
      acc := !acc +. Float.abs ((!sub /. float_of_int n) -. m)
    done;
    !acc /. float_of_int boot
  in
  let total_fixed = rows * cols * n_obs in
  let total_opt =
    Array.fold_left
      (fun acc row -> Array.fold_left ( + ) acc row)
      0 opt_map
  in
  String.concat "\n"
    [
      Printf.sprintf
        "Figure 1: mm unroll plane (%dx%d grid of unroll j x unroll k), %d \
         samples per point"
        rows cols n_obs;
      Printf.sprintf "MAE threshold: %.2e s (0.12%% of mean runtime)" threshold;
      "";
      Report.Plot.heat ~title:"(a) MAE with one sample per point (s)"
        ~xlabel:"unroll k factor" ~ylabel:"unroll j factor" ~rows ~cols
        (fun j k -> mae_map.(j).(k));
      Report.Plot.heat
        ~title:"(b) MAE with the optimal per-point sample count (s)"
        ~xlabel:"unroll k factor" ~ylabel:"unroll j factor" ~rows ~cols
        mae_opt;
      Report.Plot.heat
        ~title:"(c) optimal number of samples per point"
        ~xlabel:"unroll k factor" ~ylabel:"unroll j factor" ~rows ~cols
        (fun j k -> float_of_int opt_map.(j).(k));
      Printf.sprintf
        "Executions: fixed plan %d vs. per-point optimal %d (%.1f%% of fixed)"
        total_fixed total_opt
        (100.0 *. float_of_int total_opt /. float_of_int total_fixed);
    ]

(* --- Figure 2: adi runtime vs unroll factor, one sample each --- *)

let fig2 ~scale ~seed () =
  ignore scale;
  let bench = Spapt.create "adi" in
  let rng = Rng.create ~seed:(Rng.derive ~seed [ S "fig2" ]) in
  (* adi knobs: 0..3 tiles, 4 jam i1, 5 unroll i2, 6 unroll j1, 7 unroll
     j2.  Sweep unroll j1 with everything else off. *)
  let series =
    List.init 30 (fun u ->
        let config = [| 0; 0; 0; 0; 0; 0; u; 0 |] in
        let y = Spapt.measure bench ~rng ~run_index:(u + 1) config in
        (float_of_int (u + 1), y))
  in
  Printf.sprintf
    "Figure 2: adi runtime vs. unroll factor of loop j1 (one sample per \
     point)\n\n%s"
    (Report.Plot.line ~title:"adi, single observations"
       ~xlabel:"loop j1 unroll factor" ~ylabel:"runtime (s)"
       [ ("runtime", series) ])

(* --- Figure 5: cost-reduction bars --- *)

let fig5 ?benchmarks ~scale ~seed () =
  let rows = table1_rows ~scale ~seed (bench_list benchmarks) in
  let entries =
    List.map (fun (name, _, c) -> (name, c.Experiment.speedup)) rows
  in
  (* Non-finite speed-ups (a plan wiped out by fault injection) would
     poison the bar chart's scale (Float.max nan x = nan); drop them and
     only append a geo-mean bar when it is defined. *)
  let shown = List.filter (fun (_, v) -> Float.is_finite v && v > 0.0) entries in
  let geo_entry =
    match shown with
    | [] -> []
    | ok ->
        [
          ( "geo-mean",
            Descriptive.geometric_mean (Array.of_list (List.map snd ok)) );
        ]
  in
  let dropped =
    List.filter_map
      (fun (name, v) ->
        if Float.is_finite v && v > 0.0 then None
        else Some (Printf.sprintf "%s: n/a" name))
      entries
  in
  Printf.sprintf
    "Figure 5: reduction of profiling cost vs. the 35-observation baseline\n\n%s%s"
    (Report.Plot.bars ~title:"speed-up (x)" (shown @ geo_entry))
    (match dropped with
    | [] -> ""
    | d -> "\nundefined speed-up: " ^ String.concat ", " d)

(* --- Figure 6: error-vs-cost curves --- *)

let fig6_default = [ "adi"; "atax"; "correlation"; "gemver"; "jacobi"; "mvt" ]

let curve_points (c : Experiment.curve) =
  List.map (fun (p : Learner.eval_point) -> (p.cost_seconds, p.rmse)) c

let fig6 ?benchmarks ~scale ~seed () =
  let names = Option.value ~default:fig6_default benchmarks in
  let sections =
    map_benches ~section:"fig6"
      (fun bench ->
        let name = Spapt.name bench in
        let pc = Runs.curves_for bench scale ~seed in
        (* The paper plots the shared time window where all plans are
           active; clip each plan's curve at the fastest plan's end. *)
        let horizon =
          List.fold_left
            (fun acc curve ->
              match List.rev curve with
              | [] -> acc
              | (last : Learner.eval_point) :: _ ->
                  Float.min acc last.cost_seconds)
            infinity
            [ pc.all_observations; pc.one_observation;
              pc.variable_observations ]
        in
        let clip curve =
          List.filter (fun (x, _) -> x <= horizon) (curve_points curve)
        in
        Report.Plot.line ~logx:true
          ~title:(Printf.sprintf "Figure 6 (%s): RMSE vs evaluation time" name)
          ~xlabel:"evaluation time (simulated s)" ~ylabel:"RMSE (s)"
          [
            ("all observations (35)", clip pc.all_observations);
            ("one observation", clip pc.one_observation);
            ("variable observations (ours)", clip pc.variable_observations);
          ])
      (List.map Spapt.create names)
  in
  String.concat "\n" sections

(* --- Ablations --- *)

let ablation ?(bench = "gemver") ~scale ~seed () =
  let b = Spapt.create bench in
  let dataset = Runs.dataset_for b scale ~seed in
  let base = scale.Scale.adaptive in
  let run_with tag settings =
    (* Fresh problem per variant: variants run concurrently and Spapt's
       ground-truth memo is per-instance state. *)
    let problem = Adapter.problem_of (Spapt.create bench) in
    let seeds =
      List.init scale.Scale.reps (fun r -> Rng.derive ~seed [ S tag; I r ])
    in
    (* Under [--fault-spec] each repetition gets an injector seeded from
       its own rep seed, threading faults through [Experiment.repeat]'s
       hook without changing its interface. *)
    let hook =
      match Runs.fault_spec () with
      | None -> None
      | Some spec ->
          Some
            (fun rep_seed ->
              Learner.run
                ~fault:
                  (Fault.create spec
                     ~seed:(Rng.derive ~seed:rep_seed [ S "fault" ]))
                ~exec_pool:(Runs.pool ()) problem dataset settings
                ~rng:(Rng.create ~seed:rep_seed))
    in
    let curve = Experiment.repeat problem dataset settings ~seeds hook in
    let final =
      match List.rev curve with
      | [] -> nan
      | (p : Learner.eval_point) :: _ -> p.rmse
    in
    (tag, Experiment.min_rmse curve, final)
  in
  let variants =
    [
      ("alc (paper)", base);
      ("mackay", { base with strategy = Learner.Mackay });
      ("random", { base with strategy = Learner.Random_selection });
      ( "no revisits (fixed 1)",
        { base with plan = Learner.Fixed 1 } );
      ( "revisit cap 5",
        { base with plan = Learner.Adaptive { max_obs = 5 } } );
      ( "particles 40",
        { base with model = Altune_core.Surrogate.dynatree ~particles:40 () }
      );
      ( "particles 240",
        { base with model = Altune_core.Surrogate.dynatree ~particles:240 () }
      );
      ( "seed 2x",
        { base with n_init = 2 * base.n_init } );
      ("batch 8 (parallel)", { base with batch_size = 8 });
      ( "gp surrogate (O(n^3))",
        { base with model = Altune_gp.Gp.factory () } );
      ( "flat prior",
        { base with empirical_prior = false } );
    ]
  in
  let tags = Array.of_list (List.map fst variants) in
  let rows =
    Pool.map
      ~label:(fun i -> Printf.sprintf "ablation/%s" tags.(i))
      (Runs.pool ())
      (fun (tag, settings) ->
        let tag, mn, final = run_with tag settings in
        [ tag; Report.f3 mn; Report.f3 final ])
      variants
  in
  Printf.sprintf
    "Ablation on %s (scale=%s): design choices of the adaptive learner\n\n%s"
    bench scale.Scale.label
    (Report.Table.render
       ~headers:[ "variant"; "min RMSE"; "final RMSE" ]
       ~rows)
