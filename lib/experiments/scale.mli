(** Experiment scales.

    The paper's full experiment (10,000 configurations x 35 runs per
    benchmark, 2,500 training iterations, 5,000 particles, 10 repetitions)
    is far beyond what a test harness should burn; these presets keep the
    experimental *structure* fixed while shrinking sizes.  [quick] drives
    the bench harness; [standard] is for overnight runs; [paper] matches
    the paper's parameters. *)

type t = {
  label : string;
  n_configs : int;  (** Dataset size (paper: 10,000). *)
  test_fraction : float;  (** Held-out fraction (paper: 0.25). *)
  n_obs : int;  (** Observations per labelled example (paper: 35). *)
  reps : int;  (** Experiment repetitions averaged (paper: 10). *)
  adaptive : Altune_core.Learner.settings;
  table2_configs : int;  (** Configurations sampled for Table 2. *)
  fig1_max_grid : int;  (** Grid edge cap for the Figure 1 sweep. *)
}

val smoke : t
(** Seconds-long preset for CI smoke runs (the [@bench-smoke] alias). *)

val quick : t
val standard : t
val paper : t

val of_label : string -> t option

val fixed : t -> int -> Altune_core.Learner.settings
(** The same settings with a fixed-[n] sampling plan (the baseline and
    one-shot competitors). *)
