module Spapt = Altune_spapt.Spapt
module Rng = Altune_prng.Rng
module Dataset = Altune_core.Dataset
module Experiment = Altune_core.Experiment
module Learner = Altune_core.Learner
module Pool = Altune_exec.Pool
module Memo = Altune_exec.Memo
module Fault = Altune_exec.Fault
module Trace = Altune_obs.Trace
module Events = Altune_obs.Events

type plan_curves = {
  bench : string;
  all_observations : Experiment.curve;
  one_observation : Experiment.curve;
  variable_observations : Experiment.curve;
}

(* --- Shared execution pool ------------------------------------------- *)

(* One process-wide pool, created lazily so library users that never tune
   the job count still get parallelism, and [set_jobs] (the CLI's
   [-j/--jobs]) can replace it before the first experiment runs. *)
let pool_state = ref (None : Pool.t option)
let requested_jobs = ref (None : int option)
let progress = ref (None : (Pool.event -> unit) option)
let pool_lock = Mutex.create ()

let jobs () =
  Mutex.lock pool_lock;
  let j =
    match !pool_state with
    | Some p -> Pool.jobs p
    | None -> (
        match !requested_jobs with
        | Some j -> j
        | None -> Pool.default_jobs ())
  in
  Mutex.unlock pool_lock;
  j

let set_jobs ?on_event j =
  if j < 1 then invalid_arg "Runs.set_jobs: jobs must be at least 1";
  Mutex.lock pool_lock;
  let old = !pool_state in
  pool_state := None;
  requested_jobs := Some j;
  progress := on_event;
  Mutex.unlock pool_lock;
  Option.iter Pool.shutdown old

let pool () =
  Mutex.lock pool_lock;
  let p =
    match !pool_state with
    | Some p -> p
    | None ->
        let j =
          match !requested_jobs with
          | Some j -> j
          | None -> Pool.default_jobs ()
        in
        let p = Pool.create ?on_event:!progress ~jobs:j () in
        pool_state := Some p;
        p
  in
  Mutex.unlock pool_lock;
  p

(* --- Fault injection --------------------------------------------------- *)

(* Process-wide fault spec (the CLI's [--fault-spec]).  Like [set_jobs],
   set it before experiments start; every learner run then gets a fault
   injector seeded from its own run key, so faults are deterministic per
   run and independent of scheduling. *)
let fault_state = ref (None : Fault.spec option)
let set_fault s = fault_state := s
let fault_spec () = !fault_state

(* --- Caches ----------------------------------------------------------- *)

(* Compute-once memo tables: Table 1, Figure 5 and Figure 6 share curves,
   and with benchmarks fanned out across domains the memo also guarantees
   two domains never duplicate a multi-minute run of the same key. *)
let dataset_cache : (string, Dataset.t) Memo.t = Memo.create ~name:"memo.dataset" ()
let curve_cache : (string, plan_curves) Memo.t = Memo.create ~name:"memo.curves" ()

let clear_cache () =
  Memo.clear dataset_cache;
  Memo.clear curve_cache

let dataset_for bench (scale : Scale.t) ~seed =
  let key = Printf.sprintf "%s/%s/%d" (Spapt.name bench) scale.label seed in
  Memo.find_or_compute dataset_cache key (fun () ->
      Trace.with_span ~name:"runs.dataset" ~phase:"dataset"
        ~attrs:[ ("key", Trace.String key) ]
        (fun () ->
          (* The dataset's test panel is the biggest single evaluation
             batch of a run; give the benchmark the pool so its prepare
             hook can fan the panel out. *)
          Spapt.set_pool bench (Some (pool ()));
          let problem = Adapter.problem_of bench in
          let rng =
            Rng.create ~seed:(Rng.derive ~seed [ S "dataset"; S key ])
          in
          Dataset.generate problem ~rng ~n_configs:scale.n_configs
            ~test_fraction:scale.test_fraction ~n_obs:scale.n_obs))

(* --- Parallel plan execution ----------------------------------------- *)

(* Every (plan, repetition) pair is one pool task.  Each task builds its
   own problem (and thus its own Spapt ground-truth memo and audit table:
   those are per-instance mutable state) and derives a private RNG seed,
   so the result is independent of the interleaving — curves are
   bit-identical at any job count. *)
let curves_for bench (scale : Scale.t) ~seed =
  let name = Spapt.name bench in
  let fspec = fault_spec () in
  let key =
    Printf.sprintf "%s/%s/%d%s" name scale.label seed
      (match fspec with
      | None -> ""
      | Some s -> "|fault:" ^ Fault.to_string s)
  in
  Memo.find_or_compute curve_cache key (fun () ->
      Trace.with_span ~name:"runs.curves"
        ~attrs:[ ("key", Trace.String key) ]
      @@ fun () ->
      let dataset = dataset_for bench scale ~seed in
      let plans =
        [
          ("fixed", Scale.fixed scale scale.n_obs);
          ("one", Scale.fixed scale 1);
          ("adaptive", scale.adaptive);
        ]
      in
      let tasks =
        List.concat_map
          (fun (tag, settings) ->
            List.init scale.reps (fun r -> (tag, settings, r)))
          plans
      in
      let task_array = Array.of_list tasks in
      let curves =
        Pool.map
          ~label:(fun i ->
            let tag, _, r = task_array.(i) in
            Printf.sprintf "%s/%s/%s rep %d" name scale.label tag r)
          (pool ())
          (fun (tag, settings, r) ->
            let rep_seed = Rng.derive ~seed [ S tag; I r; S name ] in
            let b = Spapt.create name in
            (* Nested fan-out onto the same pool is safe (the helping
               scheduler runs subtasks on the waiting worker), so each
               rep's batch prepares can still use every idle core. *)
            Spapt.set_pool b (Some (pool ()));
            let problem = Adapter.problem_of b in
            (* A distinct run key per (bench, scale, plan, rep) keeps event
               streams separable and their on-disk order independent of how
               the pool interleaves tasks across domains. *)
            let run_key =
              Printf.sprintf "%s/%s/%s/%d" name scale.label tag r
            in
            (* The fault seed is derived from the run key, not drawn from
               any stream: the same (bench, scale, plan, rep) sees the
               same faults at any job count. *)
            let fault =
              Option.map
                (fun s ->
                  Fault.create s
                    ~seed:(Rng.derive ~seed [ S "fault"; S run_key ]))
                fspec
            in
            ( tag,
              Events.with_run run_key (fun () ->
                  (Learner.run ?fault ~exec_pool:(pool ()) problem dataset
                     settings ~rng:(Rng.create ~seed:rep_seed))
                    .curve) ))
          tasks
      in
      let plan tag =
        Experiment.average_curves
          (List.filter_map
             (fun (t, c) -> if String.equal t tag then Some c else None)
             curves)
      in
      {
        bench = name;
        all_observations = plan "fixed";
        one_observation = plan "one";
        variable_observations = plan "adaptive";
      })
