module Learner = Altune_core.Learner
module Surrogate = Altune_core.Surrogate

type t = {
  label : string;
  n_configs : int;
  test_fraction : float;
  n_obs : int;
  reps : int;
  adaptive : Learner.settings;
  table2_configs : int;
  fig1_max_grid : int;
}

(* Small enough for CI smoke runs (@bench-smoke): seconds, not minutes,
   while still exercising datasets, all three plans and repetitions. *)
let smoke =
  {
    label = "smoke";
    n_configs = 250;
    test_fraction = 0.25;
    n_obs = 10;
    reps = 2;
    adaptive =
      {
        Learner.scaled_settings with
        n_init = 4;
        n_obs_init = 10;
        n_candidates = 15;
        n_max = 50;
        ref_size = 40;
        eval_every = 10;
        model = Surrogate.dynatree ~particles:25 ();
      };
    table2_configs = 30;
    fig1_max_grid = 6;
  }

let quick =
  {
    label = "quick";
    n_configs = 1200;
    test_fraction = 0.25;
    n_obs = 35;
    reps = 2;
    adaptive =
      {
        Learner.scaled_settings with
        n_max = 260;
        n_candidates = 50;
        ref_size = 120;
        eval_every = 10;
        model = Surrogate.dynatree ~particles:80 ();
      };
    table2_configs = 400;
    fig1_max_grid = 16;
  }

let standard =
  {
    label = "standard";
    n_configs = 4000;
    test_fraction = 0.25;
    n_obs = 35;
    reps = 5;
    adaptive = Learner.scaled_settings;
    table2_configs = 1500;
    fig1_max_grid = 32;
  }

let paper =
  {
    label = "paper";
    n_configs = 10_000;
    test_fraction = 0.25;
    n_obs = 35;
    reps = 10;
    adaptive = Learner.paper_settings;
    table2_configs = 10_000;
    fig1_max_grid = 32;
  }

let of_label = function
  | "smoke" -> Some smoke
  | "quick" -> Some quick
  | "standard" -> Some standard
  | "paper" -> Some paper
  | _ -> None

let fixed t n = { t.adaptive with plan = Learner.Fixed n }
