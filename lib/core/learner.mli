(** The paper's active learning loop (Algorithm 1), generalized over
    sampling plan and selection strategy.

    Three sampling plans reproduce the paper's three competitors:
    - [Fixed n] — the classical plan: each selected training example is
      profiled [n] times and its mean becomes one model observation;
      candidates are always unseen ([n = 35] is the baseline of
      Balaprakash et al., [n = 1] the "one observation" variant);
    - [Adaptive] — the paper's contribution: one profiling run per loop
      iteration, with previously-visited configurations kept in the
      candidate set until they accumulate [max_obs] observations, so the
      learner itself decides when a noisy configuration deserves another
      sample (sequential analysis).

    Selection strategies: [Alc] (Cohn's expected reduction of average
    predictive variance — the paper's choice), [Mackay] (maximum
    predictive variance), and [Random_selection] (ablation). *)

type plan = Fixed of int | Adaptive of { max_obs : int }

type strategy = Alc | Mackay | Random_selection

type stop_criterion =
  | Cost_budget of float
      (** Stop once cumulative compile+run cost exceeds this many seconds
          (the paper's "wall-clock time" completion criterion). *)
  | Error_below of float
      (** Stop once the recorded RMSE on the held-out evaluation set drops
          to this level (the paper's "estimate of error in the final
          model" criterion; note it peeks at the evaluation set, so use it
          for budgeting experiments, not for reporting accuracy). *)

type settings = {
  n_init : int;  (** Seed examples (paper: 5). *)
  n_obs_init : int;  (** Observations per seed example (paper: 35). *)
  n_candidates : int;  (** Fresh candidates per iteration (paper: 500). *)
  n_max : int;  (** Total loop iterations (paper: 2,500). *)
  plan : plan;
  strategy : strategy;
  model : Surrogate.factory;
  eval_every : int;  (** Record an error point every this many iterations. *)
  ref_size : int;  (** Reference-set size for ALC. *)
  empirical_prior : bool;
      (** Centre the leaf prior's noise scale on the within-configuration
          variance observed during seeding (on by default).  The seed
          phase exists to give the learner "a quick and accurate look at
          the search space"; without this calibration the revisit payoff
          reflects the prior instead of the measured noise. *)
  revisit_threshold : float;
      (** A visited configuration stays in the candidate set only while its
          observed mean deviates from the model's prediction by more than
          this many predictive standard deviations — the paper's "likely to
          contradict what we predict" criterion (default 2.0). *)
  batch_size : int;
      (** Training examples selected per loop iteration.  1 is the paper's
          sequential algorithm; larger values model the parallel variant
          it mentions (select the top-k scoring candidates, profile them
          together). *)
  stop : stop_criterion list;
      (** Additional completion criteria checked alongside [n_max]. *)
}

val paper_settings : settings
(** The paper's parameters: ninit 5, nobs 35, nc 500, nmax 2,500, 5,000
    particles, adaptive plan with ALC.  Expensive. *)

val scaled_settings : settings
(** Laptop-scale defaults used by the bench harness: same structure, nmax
    400, nc 60, 120 particles. *)

type eval_point = {
  iteration : int;  (** Loop iterations completed. *)
  examples : int;  (** Distinct configurations profiled. *)
  observations : int;  (** Total profiling runs. *)
  cost_seconds : float;  (** Cumulative compile + run cost so far. *)
  rmse : float;  (** Error on the held-out test set, seconds. *)
}

type outcome = {
  curve : eval_point list;  (** Chronological. *)
  total_cost : float;
  total_runs : int;
  distinct_examples : int;
  final_rmse : float;
  predict : Problem.config -> float;
      (** The trained model, as a runtime predictor in seconds. *)
}

(** {1 Checkpointing}

    A {!state} is everything {!run} needs to continue a training run from
    a loop boundary and reproduce the uninterrupted run byte-for-byte.
    The surrogate itself is not serialized: its posterior is a
    deterministic function of its creation-time rng cursor and the
    ordered observation log, so resume restores [st_rng_model], re-runs
    the factory, and replays [st_observe_log] — exact for any surrogate.
    Serialize with {!Checkpoint}. *)

type obs_entry = {
  obs_key : string;
  obs_n : int;
  obs_sum : float;
  obs_config : Problem.config;
}

type state = {
  st_iteration : int;
  st_run_counter : int;
  st_attempt_counter : int;  (** Global fault-attempt counter. *)
  st_cost : Cost.snapshot;
  st_obs : obs_entry list;  (** In first-insertion order (load-bearing). *)
  st_dead : string list;  (** Retry-exhausted configs, insertion order. *)
  st_scaler_mean : float;
  st_scaler_std : float;
  st_noise_hint : float option;
  st_refs : float array array;  (** Embedded ALC reference set. *)
  st_observe_log : (float array * float) list;
      (** Chronological (features, standardized response) pairs fed to the
          surrogate. *)
  st_rng_model : Altune_prng.Rng.state;
      (** Learner-stream cursor just before the model factory ran. *)
  st_rng : Altune_prng.Rng.state;  (** Cursor at the checkpoint. *)
  st_curve : eval_point list;  (** Chronological. *)
}

exception Halted
(** Raised by {!run} when the checkpoint callback returns [`Halt]: the
    state passed to the callback is the resume point. *)

val run :
  ?fault:Altune_exec.Fault.t ->
  ?checkpoint:int * (state -> [ `Continue | `Halt ]) ->
  ?resume:state ->
  ?exec_pool:Altune_exec.Pool.t ->
  Problem.t ->
  Dataset.t ->
  settings ->
  rng:Altune_prng.Rng.t ->
  outcome
(** One training run.  Deterministic given the rng state.

    [?fault] injects deterministic failures into every profiling attempt:
    a failed attempt is retried with exponential simulated-cost backoff
    (all lost seconds charged to the accumulated cost), and a
    configuration that exhausts its retries is marked dead and excluded
    from the candidate set — the run degrades gracefully instead of
    aborting.  Fault draws never touch the learner's stream, so omitting
    [?fault] reproduces the historical behavior exactly.

    [?checkpoint:(every, save)] calls [save] with the current {!state} at
    the first loop boundary at least [every] iterations after the last
    checkpoint; [save] returning [`Halt] raises {!Halted}.  [?resume]
    continues from such a state (pass the same problem, dataset, settings,
    fault spec and seed) and reproduces the uninterrupted run's outcome
    byte-for-byte.

    [?exec_pool] hands the surrogate a worker pool for its internal data
    parallelism (particle reweighting, ALC candidate scoring).  Purely a
    performance knob: outcomes are bit-identical with or without it, at
    any job count. *)
