(** Training-cost accounting.

    The paper measures training cost as "the cumulative compilation and
    runtimes of any executables used in training" (Section 4.3): every
    profiling run is charged at its measured duration, and every distinct
    configuration's compilation is charged once (binaries are cached).

    A third channel accounts for failures: simulated seconds lost to
    crashed compilations, timed-out runs, and discarded (corrupted)
    measurements.  Failed work is real work, so [total_seconds] includes
    it — cost curves stay honest under fault injection. *)

type t

val create : unit -> t

val charge_run : t -> float -> unit
(** Charge one profiling run of the given duration (seconds). *)

val charge_compile : t -> key:string -> float -> unit
(** Charge a compilation unless [key] was already compiled. *)

val charge_failure : t -> float -> unit
(** Charge seconds lost to one failed attempt (crash, timeout, corrupted
    measurement, or retry backoff).  Counts toward [total_seconds] and
    increments [failures], but not [runs]. *)

val run_seconds : t -> float
val compile_seconds : t -> float

val failure_seconds : t -> float
(** Simulated seconds lost to failures (zero unless faults were injected). *)

val total_seconds : t -> float
(** [run_seconds + compile_seconds + failure_seconds]. *)

val runs : t -> int

val failures : t -> int
(** Number of failed attempts charged so far. *)

val compiles : t -> int

(** {1 Checkpointing} *)

type snapshot = {
  snap_run_seconds : float;
  snap_compile_seconds : float;
  snap_failure_seconds : float;
  snap_runs : int;
  snap_failures : int;
  snap_compiled : string list;
}
(** Immutable copy of an accumulator, for checkpoint serialization.  The
    compiled-key set is carried as a sorted list; only membership is ever
    observed, so order does not affect behavior. *)

val snapshot : t -> snapshot
val of_snapshot : snapshot -> t
