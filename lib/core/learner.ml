module Rng = Altune_prng.Rng
module Metrics = Altune_stats.Metrics
module Obs_metrics = Altune_obs.Metrics
module Welford = Altune_stats.Welford
module Trace = Altune_obs.Trace
module Events = Altune_obs.Events
module Fault = Altune_exec.Fault

type plan = Fixed of int | Adaptive of { max_obs : int }
type strategy = Alc | Mackay | Random_selection
type stop_criterion = Cost_budget of float | Error_below of float

type settings = {
  n_init : int;
  n_obs_init : int;
  n_candidates : int;
  n_max : int;
  plan : plan;
  strategy : strategy;
  model : Surrogate.factory;
  eval_every : int;
  ref_size : int;
  empirical_prior : bool;
  revisit_threshold : float;
  batch_size : int;
  stop : stop_criterion list;
}

let paper_settings =
  {
    n_init = 5;
    n_obs_init = 35;
    n_candidates = 500;
    n_max = 2500;
    plan = Adaptive { max_obs = 35 };
    strategy = Alc;
    model = Surrogate.dynatree ~particles:5000 ();
    eval_every = 25;
    ref_size = 300;
    empirical_prior = true;
    revisit_threshold = 2.0;
    batch_size = 1;
    stop = [];
  }

let scaled_settings =
  {
    n_init = 5;
    n_obs_init = 35;
    n_candidates = 60;
    n_max = 400;
    plan = Adaptive { max_obs = 35 };
    strategy = Alc;
    model = Surrogate.dynatree ~particles:120 ();
    eval_every = 10;
    ref_size = 150;
    empirical_prior = true;
    revisit_threshold = 2.0;
    batch_size = 1;
    stop = [];
  }

type eval_point = {
  iteration : int;
  examples : int;
  observations : int;
  cost_seconds : float;
  rmse : float;
}

type outcome = {
  curve : eval_point list;
  total_cost : float;
  total_runs : int;
  distinct_examples : int;
  final_rmse : float;
  predict : Problem.config -> float;
}

type obs_entry = {
  obs_key : string;
  obs_n : int;
  obs_sum : float;
  obs_config : Problem.config;
}

type state = {
  st_iteration : int;
  st_run_counter : int;
  st_attempt_counter : int;
  st_cost : Cost.snapshot;
  st_obs : obs_entry list;
  st_dead : string list;
  st_scaler_mean : float;
  st_scaler_std : float;
  st_noise_hint : float option;
  st_refs : float array array;
  st_observe_log : (float array * float) list;
  st_rng_model : Rng.state;
  st_rng : Rng.state;
  st_curve : eval_point list;
}

exception Halted

(* Fault-injection instruments (process-wide; only touched when a fault
   spec is active, so fault-free runs never force them). *)
let m_fault_crash = lazy (Obs_metrics.counter "learner.fault.crash")
let m_fault_timeout = lazy (Obs_metrics.counter "learner.fault.timeout")
let m_fault_corrupt = lazy (Obs_metrics.counter "learner.fault.corrupt")
let m_fault_retry = lazy (Obs_metrics.counter "learner.fault.retries")
let m_fault_dead = lazy (Obs_metrics.counter "learner.fault.dead")

let validate settings =
  if settings.n_init < 1 then invalid_arg "Learner: n_init < 1";
  if settings.n_obs_init < 1 then invalid_arg "Learner: n_obs_init < 1";
  if settings.n_candidates < 1 then invalid_arg "Learner: n_candidates < 1";
  if settings.n_max < settings.n_init then
    invalid_arg "Learner: n_max < n_init";
  if settings.eval_every < 1 then invalid_arg "Learner: eval_every < 1";
  if settings.batch_size < 1 then invalid_arg "Learner: batch_size < 1";
  (match settings.plan with
  | Fixed n when n < 1 -> invalid_arg "Learner: Fixed plan needs n >= 1"
  | Adaptive { max_obs } when max_obs < 1 ->
      invalid_arg "Learner: Adaptive plan needs max_obs >= 1"
  | Fixed _ | Adaptive _ -> ())

(* Response standardization: the dynamic tree's leaf prior is calibrated
   for roughly unit-scale responses, while runtimes live on arbitrary
   scales.  The affine map is frozen after the seed phase (as the paper
   freezes its feature normalization). *)
type scaler = { mutable mean : float; mutable std : float }

let standardize scaler y = (y -. scaler.mean) /. scaler.std
let unstandardize scaler z = (z *. scaler.std) +. scaler.mean

let plan_string = function
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Adaptive { max_obs } -> Printf.sprintf "adaptive:%d" max_obs

let strategy_string = function
  | Alc -> "alc"
  | Mackay -> "mackay"
  | Random_selection -> "random"

let run_loop ?fault ?checkpoint ?resume ?exec_pool (problem : Problem.t)
    (dataset : Dataset.t) settings ~rng:rng0 =
  validate settings;
  (* The learner's private stream lives in a cell so that resume can point
     it at a restored cursor; every draw dereferences at call time. *)
  let rng =
    ref
      (match resume with
      | None -> Rng.split rng0
      | Some st -> Rng.restore st.st_rng_model)
  in
  let cost =
    match resume with
    | None -> Cost.create ()
    | Some st -> Cost.of_snapshot st.st_cost
  in
  let run_counter = ref 0 in
  let attempt_counter = ref 0 in
  (* Each simulated compile+profile is one traced span carrying the
     simulated seconds it charged, so the paper's cost curves can be
     reconstructed from the trace alone. *)
  let measure config =
    Trace.with_span ~name:"learner.profile" ~phase:"profiling" (fun () ->
        incr run_counter;
        let compile_before = Cost.compile_seconds cost in
        Cost.charge_compile cost ~key:(Problem.key config)
          (problem.compile_seconds config);
        let d = problem.measure ~rng:!rng ~run_index:!run_counter config in
        Cost.charge_run cost d;
        if Trace.enabled () then
          Trace.add_attrs
            [
              ("run_index", Trace.Int !run_counter);
              ("sim_run_s", Trace.Float d);
              ( "sim_compile_s",
                Trace.Float (Cost.compile_seconds cost -. compile_before) );
              ("sim_total_s", Trace.Float (Cost.total_seconds cost));
            ];
        d)
  in
  let pool = dataset.train_configs in
  if Array.length pool = 0 then invalid_arg "Learner.run: empty train pool";
  (* Per visited configuration: observation count and running sum (the
     observed mean drives revisit eligibility); doubles as the visited
     set.  [obs_order] remembers first-insertion order so a resumed run
     can rebuild the table with the same fold order (OCaml's Hashtbl
     keeps a key's bucket position across [replace], so an identical
     insertion sequence into an identical initial capacity reproduces
     iteration order exactly — and fold order feeds candidate-list order,
     which feeds rng draws). *)
  let obs_count : (string, int * float * Problem.config) Hashtbl.t =
    Hashtbl.create 1024
  in
  let obs_order = ref [] in
  let seen key = Hashtbl.mem obs_count key in
  let note_obs config n sum =
    let key = Problem.key config in
    let prev_n, prev_sum =
      match Hashtbl.find_opt obs_count key with
      | Some (c, s, _) -> (c, s)
      | None ->
          obs_order := key :: !obs_order;
          (0, 0.0)
    in
    Hashtbl.replace obs_count key (prev_n + n, prev_sum +. sum, config)
  in
  (* Configurations that exhausted their fault retries: excluded from both
     fresh sampling and the revisit candidate set, never aborting the run.
     Empty (and behaviorally invisible) unless faults are injected. *)
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let dead_order = ref [] in
  let mark_dead key =
    Hashtbl.replace dead key ();
    dead_order := key :: !dead_order
  in
  (* One profiling attempt under the fault model.  The verdict for the
     [n]-th attempt of the run is a pure function of (fault seed, spec,
     config key, n): the learner loop is sequential, so the global attempt
     counter is schedule-independent, and fault draws never touch the
     learner's own stream — with no spec the measurement path is exactly
     the fault-free one. *)
  let measure_faulty config =
    match fault with
    | None -> Some (measure config)
    | Some fi ->
        let spec = Fault.spec fi in
        let key = Problem.key config in
        let rec go local =
          let verdict = Fault.draw fi ~key ~attempt:!attempt_counter in
          incr attempt_counter;
          match verdict with
          | Fault.Ok -> Some (measure config)
          | (Fault.Crash | Fault.Timeout _ | Fault.Corrupt) as v ->
              let kind, counter, lost =
                match v with
                | Fault.Crash ->
                    (* The attempt dies in (or before) compilation: the
                       build time is wasted and the key is not marked
                       compiled. *)
                    ("crash", m_fault_crash, problem.compile_seconds config)
                | Fault.Timeout s ->
                    (* The binary built (cached as usual); the profiling
                       run burned its budget and was killed. *)
                    Cost.charge_compile cost ~key
                      (problem.compile_seconds config);
                    ("timeout", m_fault_timeout, s)
                | Fault.Corrupt ->
                    (* The run completed — consuming a measurement draw
                       and its simulated duration — but produced garbage,
                       so the seconds are charged as waste, not as a
                       usable observation. *)
                    Cost.charge_compile cost ~key
                      (problem.compile_seconds config);
                    incr run_counter;
                    let d =
                      problem.measure ~rng:!rng ~run_index:!run_counter config
                    in
                    ("corrupt", m_fault_corrupt, d)
                | Fault.Ok -> assert false
              in
              let charged =
                lost +. Fault.backoff_seconds spec ~failures:(local + 1)
              in
              Cost.charge_failure cost charged;
              Obs_metrics.incr (Lazy.force counter);
              Trace.with_span ~name:"learner.fault" ~phase:"profiling"
                ~attrs:
                  [
                    ("config", Trace.String key);
                    ("fault", Trace.String kind);
                    ("attempt", Trace.Int local);
                    ("lost_s", Trace.Float charged);
                  ]
                (fun () -> ());
              if Events.enabled () then
                Events.emit
                  (Fault { config = key; attempt = local; fault = kind;
                           lost_s = charged });
              if local >= spec.max_retries then begin
                mark_dead key;
                Obs_metrics.incr (Lazy.force m_fault_dead);
                if Events.enabled () then
                  Events.emit
                    (Fault
                       { config = key; attempt = local; fault = "dead";
                         lost_s = 0.0 });
                None
              end
              else begin
                Obs_metrics.incr (Lazy.force m_fault_retry);
                go (local + 1)
              end
        in
        go 0
  in
  (* [n] usable measurements of [config], or [None] once it goes dead.
     The fault-free path must keep the exact allocation/evaluation shape
     of the original code ([List.init] with an effectful body), because
     its call order is part of the byte-compatibility contract. *)
  let measure_many config n =
    match fault with
    | None -> Some (List.init n (fun _ -> measure config))
    | Some _ ->
        let rec go i acc =
          if i = n then Some (List.rev acc)
          else
            match measure_faulty config with
            | Some y -> go (i + 1) (y :: acc)
            | None -> None
        in
        go 0 []
  in
  let sample_unseen n =
    (* Rejection sampling from the pool; the pool is much larger than the
       visited set in any realistic run, but guard against exhaustion. *)
    let out = ref [] in
    let found = ref 0 in
    let attempts = ref 0 in
    let max_attempts = 60 * n in
    let batch_seen = Hashtbl.create (2 * n) in
    while !found < n && !attempts < max_attempts do
      incr attempts;
      let c = pool.(Rng.int !rng (Array.length pool)) in
      let k = Problem.key c in
      if
        (not (seen k))
        && (not (Hashtbl.mem dead k))
        && not (Hashtbl.mem batch_seen k)
      then begin
        Hashtbl.replace batch_seen k ();
        out := c :: !out;
        incr found
      end
    done;
    !out
  in
  let scaler = { mean = 0.0; std = 1.0 } in
  (* Fresh start: run the seed phase (reference-set embedding, seed
     sampling, seed profiling, scaler/noise calibration, model creation).
     Resume: restore every piece of that state from the checkpoint, then
     rebuild the model deterministically — the surrogate's posterior is a
     function of (its creation-time rng cursor, the ordered observation
     log), so restoring the pre-factory cursor, re-running the factory and
     replaying the log reproduces it exactly, for any surrogate. *)
  let refs, noise_hint, rng_model_state, model, seed_means =
    match resume with
    | None ->
        (* Reference set for ALC: a fixed random subset of the training
           pool, embedded once. *)
        let refs =
          Array.init (min settings.ref_size (Array.length pool)) (fun _ ->
              problem.features (pool.(Rng.int !rng (Array.length pool))))
        in
        (* --- Seed phase --- *)
        let seed_configs =
          Trace.with_span ~name:"learner.seed-sample" ~phase:"candidate-gen"
            (fun () -> sample_unseen settings.n_init)
        in
        (* Every seed configuration is about to be profiled: warm their
           deterministic evaluations as one batch (shared transformation
           prefixes, optional pool fan-out).  No rng is consumed, so the
           measurement stream below is untouched. *)
        if List.length seed_configs > 1 then
          Trace.with_span ~name:"learner.prepare" ~phase:"profiling"
            (fun () -> problem.prepare seed_configs);
        let seed_welford = ref Welford.empty in
        let seed_data =
          List.filter_map
            (fun config ->
              let per_example =
                match settings.plan with
                | Fixed n -> n
                | Adaptive _ -> settings.n_obs_init
              in
              match measure_many config per_example with
              | None -> None (* died under fault injection: drop it *)
              | Some samples ->
                  List.iter
                    (fun y -> seed_welford := Welford.add !seed_welford y)
                    samples;
                  note_obs config per_example
                    (List.fold_left ( +. ) 0.0 samples);
                  Some (config, samples))
            seed_configs
        in
        if seed_data = [] then
          failwith
            "Learner.run: every seed configuration exhausted its fault \
             retries; nothing to train on";
        scaler.mean <- Welford.mean !seed_welford;
        scaler.std <-
          (let s = Welford.std !seed_welford in
           if s > 0.0 && Float.is_finite s then s else 1.0);
        (* Noise hint for the surrogate's empirical prior: the mean
           within-configuration variance seen during seeding, in
           standardized units.  Without this calibration a default noise
           prior dwarfs the true measurement noise on quiet benchmarks and
           the learner over-revisits: expected variance reductions then
           reflect the prior, not the data. *)
        let noise_hint =
          if not settings.empirical_prior then None
          else
            Some
              (List.fold_left
                 (fun acc (_, samples) ->
                   acc
                   +. Welford.variance
                        (Welford.of_array (Array.of_list samples)))
                 0.0 seed_data
              /. float_of_int (max 1 (List.length seed_data))
              /. (scaler.std *. scaler.std))
        in
        let rng_model_state = Rng.capture !rng in
        let model = settings.model ~noise_hint ~rng:!rng ~dim:problem.dim in
        (* Seed examples enter the model as their mean: the seed phase's
           many observations exist to give the learner an accurate first
           look, and a mean is that look.  (Feeding the raw replicates
           instead makes every particle spend structure on five
           x-locations it has seen 35 times.) *)
        let seed_means =
          List.map
            (fun (config, samples) ->
              ( config,
                List.fold_left ( +. ) 0.0 samples
                /. float_of_int (List.length samples) ))
            seed_data
        in
        Surrogate.set_pool model exec_pool;
        (refs, noise_hint, rng_model_state, model, seed_means)
    | Some st ->
        List.iter
          (fun e ->
            Hashtbl.replace obs_count e.obs_key (e.obs_n, e.obs_sum, e.obs_config);
            obs_order := e.obs_key :: !obs_order)
          st.st_obs;
        List.iter mark_dead st.st_dead;
        scaler.mean <- st.st_scaler_mean;
        scaler.std <- st.st_scaler_std;
        run_counter := st.st_run_counter;
        attempt_counter := st.st_attempt_counter;
        (* [rng] currently sits at the pre-factory cursor: re-run the
           factory (replaying its creation-time draws), replay the
           observation log, then jump to the checkpointed cursor. *)
        let model =
          settings.model ~noise_hint:st.st_noise_hint ~rng:!rng
            ~dim:problem.dim
        in
        Surrogate.set_pool model exec_pool;
        List.iter (fun (f, z) -> Surrogate.observe model f z) st.st_observe_log;
        rng := Rng.restore st.st_rng;
        (st.st_refs, st.st_noise_hint, st.st_rng_model, model, [])
  in
  (* Learner telemetry (Altune_obs.Events): pure observation of decisions
     already made — emission consumes no randomness and touches no state
     the loop reads, so results are byte-identical with it on or off. *)
  if Events.enabled () then
    Events.emit
      (Start
         {
           plan = plan_string settings.plan;
           strategy = strategy_string settings.strategy;
           model = Surrogate.name model;
           dim = problem.dim;
           pool = Array.length pool;
           n_max = settings.n_max;
         });
  (* The ordered observation log is what lets a checkpoint rebuild the
     surrogate; only maintained when checkpointing is requested. *)
  let tracking = Option.is_some checkpoint in
  let observe_log =
    ref (match resume with None -> [] | Some st -> List.rev st.st_observe_log)
  in
  let observe_raw config y =
    Trace.with_span ~name:"learner.observe" ~phase:"tree-update" (fun () ->
        let f = problem.features config in
        let z = standardize scaler y in
        if tracking then observe_log := (f, z) :: !observe_log;
        Surrogate.observe model f z)
  in
  List.iter (fun (config, mean) -> observe_raw config mean) seed_means;
  (* --- Evaluation --- *)
  let test_features = Array.map problem.features dataset.test_configs in
  let rmse () =
    Trace.with_span ~name:"learner.rmse" ~phase:"eval" (fun () ->
        let predicted =
          Array.map
            (fun f -> unstandardize scaler (Surrogate.predict model f).mean)
            test_features
        in
        Metrics.rmse ~predicted ~observed:dataset.test_means)
  in
  let curve =
    ref (match resume with None -> [] | Some st -> List.rev st.st_curve)
  in
  let record iteration =
    let err = rmse () in
    if Events.enabled () then begin
      let ref_variance =
        if Array.length refs = 0 then 0.0
        else begin
          let acc = ref 0.0 in
          Array.iter
            (fun f -> acc := !acc +. (Surrogate.predict model f).variance)
            refs;
          !acc /. float_of_int (Array.length refs)
        end
      in
      let tree =
        Option.map
          (fun (s : Surrogate.tree_stats) ->
            {
              Events.mean_leaves = s.mean_leaves;
              max_depth = s.max_depth;
              depth_histogram = s.depth_histogram;
              split_frequencies = s.split_frequencies;
            })
          (Surrogate.tree_stats model)
      in
      Events.emit
        (Eval
           {
             iteration;
             examples = Hashtbl.length obs_count;
             observations = !run_counter;
             cost_s = Cost.total_seconds cost;
             rmse = err;
             ref_variance;
             tree;
           })
    end;
    curve :=
      {
        iteration;
        examples = Hashtbl.length obs_count;
        observations = !run_counter;
        cost_seconds = Cost.total_seconds cost;
        rmse = err;
      }
      :: !curve
  in
  (match resume with None -> record settings.n_init | Some _ -> ());
  (* --- Active learning loop --- *)
  let score_all candidates =
    match settings.strategy with
    | Random_selection ->
        List.map (fun c -> (c, Rng.uniform !rng)) candidates
    | Mackay ->
        List.map
          (fun c ->
            (c, Surrogate.predictive_variance model (problem.features c)))
          candidates
    | Alc ->
        let arr = Array.of_list candidates in
        let scores =
          Surrogate.alc_scores model
            ~candidates:(Array.map problem.features arr)
            ~refs
        in
        Array.to_list (Array.mapi (fun i c -> (c, scores.(i))) arr)
  in
  (* Top-[k] candidates by score, stable on ties so fresh candidates (which
     precede revisits in the list) win them.  Returns each selection with
     its score and fresh-vs-revisit provenance for the event stream. *)
  let select_batch k ~fresh ~revisits =
    match fresh @ revisits with
    | [] -> []
    | candidates ->
        Trace.with_span ~name:"learner.select" ~phase:"alc"
          ~attrs:[ ("candidates", Trace.Int (List.length candidates)) ]
          (fun () ->
            let scored = score_all candidates in
            let n_fresh = List.length fresh in
            let tagged =
              List.mapi (fun i (c, s) -> (c, s, i >= n_fresh)) scored
            in
            let sorted =
              List.stable_sort
                (fun (_, a, _) (_, b, _) -> Float.compare b a)
                tagged
            in
            List.filteri (fun i _ -> i < k) sorted)
  in
  let should_stop iteration =
    iteration >= settings.n_max
    || List.exists
         (fun criterion ->
           match criterion with
           | Cost_budget budget -> Cost.total_seconds cost >= budget
           | Error_below target -> (
               match !curve with
               | [] -> false
               | last :: _ -> last.rmse <= target))
         settings.stop
  in
  let iteration =
    ref (match resume with None -> settings.n_init | Some st -> st.st_iteration)
  in
  let capture_state () =
    {
      st_iteration = !iteration;
      st_run_counter = !run_counter;
      st_attempt_counter = !attempt_counter;
      st_cost = Cost.snapshot cost;
      st_obs =
        List.rev_map
          (fun key ->
            let n, sum, config = Hashtbl.find obs_count key in
            { obs_key = key; obs_n = n; obs_sum = sum; obs_config = config })
          !obs_order;
      st_dead = List.rev !dead_order;
      st_scaler_mean = scaler.mean;
      st_scaler_std = scaler.std;
      st_noise_hint = noise_hint;
      st_refs = refs;
      st_observe_log = List.rev !observe_log;
      st_rng_model = rng_model_state;
      st_rng = Rng.capture !rng;
      st_curve = List.rev !curve;
    }
  in
  let last_checkpoint = ref !iteration in
  let stopped = ref (should_stop !iteration) in
  while not !stopped do
    let fresh, revisits =
      Trace.with_span ~name:"learner.candidates" ~phase:"candidate-gen"
        (fun () ->
          let fresh = sample_unseen settings.n_candidates in
          let revisits =
            (* A visited configuration re-enters the candidate set only
               while it is of continued interest: under the observation cap
               AND with an observed mean that sticks out from the model's
               local pattern.  This is the paper's criterion -- extra runs
               are worth their cost only when they are likely to contradict
               what the model predicts. *)
            match settings.plan with
            | Fixed _ -> []
            | Adaptive { max_obs } ->
                Hashtbl.fold
                  (fun key (count, sum, config) acc ->
                    if count >= max_obs || Hashtbl.mem dead key then acc
                    else begin
                      let f = problem.features config in
                      let p = Surrogate.predict model f in
                      let observed_mean =
                        standardize scaler (sum /. float_of_int count)
                      in
                      let sd = sqrt (Float.max 1e-12 p.variance) in
                      if
                        Float.abs (observed_mean -. p.mean)
                        > settings.revisit_threshold *. sd
                      then config :: acc
                      else acc
                    end)
                  obs_count []
          in
          (fresh, revisits))
    in
    let batch =
      let remaining = settings.n_max - !iteration in
      select_batch (min settings.batch_size remaining) ~fresh ~revisits
    in
    if batch = [] then stopped := true
    else begin
      (* Multi-candidate batches share recipe prefixes; warming them as a
         group is where the fork trie and the pool earn their keep.
         Deterministic, rng-free, hence byte-inert on the sequential
         measurement path below. *)
      if List.length batch > 1 then
        Trace.with_span ~name:"learner.prepare" ~phase:"profiling" (fun () ->
            problem.prepare (List.map (fun (config, _, _) -> config) batch));
      List.iter
        (fun (config, score, revisit) ->
          incr iteration;
          let prev_obs =
            if not (Events.enabled ()) then 0
            else
              match Hashtbl.find_opt obs_count (Problem.key config) with
              | Some (c, _, _) -> c
              | None -> 0
          in
          (match settings.plan with
          | Fixed n -> (
              match measure_many config n with
              | Some samples ->
                  let sum = List.fold_left ( +. ) 0.0 samples in
                  note_obs config n sum;
                  observe_raw config (sum /. float_of_int n)
              | None -> () (* went dead; the iteration's budget is spent *))
          | Adaptive _ -> (
              match measure_faulty config with
              | Some y ->
                  note_obs config 1 y;
                  observe_raw config y
              | None -> ()));
          if Events.enabled () then
            Events.emit
              (Select
                 {
                   iteration = !iteration;
                   config = Problem.key config;
                   score;
                   revisit;
                   config_obs = prev_obs;
                   examples = Hashtbl.length obs_count;
                   observations = !run_counter;
                   cost_s = Cost.total_seconds cost;
                 });
          if
            !iteration mod settings.eval_every = 0
            || !iteration = settings.n_max
          then record !iteration)
        batch;
      stopped := should_stop !iteration;
      match checkpoint with
      | Some (every, save)
        when (not !stopped) && every > 0
             && !iteration - !last_checkpoint >= every -> (
          last_checkpoint := !iteration;
          match
            Trace.with_span ~name:"learner.checkpoint" ~phase:"eval" (fun () ->
                save (capture_state ()))
          with
          | `Continue -> ()
          | `Halt -> raise Halted)
      | _ -> ()
    end
  done;
  (* Runs cut short by a stop criterion still end with a recorded point. *)
  (match !curve with
  | last :: _ when last.iteration = !iteration -> ()
  | _ -> record !iteration);
  let curve = List.rev !curve in
  let final_rmse =
    match List.rev curve with [] -> nan | last :: _ -> last.rmse
  in
  if Events.enabled () then
    Events.emit
      (Finish
         {
           iterations = !iteration;
           examples = Hashtbl.length obs_count;
           observations = !run_counter;
           cost_s = Cost.total_seconds cost;
           rmse = final_rmse;
         });
  {
    curve;
    total_cost = Cost.total_seconds cost;
    total_runs = Cost.runs cost;
    distinct_examples = Hashtbl.length obs_count;
    final_rmse;
    predict =
      (fun config ->
        unstandardize scaler
          (Surrogate.predict model (problem.features config)).mean);
  }

let run ?fault ?checkpoint ?resume ?exec_pool (problem : Problem.t) dataset
    settings ~rng =
  Trace.with_span ~name:"learner.run"
    ~attrs:[ ("problem", Trace.String problem.name) ]
    (fun () ->
      run_loop ?fault ?checkpoint ?resume ?exec_pool problem dataset settings
        ~rng)
