module Rng = Altune_prng.Rng
module Metrics = Altune_stats.Metrics
module Welford = Altune_stats.Welford
module Trace = Altune_obs.Trace
module Events = Altune_obs.Events

type plan = Fixed of int | Adaptive of { max_obs : int }
type strategy = Alc | Mackay | Random_selection
type stop_criterion = Cost_budget of float | Error_below of float

type settings = {
  n_init : int;
  n_obs_init : int;
  n_candidates : int;
  n_max : int;
  plan : plan;
  strategy : strategy;
  model : Surrogate.factory;
  eval_every : int;
  ref_size : int;
  empirical_prior : bool;
  revisit_threshold : float;
  batch_size : int;
  stop : stop_criterion list;
}

let paper_settings =
  {
    n_init = 5;
    n_obs_init = 35;
    n_candidates = 500;
    n_max = 2500;
    plan = Adaptive { max_obs = 35 };
    strategy = Alc;
    model = Surrogate.dynatree ~particles:5000 ();
    eval_every = 25;
    ref_size = 300;
    empirical_prior = true;
    revisit_threshold = 2.0;
    batch_size = 1;
    stop = [];
  }

let scaled_settings =
  {
    n_init = 5;
    n_obs_init = 35;
    n_candidates = 60;
    n_max = 400;
    plan = Adaptive { max_obs = 35 };
    strategy = Alc;
    model = Surrogate.dynatree ~particles:120 ();
    eval_every = 10;
    ref_size = 150;
    empirical_prior = true;
    revisit_threshold = 2.0;
    batch_size = 1;
    stop = [];
  }

type eval_point = {
  iteration : int;
  examples : int;
  observations : int;
  cost_seconds : float;
  rmse : float;
}

type outcome = {
  curve : eval_point list;
  total_cost : float;
  total_runs : int;
  distinct_examples : int;
  final_rmse : float;
  predict : Problem.config -> float;
}

let validate settings =
  if settings.n_init < 1 then invalid_arg "Learner: n_init < 1";
  if settings.n_obs_init < 1 then invalid_arg "Learner: n_obs_init < 1";
  if settings.n_candidates < 1 then invalid_arg "Learner: n_candidates < 1";
  if settings.n_max < settings.n_init then
    invalid_arg "Learner: n_max < n_init";
  if settings.eval_every < 1 then invalid_arg "Learner: eval_every < 1";
  if settings.batch_size < 1 then invalid_arg "Learner: batch_size < 1";
  (match settings.plan with
  | Fixed n when n < 1 -> invalid_arg "Learner: Fixed plan needs n >= 1"
  | Adaptive { max_obs } when max_obs < 1 ->
      invalid_arg "Learner: Adaptive plan needs max_obs >= 1"
  | Fixed _ | Adaptive _ -> ())

(* Response standardization: the dynamic tree's leaf prior is calibrated
   for roughly unit-scale responses, while runtimes live on arbitrary
   scales.  The affine map is frozen after the seed phase (as the paper
   freezes its feature normalization). *)
type scaler = { mutable mean : float; mutable std : float }

let standardize scaler y = (y -. scaler.mean) /. scaler.std
let unstandardize scaler z = (z *. scaler.std) +. scaler.mean

let plan_string = function
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Adaptive { max_obs } -> Printf.sprintf "adaptive:%d" max_obs

let strategy_string = function
  | Alc -> "alc"
  | Mackay -> "mackay"
  | Random_selection -> "random"

let run_loop (problem : Problem.t) (dataset : Dataset.t) settings ~rng =
  validate settings;
  let rng = Rng.split rng in
  let cost = Cost.create () in
  let run_counter = ref 0 in
  (* Each simulated compile+profile is one traced span carrying the
     simulated seconds it charged, so the paper's cost curves can be
     reconstructed from the trace alone. *)
  let measure config =
    Trace.with_span ~name:"learner.profile" ~phase:"profiling" (fun () ->
        incr run_counter;
        let compile_before = Cost.compile_seconds cost in
        Cost.charge_compile cost ~key:(Problem.key config)
          (problem.compile_seconds config);
        let d = problem.measure ~rng ~run_index:!run_counter config in
        Cost.charge_run cost d;
        if Trace.enabled () then
          Trace.add_attrs
            [
              ("run_index", Trace.Int !run_counter);
              ("sim_run_s", Trace.Float d);
              ( "sim_compile_s",
                Trace.Float (Cost.compile_seconds cost -. compile_before) );
              ("sim_total_s", Trace.Float (Cost.total_seconds cost));
            ];
        d)
  in
  let pool = dataset.train_configs in
  if Array.length pool = 0 then invalid_arg "Learner.run: empty train pool";
  (* Per visited configuration: observation count and running sum (the
     observed mean drives revisit eligibility); doubles as the visited
     set. *)
  let obs_count : (string, int * float * Problem.config) Hashtbl.t =
    Hashtbl.create 1024
  in
  let seen key = Hashtbl.mem obs_count key in
  let note_obs config n sum =
    let key = Problem.key config in
    let prev_n, prev_sum =
      match Hashtbl.find_opt obs_count key with
      | Some (c, s, _) -> (c, s)
      | None -> (0, 0.0)
    in
    Hashtbl.replace obs_count key (prev_n + n, prev_sum +. sum, config)
  in
  let sample_unseen n =
    (* Rejection sampling from the pool; the pool is much larger than the
       visited set in any realistic run, but guard against exhaustion. *)
    let out = ref [] in
    let found = ref 0 in
    let attempts = ref 0 in
    let max_attempts = 60 * n in
    let batch_seen = Hashtbl.create (2 * n) in
    while !found < n && !attempts < max_attempts do
      incr attempts;
      let c = pool.(Rng.int rng (Array.length pool)) in
      let k = Problem.key c in
      if (not (seen k)) && not (Hashtbl.mem batch_seen k) then begin
        Hashtbl.replace batch_seen k ();
        out := c :: !out;
        incr found
      end
    done;
    !out
  in
  let scaler = { mean = 0.0; std = 1.0 } in
  (* Reference set for ALC: a fixed random subset of the training pool,
     embedded once. *)
  let refs =
    Array.init (min settings.ref_size (Array.length pool)) (fun _ ->
        problem.features (pool.(Rng.int rng (Array.length pool))))
  in
  (* --- Seed phase --- *)
  let seed_configs =
    Trace.with_span ~name:"learner.seed-sample" ~phase:"candidate-gen"
      (fun () -> sample_unseen settings.n_init)
  in
  let seed_welford = ref Welford.empty in
  let seed_data =
    List.map
      (fun config ->
        let per_example =
          match settings.plan with
          | Fixed n -> n
          | Adaptive _ -> settings.n_obs_init
        in
        let samples = List.init per_example (fun _ -> measure config) in
        List.iter (fun y -> seed_welford := Welford.add !seed_welford y)
          samples;
        note_obs config per_example (List.fold_left ( +. ) 0.0 samples);
        (config, samples))
      seed_configs
  in
  scaler.mean <- Welford.mean !seed_welford;
  scaler.std <-
    (let s = Welford.std !seed_welford in
     if s > 0.0 && Float.is_finite s then s else 1.0);
  (* Noise hint for the surrogate's empirical prior: the mean
     within-configuration variance seen during seeding, in standardized
     units.  Without this calibration a default noise prior dwarfs the
     true measurement noise on quiet benchmarks and the learner
     over-revisits: expected variance reductions then reflect the prior,
     not the data. *)
  let noise_hint =
    if not settings.empirical_prior then None
    else
      Some
        (List.fold_left
           (fun acc (_, samples) ->
             acc
             +. Welford.variance (Welford.of_array (Array.of_list samples)))
           0.0 seed_data
        /. float_of_int (max 1 (List.length seed_data))
        /. (scaler.std *. scaler.std))
  in
  let model = settings.model ~noise_hint ~rng ~dim:problem.dim in
  (* Learner telemetry (Altune_obs.Events): pure observation of decisions
     already made — emission consumes no randomness and touches no state
     the loop reads, so results are byte-identical with it on or off. *)
  if Events.enabled () then
    Events.emit
      (Start
         {
           plan = plan_string settings.plan;
           strategy = strategy_string settings.strategy;
           model = Surrogate.name model;
           dim = problem.dim;
           pool = Array.length pool;
           n_max = settings.n_max;
         });
  let observe_raw config y =
    Trace.with_span ~name:"learner.observe" ~phase:"tree-update" (fun () ->
        Surrogate.observe model (problem.features config)
          (standardize scaler y))
  in
  (* Seed examples enter the model as their mean: the seed phase's many
     observations exist to give the learner an accurate first look, and a
     mean is that look.  (Feeding the raw replicates instead makes every
     particle spend structure on five x-locations it has seen 35 times.) *)
  List.iter
    (fun (config, samples) ->
      let mean =
        List.fold_left ( +. ) 0.0 samples
        /. float_of_int (List.length samples)
      in
      observe_raw config mean)
    seed_data;
  (* --- Evaluation --- *)
  let test_features = Array.map problem.features dataset.test_configs in
  let rmse () =
    Trace.with_span ~name:"learner.rmse" ~phase:"eval" (fun () ->
        let predicted =
          Array.map
            (fun f -> unstandardize scaler (Surrogate.predict model f).mean)
            test_features
        in
        Metrics.rmse ~predicted ~observed:dataset.test_means)
  in
  let curve = ref [] in
  let record iteration =
    let err = rmse () in
    if Events.enabled () then begin
      let ref_variance =
        if Array.length refs = 0 then 0.0
        else begin
          let acc = ref 0.0 in
          Array.iter
            (fun f -> acc := !acc +. (Surrogate.predict model f).variance)
            refs;
          !acc /. float_of_int (Array.length refs)
        end
      in
      let tree =
        Option.map
          (fun (s : Surrogate.tree_stats) ->
            {
              Events.mean_leaves = s.mean_leaves;
              max_depth = s.max_depth;
              depth_histogram = s.depth_histogram;
              split_frequencies = s.split_frequencies;
            })
          (Surrogate.tree_stats model)
      in
      Events.emit
        (Eval
           {
             iteration;
             examples = Hashtbl.length obs_count;
             observations = !run_counter;
             cost_s = Cost.total_seconds cost;
             rmse = err;
             ref_variance;
             tree;
           })
    end;
    curve :=
      {
        iteration;
        examples = Hashtbl.length obs_count;
        observations = !run_counter;
        cost_seconds = Cost.total_seconds cost;
        rmse = err;
      }
      :: !curve
  in
  record settings.n_init;
  (* --- Active learning loop --- *)
  let score_all candidates =
    match settings.strategy with
    | Random_selection ->
        List.map (fun c -> (c, Rng.uniform rng)) candidates
    | Mackay ->
        List.map
          (fun c ->
            (c, Surrogate.predictive_variance model (problem.features c)))
          candidates
    | Alc ->
        let arr = Array.of_list candidates in
        let scores =
          Surrogate.alc_scores model
            ~candidates:(Array.map problem.features arr)
            ~refs
        in
        Array.to_list (Array.mapi (fun i c -> (c, scores.(i))) arr)
  in
  (* Top-[k] candidates by score, stable on ties so fresh candidates (which
     precede revisits in the list) win them.  Returns each selection with
     its score and fresh-vs-revisit provenance for the event stream. *)
  let select_batch k ~fresh ~revisits =
    match fresh @ revisits with
    | [] -> []
    | candidates ->
        Trace.with_span ~name:"learner.select" ~phase:"alc"
          ~attrs:[ ("candidates", Trace.Int (List.length candidates)) ]
          (fun () ->
            let scored = score_all candidates in
            let n_fresh = List.length fresh in
            let tagged =
              List.mapi (fun i (c, s) -> (c, s, i >= n_fresh)) scored
            in
            let sorted =
              List.stable_sort
                (fun (_, a, _) (_, b, _) -> Float.compare b a)
                tagged
            in
            List.filteri (fun i _ -> i < k) sorted)
  in
  let should_stop iteration =
    iteration >= settings.n_max
    || List.exists
         (fun criterion ->
           match criterion with
           | Cost_budget budget -> Cost.total_seconds cost >= budget
           | Error_below target -> (
               match !curve with
               | [] -> false
               | last :: _ -> last.rmse <= target))
         settings.stop
  in
  let iteration = ref settings.n_init in
  let stopped = ref (should_stop !iteration) in
  while not !stopped do
    let fresh, revisits =
      Trace.with_span ~name:"learner.candidates" ~phase:"candidate-gen"
        (fun () ->
          let fresh = sample_unseen settings.n_candidates in
          let revisits =
            (* A visited configuration re-enters the candidate set only
               while it is of continued interest: under the observation cap
               AND with an observed mean that sticks out from the model's
               local pattern.  This is the paper's criterion -- extra runs
               are worth their cost only when they are likely to contradict
               what the model predicts. *)
            match settings.plan with
            | Fixed _ -> []
            | Adaptive { max_obs } ->
                Hashtbl.fold
                  (fun _ (count, sum, config) acc ->
                    if count >= max_obs then acc
                    else begin
                      let f = problem.features config in
                      let p = Surrogate.predict model f in
                      let observed_mean =
                        standardize scaler (sum /. float_of_int count)
                      in
                      let sd = sqrt (Float.max 1e-12 p.variance) in
                      if
                        Float.abs (observed_mean -. p.mean)
                        > settings.revisit_threshold *. sd
                      then config :: acc
                      else acc
                    end)
                  obs_count []
          in
          (fresh, revisits))
    in
    let batch =
      let remaining = settings.n_max - !iteration in
      select_batch (min settings.batch_size remaining) ~fresh ~revisits
    in
    if batch = [] then stopped := true
    else begin
      List.iter
        (fun (config, score, revisit) ->
          incr iteration;
          let prev_obs =
            if not (Events.enabled ()) then 0
            else
              match Hashtbl.find_opt obs_count (Problem.key config) with
              | Some (c, _, _) -> c
              | None -> 0
          in
          (match settings.plan with
          | Fixed n ->
              let samples = List.init n (fun _ -> measure config) in
              let sum = List.fold_left ( +. ) 0.0 samples in
              note_obs config n sum;
              observe_raw config (sum /. float_of_int n)
          | Adaptive _ ->
              let y = measure config in
              note_obs config 1 y;
              observe_raw config y);
          if Events.enabled () then
            Events.emit
              (Select
                 {
                   iteration = !iteration;
                   config = Problem.key config;
                   score;
                   revisit;
                   config_obs = prev_obs;
                   examples = Hashtbl.length obs_count;
                   observations = !run_counter;
                   cost_s = Cost.total_seconds cost;
                 });
          if
            !iteration mod settings.eval_every = 0
            || !iteration = settings.n_max
          then record !iteration)
        batch;
      stopped := should_stop !iteration
    end
  done;
  (* Runs cut short by a stop criterion still end with a recorded point. *)
  (match !curve with
  | last :: _ when last.iteration = !iteration -> ()
  | _ -> record !iteration);
  let curve = List.rev !curve in
  let final_rmse =
    match List.rev curve with [] -> nan | last :: _ -> last.rmse
  in
  if Events.enabled () then
    Events.emit
      (Finish
         {
           iterations = !iteration;
           examples = Hashtbl.length obs_count;
           observations = !run_counter;
           cost_s = Cost.total_seconds cost;
           rmse = final_rmse;
         });
  {
    curve;
    total_cost = Cost.total_seconds cost;
    total_runs = Cost.runs cost;
    distinct_examples = Hashtbl.length obs_count;
    final_rmse;
    predict =
      (fun config ->
        unstandardize scaler
          (Surrogate.predict model (problem.features config)).mean);
  }

let run (problem : Problem.t) dataset settings ~rng =
  Trace.with_span ~name:"learner.run"
    ~attrs:[ ("problem", Trace.String problem.name) ]
    (fun () -> run_loop problem dataset settings ~rng)
