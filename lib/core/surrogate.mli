(** Model-agnostic surrogate interface.

    The active learner needs exactly four things from its model:
    incremental observation, posterior predictive mean/variance, ALC
    scores, and an observation count.  The paper uses dynamic trees
    (Section 3.2) and argues for them over Gaussian processes on update
    cost; both are provided here behind this interface, so that argument
    is reproducible as an ablation, and swapping in another regressor
    means implementing one module. *)

type prediction = { mean : float; variance : float }

type tree_stats = {
  mean_leaves : float;
  max_depth : int;
  depth_histogram : int array;  (** Index = depth, value = particles. *)
  split_frequencies : float array;
      (** Per-dimension share of posterior splits — the sensitivity proxy
          surfaced by learner events (see {!Altune_dynatree.Dynatree.stats}). *)
}

module type S = sig
  type t

  val name : string
  val observe : t -> float array -> float -> unit
  val predict : t -> float array -> prediction

  val alc_scores :
    t -> candidates:float array array -> refs:float array array -> float array
  (** Expected reduction of summed predictive variance over [refs] per
      candidate (higher = more informative). *)

  val n_observations : t -> int

  val tree_stats : t -> tree_stats option
  (** Posterior-shape introspection for models that have one ([None] for
      models without tree structure, e.g. a GP).  Must be cheap and
      side-effect free: the learner calls it at every evaluation point
      when event telemetry is on. *)

  val set_pool : t -> Altune_exec.Pool.t option -> unit
  (** Attach a worker pool for internal data parallelism.  Purely a
      performance knob — implementations must produce bit-identical
      results with or without one (a no-op for models with nothing to
      parallelize). *)
end

type t = Pack : (module S with type t = 'a) * 'a -> t

val observe : t -> float array -> float -> unit
val predict : t -> float array -> prediction
val predictive_variance : t -> float array -> float

val alc_scores :
  t -> candidates:float array array -> refs:float array array -> float array

val n_observations : t -> int
val name : t -> string
val tree_stats : t -> tree_stats option
val set_pool : t -> Altune_exec.Pool.t option -> unit

type factory = noise_hint:float option -> rng:Altune_prng.Rng.t -> dim:int -> t
(** Build a fresh surrogate for a [dim]-dimensional standardized feature
    space.  [noise_hint] is the within-configuration measurement variance
    estimated from the learner's seed phase (standardized units), for
    models that can calibrate a noise prior from it. *)

val dynatree : ?particles:int -> unit -> factory
(** The paper's model: a dynamic-tree ensemble.  When a [noise_hint] is
    available, the leaf prior's noise scale is centred on it (see
    {!Learner.settings.empirical_prior}). *)
