type t = {
  mutable run_seconds : float;
  mutable compile_seconds : float;
  mutable failure_seconds : float;
  mutable runs : int;
  mutable failures : int;
  compiled : (string, unit) Hashtbl.t;
}

let create () =
  {
    run_seconds = 0.0;
    compile_seconds = 0.0;
    failure_seconds = 0.0;
    runs = 0;
    failures = 0;
    compiled = Hashtbl.create 256;
  }

let charge_run t seconds =
  if seconds < 0.0 then invalid_arg "Cost.charge_run: negative duration";
  t.run_seconds <- t.run_seconds +. seconds;
  t.runs <- t.runs + 1

let charge_compile t ~key seconds =
  if not (Hashtbl.mem t.compiled key) then begin
    Hashtbl.replace t.compiled key ();
    t.compile_seconds <- t.compile_seconds +. seconds
  end

let charge_failure t seconds =
  if seconds < 0.0 then invalid_arg "Cost.charge_failure: negative duration";
  t.failure_seconds <- t.failure_seconds +. seconds;
  t.failures <- t.failures + 1

let run_seconds t = t.run_seconds
let compile_seconds t = t.compile_seconds
let failure_seconds t = t.failure_seconds
let total_seconds t = t.run_seconds +. t.compile_seconds +. t.failure_seconds
let runs t = t.runs
let failures t = t.failures
let compiles t = Hashtbl.length t.compiled

type snapshot = {
  snap_run_seconds : float;
  snap_compile_seconds : float;
  snap_failure_seconds : float;
  snap_runs : int;
  snap_failures : int;
  snap_compiled : string list;  (** in insertion-irrelevant (sorted) order *)
}

let snapshot t =
  {
    snap_run_seconds = t.run_seconds;
    snap_compile_seconds = t.compile_seconds;
    snap_failure_seconds = t.failure_seconds;
    snap_runs = t.runs;
    snap_failures = t.failures;
    snap_compiled =
      List.sort String.compare
        (Hashtbl.fold (fun k () acc -> k :: acc) t.compiled []);
  }

let of_snapshot s =
  let t = create () in
  t.run_seconds <- s.snap_run_seconds;
  t.compile_seconds <- s.snap_compile_seconds;
  t.failure_seconds <- s.snap_failure_seconds;
  t.runs <- s.snap_runs;
  t.failures <- s.snap_failures;
  List.iter (fun k -> Hashtbl.replace t.compiled k ()) s.snap_compiled;
  t
