(** Abstract autotuning problem: what the active learner sees.

    A problem is a space of integer configurations, a feature embedding,
    and a stochastic measurement procedure with an associated cost model.
    {!Altune_spapt} adapts its benchmarks to this interface; anything else
    (a real compiler wrapper, another simulator) can too. *)

type config = int array

type t = {
  name : string;
  dim : int;  (** Feature dimensionality. *)
  space_size : float;
  random_config : Altune_prng.Rng.t -> config;
  features : config -> float array;
      (** Deterministic scaled-and-centred embedding. *)
  measure : rng:Altune_prng.Rng.t -> run_index:int -> config -> float;
      (** One noisy runtime measurement, seconds. *)
  compile_seconds : config -> float;
      (** Cost of building the configuration's binary (charged once per
          distinct configuration). *)
  prepare : config list -> unit;
      (** Hint that the listed configurations are about to be measured.
          An implementation may warm deterministic per-configuration
          state (transformed kernels, evaluation caches) — possibly in
          parallel — but must not change any observable measurement:
          [measure] after [prepare] returns exactly what it would have
          returned without it.  Implementations with nothing to warm use
          [ignore]. *)
}

val key : config -> string
(** Hashable identity of a configuration. *)
