module Rng = Altune_prng.Rng

type t = {
  train_configs : Problem.config array;
  test_configs : Problem.config array;
  test_means : float array;
}

let distinct_configs (problem : Problem.t) rng n =
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n [||] in
  let found = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 200 * n in
  while !found < n && !attempts < max_attempts do
    incr attempts;
    let c = problem.random_config rng in
    let k = Problem.key c in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      out.(!found) <- c;
      incr found
    end
  done;
  if !found < n then
    invalid_arg
      (Printf.sprintf
         "Dataset.generate: could only draw %d distinct configurations of %d"
         !found n);
  out

let generate (problem : Problem.t) ~rng ~n_configs ~test_fraction ~n_obs =
  if test_fraction <= 0.0 || test_fraction >= 1.0 then
    invalid_arg "Dataset.generate: test_fraction out of (0,1)";
  if n_obs < 1 then invalid_arg "Dataset.generate: n_obs must be positive";
  let configs = distinct_configs problem rng n_configs in
  Rng.shuffle rng configs;
  let n_test =
    max 1 (int_of_float (Float.round (test_fraction *. float_of_int n_configs)))
  in
  let n_test = min n_test (n_configs - 1) in
  let test_configs = Array.sub configs 0 n_test in
  let train_configs = Array.sub configs n_test (n_configs - n_test) in
  (* The whole test panel gets measured below; warming its evaluations as
     one batch lets the problem share transformation prefixes and fan the
     work out, without touching the measurement rng stream. *)
  problem.prepare (Array.to_list test_configs);
  let test_means =
    Array.map
      (fun c ->
        let acc = ref 0.0 in
        for run_index = 1 to n_obs do
          acc := !acc +. problem.measure ~rng ~run_index c
        done;
        !acc /. float_of_int n_obs)
      test_configs
  in
  { train_configs; test_configs; test_means }
