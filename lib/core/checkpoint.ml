module Json = Altune_obs.Json
module Rng = Altune_prng.Rng

let version = 1

type meta = {
  bench : string;
  scale : string;
  seed : int;
  every : int;
  fault : (string * int) option;
}

(* --- Encoding ----------------------------------------------------------- *)

(* Floats are stored as the hex of their IEEE-754 bits: resume must
   reproduce the uninterrupted run byte-for-byte, so every float has to
   round-trip exactly (decimal shortest-representation would, but the
   JSON layer renders non-finite floats as null; bits are unambiguous). *)
let f_to_json f = Json.String (Printf.sprintf "%016Lx" (Int64.bits_of_float f))
let i64_to_json i = Json.String (Printf.sprintf "%016Lx" i)
let floats_to_json a = Json.List (List.map f_to_json (Array.to_list a))

let config_to_json (c : Problem.config) =
  Json.List (List.map (fun i -> Json.Int i) (Array.to_list c))

let rng_to_json (s : Rng.state) =
  Json.Obj
    [
      ("s0", i64_to_json s.s0);
      ("s1", i64_to_json s.s1);
      ("s2", i64_to_json s.s2);
      ("s3", i64_to_json s.s3);
      ("spare", f_to_json s.spare);
      ("has_spare", Json.Bool s.has_spare);
    ]

let cost_to_json (s : Cost.snapshot) =
  Json.Obj
    [
      ("run_s", f_to_json s.snap_run_seconds);
      ("compile_s", f_to_json s.snap_compile_seconds);
      ("failure_s", f_to_json s.snap_failure_seconds);
      ("runs", Json.Int s.snap_runs);
      ("failures", Json.Int s.snap_failures);
      ( "compiled",
        Json.List (List.map (fun k -> Json.String k) s.snap_compiled) );
    ]

let obs_to_json (e : Learner.obs_entry) =
  Json.Obj
    [
      ("key", Json.String e.obs_key);
      ("n", Json.Int e.obs_n);
      ("sum", f_to_json e.obs_sum);
      ("config", config_to_json e.obs_config);
    ]

let eval_to_json (p : Learner.eval_point) =
  Json.Obj
    [
      ("iteration", Json.Int p.iteration);
      ("examples", Json.Int p.examples);
      ("observations", Json.Int p.observations);
      ("cost_s", f_to_json p.cost_seconds);
      ("rmse", f_to_json p.rmse);
    ]

let dataset_to_json (d : Dataset.t) =
  Json.Obj
    [
      ( "train",
        Json.List (List.map config_to_json (Array.to_list d.train_configs)) );
      ( "test",
        Json.List (List.map config_to_json (Array.to_list d.test_configs)) );
      ("test_means", floats_to_json d.test_means);
    ]

let state_to_json (st : Learner.state) =
  Json.Obj
    [
      ("iteration", Json.Int st.st_iteration);
      ("run_counter", Json.Int st.st_run_counter);
      ("attempt_counter", Json.Int st.st_attempt_counter);
      ("cost", cost_to_json st.st_cost);
      ("obs", Json.List (List.map obs_to_json st.st_obs));
      ("dead", Json.List (List.map (fun k -> Json.String k) st.st_dead));
      ("scaler_mean", f_to_json st.st_scaler_mean);
      ("scaler_std", f_to_json st.st_scaler_std);
      ( "noise_hint",
        match st.st_noise_hint with None -> Json.Null | Some f -> f_to_json f
      );
      ("refs", Json.List (List.map floats_to_json (Array.to_list st.st_refs)));
      ( "observe_log",
        Json.List
          (List.map
             (fun (f, z) -> Json.Obj [ ("f", floats_to_json f); ("z", f_to_json z) ])
             st.st_observe_log) );
      ("rng_model", rng_to_json st.st_rng_model);
      ("rng", rng_to_json st.st_rng);
      ("curve", Json.List (List.map eval_to_json st.st_curve));
    ]

let to_json ~meta dataset state =
  Json.Obj
    [
      ("version", Json.Int version);
      ("bench", Json.String meta.bench);
      ("scale", Json.String meta.scale);
      ("seed", Json.Int meta.seed);
      ("every", Json.Int meta.every);
      ( "fault",
        match meta.fault with
        | None -> Json.Null
        | Some (spec, seed) ->
            Json.Obj [ ("spec", Json.String spec); ("seed", Json.Int seed) ] );
      ("dataset", dataset_to_json dataset);
      ("state", state_to_json state);
    ]

let save ~path ~meta dataset state =
  (* Write-then-rename: a checkpoint interrupted mid-write must never
     replace a good one with a torn file. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ~meta dataset state));
      output_char oc '\n');
  Sys.rename tmp path

(* --- Decoding ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: missing or bad %s" what)

let field j key = Json.member key j

let int_field j key what =
  require what (Option.bind (field j key) Json.to_int_opt)

let str_field j key what =
  require what (Option.bind (field j key) Json.to_string_opt)

let bool_field j key what =
  require what (Option.bind (field j key) Json.to_bool_opt)

let i64_of_json what = function
  | Some (Json.String s) -> (
      match Int64.of_string_opt ("0x" ^ s) with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "checkpoint: bad hex in %s" what))
  | _ -> Error (Printf.sprintf "checkpoint: missing or bad %s" what)

let f_of_json what j =
  let* bits = i64_of_json what j in
  Ok (Int64.float_of_bits bits)

let f_field j key what = f_of_json what (field j key)

let list_field j key what =
  match field j key with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "checkpoint: missing or bad %s" what)

let map_m f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* v = f x in
        go (v :: acc) rest
  in
  go [] l

let floats_of_json what j =
  match j with
  | Json.List l ->
      let* vals = map_m (fun v -> f_of_json what (Some v)) l in
      Ok (Array.of_list vals)
  | _ -> Error (Printf.sprintf "checkpoint: bad %s" what)

let config_of_json what j =
  match j with
  | Json.List l -> (
      let vals = List.filter_map Json.to_int_opt l in
      if List.length vals = List.length l then Ok (Array.of_list vals)
      else Error (Printf.sprintf "checkpoint: bad %s" what))
  | _ -> Error (Printf.sprintf "checkpoint: bad %s" what)

let str_of_json what = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "checkpoint: bad %s" what)

let rng_of_json what j =
  match j with
  | Some (Json.Obj _ as o) ->
      let* s0 = i64_of_json (what ^ ".s0") (field o "s0") in
      let* s1 = i64_of_json (what ^ ".s1") (field o "s1") in
      let* s2 = i64_of_json (what ^ ".s2") (field o "s2") in
      let* s3 = i64_of_json (what ^ ".s3") (field o "s3") in
      let* spare = f_field o "spare" (what ^ ".spare") in
      let* has_spare = bool_field o "has_spare" (what ^ ".has_spare") in
      Ok { Rng.s0; s1; s2; s3; spare; has_spare }
  | _ -> Error (Printf.sprintf "checkpoint: missing %s" what)

let cost_of_json j =
  match field j "cost" with
  | Some o ->
      let* snap_run_seconds = f_field o "run_s" "cost.run_s" in
      let* snap_compile_seconds = f_field o "compile_s" "cost.compile_s" in
      let* snap_failure_seconds = f_field o "failure_s" "cost.failure_s" in
      let* snap_runs = int_field o "runs" "cost.runs" in
      let* snap_failures = int_field o "failures" "cost.failures" in
      let* compiled = list_field o "compiled" "cost.compiled" in
      let* snap_compiled = map_m (str_of_json "cost.compiled") compiled in
      Ok
        {
          Cost.snap_run_seconds;
          snap_compile_seconds;
          snap_failure_seconds;
          snap_runs;
          snap_failures;
          snap_compiled;
        }
  | None -> Error "checkpoint: missing cost"

let obs_of_json j =
  let* obs_key = str_field j "key" "obs.key" in
  let* obs_n = int_field j "n" "obs.n" in
  let* obs_sum = f_field j "sum" "obs.sum" in
  let* config = require "obs.config" (field j "config") in
  let* obs_config = config_of_json "obs.config" config in
  Ok { Learner.obs_key; obs_n; obs_sum; obs_config }

let eval_of_json j =
  let* iteration = int_field j "iteration" "curve.iteration" in
  let* examples = int_field j "examples" "curve.examples" in
  let* observations = int_field j "observations" "curve.observations" in
  let* cost_seconds = f_field j "cost_s" "curve.cost_s" in
  let* rmse = f_field j "rmse" "curve.rmse" in
  Ok { Learner.iteration; examples; observations; cost_seconds; rmse }

let dataset_of_json j =
  match field j "dataset" with
  | Some o ->
      let* train = list_field o "train" "dataset.train" in
      let* train_configs = map_m (config_of_json "dataset.train") train in
      let* test = list_field o "test" "dataset.test" in
      let* test_configs = map_m (config_of_json "dataset.test") test in
      let* means = require "dataset.test_means" (field o "test_means") in
      let* test_means = floats_of_json "dataset.test_means" means in
      Ok
        {
          Dataset.train_configs = Array.of_list train_configs;
          test_configs = Array.of_list test_configs;
          test_means;
        }
  | None -> Error "checkpoint: missing dataset"

let state_of_json j =
  match field j "state" with
  | Some o ->
      let* st_iteration = int_field o "iteration" "state.iteration" in
      let* st_run_counter = int_field o "run_counter" "state.run_counter" in
      let* st_attempt_counter =
        int_field o "attempt_counter" "state.attempt_counter"
      in
      let* st_cost = cost_of_json o in
      let* obs = list_field o "obs" "state.obs" in
      let* st_obs = map_m obs_of_json obs in
      let* dead = list_field o "dead" "state.dead" in
      let* st_dead = map_m (str_of_json "state.dead") dead in
      let* st_scaler_mean = f_field o "scaler_mean" "state.scaler_mean" in
      let* st_scaler_std = f_field o "scaler_std" "state.scaler_std" in
      let* st_noise_hint =
        match field o "noise_hint" with
        | None | Some Json.Null -> Ok None
        | Some v ->
            let* f = f_of_json "state.noise_hint" (Some v) in
            Ok (Some f)
      in
      let* refs = list_field o "refs" "state.refs" in
      let* refs = map_m (floats_of_json "state.refs") refs in
      let* log = list_field o "observe_log" "state.observe_log" in
      let* st_observe_log =
        map_m
          (fun entry ->
            let* f = require "observe_log.f" (field entry "f") in
            let* f = floats_of_json "observe_log.f" f in
            let* z = f_field entry "z" "observe_log.z" in
            Ok (f, z))
          log
      in
      let* st_rng_model = rng_of_json "state.rng_model" (field o "rng_model") in
      let* st_rng = rng_of_json "state.rng" (field o "rng") in
      let* curve = list_field o "curve" "state.curve" in
      let* st_curve = map_m eval_of_json curve in
      Ok
        {
          Learner.st_iteration;
          st_run_counter;
          st_attempt_counter;
          st_cost;
          st_obs;
          st_dead;
          st_scaler_mean;
          st_scaler_std;
          st_noise_hint;
          st_refs = Array.of_list refs;
          st_observe_log;
          st_rng_model;
          st_rng;
          st_curve;
        }
  | None -> Error "checkpoint: missing state"

let of_json j =
  let* v = int_field j "version" "version" in
  if v <> version then
    Error
      (Printf.sprintf "checkpoint: version %d not supported (expected %d)" v
         version)
  else
    let* bench = str_field j "bench" "bench" in
    let* scale = str_field j "scale" "scale" in
    let* seed = int_field j "seed" "seed" in
    let* every = int_field j "every" "every" in
    let* fault =
      match field j "fault" with
      | None | Some Json.Null -> Ok None
      | Some o ->
          let* spec = str_field o "spec" "fault.spec" in
          let* fseed = int_field o "seed" "fault.seed" in
          Ok (Some (spec, fseed))
    in
    let* dataset = dataset_of_json j in
    let* state = state_of_json j in
    Ok ({ bench; scale; seed; every; fault }, dataset, state)

let load path =
  try
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let* j = Json.of_string (String.trim content) in
    of_json j
  with Sys_error e -> Error e
