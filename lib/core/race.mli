(** Raced profiles (Leather, O'Boyle & Worton, LCTES 2009 — the paper's
    reference [32]): statistically adaptive selection of the fastest of a
    set of binaries.

    Where this project's main algorithm adapts sample counts while
    {e learning a model}, raced profiles adapt sample counts while
    {e selecting a winner}: all candidates are profiled in rounds, and a
    candidate is eliminated as soon as its confidence interval lies
    strictly above the current leader's, so effort concentrates on the
    candidates that are still statistically in contention.  Provided both
    as a related-work reproduction and as the final-selection utility an
    autotuner needs once a model has produced a shortlist.

    Naming note: "race" here means {e profile racing} (candidates racing
    to be fastest), not data races.  Data-{e race} detection for the
    execution engine lives in [Altune_conc.Racecheck] and is driven by
    [altune concheck]. *)

type settings = {
  level : float;  (** Confidence level of the elimination test (0.95). *)
  min_obs : int;  (** Observations before a candidate may be judged (2). *)
  max_obs : int;  (** Per-candidate cap (35). *)
}

val default_settings : settings

type outcome = {
  winner : int;  (** Index of the selected candidate. *)
  mean : float;  (** Its estimated mean runtime. *)
  runs_per_candidate : int array;
  total_runs : int;
  total_cost : float;  (** Sum of all measured durations, seconds. *)
  eliminated_at : int array;
      (** Round at which each candidate was eliminated; [-1] if it
          survived to the end. *)
}

val select :
  ?settings:settings -> measure:(int -> float) -> int -> outcome
(** [select ~measure n] races [n] candidates ([measure i] returns one
    runtime observation of candidate [i]).  Raises [Invalid_argument]
    when [n < 1] or settings are inconsistent. *)
