(** Versioned on-disk checkpoints for {!Learner.run}.

    A checkpoint is one JSON object holding a [version] field, run
    provenance (benchmark, scale, seed, fault spec), the full dataset,
    and the learner's {!Learner.state}.  Every float — responses, RNG
    words, cost accumulators — is serialized as the hex of its IEEE-754
    bits, because resume must reproduce the uninterrupted run
    byte-for-byte and the JSON float path renders non-finite values as
    [null].

    {!save} is atomic (write to [path ^ ".tmp"], then rename), so a run
    killed mid-checkpoint leaves the previous good checkpoint intact —
    exactly the crash scenario checkpoints exist for. *)

val version : int
(** Current format version, stored in the file and checked by {!load}. *)

type meta = {
  bench : string;  (** SPAPT benchmark name. *)
  scale : string;  (** Scale label ([smoke], [quick], ...). *)
  seed : int;  (** Master seed of the interrupted command. *)
  every : int;  (** Checkpoint cadence, iterations. *)
  fault : (string * int) option;  (** Fault spec string and fault seed. *)
}
(** Everything [altune resume] needs to rebuild the problem, settings and
    fault injector around the restored state. *)

val save : path:string -> meta:meta -> Dataset.t -> Learner.state -> unit
(** Atomically (re)write the checkpoint file. *)

val load :
  string -> (meta * Dataset.t * Learner.state, string) result
(** Parse a checkpoint file; rejects unknown versions. *)

val to_json : meta:meta -> Dataset.t -> Learner.state -> Altune_obs.Json.t
val of_json :
  Altune_obs.Json.t -> (meta * Dataset.t * Learner.state, string) result
