type config = int array

type t = {
  name : string;
  dim : int;
  space_size : float;
  random_config : Altune_prng.Rng.t -> config;
  features : config -> float array;
  measure : rng:Altune_prng.Rng.t -> run_index:int -> config -> float;
  compile_seconds : config -> float;
  prepare : config list -> unit;
}

let key config =
  String.concat "," (List.map string_of_int (Array.to_list config))
