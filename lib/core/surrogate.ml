module Dynatree_impl = Altune_dynatree.Dynatree
module Leaf_model = Altune_dynatree.Leaf_model

type prediction = { mean : float; variance : float }

type tree_stats = {
  mean_leaves : float;
  max_depth : int;
  depth_histogram : int array;
  split_frequencies : float array;
}

module type S = sig
  type t

  val name : string
  val observe : t -> float array -> float -> unit
  val predict : t -> float array -> prediction

  val alc_scores :
    t -> candidates:float array array -> refs:float array array -> float array

  val n_observations : t -> int
  val tree_stats : t -> tree_stats option
  val set_pool : t -> Altune_exec.Pool.t option -> unit
end

type t = Pack : (module S with type t = 'a) * 'a -> t

let observe (Pack ((module M), m)) x y = M.observe m x y
let set_pool (Pack ((module M), m)) pool = M.set_pool m pool
let predict (Pack ((module M), m)) x = M.predict m x
let predictive_variance pack x = (predict pack x).variance

let alc_scores (Pack ((module M), m)) ~candidates ~refs =
  M.alc_scores m ~candidates ~refs

let n_observations (Pack ((module M), m)) = M.n_observations m
let name (Pack ((module M), _)) = M.name
let tree_stats (Pack ((module M), m)) = M.tree_stats m

type factory =
  noise_hint:float option -> rng:Altune_prng.Rng.t -> dim:int -> t

module Dynatree_surrogate = struct
  type t = Dynatree_impl.t

  let name = "dynatree"
  let observe = Dynatree_impl.observe

  let predict m x =
    let p = Dynatree_impl.predict m x in
    { mean = p.Dynatree_impl.mean; variance = p.Dynatree_impl.variance }

  let alc_scores = Dynatree_impl.alc_scores
  let n_observations = Dynatree_impl.n_observations
  let set_pool = Dynatree_impl.set_pool

  let tree_stats m =
    let s = Dynatree_impl.stats m in
    Some
      {
        mean_leaves = s.Dynatree_impl.mean_leaves;
        max_depth = s.Dynatree_impl.max_depth;
        depth_histogram = s.Dynatree_impl.depth_histogram;
        split_frequencies = s.Dynatree_impl.split_frequencies;
      }
end

let dynatree ?(particles = Dynatree_impl.default_params.n_particles) () :
    factory =
 fun ~noise_hint ~rng ~dim ->
  let base = { Dynatree_impl.default_params with n_particles = particles } in
  let params =
    match noise_hint with
    | None -> base
    | Some within ->
        (* Centre the leaf prior's inverse-gamma noise scale on the
           measured within-configuration variance: prior mean of sigma^2
           is b0 / (a0 - 1). *)
        let prior = base.tree.prior in
        let b0 =
          Float.max 1e-8 (within *. (prior.Leaf_model.a0 -. 1.0))
        in
        { base with tree = { base.tree with prior = { prior with b0 } } }
  in
  Pack
    ( (module Dynatree_surrogate),
      Dynatree_impl.create ~params ~rng dim )
