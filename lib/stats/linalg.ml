let cholesky a =
  let n = Array.length a in
  let l = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref a.(i).(j) in
      for k = 0 to j - 1 do
        s := !s -. (l.(i).(k) *. l.(j).(k))
      done;
      if i = j then begin
        if !s <= 0.0 then
          failwith
            (Printf.sprintf
               "Linalg.cholesky: matrix not positive definite (pivot %d of \
                %d is %g after elimination; expected > 0)"
               i n !s);
        l.(i).(i) <- sqrt !s
      end
      else l.(i).(j) <- !s /. l.(j).(j)
    done
  done;
  l

let solve_lower l b =
  let n = Array.length b in
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (l.(i).(k) *. x.(k))
    done;
    x.(i) <- !s /. l.(i).(i)
  done;
  x

let solve_upper_transposed l b =
  let n = Array.length b in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (l.(k).(i) *. x.(k))
    done;
    x.(i) <- !s /. l.(i).(i)
  done;
  x

let cholesky_solve l b = solve_upper_transposed l (solve_lower l b)

let dot a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Linalg.dot: length mismatch";
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let mat_vec m v = Array.map (fun row -> dot row v) m

let log_det_from_cholesky l =
  let s = ref 0.0 in
  Array.iteri (fun i row -> s := !s +. log row.(i)) l;
  2.0 *. !s
