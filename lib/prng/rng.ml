type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float;
  (* Cached second variate of the Marsaglia polar pair; nan when empty. *)
  mutable has_spare : bool;
}

(* SplitMix64 is used only to expand a seed into the 256-bit xoshiro state,
   guaranteeing a non-zero, well-mixed starting point. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = nan; has_spare = false }

type seed_part = I of int | S of string

(* One SplitMix64-style absorption round: xor in the block, advance by the
   golden gamma, then run the full finalizer.  Running the finalizer per
   block (rather than once at the end) keeps short, similar inputs — the
   common case for (tag, repetition, benchmark) keys — far apart. *)
let mix64 h x =
  let open Int64 in
  let z = add (logxor h x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let derive ~seed parts =
  (* Domain-separate the two part constructors and prefix strings with
     their length, so e.g. [S "a"; S ""] and [S ""; S "a"] differ and an
     int can never collide with a string of the same bits. *)
  let h = ref (mix64 (Int64.of_int seed) 0x64657269766564L (* "derived" *)) in
  List.iter
    (fun part ->
      match part with
      | I i ->
          h := mix64 !h 1L;
          h := mix64 !h (Int64.of_int i)
      | S s ->
          h := mix64 !h 2L;
          h := mix64 !h (Int64.of_int (String.length s));
          String.iter (fun c -> h := mix64 !h (Int64.of_int (Char.code c))) s)
    parts;
  (* Top 62 bits: OCaml's native int keeps 63, so this stays positive. *)
  Int64.to_int (Int64.shift_right_logical !h 2)

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** step. *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = nan; has_spare = false }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let uniform t =
  (* 53 top bits, as in the reference xoshiro double conversion. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. 0x1.0p-53

let float t bound = bound *. uniform t
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = uniform t < p

let normal ?(mu = 0.0) ?(sigma = 1.0) t =
  if t.has_spare then begin
    t.has_spare <- false;
    mu +. (sigma *. t.spare)
  end
  else begin
    let rec polar () =
      let u = (2.0 *. uniform t) -. 1.0 in
      let v = (2.0 *. uniform t) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then polar ()
      else begin
        let m = sqrt (-2.0 *. log s /. s) in
        t.spare <- v *. m;
        t.has_spare <- true;
        u *. m
      end
    in
    mu +. (sigma *. polar ())
  end

let lognormal ?(mu = 0.0) ?(sigma = 1.0) t = exp (normal ~mu ~sigma t)

let exponential ?(rate = 1.0) t =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.uniform t) /. rate

(* Marsaglia & Tsang (2000).  For shape < 1 we boost via the standard
   U^(1/shape) trick. *)
let rec gamma ~shape ~scale t =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Rng.gamma: shape and scale must be positive";
  if shape < 1.0 then
    let g = gamma ~shape:(shape +. 1.0) ~scale t in
    g *. (uniform t ** (1.0 /. shape))
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = normal t in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else begin
        let v3 = v *. v *. v in
        let u = uniform t in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v3
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v3 +. log v3)) then
          d *. v3
        else draw ()
      end
    in
    scale *. draw ()
  end

let chi_square ~df t =
  if df <= 0.0 then invalid_arg "Rng.chi_square: df must be positive";
  gamma ~shape:(df /. 2.0) ~scale:2.0 t

let student_t ~df t =
  if df <= 0.0 then invalid_arg "Rng.student_t: df must be positive";
  normal t /. sqrt (chi_square ~df t /. df)

let beta ~a ~b t =
  let x = gamma ~shape:a ~scale:1.0 t in
  let y = gamma ~shape:b ~scale:1.0 t in
  x /. (x +. y)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  if k < 0 then invalid_arg "Rng.sample_without_replacement: negative k";
  (* Partial Fisher-Yates over an index array; O(n) space, O(n + k) time,
     fine for the candidate-pool sizes used here. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

(* Defined last: the labels shadow [t]'s mutable fields of the same name,
   so everything above keeps resolving them against [t]. *)
type state = {
  s0 : int64;
  s1 : int64;
  s2 : int64;
  s3 : int64;
  spare : float;
  has_spare : bool;
}

let capture (t : t) =
  {
    s0 = t.s0;
    s1 = t.s1;
    s2 = t.s2;
    s3 = t.s3;
    spare = t.spare;
    has_spare = t.has_spare;
  }

let restore (s : state) : t =
  {
    s0 = s.s0;
    s1 = s.s1;
    s2 = s.s2;
    s3 = s.s3;
    spare = s.spare;
    has_spare = s.has_spare;
  }
