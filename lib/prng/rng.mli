(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256** seeded through SplitMix64, giving
    high-quality 64-bit output streams that are fully reproducible from an
    integer seed.  Independent sub-streams are obtained with {!split}, which
    derives a new generator whose future output is statistically independent
    of the parent's — this is what lets every experiment repetition, every
    benchmark, and every noise channel own a private stream while the whole
    run stays reproducible. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a fresh generator from a 63-bit seed. *)

type seed_part = I of int | S of string
(** One component of a derived-seed key: an integer (repetition index,
    knob value, ...) or a string (tag, benchmark name, ...). *)

val derive : seed:int -> seed_part list -> int
(** [derive ~seed parts] mixes a master seed with a structured key into a
    non-negative 62-bit seed, SplitMix64-style: every part is absorbed
    through the full finalizer with type and length domain separation, so
    distinct keys yield decorrelated seeds (unlike [Hashtbl.hash], which
    truncates and collides).  Use this to give every task of a parallel
    experiment its own deterministic stream:
    [Rng.create ~seed:(Rng.derive ~seed [S "adaptive"; I rep; S "mm"])]. *)

val copy : t -> t
(** [copy t] is an independent duplicate of [t]'s current state: both copies
    will produce the same future stream. *)

type state = {
  s0 : int64;
  s1 : int64;
  s2 : int64;
  s3 : int64;
  spare : float;
  has_spare : bool;
}
(** A generator's full cursor: the four xoshiro256** words plus the cached
    Marsaglia spare variate.  Transparent so checkpoints can serialize it
    exactly (the floats must round-trip via their IEEE-754 bits). *)

val capture : t -> state
(** [capture t] snapshots [t]'s cursor without advancing it. *)

val restore : state -> t
(** [restore s] is a generator whose future stream is exactly the stream
    [capture]'s subject would have produced: [restore (capture t)] and [t]
    are interchangeable from here on. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it; the
    two streams are decorrelated. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]. [bound] must be positive.
    Rejection sampling makes the draw exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)], using 53 random bits. *)

val uniform : t -> float
(** [uniform t] is uniform on [\[0, 1)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val normal : ?mu:float -> ?sigma:float -> t -> float
(** Gaussian variate via the Marsaglia polar method. *)

val lognormal : ?mu:float -> ?sigma:float -> t -> float
(** [exp] of a Gaussian with the given log-space parameters. *)

val exponential : ?rate:float -> t -> float

val gamma : shape:float -> scale:float -> t -> float
(** Marsaglia–Tsang method; valid for any [shape > 0]. *)

val chi_square : df:float -> t -> float

val student_t : df:float -> t -> float
(** Standard Student-t variate with [df] degrees of freedom. *)

val beta : a:float -> b:float -> t -> float

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [\[0, n)].  Raises [Invalid_argument] if [k > n].  Order is random. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
