module Rng = Altune_prng.Rng
module Pool = Altune_exec.Pool
module Metrics = Altune_obs.Metrics
module Trace = Altune_obs.Trace

type params = {
  n_particles : int;
  tree : Tree.params;
  resample_threshold : float;
}

let default_params =
  { n_particles = 300; tree = Tree.default_params; resample_threshold = 1.0 }

(* Debug flag: force the O(particles × candidates × refs) full ALC
   recompute instead of the cached fast path.  The differential tests
   flip this to check the incremental scores are bit-identical. *)
let force_full_alc = ref false

(* Parallelism gates.  Both are in units of *work items*, not jobs: the
   decision to fan out must be a pure function of the problem size so the
   code path (and therefore the output) is the same at any [--jobs].
   Every parallel phase below is pure-read over the particles with
   slot-indexed writes and a sequential in-order reduction, so fan-out
   never changes a single bit — these gates only keep pool overhead away
   from ensembles too small to amortize it. *)
let reweight_par_min_particles = ref 256
let alc_par_min_work = ref 16_384

(* surrogate.* telemetry: registered lazily so programs that never touch
   the surrogate don't see the instruments. *)
let m_observes = lazy (Metrics.counter "surrogate.observes")
let m_resamples = lazy (Metrics.counter "surrogate.resamples")
let m_leaves_created = lazy (Metrics.counter "surrogate.leaves.created")
let m_alc_calls = lazy (Metrics.counter "surrogate.alc.calls")
let m_alc_scores = lazy (Metrics.counter "surrogate.alc.scores")
let m_alc_slow_calls = lazy (Metrics.counter "surrogate.alc.slow_calls")
let m_alc_reinits = lazy (Metrics.counter "surrogate.alc.reinits")

type t = {
  params : params;
  rng : Rng.t;
  store : Tree.store;
  mutable particles : Tree.t array;
  mutable weights : float array;  (* normalized *)
  (* Preallocated arenas, reused by every [observe]: log-weights, scratch
     normalized weights, and the resampling target.  Nothing on the
     per-observation bookkeeping path allocates after [create]. *)
  log_w : float array;
  w_scratch : float array;
  p_scratch : Tree.t array;
  mutable pool : Pool.t option;
  (* Incremental-ALC registration: the reference set currently routed into
     the per-leaf member caches, keyed by physical identity (the learner
     builds [refs] once per run).  [alc_epoch = 0] means nothing is
     registered; each re-registration bumps the epoch, instantly
     invalidating every cached member array. *)
  mutable alc_refs : float array array;
  mutable alc_epoch : int;
}

let create ?(params = default_params) ~rng dim =
  if params.n_particles <= 0 then
    invalid_arg "Dynatree.create: n_particles must be positive";
  let rng = Rng.split rng in
  let store = Tree.make_store ~dim in
  let particles =
    Array.init params.n_particles (fun _ -> Tree.singleton params.tree store [])
  in
  let n = params.n_particles in
  {
    params;
    rng;
    store;
    particles;
    weights = Array.make n (1.0 /. float_of_int n);
    log_w = Array.make n 0.0;
    w_scratch = Array.make n 0.0;
    p_scratch = Array.make n particles.(0);
    pool = None;
    alc_refs = [||];
    alc_epoch = 0;
  }

let set_pool t pool = t.pool <- pool
let n_observations t = Tree.store_size t.store

let effective_sample_size weights =
  let sumsq = Array.fold_left (fun acc w -> acc +. (w *. w)) 0.0 weights in
  if sumsq = 0.0 then 0.0 else 1.0 /. sumsq

(* Systematic resampling: one uniform offset, evenly spaced pointers.
   Writes the survivors into [out] (the preallocated scratch). *)
let systematic_resample rng particles weights out =
  let n = Array.length particles in
  let nf = float_of_int n in
  let u0 = Rng.uniform rng /. nf in
  let cum = ref weights.(0) in
  let j = ref 0 in
  for k = 0 to n - 1 do
    let target = u0 +. (float_of_int k /. nf) in
    while !cum < target && !j < n - 1 do
      incr j;
      cum := !cum +. weights.(!j)
    done;
    out.(k) <- Tree.copy particles.(!j)
  done

(* Split [0..n-1] into contiguous chunks for slot-indexed parallel fills.
   Chunk count tracks the pool width; each task owns a disjoint range of
   the output arena, so results are position-determined and identical at
   any job count. *)
let chunk_ranges ~chunks n =
  let chunks = max 1 (min chunks n) in
  let per = (n + chunks - 1) / chunks in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + per) ((lo, min n (lo + per)) :: acc)
  in
  go 0 []

let use_pool t ~work ~min_work =
  match t.pool with
  | Some pool when Pool.jobs pool > 1 && work >= min_work -> Some pool
  | _ -> None

let observe t x y =
  Trace.with_span ~phase:"tree-update" ~name:"surrogate.observe" @@ fun () ->
  let n = Array.length t.particles in
  (* Reweight by posterior predictive density at the incoming point.  The
     per-particle terms are independent pure reads, so this sweep may fan
     out; each task fills its own slice of the [log_w] arena. *)
  let fill_log_w lo hi =
    for i = lo to hi - 1 do
      t.log_w.(i) <- log t.weights.(i) +. Tree.log_predictive t.particles.(i) x y
    done
  in
  (match use_pool t ~work:n ~min_work:!reweight_par_min_particles with
  | Some pool ->
      ignore
        (Pool.map
           ~label:(fun i -> Printf.sprintf "reweight %d" i)
           pool
           (fun (lo, hi) -> fill_log_w lo hi)
           (chunk_ranges ~chunks:(4 * Pool.jobs pool) n))
  | None -> fill_log_w 0 n);
  let m = Array.fold_left Float.max neg_infinity t.log_w in
  let w = t.w_scratch in
  if Float.is_finite m then
    for i = 0 to n - 1 do
      w.(i) <- exp (t.log_w.(i) -. m)
    done
  else Array.fill w 0 n 1.0;
  let total = Array.fold_left ( +. ) 0.0 w in
  if total > 0.0 && Float.is_finite total then
    for i = 0 to n - 1 do
      w.(i) <- w.(i) /. total
    done
  else Array.fill w 0 n (1.0 /. float_of_int n);
  let ess = effective_sample_size w in
  let resampled = ess < t.params.resample_threshold *. float_of_int n in
  let src =
    if resampled then begin
      Metrics.incr (Lazy.force m_resamples);
      systematic_resample t.rng t.particles w t.p_scratch;
      Array.fill t.weights 0 n (1.0 /. float_of_int n);
      t.p_scratch
    end
    else begin
      Array.blit w 0 t.weights 0 n;
      t.particles
    end
  in
  (* Propagate: insert the observation into every particle.  The updates
     draw from one shared rng stream, so this loop is inherently
     sequential — determinism lives here, speed lives in the sweeps
     around it.  When a reference set is registered, each particle's
     displaced members are rerouted through its replacement subtree
     immediately, keeping every leaf's ALC cache valid. *)
  let i = Tree.append t.store x y in
  let new_leaves = ref 0 in
  for k = 0 to n - 1 do
    let p, d = Tree.update ~rng:t.rng src.(k) i in
    t.particles.(k) <- p;
    new_leaves := !new_leaves + Tree.delta_new_leaves d;
    if t.alc_epoch > 0 then
      Tree.alc_apply p d ~refs:t.alc_refs ~epoch:t.alc_epoch
  done;
  Metrics.incr (Lazy.force m_observes);
  Metrics.add (Lazy.force m_leaves_created) !new_leaves

type prediction = { mean : float; variance : float }

(* Cap for leaves whose Student-t variance is undefined: keeps exploration
   scores finite and comparable. *)
let variance_cap = 1e6

let capped_variance (pr : Leaf_model.predictive) =
  if Float.is_finite pr.variance then Float.min pr.variance variance_cap
  else variance_cap

let predict t x =
  let mean = ref 0.0 and second = ref 0.0 in
  Array.iteri
    (fun i p ->
      let pr = Tree.predict p x in
      let v = capped_variance pr in
      let w = t.weights.(i) in
      mean := !mean +. (w *. pr.mean);
      second := !second +. (w *. (v +. (pr.mean *. pr.mean))))
    t.particles;
  let mean = !mean in
  { mean; variance = Float.max 0.0 (!second -. (mean *. mean)) }

let predictive_variance t x = (predict t x).variance

let average_variance t ~refs =
  if Array.length refs = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. predictive_variance t x) refs;
    !acc /. float_of_int (Array.length refs)
  end

(* Full recompute: partition [refs] down every particle from the root and
   rebuild every leaf's sufficient-statistics payoff.  This is the
   pre-incremental implementation, kept verbatim as the differential
   oracle behind [force_full_alc]. *)
let alc_scores_slow t ~candidates ~refs =
  let nrefs = float_of_int (max 1 (Array.length refs)) in
  (* Per particle: how many reference points share each leaf. *)
  let ref_counts = Array.map (fun p -> Tree.leaf_ref_counts p refs) t.particles in
  Array.map
    (fun c ->
      let score = ref 0.0 in
      Array.iteri
        (fun i p ->
          let leaf_id, suff = Tree.leaf_stats_at p c in
          let count =
            Option.value ~default:0 (Hashtbl.find_opt ref_counts.(i) leaf_id)
          in
          if count > 0 then begin
            let reduction =
              Leaf_model.expected_variance_reduction t.params.tree.prior suff
            in
            let reduction = Float.min reduction variance_cap in
            score :=
              !score +. (t.weights.(i) *. float_of_int count *. reduction)
          end)
        t.particles;
      !score /. nrefs)
    candidates

(* Defensive slow count for a leaf whose member cache missed the current
   epoch.  The observe-time rerouting keeps caches valid, so this only
   runs if a particle was mutated behind the ensemble's back. *)
let stale_leaf_count t (l : Tree.leaf) refs =
  let count = ref 0 in
  Array.iter
    (fun x ->
      let l' = Tree.leaf_at t x in
      if l'.Tree.id = l.Tree.id then incr count)
    refs;
  !count

let alc_register t refs =
  if t.alc_epoch = 0 || not (refs == t.alc_refs) then begin
    Metrics.incr (Lazy.force m_alc_reinits);
    t.alc_refs <- refs;
    t.alc_epoch <- t.alc_epoch + 1;
    Array.iter (fun p -> Tree.alc_init p ~refs ~epoch:t.alc_epoch) t.particles
  end

(* Fast path: the per-leaf caches carry both factors of the ALC term —
   [members] gives the reference count, [evr] the expected variance
   reduction — so scoring a candidate is one root-to-leaf descent per
   particle with no hashing and no sufficient-statistics math. *)
let alc_scores_fast t ~candidates ~refs =
  alc_register t refs;
  let epoch = t.alc_epoch in
  let nrefs = float_of_int (max 1 (Array.length refs)) in
  let n = Array.length t.particles in
  let nc = Array.length candidates in
  let scores = Array.make nc 0.0 in
  let score_range lo hi =
    for ci = lo to hi - 1 do
      let c = candidates.(ci) in
      let score = ref 0.0 in
      for i = 0 to n - 1 do
        let l = Tree.leaf_at t.particles.(i) c in
        let count =
          if l.Tree.m_epoch = epoch then Array.length l.Tree.members
          else stale_leaf_count t.particles.(i) l refs
        in
        if count > 0 then begin
          let reduction = Float.min l.Tree.evr variance_cap in
          score := !score +. (t.weights.(i) *. float_of_int count *. reduction)
        end
      done;
      scores.(ci) <- !score /. nrefs
    done
  in
  (match use_pool t ~work:(n * nc) ~min_work:!alc_par_min_work with
  | Some pool ->
      ignore
        (Pool.map
           ~label:(fun i -> Printf.sprintf "alc %d" i)
           pool
           (fun (lo, hi) -> score_range lo hi)
           (chunk_ranges ~chunks:(4 * Pool.jobs pool) nc))
  | None -> score_range 0 nc);
  scores

let alc_scores t ~candidates ~refs =
  Trace.with_span ~phase:"alc" ~name:"surrogate.alc" @@ fun () ->
  Metrics.incr (Lazy.force m_alc_calls);
  Metrics.add (Lazy.force m_alc_scores)
    (Array.length candidates * Array.length t.particles);
  if !force_full_alc then begin
    Metrics.incr (Lazy.force m_alc_slow_calls);
    alc_scores_slow t ~candidates ~refs
  end
  else alc_scores_fast t ~candidates ~refs

type stats = {
  particles : int;
  mean_leaves : float;
  max_depth : int;
  depth_histogram : int array;
  split_frequencies : float array;
}

let stats (t : t) =
  let n = Array.length t.particles in
  let per = Array.map Tree.stats t.particles in
  let max_depth =
    Array.fold_left (fun acc (s : Tree.stats) -> max acc s.depth) 0 per
  in
  let depth_histogram = Array.make (max_depth + 1) 0 in
  Array.iter
    (fun (s : Tree.stats) ->
      depth_histogram.(s.depth) <- depth_histogram.(s.depth) + 1)
    per;
  let dim = match per with [||] -> 0 | _ -> Array.length per.(0).split_counts in
  let split_totals = Array.make dim 0 in
  Array.iter
    (fun (s : Tree.stats) ->
      Array.iteri
        (fun d c -> split_totals.(d) <- split_totals.(d) + c)
        s.split_counts)
    per;
  let all_splits = Array.fold_left ( + ) 0 split_totals in
  let split_frequencies =
    if all_splits = 0 then Array.make dim 0.0
    else
      Array.map
        (fun c -> float_of_int c /. float_of_int all_splits)
        split_totals
  in
  let total_leaves =
    Array.fold_left (fun acc (s : Tree.stats) -> acc + s.n_leaves) 0 per
  in
  {
    particles = n;
    mean_leaves = float_of_int total_leaves /. float_of_int (max 1 n);
    max_depth;
    depth_histogram;
    split_frequencies;
  }

let mean_n_leaves t = (stats t).mean_leaves

let mean_depth (t : t) =
  let total =
    Array.fold_left (fun acc p -> acc + Tree.depth p) 0 t.particles
  in
  float_of_int total /. float_of_int (Array.length t.particles)
