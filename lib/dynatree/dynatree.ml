module Rng = Altune_prng.Rng

type params = {
  n_particles : int;
  tree : Tree.params;
  resample_threshold : float;
}

let default_params =
  { n_particles = 300; tree = Tree.default_params; resample_threshold = 1.0 }

type t = {
  params : params;
  rng : Rng.t;
  store : Tree.store;
  mutable particles : Tree.t array;
  mutable weights : float array;  (* normalized *)
}

let create ?(params = default_params) ~rng dim =
  if params.n_particles <= 0 then
    invalid_arg "Dynatree.create: n_particles must be positive";
  let rng = Rng.split rng in
  let store = Tree.make_store ~dim in
  {
    params;
    rng;
    store;
    particles =
      Array.init params.n_particles (fun _ ->
          Tree.singleton params.tree store []);
    weights =
      Array.make params.n_particles (1.0 /. float_of_int params.n_particles);
  }

let n_observations t = Tree.store_size t.store

let effective_sample_size weights =
  let sumsq = Array.fold_left (fun acc w -> acc +. (w *. w)) 0.0 weights in
  if sumsq = 0.0 then 0.0 else 1.0 /. sumsq

(* Systematic resampling: one uniform offset, evenly spaced pointers. *)
let systematic_resample rng particles weights =
  let n = Array.length particles in
  let nf = float_of_int n in
  let out = Array.make n particles.(0) in
  let u0 = Rng.uniform rng /. nf in
  let cum = ref weights.(0) in
  let j = ref 0 in
  for k = 0 to n - 1 do
    let target = u0 +. (float_of_int k /. nf) in
    while !cum < target && !j < n - 1 do
      incr j;
      cum := !cum +. weights.(!j)
    done;
    out.(k) <- Tree.copy particles.(!j)
  done;
  out

let observe t x y =
  let n = Array.length t.particles in
  (* Reweight by posterior predictive density at the incoming point. *)
  let log_w =
    Array.mapi
      (fun i p -> log t.weights.(i) +. Tree.log_predictive p x y)
      t.particles
  in
  let m = Array.fold_left Float.max neg_infinity log_w in
  let w =
    if Float.is_finite m then Array.map (fun lw -> exp (lw -. m)) log_w
    else Array.make n 1.0
  in
  let total = Array.fold_left ( +. ) 0.0 w in
  let w =
    if total > 0.0 && Float.is_finite total then
      Array.map (fun x -> x /. total) w
    else Array.make n (1.0 /. float_of_int n)
  in
  let ess = effective_sample_size w in
  let particles, weights =
    if ess < t.params.resample_threshold *. float_of_int n then
      ( systematic_resample t.rng t.particles w,
        Array.make n (1.0 /. float_of_int n) )
    else (t.particles, w)
  in
  (* Propagate: insert the observation into every particle. *)
  let i = Tree.append t.store x y in
  t.particles <- Array.map (fun p -> Tree.update ~rng:t.rng p i) particles;
  t.weights <- weights

type prediction = { mean : float; variance : float }

(* Cap for leaves whose Student-t variance is undefined: keeps exploration
   scores finite and comparable. *)
let variance_cap = 1e6

let capped_variance (pr : Leaf_model.predictive) =
  if Float.is_finite pr.variance then Float.min pr.variance variance_cap
  else variance_cap

let predict t x =
  let mean = ref 0.0 and second = ref 0.0 in
  Array.iteri
    (fun i p ->
      let pr = Tree.predict p x in
      let v = capped_variance pr in
      let w = t.weights.(i) in
      mean := !mean +. (w *. pr.mean);
      second := !second +. (w *. (v +. (pr.mean *. pr.mean))))
    t.particles;
  let mean = !mean in
  { mean; variance = Float.max 0.0 (!second -. (mean *. mean)) }

let predictive_variance t x = (predict t x).variance

let average_variance t ~refs =
  if Array.length refs = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. predictive_variance t x) refs;
    !acc /. float_of_int (Array.length refs)
  end

let alc_scores t ~candidates ~refs =
  let nrefs = float_of_int (max 1 (Array.length refs)) in
  (* Per particle: how many reference points share each leaf. *)
  let ref_counts = Array.map (fun p -> Tree.leaf_ref_counts p refs) t.particles in
  Array.map
    (fun c ->
      let score = ref 0.0 in
      Array.iteri
        (fun i p ->
          let leaf_id, suff = Tree.leaf_stats_at p c in
          let count =
            Option.value ~default:0 (Hashtbl.find_opt ref_counts.(i) leaf_id)
          in
          if count > 0 then begin
            let reduction =
              Leaf_model.expected_variance_reduction t.params.tree.prior suff
            in
            let reduction = Float.min reduction variance_cap in
            score :=
              !score +. (t.weights.(i) *. float_of_int count *. reduction)
          end)
        t.particles;
      !score /. nrefs)
    candidates

type stats = {
  particles : int;
  mean_leaves : float;
  max_depth : int;
  depth_histogram : int array;
  split_frequencies : float array;
}

let stats (t : t) =
  let n = Array.length t.particles in
  let per = Array.map Tree.stats t.particles in
  let max_depth =
    Array.fold_left (fun acc (s : Tree.stats) -> max acc s.depth) 0 per
  in
  let depth_histogram = Array.make (max_depth + 1) 0 in
  Array.iter
    (fun (s : Tree.stats) ->
      depth_histogram.(s.depth) <- depth_histogram.(s.depth) + 1)
    per;
  let dim = match per with [||] -> 0 | _ -> Array.length per.(0).split_counts in
  let split_totals = Array.make dim 0 in
  Array.iter
    (fun (s : Tree.stats) ->
      Array.iteri
        (fun d c -> split_totals.(d) <- split_totals.(d) + c)
        s.split_counts)
    per;
  let all_splits = Array.fold_left ( + ) 0 split_totals in
  let split_frequencies =
    if all_splits = 0 then Array.make dim 0.0
    else
      Array.map
        (fun c -> float_of_int c /. float_of_int all_splits)
        split_totals
  in
  let total_leaves =
    Array.fold_left (fun acc (s : Tree.stats) -> acc + s.n_leaves) 0 per
  in
  {
    particles = n;
    mean_leaves = float_of_int total_leaves /. float_of_int (max 1 n);
    max_depth;
    depth_histogram;
    split_frequencies;
  }

let mean_n_leaves t = (stats t).mean_leaves

let mean_depth (t : t) =
  let total =
    Array.fold_left (fun acc p -> acc + Tree.depth p) 0 t.particles
  in
  float_of_int total /. float_of_int (Array.length t.particles)
