(** Dynamic-tree regression ensemble (Taddy, Gramacy & Polson), the
    surrogate model of the paper's active learner.

    A set of [n_particles] trees is maintained by particle learning: on
    each new observation the particles are resampled in proportion to their
    posterior predictive density at the observation (systematic
    resampling), then each propagates by stochastically choosing stay /
    grow / prune for the leaf the observation lands in.  The model can be
    queried at any point for a posterior predictive mean and variance —
    the MacKay active-learning score — and for the ALC (Cohn) score, the
    expected reduction of average predictive variance over a reference set
    from one more observation at a candidate point. *)

type params = {
  n_particles : int;
  tree : Tree.params;
  resample_threshold : float;
      (** Effective-sample-size fraction below which systematic resampling
          triggers; [1.] resamples every step (classic particle learning). *)
}

val default_params : params
(** 300 particles, resampling every step, default tree parameters. *)

type t

val create : ?params:params -> rng:Altune_prng.Rng.t -> int -> t
(** [create ~rng dim] is an empty model over [dim]-dimensional (normalized)
    feature vectors.
    The rng is split internally; the caller's generator is advanced once. *)

val observe : t -> float array -> float -> unit
(** Add one (x, y) observation and update every particle.  This is the
    incremental update that makes dynamic trees cheap inside an active
    learning loop — no model reconstruction. *)

val n_observations : t -> int

type prediction = { mean : float; variance : float }

val predict : t -> float array -> prediction
(** Mixture posterior predictive across particles: mean of means, and the
    mixture variance (within-particle plus across-particle spread).
    Particles whose leaf predictive variance is undefined (too few points)
    contribute a large-but-finite variance so exploration still works. *)

val predictive_variance : t -> float array -> float
(** MacKay score: the predictive variance at [x]. *)

val alc_scores :
  t -> candidates:float array array -> refs:float array array -> float array
(** Cohn / ALC scores for a batch of candidates: for each candidate, the
    expected reduction in total predictive variance over [refs] if the
    candidate were observed once more, averaged over particles.  Higher
    means more useful.  Batched because the per-particle partition of
    [refs] is shared across candidates. *)

val average_variance : t -> refs:float array array -> float
(** Current average predictive variance over a reference set (diagnostic,
    and the quantity ALC estimates reductions of). *)

val mean_n_leaves : t -> float
val mean_depth : t -> float

type stats = {
  particles : int;
  mean_leaves : float;  (** Mean leaf count across particles. *)
  max_depth : int;  (** Deepest particle. *)
  depth_histogram : int array;
      (** [depth_histogram.(d)] = particles of depth [d]; length
          [max_depth + 1]. *)
  split_frequencies : float array;
      (** Fraction of all internal splits (pooled over particles) that cut
          each feature dimension; sums to 1 when any split exists, all
          zeros otherwise.  A cheap sensitivity proxy in the spirit of
          Gramacy & Taddy's dynamic-tree variable selection: dimensions
          the posterior keeps splitting on are the ones the response
          depends on. *)
}

val stats : t -> stats
(** Ensemble-shape introspection, one pass over the particles.  Cheap
    enough to call at every evaluation point of a learning run. *)
