(** Dynamic-tree regression ensemble (Taddy, Gramacy & Polson), the
    surrogate model of the paper's active learner.

    A set of [n_particles] trees is maintained by particle learning: on
    each new observation the particles are resampled in proportion to their
    posterior predictive density at the observation (systematic
    resampling), then each propagates by stochastically choosing stay /
    grow / prune for the leaf the observation lands in.  The model can be
    queried at any point for a posterior predictive mean and variance —
    the MacKay active-learning score — and for the ALC (Cohn) score, the
    expected reduction of average predictive variance over a reference set
    from one more observation at a candidate point.

    This is the inner loop of every tuning session, so the implementation
    is built for speed without giving up determinism: per-observation
    bookkeeping runs in preallocated arenas (no allocation after
    {!create}), ALC scoring reads per-leaf caches maintained incrementally
    as observations arrive (see {!Tree.alc_apply}), and the pure sweeps —
    particle reweighting, candidate scoring — fan out on an
    {!Altune_exec.Pool} when one is attached.  Fan-out decisions depend
    only on problem size and every parallel write is slot-indexed, so
    results are bit-identical at any job count; the rng-consuming particle
    updates stay sequential. *)

type params = {
  n_particles : int;
  tree : Tree.params;
  resample_threshold : float;
      (** Effective-sample-size fraction below which systematic resampling
          triggers; [1.] resamples every step (classic particle learning). *)
}

val default_params : params
(** 300 particles, resampling every step, default tree parameters. *)

type t

val create : ?params:params -> rng:Altune_prng.Rng.t -> int -> t
(** [create ~rng dim] is an empty model over [dim]-dimensional (normalized)
    feature vectors.
    The rng is split internally; the caller's generator is advanced once. *)

val set_pool : t -> Altune_exec.Pool.t option -> unit
(** Attach (or detach) a pool for the parallel sweeps.  Purely a
    performance knob: outputs are identical with or without one. *)

val observe : t -> float array -> float -> unit
(** Add one (x, y) observation and update every particle.  This is the
    incremental update that makes dynamic trees cheap inside an active
    learning loop — no model reconstruction. *)

val n_observations : t -> int

type prediction = { mean : float; variance : float }

val predict : t -> float array -> prediction
(** Mixture posterior predictive across particles: mean of means, and the
    mixture variance (within-particle plus across-particle spread).
    Particles whose leaf predictive variance is undefined (too few points)
    contribute a large-but-finite variance so exploration still works. *)

val predictive_variance : t -> float array -> float
(** MacKay score: the predictive variance at [x]. *)

val alc_scores :
  t -> candidates:float array array -> refs:float array array -> float array
(** Cohn / ALC scores for a batch of candidates: for each candidate, the
    expected reduction in total predictive variance over [refs] if the
    candidate were observed once more, averaged over particles.  Higher
    means more useful.

    The first call (and any call with a physically different [refs]
    array) registers the reference set: it is partitioned once into
    per-leaf member caches, which subsequent {!observe}s keep valid by
    rerouting only the displaced leaves.  Scoring then costs one
    root-to-leaf descent per (candidate, particle) — no per-call hashing
    or sufficient-statistics math.  Pass the same [refs] array across a
    run to get the fast path. *)

val average_variance : t -> refs:float array array -> float
(** Current average predictive variance over a reference set (diagnostic,
    and the quantity ALC estimates reductions of). *)

val force_full_alc : bool ref
(** Debug: route {!alc_scores} through the full recompute instead of the
    incremental caches.  The differential tests assert both paths agree
    to exact float equality. *)

val reweight_par_min_particles : int ref
val alc_par_min_work : int ref
(** Minimum work (particles; candidates × particles) before a sweep fans
    out on the attached pool.  Exposed so tests can force the parallel
    path at toy sizes; outputs do not depend on these. *)

val mean_n_leaves : t -> float
val mean_depth : t -> float

type stats = {
  particles : int;
  mean_leaves : float;  (** Mean leaf count across particles. *)
  max_depth : int;  (** Deepest particle. *)
  depth_histogram : int array;
      (** [depth_histogram.(d)] = particles of depth [d]; length
          [max_depth + 1]. *)
  split_frequencies : float array;
      (** Fraction of all internal splits (pooled over particles) that cut
          each feature dimension; sums to 1 when any split exists, all
          zeros otherwise.  A cheap sensitivity proxy in the spirit of
          Gramacy & Taddy's dynamic-tree variable selection: dimensions
          the posterior keeps splitting on are the ones the response
          depends on. *)
}

val stats : t -> stats
(** Ensemble-shape introspection, one pass over the particles.  Each
    particle's shape record is maintained incrementally by its updates,
    so this aggregates [n_particles] cached records instead of
    traversing every tree. *)
