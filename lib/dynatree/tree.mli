(** A single dynamic-tree particle: an axis-aligned binary regression tree
    over a shared data store, supporting the stochastic stay / grow / prune
    update of Taddy, Gramacy & Polson and the leaf queries the ensemble
    needs (predictive lookup, reference-set partitioning).

    The observation store is struct-of-arrays (one flat coordinate array,
    one response array), leaves carry the ALC caches the ensemble's
    incremental scorer reads, and every update reports a {!delta} naming
    exactly which leaves it displaced. *)

type store
(** Shared, append-only observation store ([x] vectors and [y] responses);
    all particles index into the same store.  Coordinates live in one flat
    row-major float array of stride [dim]. *)

val make_store : dim:int -> store
val store_size : store -> int
val append : store -> float array -> float -> int
(** Add an observation, returning its index.  The [x] array is copied. *)

val store_x : store -> int -> float array
(** A fresh copy of observation [i]'s coordinates (not the hot path). *)

val store_get : store -> int -> int -> float
(** [store_get st i d] is coordinate [d] of observation [i] — a single
    flat-array read. *)

val store_y : store -> int -> float

type leaf = {
  id : int;  (** Globally unique per store; fresh on every update. *)
  indices : int list;  (** Store indices of the leaf's observations. *)
  suff : Leaf_model.suff;
  evr : float;
      (** [Leaf_model.expected_variance_reduction prior suff], computed at
          leaf creation — a pure function of [suff], so never stale. *)
  mutable m_epoch : int;
      (** Registration epoch {!members} was filled for; the cache is valid
          iff this equals the ensemble's current epoch. *)
  mutable members : int array;
      (** Indices (into the registered reference set) of the reference
          points landing in this leaf.  Filled by {!alc_init} /
          {!alc_apply}; meaningless when [m_epoch] is stale. *)
}
(** Leaves are immutable except for the two ALC cache fields.  Nodes are
    shared structurally across particles; a shared leaf covers the same
    region with the same data in every particle, so the caches agree. *)

type t
(** One particle. *)

type params = {
  alpha : float;  (** Split-prior base rate, [p_split = alpha (1+d)^-beta]. *)
  beta : float;  (** Split-prior depth decay. *)
  prior : Leaf_model.prior;
  min_leaf : int;  (** Minimum observations on each side of a new split. *)
}

val default_params : params

val singleton : params -> store -> int list -> t
(** A root-leaf tree over the given observation indices. *)

val copy : t -> t
(** Particles share immutable node structure; copy is O(1). *)

val log_predictive : t -> float array -> float -> float
(** [log p(y | x, tree)] — the particle weight factor for resampling. *)

type delta
(** What one {!update} changed: the displaced leaves and the subtree that
    replaced them.  The ensemble reroutes cached reference-set members
    through the replacement instead of re-partitioning from the root —
    the one-observation update only ever touches one leaf path. *)

val delta_new_leaves : delta -> int
(** Leaves in the replacement subtree (1 for stay/prune, 2 for grow). *)

val update : rng:Altune_prng.Rng.t -> t -> int -> t * delta
(** [update ~rng tree i] inserts observation [i] (already in the store)
    into the leaf containing its [x], stochastically choosing among stay /
    grow (on a sampled candidate split) / prune in proportion to their
    local posterior weight.  Also reports which leaves were displaced. *)

val predict : t -> float array -> Leaf_model.predictive

val leaf_at : t -> float array -> leaf
(** The leaf containing [x] — one root-to-leaf descent.  The fast ALC
    scorer reads [members]/[evr] straight off the result. *)

val leaf_stats_at : t -> float array -> int * Leaf_model.suff
(** Leaf id and sufficient statistics of the leaf containing [x]. *)

val leaf_ref_counts : t -> float array array -> (int, int) Hashtbl.t
(** Partition a reference set down the tree: leaf id → number of reference
    points landing in that leaf.  (Slow-path ALC only.) *)

val alc_init : t -> refs:float array array -> epoch:int -> unit
(** Route the whole reference set down the tree, filling every leaf's
    member cache for [epoch]. *)

val alc_apply : t -> delta -> refs:float array array -> epoch:int -> unit
(** Reroute the displaced leaves' cached members through the update's
    replacement subtree.  Falls back to {!alc_init} if a displaced cache
    is stale. *)

val n_leaves : t -> int
val depth : t -> int
val n_observations : t -> int

type stats = {
  n_leaves : int;
  depth : int;
  split_counts : int array;
      (** Internal splits per feature dimension (length = store dim). *)
}

val stats : t -> stats
(** Shape introspection — leaf count, max depth, and how often each
    dimension is split on.  Maintained incrementally by {!update} (O(dim)
    per move), so this is O(1); the split counts are the raw material of
    the ensemble's sensitivity proxy: a dimension the posterior splits on
    often is one the response depends on. *)

val recompute_stats : t -> stats
(** The same record by full traversal — the differential-testing oracle
    for the incremental bookkeeping. *)
