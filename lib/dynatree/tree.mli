(** A single dynamic-tree particle: an axis-aligned binary regression tree
    over a shared data store, supporting the stochastic stay / grow / prune
    update of Taddy, Gramacy & Polson and the leaf queries the ensemble
    needs (predictive lookup, reference-set partitioning). *)

type store
(** Shared, append-only observation store ([x] vectors and [y] responses);
    all particles index into the same store. *)

val make_store : dim:int -> store
val store_size : store -> int
val append : store -> float array -> float -> int
(** Add an observation, returning its index.  The [x] array is copied. *)

val store_x : store -> int -> float array
val store_y : store -> int -> float

type t
(** One particle. *)

type params = {
  alpha : float;  (** Split-prior base rate, [p_split = alpha (1+d)^-beta]. *)
  beta : float;  (** Split-prior depth decay. *)
  prior : Leaf_model.prior;
  min_leaf : int;  (** Minimum observations on each side of a new split. *)
}

val default_params : params

val singleton : params -> store -> int list -> t
(** A root-leaf tree over the given observation indices. *)

val copy : t -> t
(** Particles share immutable node structure; copy is O(1). *)

val log_predictive : t -> float array -> float -> float
(** [log p(y | x, tree)] — the particle weight factor for resampling. *)

val update : rng:Altune_prng.Rng.t -> t -> int -> t
(** [update ~rng tree i] inserts observation [i] (already in the store)
    into the leaf containing its [x], stochastically choosing among stay /
    grow (on a sampled candidate split) / prune in proportion to their
    local posterior weight. *)

val predict : t -> float array -> Leaf_model.predictive

val leaf_stats_at : t -> float array -> int * Leaf_model.suff
(** Leaf id and sufficient statistics of the leaf containing [x]. *)

val leaf_ref_counts : t -> float array array -> (int, int) Hashtbl.t
(** Partition a reference set down the tree: leaf id → number of reference
    points landing in that leaf. *)

val n_leaves : t -> int
val depth : t -> int
val n_observations : t -> int

type stats = {
  n_leaves : int;
  depth : int;
  split_counts : int array;
      (** Internal splits per feature dimension (length = store dim). *)
}

val stats : t -> stats
(** Shape introspection in one traversal — leaf count, max depth, and how
    often each dimension is split on.  The split counts are the raw
    material of the ensemble's sensitivity proxy: a dimension the
    posterior splits on often is one the response depends on. *)
