module Rng = Altune_prng.Rng

(* The observation store is struct-of-arrays: one flat float array for
   every x vector (row-major, stride [dim]) and one for the responses.
   Particles index into it, so a leaf is a list of small ints and the
   per-observation payload lives in exactly two cache-friendly arrays
   instead of one boxed row per point. *)
type store = {
  dim : int;
  mutable xs : float array;  (* flat, length >= size * dim *)
  mutable ys : float array;
  mutable size : int;
  next_id : int ref;  (* shared leaf-id supply *)
  mutable scratch : int array;
      (* Split-sampling workspace: updates are sequential (they share one
         rng stream), so one buffer per store suffices and the per-update
         [Array.of_list] disappears. *)
}

let make_store ~dim =
  {
    dim;
    xs = Array.make (16 * dim) 0.0;
    ys = Array.make 16 0.0;
    size = 0;
    next_id = ref 0;
    scratch = Array.make 64 0;
  }

let store_size st = st.size

let append st x y =
  if Array.length x <> st.dim then
    invalid_arg "Tree.append: wrong feature dimension";
  if st.size = Array.length st.ys then begin
    let cap = 2 * st.size in
    let xs = Array.make (cap * st.dim) 0.0 and ys = Array.make cap 0.0 in
    Array.blit st.xs 0 xs 0 (st.size * st.dim);
    Array.blit st.ys 0 ys 0 st.size;
    st.xs <- xs;
    st.ys <- ys
  end;
  Array.blit x 0 st.xs (st.size * st.dim) st.dim;
  st.ys.(st.size) <- y;
  st.size <- st.size + 1;
  st.size - 1

(* Single-coordinate access into the flat store — the hot-path read. *)
let store_get st i d = Array.unsafe_get st.xs ((i * st.dim) + d)
let store_x st i = Array.sub st.xs (i * st.dim) st.dim
let store_y st i = st.ys.(i)

(* Per-leaf ALC cache (see Dynatree.alc_scores): [evr] is the raw
   expected variance reduction of one more observation in this leaf — a
   pure function of the sufficient statistics, so it is computed once at
   leaf creation and never invalidated.  [members]/[m_epoch] cache which
   reference points of the registered reference set fall inside the
   leaf's region; valid only while [m_epoch] equals the ensemble's
   current registration epoch.  Leaves are immutable except for these
   cache fields, and nodes are shared freely across particles (a shared
   leaf has the same region and data in every particle, so the cached
   values agree by construction). *)
type leaf = {
  id : int;
  indices : int list;
  suff : Leaf_model.suff;
  evr : float;
  mutable m_epoch : int;
  mutable members : int array;
}

type node =
  | Leaf of leaf
  | Split of { dim : int; threshold : float; left : node; right : node }

type params = {
  alpha : float;
  beta : float;
  prior : Leaf_model.prior;
  min_leaf : int;
}

let default_params =
  { alpha = 0.95; beta = 2.0; prior = Leaf_model.default_prior; min_leaf = 2 }

type stats = { n_leaves : int; depth : int; split_counts : int array }

(* [tstats] is maintained incrementally by [update]: stay keeps it, grow
   and prune adjust it in O(dim).  [Dynatree.stats] aggregates it on
   every telemetry emission, so recomputing by traversal here would make
   event emission O(total nodes) per eval point. *)
type t = { params : params; store : store; root : node; tstats : stats }

let fresh_id store =
  let id = !(store.next_id) in
  incr store.next_id;
  id

(* Accumulate in scalar locals (same op order as folding [add_suff], so
   bit-identical results) and allocate the record once at the end instead
   of once per element. *)
let suff_of_indices store indices =
  let n = ref 0 and sum = ref 0.0 and sumsq = ref 0.0 in
  List.iter
    (fun i ->
      let y = store_y store i in
      incr n;
      sum := !sum +. y;
      sumsq := !sumsq +. (y *. y))
    indices;
  { Leaf_model.n = !n; sum = !sum; sumsq = !sumsq }

let no_members = [||]

(* [make_leaf_with] takes a precomputed suff whose value must equal
   [suff_of_indices store indices] — the grow path computes both sides'
   statistics while weighing the move and reuses them here. *)
let make_leaf_with params store indices suff =
  {
    id = fresh_id store;
    indices;
    suff;
    evr = Leaf_model.expected_variance_reduction params.prior suff;
    m_epoch = 0;
    members = no_members;
  }

let make_leaf params store indices =
  make_leaf_with params store indices (suff_of_indices store indices)

let singleton params store indices =
  {
    params;
    store;
    root = Leaf (make_leaf params store indices);
    tstats =
      { n_leaves = 1; depth = 0; split_counts = Array.make store.dim 0 };
  }

let copy t = t

let p_split params depth =
  params.alpha *. ((1.0 +. float_of_int depth) ** -.params.beta)

let rec find_leaf node x =
  match node with
  | Leaf l -> l
  | Split s ->
      if x.(s.dim) <= s.threshold then find_leaf s.left x
      else find_leaf s.right x

let leaf_at t x = find_leaf t.root x

let predict t x =
  let l = find_leaf t.root x in
  Leaf_model.predict t.params.prior l.suff

let log_predictive t x y =
  let l = find_leaf t.root x in
  Leaf_model.log_predictive_density t.params.prior l.suff y

let leaf_stats_at t x =
  let l = find_leaf t.root x in
  (l.id, l.suff)

let leaf_ref_counts t refs =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      let l = find_leaf t.root x in
      Hashtbl.replace tbl l.id
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l.id)))
    refs;
  tbl

let n_leaves t = t.tstats.n_leaves
let depth t = t.tstats.depth

let rec count_obs = function
  | Leaf l -> l.suff.n
  | Split s -> count_obs s.left + count_obs s.right

let n_observations t = count_obs t.root

let stats t = t.tstats

(* Full-traversal recomputation of [tstats] — the pre-incremental
   implementation, kept as the differential-testing oracle and as the
   slow path after a prune that removes the deepest leaf. *)
let recompute_stats t =
  let split_counts = Array.make t.store.dim 0 in
  let leaves = ref 0 in
  let rec go node d depth_acc =
    match node with
    | Leaf _ ->
        incr leaves;
        max d depth_acc
    | Split s ->
        split_counts.(s.dim) <- split_counts.(s.dim) + 1;
        go s.right (d + 1) (go s.left (d + 1) depth_acc)
  in
  let depth = go t.root 0 0 in
  { n_leaves = !leaves; depth; split_counts }

(* Sample a candidate split of [indices]: a uniformly chosen dimension and
   a threshold at the midpoint between the values of two distinct data
   points in that dimension.  O(|leaf|) — the update loop calls this for
   one leaf of every particle on every observation, so it must not sort
   and it must not allocate: the indices go through the store's scratch
   buffer and the two sides' sufficient statistics come out of one
   ordered pass (the same accumulation order a fold over the partition
   lists would use, so the values are bit-identical to the old
   partition-then-fold implementation).  The partition lists themselves
   are built only if the grow move wins (see [update]).  Returns the
   proposal if both sides meet the minimum leaf size; [None] (no grow
   proposal this step) otherwise. *)
let sample_split ~rng params store ~n indices =
  (* [n] is the length of [indices], known from the leaf's [suff.n] — no
     traversal needed to count, and none to fill either when the leaf is
     too small to split. *)
  if n < 2 * params.min_leaf then None
  else begin
    if n > Array.length store.scratch then
      store.scratch <- Array.make (2 * n) 0;
    let arr = store.scratch in
    let k = ref 0 in
    List.iter
      (fun i ->
        arr.(!k) <- i;
        incr k)
      indices;
    let d = Rng.int rng store.dim in
    let value i = store_get store arr.(i) d in
    (* A few attempts to find two distinct values in the chosen dim. *)
    let rec distinct_pair attempts =
      if attempts = 0 then None
      else begin
        let a = value (Rng.int rng n) and b = value (Rng.int rng n) in
        if a <> b then Some (Float.min a b, Float.max a b)
        else distinct_pair (attempts - 1)
      end
    in
    match distinct_pair 8 with
    | None -> None
    | Some (lo, hi) ->
        let threshold = 0.5 *. (lo +. hi) in
        let nl = ref 0 and sum_l = ref 0.0 and sumsq_l = ref 0.0 in
        let nr = ref 0 and sum_r = ref 0.0 and sumsq_r = ref 0.0 in
        for j = 0 to n - 1 do
          let i = arr.(j) in
          let y = store_y store i in
          if store_get store i d <= threshold then begin
            incr nl;
            sum_l := !sum_l +. y;
            sumsq_l := !sumsq_l +. (y *. y)
          end
          else begin
            incr nr;
            sum_r := !sum_r +. y;
            sumsq_r := !sumsq_r +. (y *. y)
          end
        done;
        if !nl >= params.min_leaf && !nr >= params.min_leaf then
          Some
            ( d,
              threshold,
              { Leaf_model.n = !nl; sum = !sum_l; sumsq = !sumsq_l },
              { Leaf_model.n = !nr; sum = !sum_r; sumsq = !sumsq_r } )
        else None
  end

(* Log-weight helpers for the three moves, local to the subtree around the
   target leaf. *)
let log1m_psplit params d = log1p (-.p_split params d)
let log_psplit params d = log (p_split params d)

type move =
  | Stay
  | Grow of int * float * Leaf_model.suff * Leaf_model.suff
      (* dim, threshold, left suff, right suff — the partition lists are
         rebuilt only when this move is actually applied *)
  | Prune

(* Gumbel-free categorical sampling over log weights. *)
let sample_logweights ~rng weights =
  let m = List.fold_left (fun acc (_, w) -> Float.max acc w) neg_infinity
      weights in
  let exps = List.map (fun (tag, w) -> (tag, exp (w -. m))) weights in
  let total = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 exps in
  let u = Rng.float rng total in
  let rec pick acc = function
    | [] -> fst (List.hd (List.rev exps))
    | (tag, e) :: rest ->
        let acc = acc +. e in
        if u <= acc then tag else pick acc rest
  in
  pick 0.0 exps

(* What one [update] changed: the leaves displaced from this particle's
   tree (they may survive in other particles that share them) and the
   freshly built subtree that replaced them.  [Dynatree] uses this to
   reroute cached reference-set members through the new subtree instead
   of re-partitioning the whole reference set — the Gramacy & Taddy
   observation that a one-observation posterior update only touches the
   leaf path the observation lands in, made operational. *)
type delta = { d_removed : leaf list; d_subtree : node }

let rec count_leaves_node = function
  | Leaf _ -> 1
  | Split s -> count_leaves_node s.left + count_leaves_node s.right

let delta_new_leaves d = count_leaves_node d.d_subtree

let update ~rng t i =
  let params = t.params and store = t.store in
  let y = store_y store i in
  let x_at d = store_get store i d in
  let prior = params.prior in
  let lm = Leaf_model.log_marginal prior in
  (* Moves available at a leaf reached at [depth]; [prune_context] carries
     the sibling's data when the immediate sibling is also a leaf, which is
     the only configuration the dynamic tree prunes. *)
  let leaf_moves ~depth ~prune_context (suff : Leaf_model.suff) indices =
    let suff_with = Leaf_model.add_suff suff y in
    let stay_w = log1m_psplit params depth +. lm suff_with in
    let grow =
      match sample_split ~rng params store ~n:(suff.n + 1) (i :: indices) with
      | None -> []
      | Some (d, thr, suff_l, suff_r) ->
          let grow_w =
            log_psplit params depth
            +. log1m_psplit params (depth + 1)
            +. log1m_psplit params (depth + 1)
            +. lm suff_l
            +. lm suff_r
          in
          [ (Grow (d, thr, suff_l, suff_r), grow_w) ]
    in
    let prune =
      match prune_context with
      | None -> []
      | Some (sib_suff, _sib_indices) ->
          (* Compare full local posteriors of the parent subtree; the stay
             and grow weights get the parent-split and sibling factors. *)
          let common =
            log_psplit params (depth - 1)
            +. log1m_psplit params depth
            +. lm sib_suff
          in
          let prune_w =
            log1m_psplit params (depth - 1)
            +. lm (Leaf_model.merge_suff suff_with sib_suff)
            -. common
          in
          [ (Prune, prune_w) ]
    in
    sample_logweights ~rng ((Stay, stay_w) :: (grow @ prune))
  in
  (* Apply a chosen grow: partition the leaf's indices for real (same
     order [sample_split] scanned them in, so the precomputed suffs
     match) and build both child leaves without re-folding. *)
  let grown_node (l : leaf) d thr suff_l suff_r =
    let li, ri =
      List.partition (fun j -> store_get store j d <= thr) (i :: l.indices)
    in
    Split
      {
        dim = d;
        threshold = thr;
        left = Leaf (make_leaf_with params store li suff_l);
        right = Leaf (make_leaf_with params store ri suff_r);
      }
  in
  let add_to_leaf (l : leaf) =
    let indices = i :: l.indices in
    let suff = Leaf_model.add_suff l.suff y in
    Leaf
      {
        id = fresh_id store;
        indices;
        suff;
        evr = Leaf_model.expected_variance_reduction prior suff;
        m_epoch = 0;
        members = no_members;
      }
  in
  (* Stats bookkeeping: each move's effect on the cached shape record.
     [delta] is filled by the leaf-level handlers below. *)
  let delta = ref None in
  let set_delta removed subtree =
    delta := Some { d_removed = removed; d_subtree = subtree };
    subtree
  in
  let bump_split_counts d by =
    let sc = Array.copy t.tstats.split_counts in
    sc.(d) <- sc.(d) + by;
    sc
  in
  let stats = ref t.tstats in
  let rec go node depth =
    match node with
    | Leaf l -> (
        (* Root leaf: no prune possible. *)
        match leaf_moves ~depth ~prune_context:None l.suff l.indices with
        | Stay -> set_delta [ l ] (add_to_leaf l)
        | Grow (d, thr, suff_l, suff_r) ->
            stats :=
              {
                n_leaves = t.tstats.n_leaves + 1;
                depth = max t.tstats.depth (depth + 1);
                split_counts = bump_split_counts d 1;
              };
            set_delta [ l ] (grown_node l d thr suff_l suff_r)
        | Prune ->
            raise
              (Failure
                 (Printf.sprintf
                    "Tree.update: root leaf (%d obs, depth %d) proposed a \
                     prune, but it was offered no prune context — \
                     leaf_moves must never prune without a sibling"
                    (List.length l.indices) depth)))
    | Split s ->
        let goes_left = x_at s.dim <= s.threshold in
        let child = if goes_left then s.left else s.right in
        let sibling = if goes_left then s.right else s.left in
        let rebuilt new_child =
          if goes_left then Split { s with left = new_child }
          else Split { s with right = new_child }
        in
        (match child with
        | Split _ -> rebuilt (go child (depth + 1))
        | Leaf l -> (
            let prune_context =
              match sibling with
              | Leaf sl -> Some (sl.suff, sl.indices)
              | Split _ -> None
            in
            match
              leaf_moves ~depth:(depth + 1) ~prune_context l.suff l.indices
            with
            | Stay -> rebuilt (set_delta [ l ] (add_to_leaf l))
            | Grow (d, thr, suff_l, suff_r) ->
                stats :=
                  {
                    n_leaves = t.tstats.n_leaves + 1;
                    depth = max t.tstats.depth (depth + 2);
                    split_counts = bump_split_counts d 1;
                  };
                rebuilt (set_delta [ l ] (grown_node l d thr suff_l suff_r))
            | Prune ->
                let sl =
                  match sibling with
                  | Leaf sl -> sl
                  | Split _ ->
                      raise
                        (Failure
                           (Printf.sprintf
                              "Tree.update: prune of the leaf at depth %d \
                               (split dim %d, threshold %g) accepted \
                               against a Split sibling — prune moves are \
                               only offered when the sibling is a leaf"
                              (depth + 1) s.dim s.threshold))
                in
                stats :=
                  {
                    n_leaves = t.tstats.n_leaves - 1;
                    (* Provisional: corrected below when the pruned pair
                       was at the maximum depth. *)
                    depth = t.tstats.depth;
                    split_counts = bump_split_counts s.dim (-1);
                  };
                (* The merged leaf replaces the parent split [s] itself —
                   not the child slot — so the sibling leaf disappears
                   with it. *)
                set_delta [ l; sl ]
                  (Leaf
                     (make_leaf params store (i :: (l.indices @ sl.indices))))))
  in
  let root = go t.root 0 in
  let tstats = !stats in
  let t' = { t with root; tstats } in
  (* A prune can lower the maximum depth only if the pruned leaves sat at
     it; prunes are rare, so the occasional traversal is cheap and keeps
     the cached depth exact. *)
  let t' =
    match !delta with
    | Some { d_removed = [ _; _ ]; _ } when tstats.depth = t.tstats.depth ->
        let rec max_depth node d =
          match node with
          | Leaf _ -> d
          | Split s -> max (max_depth s.left (d + 1)) (max_depth s.right (d + 1))
        in
        let real = max_depth root 0 in
        if real <> tstats.depth then { t' with tstats = { tstats with depth = real } }
        else t'
    | _ -> t'
  in
  match !delta with
  | Some d -> (t', d)
  | None ->
      raise
        (Failure
           (Printf.sprintf
              "Tree.update: observation %d traversed the tree without \
               replacing a leaf — every update must end in exactly one \
               Stay/Grow/Prune move"
              i))

(* --- Reference-set member caches (incremental ALC support) ------------ *)

(* Route [members] (indices into [refs]) down [node], filling every leaf's
   cache for [epoch].  Partition order is preserved; only the counts are
   consumed by scoring, but a stable order keeps reroutes deterministic. *)
let rec fill_members refs ~epoch node members =
  match node with
  | Leaf l ->
      l.members <- members;
      l.m_epoch <- epoch
  | Split s ->
      let n = Array.length members in
      let goes_left m = refs.(m).(s.dim) <= s.threshold in
      let nl = ref 0 in
      for k = 0 to n - 1 do
        if goes_left members.(k) then incr nl
      done;
      let left = Array.make !nl 0 and right = Array.make (n - !nl) 0 in
      let il = ref 0 and ir = ref 0 in
      for k = 0 to n - 1 do
        let m = members.(k) in
        if goes_left m then begin
          left.(!il) <- m;
          incr il
        end
        else begin
          right.(!ir) <- m;
          incr ir
        end
      done;
      fill_members refs ~epoch s.left left;
      fill_members refs ~epoch s.right right

let alc_init t ~refs ~epoch =
  fill_members refs ~epoch t.root (Array.init (Array.length refs) Fun.id)

(* Reroute the members of the displaced leaves through the replacement
   subtree.  Falls back to a full re-partition of the particle if any
   displaced cache is stale — that indicates a registration bug, but a
   correct slow answer beats a crash mid-run. *)
let alc_apply t d ~refs ~epoch =
  if List.for_all (fun (l : leaf) -> l.m_epoch = epoch) d.d_removed then begin
    let members =
      match d.d_removed with
      | [ l ] -> l.members
      | ls -> Array.concat (List.map (fun (l : leaf) -> l.members) ls)
    in
    fill_members refs ~epoch d.d_subtree members
  end
  else alc_init t ~refs ~epoch
