module Rng = Altune_prng.Rng

type store = {
  dim : int;
  mutable xs : float array array;
  mutable ys : float array;
  mutable size : int;
  next_id : int ref;  (* shared leaf-id supply *)
}

let make_store ~dim =
  { dim; xs = Array.make 16 [||]; ys = Array.make 16 0.0; size = 0;
    next_id = ref 0 }

let store_size st = st.size

let append st x y =
  if Array.length x <> st.dim then
    invalid_arg "Tree.append: wrong feature dimension";
  if st.size = Array.length st.ys then begin
    let cap = 2 * st.size in
    let xs = Array.make cap [||] and ys = Array.make cap 0.0 in
    Array.blit st.xs 0 xs 0 st.size;
    Array.blit st.ys 0 ys 0 st.size;
    st.xs <- xs;
    st.ys <- ys
  end;
  st.xs.(st.size) <- Array.copy x;
  st.ys.(st.size) <- y;
  st.size <- st.size + 1;
  st.size - 1

let store_x st i = st.xs.(i)
let store_y st i = st.ys.(i)

type leaf = { id : int; indices : int list; suff : Leaf_model.suff }

type node =
  | Leaf of leaf
  | Split of { dim : int; threshold : float; left : node; right : node }

type params = {
  alpha : float;
  beta : float;
  prior : Leaf_model.prior;
  min_leaf : int;
}

let default_params =
  { alpha = 0.95; beta = 2.0; prior = Leaf_model.default_prior; min_leaf = 2 }

type t = { params : params; store : store; root : node }

let fresh_id store =
  let id = !(store.next_id) in
  incr store.next_id;
  id

let suff_of_indices store indices =
  List.fold_left
    (fun s i -> Leaf_model.add_suff s (store_y store i))
    Leaf_model.empty_suff indices

let make_leaf store indices =
  Leaf { id = fresh_id store; indices; suff = suff_of_indices store indices }

let singleton params store indices =
  { params; store; root = make_leaf store indices }

let copy t = t

let p_split params depth =
  params.alpha *. ((1.0 +. float_of_int depth) ** -.params.beta)

let rec find_leaf node x =
  match node with
  | Leaf l -> l
  | Split s ->
      if x.(s.dim) <= s.threshold then find_leaf s.left x
      else find_leaf s.right x

let predict t x =
  let l = find_leaf t.root x in
  Leaf_model.predict t.params.prior l.suff

let log_predictive t x y =
  let l = find_leaf t.root x in
  Leaf_model.log_predictive_density t.params.prior l.suff y

let leaf_stats_at t x =
  let l = find_leaf t.root x in
  (l.id, l.suff)

let leaf_ref_counts t refs =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      let l = find_leaf t.root x in
      Hashtbl.replace tbl l.id
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l.id)))
    refs;
  tbl

let rec n_leaves_node = function
  | Leaf _ -> 1
  | Split s -> n_leaves_node s.left + n_leaves_node s.right

let n_leaves t = n_leaves_node t.root

let rec depth_node = function
  | Leaf _ -> 0
  | Split s -> 1 + max (depth_node s.left) (depth_node s.right)

let depth t = depth_node t.root

let rec count_obs = function
  | Leaf l -> l.suff.n
  | Split s -> count_obs s.left + count_obs s.right

let n_observations t = count_obs t.root

type stats = { n_leaves : int; depth : int; split_counts : int array }

(* One traversal for everything the ensemble's introspection needs; the
   per-dimension split counts are the raw material of the sensitivity
   proxy (a dimension the posterior splits on often is a dimension the
   response depends on — Gramacy & Taddy's variable-selection heuristic). *)
let stats t =
  let split_counts = Array.make t.store.dim 0 in
  let leaves = ref 0 in
  let rec go node d depth_acc =
    match node with
    | Leaf _ ->
        incr leaves;
        max d depth_acc
    | Split s ->
        split_counts.(s.dim) <- split_counts.(s.dim) + 1;
        go s.right (d + 1) (go s.left (d + 1) depth_acc)
  in
  let depth = go t.root 0 0 in
  { n_leaves = !leaves; depth; split_counts }

(* Sample a candidate split of [indices]: a uniformly chosen dimension and
   a threshold at the midpoint between the values of two distinct data
   points in that dimension.  O(|leaf|) — the update loop calls this for
   one leaf of every particle on every observation, so it must not sort.
   Returns the partition if both sides meet the minimum leaf size; [None]
   (no grow proposal this step) otherwise. *)
let sample_split ~rng params store indices =
  let arr = Array.of_list indices in
  let n = Array.length arr in
  if n < 2 * params.min_leaf then None
  else begin
    let d = Rng.int rng store.dim in
    let value i = (store_x store arr.(i)).(d) in
    (* A few attempts to find two distinct values in the chosen dim. *)
    let rec distinct_pair attempts =
      if attempts = 0 then None
      else begin
        let a = value (Rng.int rng n) and b = value (Rng.int rng n) in
        if a <> b then Some (Float.min a b, Float.max a b)
        else distinct_pair (attempts - 1)
      end
    in
    match distinct_pair 8 with
    | None -> None
    | Some (lo, hi) ->
        let threshold = 0.5 *. (lo +. hi) in
        let left, right =
          List.partition
            (fun i -> (store_x store i).(d) <= threshold)
            indices
        in
        if
          List.length left >= params.min_leaf
          && List.length right >= params.min_leaf
        then Some (d, threshold, left, right)
        else None
  end

(* Log-weight helpers for the three moves, local to the subtree around the
   target leaf. *)
let log1m_psplit params d = log1p (-.p_split params d)
let log_psplit params d = log (p_split params d)

type move =
  | Stay
  | Grow of int * float * int list * int list  (* dim, threshold, l, r *)
  | Prune

(* Gumbel-free categorical sampling over log weights. *)
let sample_logweights ~rng weights =
  let m = List.fold_left (fun acc (_, w) -> Float.max acc w) neg_infinity
      weights in
  let exps = List.map (fun (tag, w) -> (tag, exp (w -. m))) weights in
  let total = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 exps in
  let u = Rng.float rng total in
  let rec pick acc = function
    | [] -> fst (List.hd (List.rev exps))
    | (tag, e) :: rest ->
        let acc = acc +. e in
        if u <= acc then tag else pick acc rest
  in
  pick 0.0 exps

let update ~rng t i =
  let params = t.params and store = t.store in
  let x = store_x store i and y = store_y store i in
  let prior = params.prior in
  let lm = Leaf_model.log_marginal prior in
  (* Moves available at a leaf reached at [depth]; [prune_context] carries
     the sibling's data when the immediate sibling is also a leaf, which is
     the only configuration the dynamic tree prunes. *)
  let leaf_moves ~depth ~prune_context (suff : Leaf_model.suff) indices =
    let suff_with = Leaf_model.add_suff suff y in
    let stay_w = log1m_psplit params depth +. lm suff_with in
    let grow =
      match sample_split ~rng params store (i :: indices) with
      | None -> []
      | Some (d, thr, li, ri) ->
          let grow_w =
            log_psplit params depth
            +. log1m_psplit params (depth + 1)
            +. log1m_psplit params (depth + 1)
            +. lm (suff_of_indices store li)
            +. lm (suff_of_indices store ri)
          in
          [ (Grow (d, thr, li, ri), grow_w) ]
    in
    let prune =
      match prune_context with
      | None -> []
      | Some (sib_suff, _sib_indices) ->
          (* Compare full local posteriors of the parent subtree; the stay
             and grow weights get the parent-split and sibling factors. *)
          let common =
            log_psplit params (depth - 1)
            +. log1m_psplit params depth
            +. lm sib_suff
          in
          let prune_w =
            log1m_psplit params (depth - 1)
            +. lm (Leaf_model.merge_suff suff_with sib_suff)
            -. common
          in
          [ (Prune, prune_w) ]
    in
    sample_logweights ~rng ((Stay, stay_w) :: (grow @ prune))
  in
  let grown_node d thr li ri =
    Split
      {
        dim = d;
        threshold = thr;
        left = make_leaf store li;
        right = make_leaf store ri;
      }
  in
  let add_to_leaf (l : leaf) =
    Leaf
      {
        id = fresh_id store;
        indices = i :: l.indices;
        suff = Leaf_model.add_suff l.suff y;
      }
  in
  let rec go node depth =
    match node with
    | Leaf l -> (
        (* Root leaf: no prune possible. *)
        match leaf_moves ~depth ~prune_context:None l.suff l.indices with
        | Stay -> add_to_leaf l
        | Grow (d, thr, li, ri) -> grown_node d thr li ri
        | Prune -> assert false)
    | Split s ->
        let goes_left = x.(s.dim) <= s.threshold in
        let child = if goes_left then s.left else s.right in
        let sibling = if goes_left then s.right else s.left in
        let rebuilt new_child =
          if goes_left then Split { s with left = new_child }
          else Split { s with right = new_child }
        in
        (match child with
        | Split _ -> rebuilt (go child (depth + 1))
        | Leaf l -> (
            let prune_context =
              match sibling with
              | Leaf sl -> Some (sl.suff, sl.indices)
              | Split _ -> None
            in
            match
              leaf_moves ~depth:(depth + 1) ~prune_context l.suff l.indices
            with
            | Stay -> rebuilt (add_to_leaf l)
            | Grow (d, thr, li, ri) -> rebuilt (grown_node d thr li ri)
            | Prune ->
                let sib_indices =
                  match sibling with
                  | Leaf sl -> sl.indices
                  | Split _ -> assert false
                in
                make_leaf store (i :: (l.indices @ sib_indices))))
  in
  { t with root = go t.root 0 }
