(** Aggregate a JSONL trace into a per-phase time breakdown — the
    [altune trace-summary] engine.

    Attribution is by {e physical self time}: execution on one domain is
    single-threaded, so a domain's spans nest by interval containment —
    including spans the pool's helping scheduler ran inline inside
    another task's wait loop, which are logically parented elsewhere —
    and each span is charged its duration minus its immediate
    physically-nested spans (clamped at zero).  Self times therefore
    partition each domain's covered time, so the per-phase seconds sum
    to the total attributed (busy) time exactly; at [jobs=1] that equals
    wall time up to tracing overhead, which is how the CI tripwire turns
    a share bound into a cheap perf regression check. *)

type phase_row = {
  phase : string;  (** Phase label, or ["(other)"] for unphased spans. *)
  span_count : int;
  total_s : float;  (** Sum of span durations (includes children). *)
  self_s : float;  (** Sum of self times — the attributed seconds. *)
}

type t = {
  manifest : Manifest.t option;
  span_count : int;
  error_count : int;  (** Spans emitted with ["err":true]. *)
  domain_count : int;
  wall_s : float;  (** Latest span end minus earliest span start. *)
  busy_s : float;  (** Sum of all self times. *)
  rows : phase_row list;  (** Sorted by [self_s], descending. *)
}

val of_lines : string list -> (t, string) result
(** Parse trace lines.  Unknown ["ev"] kinds are ignored (forward
    compatibility); a malformed line is an error.  An empty trace (no
    spans) is an error. *)

val of_file : string -> (t, string) result

val share : t -> phase_row -> float
(** A phase's share of busy time, in percent. *)

val render : t -> string

val violations : t -> max_share:float -> string list
(** Human-readable violations for phases whose share of busy time
    exceeds [max_share] percent; empty when all phases are within
    bounds. *)
