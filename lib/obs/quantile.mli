(** Mergeable fixed-size quantile sketch (DDSketch-style).

    Values are binned into logarithmic buckets: value [v] lands in
    bucket [floor (log v / log gamma)] with [gamma = (1+alpha)/(1-alpha)],
    which bounds the {e relative} error of any reported quantile by
    [alpha].  The bucket array is fixed at creation (covering
    [1e-9 .. 1e9], with an underflow bucket for anything at or below the
    bottom and a clamp into the top bucket above the top), so a sketch
    never grows and adding a value is O(1) with no allocation.

    All state is atomic: [add] is safe from any domain, and two sketches
    built on different domains can be {!merge_into}-d afterwards.
    Because buckets hold integer counts, merging is exactly commutative
    and associative on everything except the float [sum] (whose
    round-off depends on addition order); {!quantile}, {!count},
    {!max_value} and {!min_value} of a merged sketch are therefore
    schedule-free — the property the jobs-invariance tests rely on. *)

type t

val default_alpha : float
(** 0.02 — quantiles within 2% relative error, ~1k buckets. *)

val create : ?alpha:float -> unit -> t
(** A fresh empty sketch.  [alpha] must be in (0, 0.5). *)

val copy : t -> t
(** Snapshot the current contents into an independent sketch. *)

val add : t -> float -> unit
(** Record one value.  Non-finite and non-positive values count toward
    {!count} via the underflow bucket (they rank below everything). *)

val count : t -> int
val sum : t -> float

val max_value : t -> float
(** Exact maximum of added values; [neg_infinity] when empty. *)

val min_value : t -> float
(** Exact minimum of added values; [infinity] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: a value whose rank error follows
    the bucket scheme, clamped into [[min_value t, max_value t]].
    [nan] when the sketch is empty. *)

val alpha : t -> float

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s contents into [dst].  Both must
    share the same [alpha].  [src] is read atomically bucket-by-bucket
    but not locked: merge sketches that are no longer being written. *)

val clear : t -> unit
(** Forget everything (tests). *)

val to_json : t -> Json.t
(** Compact encoding (only non-empty buckets). *)

val of_json : Json.t -> t
(** Inverse of {!to_json}; raises [Invalid_argument] on malformed
    input. *)

val summary_json : t -> Json.t
(** Small fixed-shape object for snapshots:
    [{count; sum; min; max; p50; p90; p99}] (min/max/quantiles omitted
    when empty).  Keys sorted. *)
