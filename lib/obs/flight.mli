(** Bounded flight recorder: keep tracing permanently on in a long-lived
    process without unbounded output.

    A recorder retains the last [capacity] emitted trace lines {e per
    domain} in fixed ring buffers — older lines are overwritten, memory
    use is bounded by [capacity * domains], and recording is one array
    store (it runs under {!Trace}'s sink lock, so no extra
    synchronization is needed on the hot path).  {!dump} returns the
    retained lines grouped by domain id (ascending) in emission order
    within each domain, so the output is reproducible given the same
    per-domain histories regardless of how emission interleaved.

    Typical wiring: [Flight.install recorder] makes it the process-wide
    trace sink; the daemon dumps on SIGUSR1 and appends a dump to the
    failure ledger when a session errors. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] lines retained per domain (default 256, min 1). *)

val capacity : t -> int

val record : t -> string -> unit
(** Append one line to the calling domain's ring.  Callers outside a
    [Trace] sink must serialize externally. *)

val install : ?tee:(string -> unit) -> t -> unit
(** Install the recorder as the {!Trace} sink (replacing any previous
    sink).  [tee] additionally receives every line, e.g. to keep a full
    JSONL file alongside the ring. *)

val dump : t -> string list
(** Retained lines: domains in ascending id order, each domain's lines
    oldest-first.  Does not clear. *)

val total_recorded : t -> int
(** Lines ever recorded (including overwritten ones). *)

val clear : t -> unit
