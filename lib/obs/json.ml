type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Writing ----------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest of %.9g / %.12g / %.17g that round-trips, so trace durations
   stay readable without losing manifest exactness. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let try_fmt fmt =
      let s = Printf.sprintf fmt f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match try_fmt "%.9g" with
      | Some s -> s
      | None -> (
          match try_fmt "%.12g" with
          | Some s -> s
          | None -> Printf.sprintf "%.17g" f)
    in
    (* Ensure the token re-parses as a float, not an int. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- Parsing ----------------------------------------------------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the code point as UTF-8; our own writer only
                      emits \u for control characters, so this is mostly
                      for reading third-party lines. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape %C" c));
            loop ()
        | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* Integer overflow: fall back to float. *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let pair () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ pair () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := pair () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "JSON error at offset %d: %s" p msg)

(* --- Accessors --------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
