(** Hierarchical span tracing with a pluggable, domain-safe JSONL sink.

    A span is one timed region of execution.  Spans nest: the innermost
    open span of the current domain is the parent of the next one, and
    {!current}/{!with_ctx} carry that parentage across domain boundaries
    (the {!Altune_exec.Pool} propagates it into its tasks), so the span
    {e tree} of a traced run is identical at any job count — only the
    timings and the interleaving of emitted lines differ.

    Durations come from the monotonic clock (bechamel's
    [clock_gettime(CLOCK_MONOTONIC)] stub), so they are immune to
    wall-clock adjustments.  Each completed span is emitted as one JSON
    line through the installed sink; emission is serialized by a mutex,
    so any [write] function is safe.  With no sink installed every
    operation is a cheap no-op — tracing never changes experiment
    results, it only records when things happened.

    Span lines look like:
    {v
    {"ev":"span","id":12,"parent":3,"name":"learner.profile",
     "phase":"profiling","domain":0,"start":0.001231,"dur":0.000045,
     "attrs":{"run_index":17,"sim_run_s":1.84}}
    v} *)

type attr =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

type ctx
(** A capturable span context: which span (if any) should become the
    parent of spans opened while the context is active.  Use it to keep
    logical nesting across domains. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds from an arbitrary origin. *)

val enabled : unit -> bool
(** [true] iff a sink is installed.  Use to skip building expensive
    attribute values when tracing is off. *)

val install : ?on_line:(string -> unit) -> ?close:(unit -> unit) -> unit -> unit
(** [install ~on_line ()] makes [on_line] the process-wide sink; it
    receives one JSON line (no trailing newline) per event, serialized
    under the trace lock.  Replaces any previous sink (closing it).
    [close] runs when the sink is uninstalled or replaced. *)

val uninstall : unit -> unit
(** Remove and close the current sink.  Idempotent. *)

val with_file : string -> ?manifest:Json.t -> (unit -> 'a) -> 'a
(** [with_file path f] traces [f] into [path] (truncating it), writing
    [manifest] as the first line when given, and uninstalls the sink
    afterwards, whether [f] returns or raises. *)

val with_memory : (unit -> 'a) -> 'a * string list
(** [with_memory f] traces [f] into memory and returns the emitted lines
    in emission order (for tests). *)

val with_span :
  ?phase:string ->
  ?attrs:(string * attr) list ->
  name:string ->
  (unit -> 'a) ->
  'a
(** [with_span ~name f] times [f] inside a fresh span parented to the
    innermost open span of this domain (or the installed {!ctx}).
    [phase] labels the span for {!Summary} aggregation.  If [f] raises,
    the span is emitted with ["err":true] and the exception re-raised.
    With no sink installed this is just [f ()]. *)

val add_attrs : (string * attr) list -> unit
(** Attach attributes to the innermost span currently open {e on this
    domain} (for values only known mid-span, e.g. a simulated cost).
    No-op without a sink or an open span. *)

val current : unit -> ctx
(** Capture the current parentage for use on another domain. *)

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with its span parentage replaced by [ctx],
    restoring the previous parentage afterwards. *)

val emit_json : Json.t -> unit
(** Write one raw line through the sink (e.g. a manifest).  No-op when
    no sink is installed. *)
