type ring = {
  lines : string array;
  mutable next : int;  (* slot for the next write *)
  mutable filled : int;  (* min (writes, capacity) *)
}

type t = {
  cap : int;
  rings : (int, ring) Hashtbl.t;  (* domain id -> ring *)
  lock : Mutex.t;  (* guards rings + counters against dump/record races *)
  mutable recorded : int;
}

let create ?(capacity = 256) () =
  let cap = max 1 capacity in
  { cap; rings = Hashtbl.create 8; lock = Mutex.create (); recorded = 0 }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t line =
  with_lock t (fun () ->
      let dom = (Domain.self () :> int) in
      let ring =
        match Hashtbl.find_opt t.rings dom with
        | Some r -> r
        | None ->
            let r = { lines = Array.make t.cap ""; next = 0; filled = 0 } in
            Hashtbl.replace t.rings dom r;
            r
      in
      ring.lines.(ring.next) <- line;
      ring.next <- (ring.next + 1) mod t.cap;
      if ring.filled < t.cap then ring.filled <- ring.filled + 1;
      t.recorded <- t.recorded + 1)

let install ?tee t =
  let on_line =
    match tee with
    | None -> record t
    | Some f ->
        fun line ->
          record t line;
          f line
  in
  Trace.install ~on_line ()

let dump t =
  with_lock t (fun () ->
      Hashtbl.fold (fun dom ring acc -> (dom, ring) :: acc) t.rings []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.concat_map (fun (_, ring) ->
             (* Oldest line sits at [next] once the ring has wrapped. *)
             let start = if ring.filled < t.cap then 0 else ring.next in
             List.init ring.filled (fun i ->
                 ring.lines.((start + i) mod t.cap))))

let total_recorded t = with_lock t (fun () -> t.recorded)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.rings;
      t.recorded <- 0)
