type writer = {
  path : string;
  rotate_after : int;
  keep : int;
  lock : Mutex.t;
  mutable oc : out_channel;
  mutable in_file : int;
  mutable closed : bool;
}

let create ?(rotate_after = 1000) ?(keep = 3) path =
  {
    path;
    rotate_after = max 1 rotate_after;
    keep = max 0 keep;
    lock = Mutex.create ();
    oc = open_out path;
    in_file = 0;
    closed = false;
  }

let rotated path n = Printf.sprintf "%s.%d" path n

let rotate w =
  close_out w.oc;
  (* Shift path.(keep-1) -> path.keep, ..., path -> path.1; the file
     that falls off the end is simply overwritten by the rename. *)
  for n = w.keep - 1 downto 1 do
    let src = rotated w.path n in
    if Sys.file_exists src then Sys.rename src (rotated w.path (n + 1))
  done;
  if w.keep > 0 then Sys.rename w.path (rotated w.path 1)
  else Sys.remove w.path;
  w.oc <- open_out w.path;
  w.in_file <- 0

let write w record =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if w.closed then invalid_arg "Snapshot.write: writer is closed";
      if w.in_file >= w.rotate_after then rotate w;
      output_string w.oc (Json.to_string record);
      output_char w.oc '\n';
      flush w.oc;
      w.in_file <- w.in_file + 1)

let written w = Mutex.lock w.lock; let n = w.in_file in Mutex.unlock w.lock; n

let close w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        close_out w.oc;
        w.closed <- true
      end)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let records = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Json.of_string line with
              | Ok j -> records := j :: !records
              | Error _ -> ()
          done
        with End_of_file -> ());
    List.rev !records
  end

let load_all path =
  (* Oldest rotation first: path.N for the largest N that exists, down
     to path.1, then the live file. *)
  let rec max_n n = if Sys.file_exists (rotated path (n + 1)) then max_n (n + 1) else n in
  let top = if Sys.file_exists (rotated path 1) then max_n 1 else 0 in
  let rotations = List.init top (fun i -> rotated path (top - i)) in
  List.concat_map load (rotations @ [ path ])
