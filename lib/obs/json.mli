(** Minimal JSON reader/writer for the observability layer.

    Traces are JSONL (one value per line) and the container has no JSON
    library, so this is a small, dependency-free implementation: enough
    of RFC 8259 for machine-generated documents (full string escaping,
    ints kept distinct from floats so counters round-trip exactly). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Floats print with the shortest
    representation that parses back to the same value; non-finite floats
    render as [null] (JSON has no representation for them). *)

val of_string : string -> (t, string) result
(** Parse one JSON value; errors carry a character position.  Numbers
    without [.]/[e] parse as [Int], everything else as [Float]. *)

val member : string -> t -> t option
(** First binding of a key in an [Obj]; [None] on other constructors. *)

val to_int_opt : t -> int option
(** [Int] directly; an integral [Float] converts. *)

val to_float_opt : t -> float option
(** [Float] directly; an [Int] converts. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
