(* Instruments live in a name-keyed registry; callers hold *handles*
   that point at the registered cell.  [reset] bumps a global epoch and
   empties the registry; a handle whose epoch is stale re-registers (or
   adopts the cell someone else registered under its name) on its next
   use, so instruments created before a reset keep working and show up
   again — the hot path pays one atomic load and an int compare. *)

type hist_cell = {
  edges : float array;  (* strictly increasing upper bounds *)
  h_buckets : int Atomic.t array;  (* length = Array.length edges + 1 *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type instrument =
  | C of int Atomic.t
  | G of float Atomic.t
  | H of hist_cell
  | S of Quantile.t

type counter = { c_name : string; mutable c_cell : int Atomic.t; mutable c_seen : int }
type gauge = { g_name : string; mutable g_cell : float Atomic.t; mutable g_seen : int }

type histogram = {
  h_name : string;
  h_edges : float array;
  mutable h_cell : hist_cell;
  mutable h_seen : int;
}

type sketch = {
  s_name : string;
  s_alpha : float;
  mutable s_cell : Quantile.t;
  mutable s_seen : int;
}

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()
let epoch = Atomic.make 0

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let kind_error name want =
  invalid_arg (Printf.sprintf "Metrics: %S is not a %s" name want)

(* Find the cell registered under [name], or register [fresh ()].
   Must run under the registry lock; returns the current epoch too so
   the caller can stamp its handle consistently. *)
let resolve name ~adopt ~fresh =
  match Hashtbl.find_opt registry name with
  | Some i -> (adopt i, Atomic.get epoch)
  | None ->
      let cell, inst = fresh () in
      Hashtbl.replace registry name inst;
      (cell, Atomic.get epoch)

(* --- Counters ---------------------------------------------------------- *)

let counter_resolve name =
  resolve name
    ~adopt:(function C c -> c | _ -> kind_error name "counter")
    ~fresh:(fun () ->
      let c = Atomic.make 0 in
      (c, C c))

let counter name =
  with_registry (fun () ->
      let cell, seen = counter_resolve name in
      { c_name = name; c_cell = cell; c_seen = seen })

let counter_cell h =
  if h.c_seen = Atomic.get epoch then h.c_cell
  else
    with_registry (fun () ->
        let cell, seen = counter_resolve h.c_name in
        h.c_cell <- cell;
        h.c_seen <- seen;
        cell)

let incr h = Atomic.incr (counter_cell h)
let add h n = ignore (Atomic.fetch_and_add (counter_cell h) n)
let counter_value h = Atomic.get (counter_cell h)

(* --- Gauges ------------------------------------------------------------ *)

let gauge_resolve name =
  resolve name
    ~adopt:(function G g -> g | _ -> kind_error name "gauge")
    ~fresh:(fun () ->
      let g = Atomic.make 0.0 in
      (g, G g))

let gauge name =
  with_registry (fun () ->
      let cell, seen = gauge_resolve name in
      { g_name = name; g_cell = cell; g_seen = seen })

let gauge_cell h =
  if h.g_seen = Atomic.get epoch then h.g_cell
  else
    with_registry (fun () ->
        let cell, seen = gauge_resolve h.g_name in
        h.g_cell <- cell;
        h.g_seen <- seen;
        cell)

let set_gauge h v = Atomic.set (gauge_cell h) v
let gauge_value h = Atomic.get (gauge_cell h)

(* --- Histograms -------------------------------------------------------- *)

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let validate_edges edges =
  if Array.length edges = 0 then
    invalid_arg "Metrics.histogram: empty bucket edges";
  Array.iteri
    (fun i e ->
      if not (Float.is_finite e) then
        invalid_arg "Metrics.histogram: non-finite bucket edge";
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Metrics.histogram: bucket edges must strictly increase")
    edges

let histogram_resolve name edges =
  resolve name
    ~adopt:(function
      | H h ->
          if h.edges <> edges then
            invalid_arg
              (Printf.sprintf
                 "Metrics: %S already registered with different buckets" name);
          h
      | _ -> kind_error name "histogram")
    ~fresh:(fun () ->
      let h =
        {
          edges = Array.copy edges;
          h_buckets =
            Array.init (Array.length edges + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.0;
          h_count = Atomic.make 0;
        }
      in
      (h, H h))

let histogram ?(buckets = default_buckets) name =
  validate_edges buckets;
  let edges = Array.copy buckets in
  with_registry (fun () ->
      let cell, seen = histogram_resolve name edges in
      { h_name = name; h_edges = edges; h_cell = cell; h_seen = seen })

let hist_cell h =
  if h.h_seen = Atomic.get epoch then h.h_cell
  else
    with_registry (fun () ->
        let cell, seen = histogram_resolve h.h_name h.h_edges in
        h.h_cell <- cell;
        h.h_seen <- seen;
        cell)

let bucket_index cell v =
  let n = Array.length cell.edges in
  let rec find i =
    if i >= n then n else if v <= cell.edges.(i) then i else find (i + 1)
  in
  find 0

let observe h v =
  let cell = hist_cell h in
  Atomic.incr cell.h_buckets.(bucket_index cell v);
  Atomic.incr cell.h_count;
  let rec cas_add () =
    let old = Atomic.get cell.h_sum in
    if not (Atomic.compare_and_set cell.h_sum old (old +. v)) then cas_add ()
  in
  cas_add ()

let histogram_count h = Atomic.get (hist_cell h).h_count
let histogram_sum h = Atomic.get (hist_cell h).h_sum

let cell_bucket_counts cell =
  List.init
    (Array.length cell.h_buckets)
    (fun i ->
      let edge =
        if i < Array.length cell.edges then cell.edges.(i) else infinity
      in
      (edge, Atomic.get cell.h_buckets.(i)))

let bucket_counts h = cell_bucket_counts (hist_cell h)

(* --- Sketches ---------------------------------------------------------- *)

let sketch_resolve name alpha =
  resolve name
    ~adopt:(function
      | S s ->
          if Quantile.alpha s <> alpha then
            invalid_arg
              (Printf.sprintf
                 "Metrics: %S already registered with different alpha" name);
          s
      | _ -> kind_error name "sketch")
    ~fresh:(fun () ->
      let s = Quantile.create ~alpha () in
      (s, S s))

let sketch ?(alpha = Quantile.default_alpha) name =
  with_registry (fun () ->
      let cell, seen = sketch_resolve name alpha in
      { s_name = name; s_alpha = alpha; s_cell = cell; s_seen = seen })

let sketch_cell h =
  if h.s_seen = Atomic.get epoch then h.s_cell
  else
    with_registry (fun () ->
        let cell, seen = sketch_resolve h.s_name h.s_alpha in
        h.s_cell <- cell;
        h.s_seen <- seen;
        cell)

let record h v = Quantile.add (sketch_cell h) v
let sketch_data h = sketch_cell h

(* --- Reporting --------------------------------------------------------- *)

let sorted_instruments () =
  with_registry (fun () ->
      Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  Json.Obj
    (List.map
       (fun (name, i) ->
         ( name,
           match i with
           | C c -> Json.Int (Atomic.get c)
           | G g -> Json.Float (Atomic.get g)
           | S s -> Quantile.summary_json s
           | H h ->
               Json.Obj
                 [
                   ("count", Json.Int (Atomic.get h.h_count));
                   ("sum", Json.Float (Atomic.get h.h_sum));
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (edge, n) ->
                            Json.Obj
                              [
                                ( "le",
                                  if Float.is_finite edge then Json.Float edge
                                  else Json.String "inf" );
                                ("n", Json.Int n);
                              ])
                          (cell_bucket_counts h)) );
                 ] ))
       (sorted_instruments ()))

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "--- metrics ---\n";
  List.iter
    (fun (name, i) ->
      match i with
      | C c ->
          Buffer.add_string buf
            (Printf.sprintf "%-32s %d\n" name (Atomic.get c))
      | G g ->
          Buffer.add_string buf
            (Printf.sprintf "%-32s %g\n" name (Atomic.get g))
      | S s ->
          let count = Quantile.count s in
          if count = 0 then
            Buffer.add_string buf (Printf.sprintf "%-32s count=0\n" name)
          else
            Buffer.add_string buf
              (Printf.sprintf "%-32s count=%d p50=%.6g p99=%.6g max=%.6g\n"
                 name count (Quantile.quantile s 0.5) (Quantile.quantile s 0.99)
                 (Quantile.max_value s))
      | H h ->
          let count = Atomic.get h.h_count in
          let sum = Atomic.get h.h_sum in
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          Buffer.add_string buf
            (Printf.sprintf "%-32s count=%d sum=%.6g mean=%.6g\n" name count
               sum mean);
          List.iter
            (fun (edge, n) ->
              if n > 0 then
                Buffer.add_string buf
                  (if Float.is_finite edge then
                     Printf.sprintf "  %-30s %d\n"
                       (Printf.sprintf "le %.0e" edge)
                       n
                   else Printf.sprintf "  %-30s %d\n" "le inf" n))
            (cell_bucket_counts h))
    (sorted_instruments ());
  Buffer.contents buf

(* Prometheus text exposition, format 0.0.4.  Zero-dependency on
   purpose: one scrape is a string, served over whatever transport the
   caller already has. *)

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let render_prom () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, i) ->
      let n = prom_name name in
      match i with
      | C c ->
          line "# TYPE %s counter" n;
          line "%s %d" n (Atomic.get c)
      | G g ->
          line "# TYPE %s gauge" n;
          line "%s %s" n (prom_float (Atomic.get g))
      | H h ->
          line "# TYPE %s histogram" n;
          let cum = ref 0 in
          List.iter
            (fun (edge, cnt) ->
              cum := !cum + cnt;
              let le =
                if Float.is_finite edge then prom_float edge else "+Inf"
              in
              line "%s_bucket{le=\"%s\"} %d" n le !cum)
            (cell_bucket_counts h);
          line "%s_sum %s" n (prom_float (Atomic.get h.h_sum));
          line "%s_count %d" n (Atomic.get h.h_count)
      | S s ->
          line "# TYPE %s summary" n;
          if Quantile.count s > 0 then
            List.iter
              (fun q ->
                line "%s{quantile=\"%s\"} %s" n (prom_float q)
                  (prom_float (Quantile.quantile s q)))
              [ 0.5; 0.9; 0.99 ];
          line "%s_sum %s" n (prom_float (Quantile.sum s));
          line "%s_count %d" n (Quantile.count s))
    (sorted_instruments ());
  Buffer.contents buf

let reset () =
  with_registry (fun () ->
      Hashtbl.reset registry;
      Atomic.incr epoch)
