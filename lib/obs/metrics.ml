type counter = { c_name : string; value : int Atomic.t }
type gauge = { g_name : string; level : float Atomic.t }

type histogram = {
  h_name : string;
  edges : float array;  (* strictly increasing upper bounds *)
  buckets : int Atomic.t array;  (* length = Array.length edges + 1 *)
  sum : float Atomic.t;
  count : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some _ ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is not a counter" name)
      | None ->
          let c = { c_name = name; value = Atomic.make 0 } in
          Hashtbl.replace registry name (C c);
          c)

let incr c = Atomic.incr c.value
let add c n = ignore (Atomic.fetch_and_add c.value n)
let counter_value c = Atomic.get c.value

let gauge name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (G g) -> g
      | Some _ ->
          invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)
      | None ->
          let g = { g_name = name; level = Atomic.make 0.0 } in
          Hashtbl.replace registry name (G g);
          g)

let set_gauge g v = Atomic.set g.level v
let gauge_value g = Atomic.get g.level

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let validate_edges edges =
  if Array.length edges = 0 then
    invalid_arg "Metrics.histogram: empty bucket edges";
  Array.iteri
    (fun i e ->
      if not (Float.is_finite e) then
        invalid_arg "Metrics.histogram: non-finite bucket edge";
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Metrics.histogram: bucket edges must strictly increase")
    edges

let histogram ?(buckets = default_buckets) name =
  validate_edges buckets;
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) ->
          if h.edges <> buckets then
            invalid_arg
              (Printf.sprintf
                 "Metrics: %S already registered with different buckets" name);
          h
      | Some _ ->
          invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)
      | None ->
          let h =
            {
              h_name = name;
              edges = Array.copy buckets;
              buckets =
                Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
              sum = Atomic.make 0.0;
              count = Atomic.make 0;
            }
          in
          Hashtbl.replace registry name (H h);
          h)

let bucket_index h v =
  let n = Array.length h.edges in
  let rec find i = if i >= n then n else if v <= h.edges.(i) then i else find (i + 1) in
  find 0

let observe h v =
  Atomic.incr h.buckets.(bucket_index h v);
  Atomic.incr h.count;
  let rec cas_add () =
    let old = Atomic.get h.sum in
    if not (Atomic.compare_and_set h.sum old (old +. v)) then cas_add ()
  in
  cas_add ()

let histogram_count h = Atomic.get h.count
let histogram_sum h = Atomic.get h.sum

let bucket_counts h =
  List.init
    (Array.length h.buckets)
    (fun i ->
      let edge =
        if i < Array.length h.edges then h.edges.(i) else infinity
      in
      (edge, Atomic.get h.buckets.(i)))

let sorted_instruments () =
  with_registry (fun () ->
      Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  Json.Obj
    (List.map
       (fun (name, i) ->
         ( name,
           match i with
           | C c -> Json.Int (counter_value c)
           | G g -> Json.Float (gauge_value g)
           | H h ->
               Json.Obj
                 [
                   ("count", Json.Int (histogram_count h));
                   ("sum", Json.Float (histogram_sum h));
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (edge, n) ->
                            Json.Obj
                              [
                                ( "le",
                                  if Float.is_finite edge then Json.Float edge
                                  else Json.String "inf" );
                                ("n", Json.Int n);
                              ])
                          (bucket_counts h)) );
                 ] ))
       (sorted_instruments ()))

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "--- metrics ---\n";
  List.iter
    (fun (name, i) ->
      match i with
      | C c -> Buffer.add_string buf (Printf.sprintf "%-32s %d\n" name (counter_value c))
      | G g -> Buffer.add_string buf (Printf.sprintf "%-32s %g\n" name (gauge_value g))
      | H h ->
          let count = histogram_count h in
          let mean =
            if count = 0 then 0.0 else histogram_sum h /. float_of_int count
          in
          Buffer.add_string buf
            (Printf.sprintf "%-32s count=%d sum=%.6g mean=%.6g\n" name count
               (histogram_sum h) mean);
          List.iter
            (fun (edge, n) ->
              if n > 0 then
                Buffer.add_string buf
                  (if Float.is_finite edge then
                     Printf.sprintf "  %-30s %d\n"
                       (Printf.sprintf "le %.0e" edge)
                       n
                   else Printf.sprintf "  %-30s %d\n" "le inf" n))
            (bucket_counts h))
    (sorted_instruments ());
  Buffer.contents buf

let reset () = with_registry (fun () -> Hashtbl.reset registry)
