type tree_stats = {
  mean_leaves : float;
  max_depth : int;
  depth_histogram : int array;
  split_frequencies : float array;
}

type start = {
  plan : string;
  strategy : string;
  model : string;
  dim : int;
  pool : int;
  n_max : int;
}

type select = {
  iteration : int;
  config : string;
  score : float;
  revisit : bool;
  config_obs : int;
  examples : int;
  observations : int;
  cost_s : float;
}

type eval = {
  iteration : int;
  examples : int;
  observations : int;
  cost_s : float;
  rmse : float;
  ref_variance : float;
  tree : tree_stats option;
}

type finish = {
  iterations : int;
  examples : int;
  observations : int;
  cost_s : float;
  rmse : float;
}

type fault = {
  config : string;
  attempt : int;
  fault : string;
  lost_s : float;
}

type kind =
  | Start of start
  | Select of select
  | Eval of eval
  | Finish of finish
  | Fault of fault

type t = { run : string; seq : int; kind : kind }

(* --- JSON encoding ----------------------------------------------------- *)

let tree_to_json (s : tree_stats) =
  Json.Obj
    [
      ("mean_leaves", Json.Float s.mean_leaves);
      ("max_depth", Json.Int s.max_depth);
      ( "depth_hist",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Int c) s.depth_histogram))
      );
      ( "split_freq",
        Json.List
          (Array.to_list
             (Array.map (fun f -> Json.Float f) s.split_frequencies)) );
    ]

let to_json { run; seq; kind } =
  let common kind_name =
    [
      ("ev", Json.String "learner");
      ("run", Json.String run);
      ("seq", Json.Int seq);
      ("kind", Json.String kind_name);
    ]
  in
  match kind with
  | Start s ->
      Json.Obj
        (common "start"
        @ [
            ("plan", Json.String s.plan);
            ("strategy", Json.String s.strategy);
            ("model", Json.String s.model);
            ("dim", Json.Int s.dim);
            ("pool", Json.Int s.pool);
            ("n_max", Json.Int s.n_max);
          ])
  | Select s ->
      Json.Obj
        (common "select"
        @ [
            ("iteration", Json.Int s.iteration);
            ("config", Json.String s.config);
            ("score", Json.Float s.score);
            ("revisit", Json.Bool s.revisit);
            ("config_obs", Json.Int s.config_obs);
            ("examples", Json.Int s.examples);
            ("observations", Json.Int s.observations);
            ("cost_s", Json.Float s.cost_s);
          ])
  | Eval e ->
      Json.Obj
        (common "eval"
        @ [
            ("iteration", Json.Int e.iteration);
            ("examples", Json.Int e.examples);
            ("observations", Json.Int e.observations);
            ("cost_s", Json.Float e.cost_s);
            ("rmse", Json.Float e.rmse);
            ("ref_variance", Json.Float e.ref_variance);
          ]
        @ match e.tree with None -> [] | Some s -> [ ("tree", tree_to_json s) ])
  | Finish f ->
      Json.Obj
        (common "finish"
        @ [
            ("iterations", Json.Int f.iterations);
            ("examples", Json.Int f.examples);
            ("observations", Json.Int f.observations);
            ("cost_s", Json.Float f.cost_s);
            ("rmse", Json.Float f.rmse);
          ])
  | Fault f ->
      Json.Obj
        (common "fault"
        @ [
            ("config", Json.String f.config);
            ("attempt", Json.Int f.attempt);
            ("fault", Json.String f.fault);
            ("lost_s", Json.Float f.lost_s);
          ])

(* --- JSON decoding ----------------------------------------------------- *)

let str_field j key = Option.bind (Json.member key j) Json.to_string_opt
let int_field j key = Option.bind (Json.member key j) Json.to_int_opt
let float_field j key = Option.bind (Json.member key j) Json.to_float_opt
let bool_field j key = Option.bind (Json.member key j) Json.to_bool_opt

let require name = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "learner event: missing %s" name)

let ( let* ) = Result.bind

let tree_of_json j =
  let* mean_leaves = require "tree.mean_leaves" (float_field j "mean_leaves") in
  let* max_depth = require "tree.max_depth" (int_field j "max_depth") in
  let ints key =
    match Json.member key j with
    | Some (Json.List l) ->
        let vals = List.filter_map Json.to_int_opt l in
        if List.length vals = List.length l then Ok (Array.of_list vals)
        else Error (Printf.sprintf "learner event: bad %s" key)
    | _ -> Error (Printf.sprintf "learner event: missing %s" key)
  in
  let floats key =
    match Json.member key j with
    | Some (Json.List l) ->
        let vals = List.filter_map Json.to_float_opt l in
        if List.length vals = List.length l then Ok (Array.of_list vals)
        else Error (Printf.sprintf "learner event: bad %s" key)
    | _ -> Error (Printf.sprintf "learner event: missing %s" key)
  in
  let* depth_histogram = ints "depth_hist" in
  let* split_frequencies = floats "split_freq" in
  Ok { mean_leaves; max_depth; depth_histogram; split_frequencies }

let of_json j =
  let* run = require "run" (str_field j "run") in
  let* seq = require "seq" (int_field j "seq") in
  let* kind_name = require "kind" (str_field j "kind") in
  let* kind =
    match kind_name with
    | "start" ->
        let* plan = require "plan" (str_field j "plan") in
        let* strategy = require "strategy" (str_field j "strategy") in
        let* model = require "model" (str_field j "model") in
        let* dim = require "dim" (int_field j "dim") in
        let* pool = require "pool" (int_field j "pool") in
        let* n_max = require "n_max" (int_field j "n_max") in
        Ok (Start { plan; strategy; model; dim; pool; n_max })
    | "select" ->
        let* iteration = require "iteration" (int_field j "iteration") in
        let* config = require "config" (str_field j "config") in
        let* score = require "score" (float_field j "score") in
        let* revisit = require "revisit" (bool_field j "revisit") in
        let* config_obs = require "config_obs" (int_field j "config_obs") in
        let* examples = require "examples" (int_field j "examples") in
        let* observations =
          require "observations" (int_field j "observations")
        in
        let* cost_s = require "cost_s" (float_field j "cost_s") in
        Ok
          (Select
             {
               iteration;
               config;
               score;
               revisit;
               config_obs;
               examples;
               observations;
               cost_s;
             })
    | "eval" ->
        let* iteration = require "iteration" (int_field j "iteration") in
        let* examples = require "examples" (int_field j "examples") in
        let* observations =
          require "observations" (int_field j "observations")
        in
        let* cost_s = require "cost_s" (float_field j "cost_s") in
        let* rmse = require "rmse" (float_field j "rmse") in
        let* ref_variance =
          require "ref_variance" (float_field j "ref_variance")
        in
        let* tree =
          match Json.member "tree" j with
          | None | Some Json.Null -> Ok None
          | Some tj ->
              let* s = tree_of_json tj in
              Ok (Some s)
        in
        Ok
          (Eval
             { iteration; examples; observations; cost_s; rmse; ref_variance;
               tree })
    | "finish" ->
        let* iterations = require "iterations" (int_field j "iterations") in
        let* examples = require "examples" (int_field j "examples") in
        let* observations =
          require "observations" (int_field j "observations")
        in
        let* cost_s = require "cost_s" (float_field j "cost_s") in
        let* rmse = require "rmse" (float_field j "rmse") in
        Ok (Finish { iterations; examples; observations; cost_s; rmse })
    | "fault" ->
        let* config = require "config" (str_field j "config") in
        let* attempt = require "attempt" (int_field j "attempt") in
        let* fault = require "fault" (str_field j "fault") in
        let* lost_s = require "lost_s" (float_field j "lost_s") in
        Ok (Fault { config; attempt; fault; lost_s })
    | other -> Error (Printf.sprintf "learner event: unknown kind %S" other)
  in
  Ok { run; seq; kind }

(* --- Emission ----------------------------------------------------------- *)

(* The sink buffers (run, seq, line) triples and writes them sorted on
   uninstall, so the file's bytes depend only on what each learner run
   emitted — not on how the pool interleaved runs across domains.  A run's
   events are totally ordered by its per-run sequence number; distinct
   runs are ordered by key; the line itself is the final tiebreak, making
   the sort a total order and the output byte-identical at any job
   count. *)
type sink = {
  lock : Mutex.t;
  mutable buf : (string * int * string) list;
  write : string -> unit;
  close : unit -> unit;
}

let sink_state : sink option Atomic.t = Atomic.make None
let enabled () = Option.is_some (Atomic.get sink_state)

(* Per-domain run context: the key under which events are recorded and the
   per-run sequence counter.  [with_run] scopes a fresh context; emission
   outside any [with_run] is recorded under [""] (deterministic for
   sequential callers, e.g. `altune tune`). *)
type run_ctx = { mutable key : string; mutable seq : int }

let tls : run_ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { key = ""; seq = 0 })

let with_run key f =
  let st = Domain.DLS.get tls in
  let saved = { key = st.key; seq = st.seq } in
  st.key <- key;
  st.seq <- 0;
  Fun.protect
    ~finally:(fun () ->
      st.key <- saved.key;
      st.seq <- saved.seq)
    f

let compare_entries (r1, s1, l1) (r2, s2, l2) =
  match String.compare r1 r2 with
  | 0 -> ( match compare (s1 : int) s2 with 0 -> String.compare l1 l2 | c -> c)
  | c -> c

let uninstall () =
  match Atomic.exchange sink_state None with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () ->
          List.iter
            (fun (_, _, line) -> s.write line)
            (List.sort compare_entries s.buf);
          s.buf <- [];
          s.close ())

let install ?(on_line = fun _ -> ()) ?(close = fun () -> ()) () =
  uninstall ();
  Atomic.set sink_state
    (Some { lock = Mutex.create (); buf = []; write = on_line; close })

let emit kind =
  match Atomic.get sink_state with
  | None -> ()
  | Some s ->
      let ctx = Domain.DLS.get tls in
      let seq = ctx.seq in
      ctx.seq <- seq + 1;
      let line = Json.to_string (to_json { run = ctx.key; seq; kind }) in
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () -> s.buf <- (ctx.key, seq, line) :: s.buf)

let with_file path ?manifest f =
  let oc = open_out path in
  (* The manifest heads the file unsorted: it is provenance, not an
     event. *)
  (match manifest with
  | Some m ->
      output_string oc (Json.to_string m);
      output_char oc '\n'
  | None -> ());
  install
    ~on_line:(fun line ->
      output_string oc line;
      output_char oc '\n')
    ~close:(fun () -> close_out oc)
    ();
  Fun.protect ~finally:uninstall f

let with_memory f =
  let lines = ref [] in
  install ~on_line:(fun l -> lines := l :: !lines) ();
  let v = Fun.protect ~finally:uninstall f in
  (v, List.rev !lines)

(* --- Loading ------------------------------------------------------------ *)

type file = { manifest : Manifest.t option; events : t list }

let of_lines lines =
  let rec go manifest events = function
    | [] -> Ok { manifest; events = List.rev events }
    | line :: rest -> (
        if String.trim line = "" then go manifest events rest
        else
          match Json.of_string line with
          | Error e -> Error (Printf.sprintf "bad line %S: %s" line e)
          | Ok j -> (
              match str_field j "ev" with
              | Some "learner" -> (
                  match of_json j with
                  | Ok ev -> go manifest (ev :: events) rest
                  | Error e -> Error e)
              | Some "manifest" -> (
                  match Manifest.of_json j with
                  | Ok m -> go (Some m) events rest
                  | Error e -> Error e)
              (* Other event kinds (spans, future additions) are not ours. *)
              | Some _ -> go manifest events rest
              | None -> Error (Printf.sprintf "line without ev tag: %S" line)))
  in
  go None [] lines

let load path =
  try
    let ic = open_in path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        of_lines (List.rev !lines))
  with Sys_error e -> Error e
