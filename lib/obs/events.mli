(** Structured learner-introspection telemetry.

    Where {!Trace} records {e when} things happened (wall-time spans),
    this module records {e what the active learner decided and believed}:
    one JSONL event per loop decision — the chosen candidate with its
    selection score and fresh-vs-revisit flag, and per evaluation point
    the held-out RMSE, the reference-set mean predictive variance, and
    the dynamic-tree posterior's shape (leaf count, depth histogram,
    per-dimension split frequencies — a sensitivity proxy in the spirit
    of Gramacy & Taddy's dynamic-tree variable selection).

    Determinism: emission carries no clocks and consumes no randomness,
    and the sink buffers events and writes them sorted by (run key,
    per-run sequence number), so an event file is {e byte-identical at
    any [--jobs] count} — unlike a trace, whose line order is real
    interleaving.  With no sink installed every operation is a no-op and
    experiment output is untouched.

    Render event files with [altune report]; export them to CSV with
    [altune report --csv]. *)

type tree_stats = {
  mean_leaves : float;
  max_depth : int;
  depth_histogram : int array;
      (** [depth_histogram.(d)] = particles of depth [d]. *)
  split_frequencies : float array;
      (** Per-dimension share of posterior splits (sensitivity proxy). *)
}

type start = {
  plan : string;  (** ["fixed:35"], ["adaptive:35"], ... *)
  strategy : string;  (** ["alc"], ["mackay"], ["random"]. *)
  model : string;  (** Surrogate name. *)
  dim : int;
  pool : int;  (** Training-pool size. *)
  n_max : int;
}

type select = {
  iteration : int;
  config : string;  (** {!Altune_core.Problem.key} of the chosen candidate. *)
  score : float;  (** Its selection score (ALC / variance / random). *)
  revisit : bool;  (** Re-selected an already-visited configuration. *)
  config_obs : int;  (** Its observation count {e before} this visit. *)
  examples : int;  (** Distinct configurations visited so far. *)
  observations : int;  (** Total profiling runs so far. *)
  cost_s : float;  (** Cumulative simulated cost so far. *)
}

type eval = {
  iteration : int;
  examples : int;
  observations : int;
  cost_s : float;
  rmse : float;  (** Held-out RMSE at this evaluation point. *)
  ref_variance : float;
      (** Mean posterior predictive variance over the ALC reference set
          (standardized units) — the quantity ALC drives down. *)
  tree : tree_stats option;  (** [None] for non-tree surrogates. *)
}

type finish = {
  iterations : int;
  examples : int;
  observations : int;
  cost_s : float;
  rmse : float;
}

type fault = {
  config : string;  (** Config key whose profiling attempt failed. *)
  attempt : int;  (** 0-based attempt number at this selection. *)
  fault : string;
      (** ["crash"], ["timeout"], ["corrupt"], or ["dead"] (retries
          exhausted, config excluded from the candidate set). *)
  lost_s : float;  (** Simulated seconds charged for this failure. *)
}
(** One injected-fault occurrence (emitted only under [--fault-spec]). *)

type kind =
  | Start of start
  | Select of select
  | Eval of eval
  | Finish of finish
  | Fault of fault

type t = { run : string; seq : int; kind : kind }
(** One event: the run it belongs to (the {!with_run} key), its position
    in that run's stream, and the payload. *)

(** {1 Emission} *)

val enabled : unit -> bool
(** [true] iff a sink is installed.  The learner guards all event
    construction behind this, so telemetry off costs one atomic load. *)

val emit : kind -> unit
(** Record one event under the current run context.  No-op without a
    sink. *)

val with_run : string -> (unit -> 'a) -> 'a
(** [with_run key f] scopes this domain's run context: events emitted by
    [f] carry [key] and a fresh sequence counter.  Nests; restores the
    previous context afterwards.  Every parallel learner run must get a
    distinct key, or their streams interleave under one sort key. *)

val install : ?on_line:(string -> unit) -> ?close:(unit -> unit) -> unit -> unit
(** Install the process-wide sink.  Lines are delivered to [on_line]
    {e sorted}, all at uninstall time. *)

val uninstall : unit -> unit
(** Sort and flush buffered events, then close.  Idempotent. *)

val with_file : string -> ?manifest:Json.t -> (unit -> 'a) -> 'a
(** [with_file path f] records events of [f] into [path] (truncating),
    with [manifest] as an unsorted header line, flushing sorted on the
    way out whether [f] returns or raises. *)

val with_memory : (unit -> 'a) -> 'a * string list
(** Record into memory; returns the sorted lines (for tests). *)

(** {1 Reading} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

type file = { manifest : Manifest.t option; events : t list }

val of_lines : string list -> (file, string) result
(** Parse JSONL lines.  Span lines and unknown ["ev"] kinds are skipped
    (an events file and a trace file can be concatenated); a malformed
    line is an error. *)

val load : string -> (file, string) result
