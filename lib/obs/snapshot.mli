(** Rotating JSONL time series for periodic telemetry snapshots.

    A writer appends one JSON object per line to [path]; when the
    current file reaches [rotate_after] records it is rotated to
    [path.1] (shifting [path.1] to [path.2], ... up to [keep] old
    files, dropping the oldest), so a daemon that snapshots forever
    uses bounded disk.  {!load} reads one file back; {!load_all} reads
    the rotation set oldest-first, which is what the dashboard wants. *)

type writer

val create : ?rotate_after:int -> ?keep:int -> string -> writer
(** Open [path] for appending (truncating an existing file: a new
    daemon run starts a new series).  [rotate_after] records per file
    (default 1000, min 1); [keep] rotated files retained (default 3,
    min 0). *)

val write : writer -> Json.t -> unit
(** Append one record as a single line and flush, rotating first if the
    current file is full. *)

val written : writer -> int
(** Records written to the current (unrotated) file. *)

val close : writer -> unit

val load : string -> Json.t list
(** Parse one JSONL file; unparseable lines are skipped.  Missing file
    is an empty series. *)

val load_all : string -> Json.t list
(** [load path] preceded by its rotated predecessors [path.N] (highest
    [N] = oldest first). *)
