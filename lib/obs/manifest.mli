(** Run manifest: the provenance record stamped onto every trace and
    every [BENCH_harness.json] entry, so numbers measured on different
    machines/commits (e.g. the jobs=1 vs jobs=4 wall times) stay
    interpretable. *)

type t = {
  git_rev : string;  (** [git rev-parse --short=12 HEAD], or ["unknown"]. *)
  ocaml_version : string;
  hostname : string;
  cores : int;  (** [Domain.recommended_domain_count ()]. *)
  scale : string;  (** Experiment scale label ([""] when not applicable). *)
  jobs : int;
  seed : int;
}

val capture : ?scale:string -> ?jobs:int -> ?seed:int -> unit -> t
(** Probe the environment.  Defaults: [scale=""], [jobs=0], [seed=0]
    (meaning "not applicable"). *)

val to_json : t -> Json.t
(** As a JSON object tagged ["ev":"manifest"] — a valid trace line. *)

val of_json : Json.t -> (t, string) result

val fields : t -> (string * Json.t) list
(** The manifest's fields without the ["ev"] tag, for inlining into
    other records (e.g. a [BENCH_harness.json] entry). *)

val summary : t -> string
(** One-line human-readable rendering. *)
