type t = {
  git_rev : string;
  ocaml_version : string;
  hostname : string;
  cores : int;
  scale : string;
  jobs : int;
  seed : int;
}

(* First stdout line of [cmd], or [""] on any failure (no git, not a
   repository, sandboxed build dir...). *)
let first_line_of cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> ()
    | _ -> raise Exit);
    String.trim line
  with _ -> ""

let git_rev () =
  match first_line_of "git rev-parse --short=12 HEAD 2>/dev/null" with
  | "" -> "unknown"
  | rev -> rev

let capture ?(scale = "") ?(jobs = 0) ?(seed = 0) () =
  {
    git_rev = git_rev ();
    ocaml_version = Sys.ocaml_version;
    hostname = (try Unix.gethostname () with _ -> "unknown");
    cores = Domain.recommended_domain_count ();
    scale;
    jobs;
    seed;
  }

let fields t =
  [
    ("git_rev", Json.String t.git_rev);
    ("ocaml", Json.String t.ocaml_version);
    ("host", Json.String t.hostname);
    ("cores", Json.Int t.cores);
    ("scale", Json.String t.scale);
    ("jobs", Json.Int t.jobs);
    ("seed", Json.Int t.seed);
  ]

let to_json t = Json.Obj (("ev", Json.String "manifest") :: fields t)

let of_json j =
  let str key = Option.bind (Json.member key j) Json.to_string_opt in
  let int key = Option.bind (Json.member key j) Json.to_int_opt in
  match (str "git_rev", str "ocaml", str "host", int "cores") with
  | Some git_rev, Some ocaml_version, Some hostname, Some cores ->
      Ok
        {
          git_rev;
          ocaml_version;
          hostname;
          cores;
          scale = Option.value ~default:"" (str "scale");
          jobs = Option.value ~default:0 (int "jobs");
          seed = Option.value ~default:0 (int "seed");
        }
  | _ -> Error "manifest: missing git_rev/ocaml/host/cores"

let summary t =
  Printf.sprintf
    "git=%s ocaml=%s host=%s cores=%d scale=%s jobs=%d seed=%d" t.git_rev
    t.ocaml_version t.hostname t.cores
    (if t.scale = "" then "-" else t.scale)
    t.jobs t.seed
