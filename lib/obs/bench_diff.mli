(** Compare two [BENCH_harness.json] files and flag timing regressions.

    The harness appends one record per section per run, stamped with the
    run manifest (host, cores, git rev).  A diff only compares records
    whose {e matching key} — (section, scale, jobs, host, cores) — is
    identical on both sides: a timing from another machine, another core
    count, or the pre-manifest era (tagged ["manifest": null]) is
    skipped, never silently compared.  Within a key the {e last} record
    wins, since the file is append-only and the newest timing is the
    current truth.

    Drives [altune bench-diff BASELINE CURRENT --max-regress PCT], the
    CI gate that fails a build whose benchmark sections slowed down more
    than the threshold on a comparable host. *)

type record = {
  section : string;
  scale : string;
  jobs : int;
  seconds : float;
  host : string option;  (** [None]: not comparable (no manifest). *)
  cores : int option;
  git_rev : string option;
  rate : float option;
      (** Throughput records ([concheck]'s [schedules_per_sec], the
          serve load generator's [sessions_per_sec]); [None] for plain
          timing records.  Purely informational — matching and
          regression gating stay seconds-based, so mixing throughput
          records into a bench file never breaks the baseline diff. *)
  rate_unit : string option;
      (** Display unit of [rate]: ["sched/s"] or ["sess/s"]. *)
}

type delta = {
  section : string;
  scale : string;
  jobs : int;
  baseline_s : float;
  current_s : float;
  delta_pct : float;  (** [(current - baseline) / baseline * 100]. *)
  baseline_rate : float option;
  current_rate : float option;
  rate_unit : string option;  (** From the current record when present. *)
}

type diff = {
  deltas : delta list;  (** Matched pairs, in current-file order. *)
  skipped_baseline : int;  (** Baseline records without a manifest. *)
  skipped_current : int;
  unmatched : int;  (** Comparable current records with no baseline. *)
}

val record_of_json : Json.t -> (record, string) result
val of_json : Json.t -> (record list, string) result

val load : string -> (record list, string) result
(** Read a flat JSON array of bench records, as written by the harness. *)

val diff : baseline:record list -> current:record list -> diff

val regressions : max_regress:float -> diff -> delta list
(** Deltas slower than [max_regress] percent. *)

val render : ?max_regress:float -> diff -> string
(** Plain-text table; marks deltas beyond [max_regress] as REGRESSION. *)
