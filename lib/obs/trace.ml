type attr =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

type ctx = int option

type sink = {
  lock : Mutex.t;
  write : string -> unit;
  close : unit -> unit;
  t0 : int64;  (* monotonic origin: span times are seconds since t0 *)
}

let now_ns () = Monotonic_clock.now ()

let sink_state : sink option Atomic.t = Atomic.make None
let next_id = Atomic.make 1
let enabled () = Option.is_some (Atomic.get sink_state)

(* Per-domain parentage: a base context (set by [with_ctx] when a pool
   task starts on some domain) plus the stack of spans opened here.
   [add_attrs] mutates only the top frame of this domain's stack, so no
   frame is ever shared between domains. *)
type frame = { id : int; mutable extra : (string * attr) list }
type tls_state = { mutable base : ctx; mutable stack : frame list }

let tls : tls_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { base = None; stack = [] })

let current () =
  let st = Domain.DLS.get tls in
  match st.stack with [] -> st.base | f :: _ -> Some f.id

let with_ctx ctx f =
  let st = Domain.DLS.get tls in
  let saved_base = st.base and saved_stack = st.stack in
  st.base <- ctx;
  st.stack <- [];
  Fun.protect
    ~finally:(fun () ->
      st.base <- saved_base;
      st.stack <- saved_stack)
    f

let add_attrs attrs =
  match (Domain.DLS.get tls).stack with
  | [] -> ()
  | f :: _ -> f.extra <- f.extra @ attrs

(* --- Sink management --------------------------------------------------- *)

let uninstall () =
  match Atomic.exchange sink_state None with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) s.close

let install ?(on_line = fun _ -> ()) ?(close = fun () -> ()) () =
  uninstall ();
  Atomic.set sink_state
    (Some
       { lock = Mutex.create (); write = on_line; close; t0 = now_ns () })

let emit_line line =
  match Atomic.get sink_state with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () ->
          s.write line)

let emit_json j = emit_line (Json.to_string j)

let with_file path ?manifest f =
  let oc = open_out path in
  install
    ~on_line:(fun line ->
      output_string oc line;
      output_char oc '\n')
    ~close:(fun () -> close_out oc)
    ();
  Option.iter emit_json manifest;
  Fun.protect ~finally:uninstall f

let with_memory f =
  let lines = ref [] in
  install ~on_line:(fun l -> lines := l :: !lines) ();
  let v = Fun.protect ~finally:uninstall f in
  (v, List.rev !lines)

(* --- Spans ------------------------------------------------------------- *)

let attr_json = function
  | String s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let span_json ~id ~parent ~name ~phase ~attrs ~domain ~start_s ~dur_s ~err =
  let fields =
    [ ("ev", Json.String "span"); ("id", Json.Int id) ]
    @ (match parent with Some p -> [ ("parent", Json.Int p) ] | None -> [])
    @ [ ("name", Json.String name) ]
    @ (match phase with Some p -> [ ("phase", Json.String p) ] | None -> [])
    @ [
        ("domain", Json.Int domain);
        ("start", Json.Float start_s);
        ("dur", Json.Float dur_s);
      ]
    @ (if err then [ ("err", Json.Bool true) ] else [])
    @
    match attrs with
    | [] -> []
    | kvs ->
        [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) kvs)) ]
  in
  Json.Obj fields

let seconds_since t0 t = Int64.to_float (Int64.sub t t0) /. 1e9

let with_span ?phase ?(attrs = []) ~name f =
  match Atomic.get sink_state with
  | None -> f ()
  | Some s ->
      let st = Domain.DLS.get tls in
      let parent =
        match st.stack with [] -> st.base | fr :: _ -> Some fr.id
      in
      let id = Atomic.fetch_and_add next_id 1 in
      let frame = { id; extra = [] } in
      st.stack <- frame :: st.stack;
      let t_start = now_ns () in
      let finish err =
        let t_end = now_ns () in
        (* Pop exactly our frame even if f tampered with nesting. *)
        (match st.stack with
        | fr :: rest when fr == frame -> st.stack <- rest
        | _ -> st.stack <- List.filter (fun fr -> fr != frame) st.stack);
        emit_line
          (Json.to_string
             (span_json ~id ~parent ~name ~phase
                ~attrs:(attrs @ frame.extra)
                ~domain:(Domain.self () :> int)
                ~start_s:(seconds_since s.t0 t_start)
                ~dur_s:(seconds_since t_start t_end)
                ~err))
      in
      (match f () with
      | v ->
          finish false;
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish true;
          Printexc.raise_with_backtrace e bt)
