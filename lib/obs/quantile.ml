(* DDSketch-style log-bucket quantile sketch over a fixed key range.

   Bucket key of a value v is floor (log v / log gamma); the bucket's
   representative value is the log-midpoint 2*gamma^k / (gamma + 1),
   which is within a factor (1 +/- alpha) of every value in the bucket.
   Keys are clamped to a fixed window covering [1e-9, 1e9]; values at or
   below the bottom of the window (including zero, negatives and NaN)
   land in a dedicated underflow bucket that ranks below everything. *)

type t = {
  q_alpha : float;
  log_gamma : float;
  key_min : int;  (* key of buckets.(0) *)
  buckets : int Atomic.t array;
  under : int Atomic.t;
  q_count : int Atomic.t;
  q_sum : float Atomic.t;
  q_max : float Atomic.t;
  q_min : float Atomic.t;
}

let default_alpha = 0.02
let range_lo = 1e-9
let range_hi = 1e9

let key_of ~log_gamma v = int_of_float (Float.floor (Float.log v /. log_gamma))

let create ?(alpha = default_alpha) () =
  if not (Float.is_finite alpha) || alpha <= 0.0 || alpha >= 0.5 then
    invalid_arg "Quantile.create: alpha must be in (0, 0.5)";
  let log_gamma = Float.log ((1.0 +. alpha) /. (1.0 -. alpha)) in
  let key_min = key_of ~log_gamma range_lo in
  let key_max = key_of ~log_gamma range_hi + 1 in
  {
    q_alpha = alpha;
    log_gamma;
    key_min;
    buckets = Array.init (key_max - key_min + 1) (fun _ -> Atomic.make 0);
    under = Atomic.make 0;
    q_count = Atomic.make 0;
    q_sum = Atomic.make 0.0;
    q_max = Atomic.make neg_infinity;
    q_min = Atomic.make infinity;
  }

let alpha t = t.q_alpha
let count t = Atomic.get t.q_count
let sum t = Atomic.get t.q_sum
let max_value t = Atomic.get t.q_max
let min_value t = Atomic.get t.q_min

let cas_update cell better v =
  let rec go () =
    let old = Atomic.get cell in
    if better v old && not (Atomic.compare_and_set cell old v) then go ()
  in
  go ()

let add t v =
  (if Float.is_finite v && v > range_lo then begin
     let i = key_of ~log_gamma:t.log_gamma v - t.key_min in
     let i = if i < 0 then 0 else min i (Array.length t.buckets - 1) in
     Atomic.incr t.buckets.(i)
   end
   else Atomic.incr t.under);
  Atomic.incr t.q_count;
  if Float.is_finite v then begin
    let rec cas_add () =
      let old = Atomic.get t.q_sum in
      if not (Atomic.compare_and_set t.q_sum old (old +. v)) then cas_add ()
    in
    cas_add ();
    cas_update t.q_max (fun a b -> a > b) v;
    cas_update t.q_min (fun a b -> a < b) v
  end

let clear t =
  Array.iter (fun b -> Atomic.set b 0) t.buckets;
  Atomic.set t.under 0;
  Atomic.set t.q_count 0;
  Atomic.set t.q_sum 0.0;
  Atomic.set t.q_max neg_infinity;
  Atomic.set t.q_min infinity

let merge_into dst src =
  if dst.q_alpha <> src.q_alpha then
    invalid_arg "Quantile.merge_into: alpha mismatch";
  Array.iteri
    (fun i b ->
      let n = Atomic.get b in
      if n > 0 then ignore (Atomic.fetch_and_add dst.buckets.(i) n))
    src.buckets;
  let u = Atomic.get src.under in
  if u > 0 then ignore (Atomic.fetch_and_add dst.under u);
  ignore (Atomic.fetch_and_add dst.q_count (Atomic.get src.q_count));
  let rec cas_add v =
    let old = Atomic.get dst.q_sum in
    if not (Atomic.compare_and_set dst.q_sum old (old +. v)) then cas_add v
  in
  cas_add (Atomic.get src.q_sum);
  cas_update dst.q_max (fun a b -> a > b) (Atomic.get src.q_max);
  cas_update dst.q_min (fun a b -> a < b) (Atomic.get src.q_min)

let copy t =
  let fresh = create ~alpha:t.q_alpha () in
  merge_into fresh t;
  fresh

(* Representative value of bucket key k: the log-midpoint of its range,
   2 * gamma^k / (gamma + 1) = exp (k * log_gamma) * (2 / (gamma + 1)). *)
let bucket_value t i =
  let k = float_of_int (t.key_min + i) in
  let gamma = Float.exp t.log_gamma in
  Float.exp (k *. t.log_gamma) *. (2.0 *. gamma /. (gamma +. 1.0))

let quantile t q =
  let n = count t in
  if n = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
    let est =
      let cum = ref (Atomic.get t.under) in
      if rank <= !cum then min_value t
      else begin
        let res = ref (max_value t) in
        (try
           Array.iteri
             (fun i b ->
               cum := !cum + Atomic.get b;
               if rank <= !cum then begin
                 res := bucket_value t i;
                 raise Exit
               end)
             t.buckets
         with Exit -> ());
        !res
      end
    in
    (* Clamping into the observed range never hurts: the true quantile
       lies inside it, so pulling the estimate in reduces error. *)
    Float.max (min_value t) (Float.min est (max_value t))
  end

let to_json t =
  let pairs = ref [] in
  Array.iteri
    (fun i b ->
      let n = Atomic.get b in
      if n > 0 then
        pairs := Json.List [ Json.Int (t.key_min + i); Json.Int n ] :: !pairs)
    t.buckets;
  Json.Obj
    [
      ("alpha", Json.Float t.q_alpha);
      ("buckets", Json.List (List.rev !pairs));
      ("count", Json.Int (count t));
      ("max", Json.Float (max_value t));
      ("min", Json.Float (min_value t));
      ("sum", Json.Float (sum t));
      ("under", Json.Int (Atomic.get t.under));
    ]

let of_json j =
  let fail () = invalid_arg "Quantile.of_json: malformed sketch" in
  let num field =
    match Json.member field j with
    | Some v -> ( match Json.to_float_opt v with Some f -> f | None -> fail ())
    | None -> fail ()
  in
  let int_field field =
    match Json.member field j with
    | Some v -> ( match Json.to_int_opt v with Some i -> i | None -> fail ())
    | None -> fail ()
  in
  let t = create ~alpha:(num "alpha") () in
  (match Json.member "buckets" j with
  | Some (Json.List kvs) ->
      List.iter
        (function
          | Json.List [ k; n ] -> (
              match (Json.to_int_opt k, Json.to_int_opt n) with
              | Some k, Some n when n >= 0 ->
                  let i = k - t.key_min in
                  if i < 0 || i >= Array.length t.buckets then fail ();
                  Atomic.set t.buckets.(i) n
              | _ -> fail ())
          | _ -> fail ())
        kvs
  | _ -> fail ());
  Atomic.set t.under (int_field "under");
  Atomic.set t.q_count (int_field "count");
  Atomic.set t.q_sum (num "sum");
  Atomic.set t.q_max (num "max");
  Atomic.set t.q_min (num "min");
  t

let summary_json t =
  let n = count t in
  if n = 0 then Json.Obj [ ("count", Json.Int 0); ("sum", Json.Float 0.0) ]
  else
    Json.Obj
      [
        ("count", Json.Int n);
        ("max", Json.Float (max_value t));
        ("min", Json.Float (min_value t));
        ("p50", Json.Float (quantile t 0.5));
        ("p90", Json.Float (quantile t 0.9));
        ("p99", Json.Float (quantile t 0.99));
        ("sum", Json.Float (sum t));
      ]
