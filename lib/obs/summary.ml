type span = {
  phase : string option;
  domain : int;
  start : float;
  dur : float;
  err : bool;
}

type phase_row = {
  phase : string;
  span_count : int;
  total_s : float;
  self_s : float;
}

type t = {
  manifest : Manifest.t option;
  span_count : int;
  error_count : int;
  domain_count : int;
  wall_s : float;
  busy_s : float;
  rows : phase_row list;
}

let other_phase = "(other)"

let span_of_json j =
  let int key = Option.bind (Json.member key j) Json.to_int_opt in
  let float key = Option.bind (Json.member key j) Json.to_float_opt in
  let str key = Option.bind (Json.member key j) Json.to_string_opt in
  match (int "id", float "start", float "dur") with
  | Some _, Some start, Some dur ->
      Ok
        {
          phase = str "phase";
          domain = Option.value ~default:0 (int "domain");
          start;
          dur;
          err =
            Option.value ~default:false
              (Option.bind (Json.member "err" j) Json.to_bool_opt);
        }
  | _ -> Error "span line missing id/start/dur"

let of_lines lines =
  let exception Bad of string in
  try
    let manifest = ref None in
    let spans = ref [] in
    List.iteri
      (fun lineno line ->
        if String.trim line <> "" then
          match Json.of_string line with
          | Error e -> raise (Bad (Printf.sprintf "line %d: %s" (lineno + 1) e))
          | Ok j -> (
              match
                Option.bind (Json.member "ev" j) Json.to_string_opt
              with
              | Some "span" -> (
                  match span_of_json j with
                  | Ok s -> spans := s :: !spans
                  | Error e ->
                      raise (Bad (Printf.sprintf "line %d: %s" (lineno + 1) e)))
              | Some "manifest" ->
                  if !manifest = None then
                    manifest := Result.to_option (Manifest.of_json j)
              | Some _ | None -> ()))
      lines;
    let spans = Array.of_list (List.rev !spans) in
    if Array.length spans = 0 then Error "no spans in trace"
    else begin
      (* Self-time attribution is by *physical* nesting, not the logical
         parent field: execution on one domain is single-threaded, so the
         spans of a domain nest by interval containment — including spans
         the pool's helping scheduler ran inline inside another task's
         wait loop, which are logically parented elsewhere.  Each span is
         charged its duration minus its immediate physically-nested
         spans; self times then partition each domain's covered time, so
         at jobs=1 busy time equals wall time up to tracing overhead. *)
      let child_dur = Array.make (Array.length spans) 0.0 in
      let by_domain : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
      Array.iteri
        (fun i s ->
          match Hashtbl.find_opt by_domain s.domain with
          | Some l -> l := i :: !l
          | None -> Hashtbl.add by_domain s.domain (ref [ i ]))
        spans;
      Hashtbl.iter
        (fun _ idxs ->
          let idxs = Array.of_list !idxs in
          (* Outer intervals first: by start, then by longest duration. *)
          Array.sort
            (fun a b ->
              match Float.compare spans.(a).start spans.(b).start with
              | 0 -> Float.compare spans.(b).dur spans.(a).dur
              | c -> c)
            idxs;
          let stack = ref [] in
          Array.iter
            (fun i ->
              let s = spans.(i) in
              let rec unwind () =
                match !stack with
                | (top_end, _) :: rest when top_end <= s.start ->
                    stack := rest;
                    unwind ()
                | _ -> ()
              in
              unwind ();
              (match !stack with
              | (_, p) :: _ -> child_dur.(p) <- child_dur.(p) +. s.dur
              | [] -> ());
              stack := (s.start +. s.dur, i) :: !stack)
            idxs)
        by_domain;
      let rows : (string, int ref * float ref * float ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let domains = Hashtbl.create 8 in
      let errors = ref 0 in
      let busy = ref 0.0 in
      let t_min = ref infinity and t_max = ref neg_infinity in
      Array.iteri
        (fun i s ->
          if s.err then incr errors;
          Hashtbl.replace domains s.domain ();
          t_min := Float.min !t_min s.start;
          t_max := Float.max !t_max (s.start +. s.dur);
          let self = Float.max 0.0 (s.dur -. child_dur.(i)) in
          busy := !busy +. self;
          let phase = Option.value ~default:other_phase s.phase in
          let count, total, self_acc =
            match Hashtbl.find_opt rows phase with
            | Some r -> r
            | None ->
                let r = (ref 0, ref 0.0, ref 0.0) in
                Hashtbl.add rows phase r;
                r
          in
          incr count;
          total := !total +. s.dur;
          self_acc := !self_acc +. self)
        spans;
      let rows =
        Hashtbl.fold
          (fun phase (count, total, self) acc ->
            {
              phase;
              span_count = !count;
              total_s = !total;
              self_s = !self;
            }
            :: acc)
          rows []
        |> List.sort (fun a b ->
               match Float.compare b.self_s a.self_s with
               | 0 -> String.compare a.phase b.phase
               | c -> c)
      in
      Ok
        {
          manifest = !manifest;
          span_count = Array.length spans;
          error_count = !errors;
          domain_count = Hashtbl.length domains;
          wall_s = !t_max -. !t_min;
          busy_s = !busy;
          rows;
        }
    end
  with Bad msg -> Error msg

let of_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | lines -> of_lines lines
  | exception Sys_error e -> Error e

let share t row =
  if t.busy_s <= 0.0 then 0.0 else 100.0 *. row.self_s /. t.busy_s

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "trace summary: %d spans, %d error(s), %d domain(s)\n"
       t.span_count t.error_count t.domain_count);
  (match t.manifest with
  | Some m -> Buffer.add_string buf ("manifest: " ^ Manifest.summary m ^ "\n")
  | None -> ());
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "  %-20s %8s %12s %12s %8s\n" "phase" "spans" "total (s)"
       "self (s)" "share");
  Buffer.add_string buf (Printf.sprintf "  %s\n" (String.make 64 '-'));
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "  %-20s %8d %12.4f %12.4f %7.1f%%\n" row.phase
           row.span_count row.total_s row.self_s (share t row)))
    t.rows;
  Buffer.add_char buf '\n';
  let phase_sum = List.fold_left (fun acc r -> acc +. r.self_s) 0.0 t.rows in
  Buffer.add_string buf
    (Printf.sprintf
       "phases sum to %.4f s = %.1f%% of attributed time (%.4f s busy)\n"
       phase_sum
       (if t.busy_s > 0.0 then 100.0 *. phase_sum /. t.busy_s else 0.0)
       t.busy_s);
  Buffer.add_string buf
    (Printf.sprintf "wall clock %.4f s across %d domain(s)%s\n" t.wall_s
       t.domain_count
       (if t.domain_count = 1 && t.wall_s > 0.0 then
          Printf.sprintf " (busy/wall = %.1f%%)" (100.0 *. t.busy_s /. t.wall_s)
        else ""));
  Buffer.contents buf

let violations t ~max_share =
  List.filter_map
    (fun row ->
      let s = share t row in
      if s > max_share then
        Some
          (Printf.sprintf
             "phase %S takes %.1f%% of attributed time (bound: %.1f%%)"
             row.phase s max_share)
      else None)
    t.rows
