type record = {
  section : string;
  scale : string;
  jobs : int;
  seconds : float;
  host : string option;
  cores : int option;
  git_rev : string option;
  rate : float option;
  rate_unit : string option;
}

type delta = {
  section : string;
  scale : string;
  jobs : int;
  baseline_s : float;
  current_s : float;
  delta_pct : float;
  baseline_rate : float option;
  current_rate : float option;
  rate_unit : string option;
}

type diff = {
  deltas : delta list;
  skipped_baseline : int;
  skipped_current : int;
  unmatched : int;
}

(* --- Loading ----------------------------------------------------------- *)

let record_of_json j =
  let str key = Option.bind (Json.member key j) Json.to_string_opt in
  let int key = Option.bind (Json.member key j) Json.to_int_opt in
  let float key = Option.bind (Json.member key j) Json.to_float_opt in
  match (str "section", str "scale", int "jobs", float "seconds") with
  | Some section, Some scale, Some jobs, Some seconds ->
      (* A record tagged ["manifest": null] predates manifest stamping:
         keep it loadable but unmatched (host/cores stay [None]), so
         diffs skip it deterministically. *)
      let null_manifest =
        match Json.member "manifest" j with Some Json.Null -> true | _ -> false
      in
      let host = if null_manifest then None else str "host" in
      let cores = if null_manifest then None else int "cores" in
      (* Throughput-style records carry a rate alongside their wall time;
         plain timing records don't.  New-style records say so directly
         with "rate"/"rate_unit"; older sections used bespoke keys
         (concheck's schedules/sec, serve's sessions/sec), kept readable
         so committed baselines survive. *)
      let rate, rate_unit =
        match (float "rate", str "rate_unit") with
        | Some r, Some u -> (Some r, Some u)
        | Some r, None -> (Some r, Some "ops/s")
        | None, _ -> (
            match float "schedules_per_sec" with
            | Some r -> (Some r, Some "sched/s")
            | None -> (
                match float "sessions_per_sec" with
                | Some r -> (Some r, Some "sess/s")
                | None -> (None, None)))
      in
      Ok
        {
          section;
          scale;
          jobs;
          seconds;
          host;
          cores;
          git_rev = str "git_rev";
          rate;
          rate_unit;
        }
  | _ -> Error "bench record: missing section/scale/jobs/seconds"

let of_json = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
            match record_of_json j with
            | Ok r -> go (r :: acc) rest
            | Error e -> Error e)
      in
      go [] items
  | _ -> Error "bench file: expected a JSON array of records"

let load path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Result.bind (Json.of_string s) of_json
  with Sys_error e -> Error e

(* --- Matching ---------------------------------------------------------- *)

(* A record is comparable only if it carries its manifest: timings from
   unknown hosts (or pre-manifest history) cannot be meaningfully
   diffed. *)
let comparable (r : record) = Option.is_some r.host && Option.is_some r.cores

let key (r : record) =
  ( r.section,
    r.scale,
    r.jobs,
    Option.value ~default:"" r.host,
    Option.value ~default:0 r.cores )

(* Last record wins per key: the harness appends, so the newest timing of
   a configuration is the current truth. *)
let latest_by_key records =
  let tbl = Hashtbl.create 16 in
  List.iter (fun r -> if comparable r then Hashtbl.replace tbl (key r) r) records;
  tbl

let diff ~baseline ~current =
  let base_tbl = latest_by_key baseline in
  let skipped_baseline =
    List.length (List.filter (fun r -> not (comparable r)) baseline)
  in
  let skipped_current =
    List.length (List.filter (fun r -> not (comparable r)) current)
  in
  (* Dedupe current keeping the last occurrence, preserving first-seen
     order so the report reads in file order. *)
  let cur_tbl = latest_by_key current in
  let seen = Hashtbl.create 16 in
  let deltas, unmatched =
    List.fold_left
      (fun (deltas, unmatched) r ->
        if not (comparable r) then (deltas, unmatched)
        else
          let k = key r in
          if Hashtbl.mem seen k then (deltas, unmatched)
          else begin
            Hashtbl.add seen k ();
            let r = Hashtbl.find cur_tbl k in
            match Hashtbl.find_opt base_tbl k with
            | None -> (deltas, unmatched + 1)
            | Some b ->
                let delta_pct =
                  if b.seconds > 0.0 then
                    (r.seconds -. b.seconds) /. b.seconds *. 100.0
                  else 0.0
                in
                ( {
                    section = r.section;
                    scale = r.scale;
                    jobs = r.jobs;
                    baseline_s = b.seconds;
                    current_s = r.seconds;
                    delta_pct;
                    baseline_rate = b.rate;
                    current_rate = r.rate;
                    (* Units come from the current side; a unit change
                       between files means the section was repurposed
                       and the rates are incomparable anyway. *)
                    rate_unit = (match r.rate_unit with
                      | Some _ as u -> u
                      | None -> b.rate_unit);
                  }
                  :: deltas,
                  unmatched )
          end)
      ([], 0) current
  in
  { deltas = List.rev deltas; skipped_baseline; skipped_current; unmatched }

let regressions ~max_regress d =
  List.filter (fun dl -> dl.delta_pct > max_regress) d.deltas

(* --- Rendering --------------------------------------------------------- *)

let render ?max_regress d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-9s %4s %12s %12s %9s\n" "section" "scale" "jobs"
       "baseline(s)" "current(s)" "delta");
  List.iter
    (fun dl ->
      let flag =
        match max_regress with
        | Some m when dl.delta_pct > m -> "  REGRESSION"
        | _ -> ""
      in
      let rate =
        match (dl.baseline_rate, dl.current_rate) with
        | Some b, Some c ->
            Printf.sprintf "  (%.0f -> %.0f %s)" b c
              (Option.value ~default:"sched/s" dl.rate_unit)
        | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%-10s %-9s %4d %12.3f %12.3f %+8.1f%%%s%s\n" dl.section
           dl.scale dl.jobs dl.baseline_s dl.current_s dl.delta_pct flag rate))
    d.deltas;
  if d.deltas = [] then
    Buffer.add_string buf "(no comparable sections: manifests differ)\n";
  if d.skipped_baseline > 0 || d.skipped_current > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "skipped %d baseline / %d current record(s) without a manifest\n"
         d.skipped_baseline d.skipped_current);
  if d.unmatched > 0 then
    Buffer.add_string buf
      (Printf.sprintf "%d current record(s) had no matching baseline\n"
         d.unmatched);
  Buffer.contents buf
