(** Process-wide metrics registry: counters, gauges, and fixed-bucket
    histograms with lock-free atomic updates, safe under
    {!Altune_exec.Pool} parallelism.

    Instruments are registered by name; asking for an existing name
    returns the same instrument (so a library and its caller can share
    ["pool.steals"] without plumbing).  Registering a name as two
    different kinds, or a histogram with different bucket edges, raises
    [Invalid_argument].

    Updates never allocate under contention except the histogram sum's
    CAS retry loop; reads ({!snapshot}, {!render}) are O(instruments)
    and safe at any time. *)

type counter
type gauge
type histogram
type sketch

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
(** Log-spaced seconds: 1us .. 100s. *)

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit
    overflow bucket collects values above the last edge.  A value [v]
    lands in the first bucket with [v <= edge]. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** [(upper_edge, count)] per bucket; the overflow bucket reports
    [infinity] as its edge. *)

val sketch : ?alpha:float -> string -> sketch
(** A mergeable {!Quantile} sketch as a registry instrument (default
    [alpha] {!Quantile.default_alpha}).  Registering an existing name
    with a different [alpha] raises [Invalid_argument]. *)

val record : sketch -> float -> unit
(** Add one value to the sketch (latency in seconds, by convention). *)

val sketch_data : sketch -> Quantile.t
(** The live underlying sketch — copy it ({!Quantile.copy}) before
    doing anything slow with it. *)

val snapshot : unit -> Json.t
(** All instruments as one JSON object (sorted by name), e.g. for
    embedding in a trace.  Sketches render as their
    {!Quantile.summary_json}. *)

val render : unit -> string
(** Human-readable dump, sorted by name, for [--metrics]. *)

val render_prom : unit -> string
(** Prometheus text exposition (format 0.0.4): counters and gauges as
    single samples, histograms with cumulative [_bucket{le=...}] plus
    [_sum]/[_count], sketches as summaries with [quantile] labels.
    Dots in names become underscores. *)

val reset : unit -> unit
(** Drop every registered instrument (tests).  Handles created before
    the reset stay valid: their next use re-registers the name (or
    adopts whatever instrument was registered under it since), starting
    from zero. *)
