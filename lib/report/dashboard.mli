(** The ops dashboard: one self-contained HTML page rendered from the
    daemon's snapshot time series ({!Altune_serve.Server.snapshot}
    records, loaded with {!Altune_obs.Snapshot.load_all}).

    Charts the latency quantiles (wire and learner-step p50/p90/p99),
    request and session throughput, live/queued load, shared-memo hit
    rate, and GC activity against daemon uptime, all through
    {!Svg.line_chart}.  Overload tripwires — intervals where the queue
    deepens while the memo hit rate decays, i.e. load is arriving
    faster than sharing can absorb it — are detected from the records
    and drawn as annotated bands across every chart. *)

val tripwires : Altune_obs.Json.t list -> (float * float) list
(** Uptime intervals (seconds) flagged as overloaded: consecutive
    snapshots where queue depth grows and memo hit rate falls.
    Adjacent intervals are merged.  Exposed for tests. *)

val render : ?title:string -> Altune_obs.Json.t list -> string
(** The complete HTML page.  Records that are not snapshot records
    (no ["ev":"snapshot"]) are ignored; fewer than two usable records
    still produce a page, with the charts degenerating gracefully. *)
