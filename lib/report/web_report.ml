module Events = Altune_obs.Events
module Summary = Altune_obs.Summary
module Manifest = Altune_obs.Manifest
module Bench_diff = Altune_obs.Bench_diff
module Json = Altune_obs.Json

type inputs = {
  events : Events.t list;
  manifest : Manifest.t option;
  summary : Summary.t option;
  bench : Bench_diff.record list;
}

let empty = { events = []; manifest = None; summary = None; bench = [] }

(* --- Input loading ----------------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

(* A bench file is a flat JSON array (starts with '['); everything else
   is JSONL that can hold learner events, spans and a manifest in any
   mix — each reader picks out its own lines. *)
let add_file acc path =
  let ( let* ) = Result.bind in
  let* lines =
    try Ok (read_lines path) with Sys_error e -> Error e
  in
  let first_payload =
    List.find_opt (fun l -> String.trim l <> "") lines
  in
  match first_payload with
  | None -> Ok acc
  | Some l when (String.trim l).[0] = '[' ->
      let* j = Json.of_string (String.concat "\n" lines) in
      let* records = Bench_diff.of_json j in
      Ok { acc with bench = acc.bench @ records }
  | Some _ ->
      let* ev = Events.of_lines lines in
      let summary =
        match acc.summary with
        | Some _ as s -> s
        | None -> Result.to_option (Summary.of_lines lines)
      in
      let manifest =
        match acc.manifest with Some _ as m -> m | None -> ev.manifest
      in
      Ok
        {
          acc with
          events = acc.events @ ev.events;
          manifest;
          summary;
        }

let load paths =
  List.fold_left
    (fun acc path -> Result.bind acc (fun acc -> add_file acc path))
    (Ok empty) paths

(* --- Event regrouping -------------------------------------------------- *)

(* Run keys written by the experiment harness are
   [bench/scale/plan/rep]; anything else (e.g. `altune tune`'s single
   run) is shown as its own group. *)
let parse_run run =
  match String.split_on_char '/' run with
  | [ bench; scale; tag; rep ] ->
      ( Printf.sprintf "%s/%s" bench scale,
        tag,
        Option.value ~default:0 (int_of_string_opt rep) )
  | _ -> ((if run = "" then "(run)" else run), "run", 0)

type run_events = {
  group : string;  (** "bench/scale" *)
  tag : string;  (** plan label *)
  rep : int;
  selects : Events.select list;
  evals : Events.eval list;
}

let runs_of_events events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Events.t) ->
      let k = ev.run in
      let cur =
        match Hashtbl.find_opt tbl k with
        | Some r -> r
        | None ->
            let group, tag, rep = parse_run k in
            { group; tag; rep; selects = []; evals = [] }
      in
      let cur =
        match ev.kind with
        | Events.Select s -> { cur with selects = s :: cur.selects }
        | Events.Eval e -> { cur with evals = e :: cur.evals }
        | Events.Start _ | Events.Finish _ | Events.Fault _ -> cur
      in
      Hashtbl.replace tbl k cur)
    events;
  (* Events arrive sorted by (run, seq); per-run lists were prepended. *)
  let runs =
    Hashtbl.fold
      (fun _ r acc ->
        { r with selects = List.rev r.selects; evals = List.rev r.evals }
        :: acc)
      tbl []
  in
  List.sort
    (fun a b ->
      match String.compare a.group b.group with
      | 0 -> (
          match String.compare a.tag b.tag with
          | 0 -> compare a.rep b.rep
          | c -> c)
      | c -> c)
    runs

let groups runs =
  List.sort_uniq String.compare (List.map (fun r -> r.group) runs)

let tags_in group runs =
  List.sort_uniq String.compare
    (List.filter_map
       (fun r -> if r.group = group then Some r.tag else None)
       runs)

let reps_of group tag runs =
  List.filter (fun r -> r.group = group && r.tag = tag) runs

(* Pointwise average across repetitions, index-matched and truncated to
   the shortest — the same reduction as [Experiment.average_curves], so
   report curves agree with the text tables to the last bit. *)
let average_indexed lists f =
  match List.filter (fun l -> l <> []) lists with
  | [] -> []
  | lists ->
      let shortest =
        List.fold_left
          (fun acc l -> min acc (List.length l))
          max_int lists
      in
      let arrays = List.map Array.of_list lists in
      List.init shortest (fun i ->
          (* Average only the finite contributions: one repetition without
             (say) tree stats yields nan and must not poison the mean of
             the repetitions that do have data.  When every contribution
             is finite this is the plain mean, bit-for-bit (same order,
             same sum, same divisor). *)
          let points = List.map (fun a -> f a.(i)) arrays in
          let finite = List.filter Float.is_finite points in
          match finite with
          | [] -> nan
          | _ ->
              List.fold_left ( +. ) 0.0 finite
              /. float_of_int (List.length finite))

let averaged_eval_series group runs ~x ~y =
  List.map
    (fun tag ->
      let reps = List.map (fun r -> r.evals) (reps_of group tag runs) in
      let xs = average_indexed reps x in
      let ys = average_indexed reps y in
      (tag, List.combine xs ys))
    (tags_in group runs)

(* Cumulative revisit fraction after each selection, averaged across
   repetitions by selection index. *)
let revisit_series group runs =
  List.map
    (fun tag ->
      let per_rep =
        List.map
          (fun r ->
            let n = ref 0 and rev = ref 0 in
            List.map
              (fun (s : Events.select) ->
                incr n;
                if s.revisit then incr rev;
                float_of_int !rev /. float_of_int !n)
              r.selects)
          (reps_of group tag runs)
      in
      let ys = average_indexed per_rep Fun.id in
      (tag, List.mapi (fun i y -> (float_of_int (i + 1), y)) ys))
    (tags_in group runs)

(* Per-dimension split frequencies of the final tree posterior, averaged
   over every run in the group that reported tree stats. *)
let sensitivity group runs =
  let finals =
    List.filter_map
      (fun r ->
        if r.group <> group then None
        else
          List.fold_left
            (fun acc (e : Events.eval) ->
              match e.tree with Some t -> Some t | None -> acc)
            None r.evals)
      runs
  in
  match finals with
  | [] -> []
  | first :: _ ->
      let dim = Array.length first.split_frequencies in
      let finals =
        List.filter
          (fun (t : Events.tree_stats) ->
            Array.length t.split_frequencies = dim)
          finals
      in
      let k = float_of_int (List.length finals) in
      List.init dim (fun d ->
          ( Printf.sprintf "dim %d" d,
            List.fold_left
              (fun acc (t : Events.tree_stats) ->
                acc +. t.split_frequencies.(d))
              0.0 finals
            /. k ))

(* --- CSV export -------------------------------------------------------- *)

let g v = if Float.is_finite v then Printf.sprintf "%.12g" v else ""

let csv_header =
  [
    "run"; "seq"; "kind"; "iteration"; "config"; "score"; "revisit";
    "config_obs"; "examples"; "observations"; "cost_s"; "rmse";
    "ref_variance"; "tree_mean_leaves"; "tree_max_depth";
  ]

let csv_row (ev : Events.t) =
  let i = string_of_int in
  let base kind = [ ev.run; i ev.seq; kind ] in
  let pad row = row @ List.init (List.length csv_header - List.length row) (fun _ -> "") in
  pad
    (match ev.kind with
    | Start _ -> base "start"
    | Select s ->
        base "select"
        @ [
            i s.iteration; s.config; g s.score;
            (if s.revisit then "1" else "0");
            i s.config_obs; i s.examples; i s.observations; g s.cost_s;
          ]
    | Eval e ->
        base "eval"
        @ [
            i e.iteration; ""; ""; ""; "";
            i e.examples; i e.observations; g e.cost_s; g e.rmse;
            g e.ref_variance;
          ]
        @ (match e.tree with
          | None -> []
          | Some t -> [ g t.mean_leaves; i t.max_depth ])
    | Finish f ->
        base "finish"
        @ [ i f.iterations; ""; ""; ""; "";
            i f.examples; i f.observations; g f.cost_s; g f.rmse ]
    | Fault f ->
        (* The fault type rides in the kind column; attempt reuses the
           config_obs column and lost seconds the cost_s column, keeping
           the header stable for existing consumers. *)
        base ("fault:" ^ f.fault)
        @ [ ""; f.config; ""; ""; i f.attempt; ""; ""; g f.lost_s ])

let events_csv events =
  Report.Csv.to_string ~header:csv_header ~rows:(List.map csv_row events)

let write_events_csv ~path events =
  Report.Csv.write ~path ~header:csv_header ~rows:(List.map csv_row events)

(* --- HTML rendering ---------------------------------------------------- *)

let pts_rows pts = List.map (fun (x, y) -> [ g x; g y ]) pts

let series_tables series ~xh ~yh =
  String.concat ""
    (List.map
       (fun (tag, pts) ->
         Html.details_table
           ~summary:(Printf.sprintf "data: %s" tag)
           ~headers:[ xh; yh ] ~rows:(pts_rows pts))
       series)

let chart_with_table ~caption ~logx ~xlabel ~ylabel series =
  Html.figure ~caption
    (Svg.line_chart ~logx ~xlabel ~ylabel series
    ^ series_tables series ~xh:xlabel ~yh:ylabel)

let learner_sections runs =
  String.concat ""
    (List.map
       (fun group ->
         let error =
           averaged_eval_series group runs
             ~x:(fun (e : Events.eval) -> e.cost_s)
             ~y:(fun (e : Events.eval) -> e.rmse)
         in
         let variance =
           averaged_eval_series group runs
             ~x:(fun (e : Events.eval) -> e.cost_s)
             ~y:(fun (e : Events.eval) -> e.ref_variance)
         in
         let leaves =
           averaged_eval_series group runs
             ~x:(fun (e : Events.eval) -> e.cost_s)
             ~y:(fun (e : Events.eval) ->
               match e.tree with Some t -> t.mean_leaves | None -> nan)
         in
         let revisits = revisit_series group runs in
         let sens = sensitivity group runs in
         Html.section ~title:group
           ~intro:
             "Curves are averaged over repetitions, matched by evaluation \
              index (the reduction used for the paper's tables)."
           (Html.row
              [
                chart_with_table ~caption:"Held-out error vs simulated cost"
                  ~logx:true ~xlabel:"cost (s)" ~ylabel:"RMSE" error;
                chart_with_table
                  ~caption:"Reference-set predictive variance (ALC objective)"
                  ~logx:true ~xlabel:"cost (s)" ~ylabel:"mean variance"
                  variance;
              ]
           ^ Html.row
               ([
                  chart_with_table
                    ~caption:
                      "Cumulative revisit fraction (repeated measurements of \
                       already-visited configurations)"
                    ~logx:false ~xlabel:"selection #"
                    ~ylabel:"revisit fraction" revisits;
                ]
               @
               if List.exists (fun (_, pts) -> pts <> []) leaves then
                 [
                   chart_with_table
                     ~caption:"Dynamic-tree size (mean leaves per particle)"
                     ~logx:true ~xlabel:"cost (s)" ~ylabel:"mean leaves"
                     leaves;
                 ]
               else [])
           ^
           if sens = [] then ""
           else
             Html.figure
               ~caption:
                 "Sensitivity proxy: share of posterior tree splits per \
                  input dimension (final model, all runs)"
               (Svg.bar_chart ~xlabel:"split frequency" sens
               ^ Html.details_table ~summary:"data: split frequencies"
                   ~headers:[ "dimension"; "frequency" ]
                   ~rows:(List.map (fun (d, v) -> [ d; g v ]) sens))))
       (groups runs))

let summary_section (s : Summary.t) =
  Html.section ~title:"Trace summary"
    ~intro:
      (Printf.sprintf
         "%d spans on %d domain(s); %.2fs wall, %.2fs attributed."
         s.span_count s.domain_count s.wall_s s.busy_s)
    (Html.table
       ~headers:[ "phase"; "spans"; "total (s)"; "self (s)"; "share" ]
       ~rows:
         (List.map
            (fun (r : Summary.phase_row) ->
              [
                r.phase;
                string_of_int r.span_count;
                Printf.sprintf "%.3f" r.total_s;
                Printf.sprintf "%.3f" r.self_s;
                Printf.sprintf "%.1f%%" (Summary.share s r);
              ])
            s.rows))

let bench_section records =
  Html.section ~title:"Benchmark timings"
    ~intro:"Per-section wall times from BENCH_harness.json."
    (Html.table
       ~headers:[ "section"; "scale"; "jobs"; "seconds"; "host"; "cores"; "git" ]
       ~rows:
         (List.map
            (fun (r : Bench_diff.record) ->
              [
                r.section;
                r.scale;
                string_of_int r.jobs;
                Printf.sprintf "%.3f" r.seconds;
                Option.value ~default:"-" r.host;
                (match r.cores with Some c -> string_of_int c | None -> "-");
                Option.value ~default:"-" r.git_rev;
              ])
            records))

let render inputs =
  let subtitle =
    match inputs.manifest with
    | Some m -> Manifest.summary m
    | None -> "no manifest recorded"
  in
  let runs = runs_of_events inputs.events in
  let body =
    (if runs = [] then ""
     else learner_sections runs)
    ^ (match inputs.summary with Some s -> summary_section s | None -> "")
    ^ (match inputs.bench with [] -> "" | r -> bench_section r)
  in
  let body =
    if body = "" then
      Html.section ~title:"Empty report"
        "No learner events, trace spans or bench records were found in the \
         input files."
    else body
  in
  Html.page ~title:"altune experiment report" ~subtitle body
