(** The [altune report] engine: render learner event streams, JSONL
    traces and bench timing files into one self-contained HTML page with
    inline SVG charts — no external assets, no plotting dependency.

    Per benchmark/scale group it draws error-vs-cost and
    variance-vs-cost curves (averaged over repetitions exactly like
    [Experiment.average_curves], so the charts agree with the text
    tables), cumulative revisit-fraction curves, dynamic-tree growth,
    and a per-dimension split-frequency bar chart (the sensitivity
    proxy).  A trace summary table and bench timing table are appended
    when the inputs carry spans or bench records.  Every chart ships a
    collapsed data table as its accessible fallback. *)

type inputs = {
  events : Altune_obs.Events.t list;
  manifest : Altune_obs.Manifest.t option;
  summary : Altune_obs.Summary.t option;
  bench : Altune_obs.Bench_diff.record list;
}

val load : string list -> (inputs, string) result
(** Classify and parse input files: a file whose first payload byte is
    ['['] is a bench timing array; anything else is JSONL whose learner
    events, manifest and spans are each picked out by their reader. *)

val render : inputs -> string
(** The complete HTML document.  Deterministic: same inputs, same
    bytes. *)

val events_csv : Altune_obs.Events.t list -> string
(** Flat CSV of the event stream (one row per event, kind-specific
    columns left empty where not applicable). *)

val write_events_csv : path:string -> Altune_obs.Events.t list -> unit
