(* Hand-rolled SVG charts for the HTML experiment report.  No plotting
   dependency exists in the container, and none is needed: the report
   draws two forms only (multi-series line chart, horizontal bar chart),
   both small enough to emit directly.

   Colors are CSS classes ([s0]..[s5], [bar]) resolved against custom
   properties declared by {!Html.page}, so one SVG serves both the light
   and dark palettes.  Marks follow the house chart rules: 2px lines,
   8px-diameter markers, hairline grid, one axis per chart, a legend for
   two or more series, and a [<title>] tooltip on every mark. *)

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest float that reads well in a tick label or tooltip. *)
let fmt v =
  if Float.is_integer v && Float.abs v < 1e7 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let px = Printf.sprintf "%.1f"

(* About [target] round tick values covering [lo, hi]. *)
let nice_ticks ?(target = 5) lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) || hi <= lo then [ lo ]
  else begin
    let span = hi -. lo in
    let raw = span /. float_of_int target in
    let mag = 10.0 ** Float.round (Float.log10 raw) in
    let step =
      let r = raw /. mag in
      if r < 0.3 then 0.25 *. mag
      else if r < 0.75 then 0.5 *. mag
      else if r < 1.5 then mag
      else 2.0 *. mag
    in
    let first = Float.round (lo /. step -. 1e-9) *. step in
    let first = if first < lo -. (1e-9 *. span) then first +. step else first in
    let rec go acc v =
      if v > hi +. (1e-9 *. span) then List.rev acc else go (v :: acc) (v +. step)
    in
    go [] first
  end

(* Powers of ten inside [lo, hi] (already log10-transformed bounds). *)
let log_ticks lo hi =
  let first = Float.of_int (int_of_float (Float.round (ceil lo))) in
  let rec go acc v = if v > hi then List.rev acc else go (v :: acc) (v +. 1.0) in
  match go [] first with
  | _ :: _ :: _ as ticks -> ticks
  | _ -> nice_ticks lo hi

let max_series = 6

type layout = {
  w : int;
  h : int;
  left : float;
  right : float;
  top : float;
  bottom : float;
}

let plot_box l =
  ( l.left,
    l.top,
    float_of_int l.w -. l.right -. l.left,
    float_of_int l.h -. l.bottom -. l.top )

let line_chart ?(width = 560) ?(height = 300) ?(logx = false) ?(bands = [])
    ~xlabel ~ylabel series =
  let series =
    List.map
      (fun (name, pts) ->
        ( name,
          List.filter
            (fun (x, y) ->
              Float.is_finite x && Float.is_finite y
              && ((not logx) || x > 0.0))
            pts ))
      series
  in
  let series = List.filter (fun (_, pts) -> pts <> []) series in
  let omitted = max 0 (List.length series - max_series) in
  let series = List.filteri (fun i _ -> i < max_series) series in
  let buf = Buffer.create 4096 in
  let l =
    {
      w = width;
      h = height;
      left = 64.0;
      right = 18.0;
      top = 30.0;
      bottom = 46.0;
    }
  in
  let bx, by, bw, bh = plot_box l in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" \
        role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">\n"
       l.w l.h l.w l.h);
  (match series with
  | [] ->
      Buffer.add_string buf
        (Printf.sprintf
           "<text class=\"tick\" x=\"%s\" y=\"%s\">no data</text>\n"
           (px (bx +. (bw /. 2.0)))
           (px (by +. (bh /. 2.0))))
  | _ ->
      let tx x = if logx then Float.log10 x else x in
      let all = List.concat_map snd series in
      let xs = List.map (fun (x, _) -> tx x) all in
      let ys = List.map snd all in
      let fold f = function [] -> 0.0 | v :: r -> List.fold_left f v r in
      let xmin = fold Float.min xs and xmax = fold Float.max xs in
      let ymin = Float.min 0.0 (fold Float.min ys) in
      let ymax = fold Float.max ys in
      let ymax = if ymax > ymin then ymax else ymin +. 1.0 in
      let xmax = if xmax > xmin then xmax else xmin +. 1.0 in
      let sx x = bx +. ((tx x -. xmin) /. (xmax -. xmin) *. bw) in
      let sy y = by +. bh -. ((y -. ymin) /. (ymax -. ymin) *. bh) in
      (* Annotated bands (e.g. overload tripwires) under everything
         else, clipped to the plot box; zero-width ranges still get a
         visible sliver. *)
      List.iter
        (fun (x0, x1, label) ->
          let x0 = Float.min x0 x1 and x1 = Float.max x0 x1 in
          if
            Float.is_finite x0 && Float.is_finite x1
            && ((not logx) || x0 > 0.0)
          then begin
            let px0 = Float.max bx (sx x0) in
            let px1 = Float.min (bx +. bw) (sx x1) in
            if px1 >= px0 then begin
              Buffer.add_string buf
                (Printf.sprintf
                   "<rect class=\"band\" x=\"%s\" y=\"%s\" width=\"%s\" \
                    height=\"%s\"><title>%s</title></rect>\n"
                   (px px0) (px by)
                   (px (Float.max (px1 -. px0) 2.0))
                   (px bh) (xml_escape label));
              Buffer.add_string buf
                (Printf.sprintf
                   "<text class=\"band-label\" x=\"%s\" y=\"%s\">%s</text>\n"
                   (px (px0 +. 2.0))
                   (px (by +. 10.0))
                   (xml_escape label))
            end
          end)
        bands;
      (* Hairline grid + tick labels. *)
      let xticks = if logx then log_ticks xmin xmax else nice_ticks xmin xmax in
      let yticks = nice_ticks ymin ymax in
      List.iter
        (fun t ->
          let x = bx +. ((t -. xmin) /. (xmax -. xmin) *. bw) in
          Buffer.add_string buf
            (Printf.sprintf
               "<line class=\"grid\" x1=\"%s\" y1=\"%s\" x2=\"%s\" \
                y2=\"%s\"/><text class=\"tick\" x=\"%s\" y=\"%s\" \
                text-anchor=\"middle\">%s</text>\n"
               (px x) (px by) (px x)
               (px (by +. bh))
               (px x)
               (px (by +. bh +. 16.0))
               (xml_escape
                  (if logx then fmt (10.0 ** t) else fmt t))))
        xticks;
      List.iter
        (fun t ->
          let y = sy t in
          Buffer.add_string buf
            (Printf.sprintf
               "<line class=\"grid\" x1=\"%s\" y1=\"%s\" x2=\"%s\" \
                y2=\"%s\"/><text class=\"tick\" x=\"%s\" y=\"%s\" \
                text-anchor=\"end\">%s</text>\n"
               (px bx) (px y)
               (px (bx +. bw))
               (px y)
               (px (bx -. 6.0))
               (px (y +. 4.0))
               (xml_escape (fmt t))))
        yticks;
      (* The one axis: a baseline under the plot. *)
      Buffer.add_string buf
        (Printf.sprintf
           "<line class=\"axis\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"/>\n"
           (px bx)
           (px (by +. bh))
           (px (bx +. bw))
           (px (by +. bh)));
      (* Series: 2px polyline + 8px markers, each with a tooltip. *)
      List.iteri
        (fun si (name, pts) ->
          let cls = Printf.sprintf "s%d" si in
          let path =
            String.concat " "
              (List.map (fun (x, y) -> px (sx x) ^ "," ^ px (sy y)) pts)
          in
          Buffer.add_string buf
            (Printf.sprintf "<polyline class=\"line %s\" points=\"%s\"/>\n" cls
               path);
          List.iter
            (fun (x, y) ->
              Buffer.add_string buf
                (Printf.sprintf
                   "<circle class=\"dot %s\" cx=\"%s\" cy=\"%s\" \
                    r=\"4\"><title>%s: (%s, %s)</title></circle>\n"
                   cls (px (sx x)) (px (sy y)) (xml_escape name)
                   (xml_escape (fmt x)) (xml_escape (fmt y))))
            pts)
        series;
      (* Legend (always present for >= 2 series). *)
      if List.length series >= 2 then begin
        let x = ref bx in
        List.iteri
          (fun si (name, _) ->
            let cls = Printf.sprintf "s%d" si in
            Buffer.add_string buf
              (Printf.sprintf
                 "<line class=\"line %s\" x1=\"%s\" y1=\"%s\" x2=\"%s\" \
                  y2=\"%s\"/><text class=\"legend\" x=\"%s\" \
                  y=\"%s\">%s</text>\n"
                 cls (px !x) (px 14.0)
                 (px (!x +. 18.0))
                 (px 14.0)
                 (px (!x +. 23.0))
                 (px 18.0) (xml_escape name));
            x := !x +. 31.0 +. (7.2 *. float_of_int (String.length name)))
          series
      end;
      if omitted > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "<text class=\"tick\" x=\"%s\" y=\"%s\" \
              text-anchor=\"end\">+%d series omitted</text>\n"
             (px (bx +. bw))
             (px 18.0) omitted));
  (* Axis titles. *)
  Buffer.add_string buf
    (Printf.sprintf
       "<text class=\"label\" x=\"%s\" y=\"%s\" \
        text-anchor=\"middle\">%s</text>\n"
       (px (bx +. (bw /. 2.0)))
       (px (float_of_int l.h -. 10.0))
       (xml_escape xlabel));
  Buffer.add_string buf
    (Printf.sprintf
       "<text class=\"label\" x=\"14\" y=\"%s\" text-anchor=\"middle\" \
        transform=\"rotate(-90 14 %s)\">%s</text>\n"
       (px (by +. (bh /. 2.0)))
       (px (by +. (bh /. 2.0)))
       (xml_escape ylabel));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let bar_chart ?(width = 560) ~xlabel entries =
  let entries =
    List.filter (fun (_, v) -> Float.is_finite v && v >= 0.0) entries
  in
  let n = List.length entries in
  let bar_h = 20.0 and gap = 6.0 in
  let left = 110.0 and right = 64.0 and top = 10.0 and bottom = 40.0 in
  let height =
    int_of_float (top +. bottom +. (float_of_int n *. (bar_h +. gap)))
  in
  let bw = float_of_int width -. left -. right in
  let vmax =
    List.fold_left (fun m (_, v) -> Float.max m v) 0.0 entries
  in
  let vmax = if vmax > 0.0 then vmax else 1.0 in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" \
        role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">\n"
       width height width height);
  List.iteri
    (fun i (name, v) ->
      let y = top +. (float_of_int i *. (bar_h +. gap)) in
      let w = v /. vmax *. bw in
      Buffer.add_string buf
        (Printf.sprintf
           "<text class=\"tick\" x=\"%s\" y=\"%s\" \
            text-anchor=\"end\">%s</text>\n"
           (px (left -. 8.0))
           (px (y +. (bar_h /. 2.0) +. 4.0))
           (xml_escape name));
      Buffer.add_string buf
        (Printf.sprintf
           "<rect class=\"bar\" x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" \
            rx=\"2\"><title>%s: %s</title></rect>\n"
           (px left) (px y)
           (px (Float.max w 1.0))
           (px bar_h) (xml_escape name) (xml_escape (fmt v)));
      Buffer.add_string buf
        (Printf.sprintf "<text class=\"tick\" x=\"%s\" y=\"%s\">%s</text>\n"
           (px (left +. Float.max w 1.0 +. 6.0))
           (px (y +. (bar_h /. 2.0) +. 4.0))
           (xml_escape (fmt v))))
    entries;
  let base_y = top +. (float_of_int n *. (bar_h +. gap)) in
  Buffer.add_string buf
    (Printf.sprintf
       "<line class=\"axis\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"/>\n"
       (px left) (px base_y)
       (px (left +. bw))
       (px base_y));
  Buffer.add_string buf
    (Printf.sprintf
       "<text class=\"label\" x=\"%s\" y=\"%s\" \
        text-anchor=\"middle\">%s</text>\n"
       (px (left +. (bw /. 2.0)))
       (px (base_y +. 28.0))
       (xml_escape xlabel));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
