let escape = Svg.xml_escape

(* One stylesheet for the whole report.  Colors live in custom
   properties so the SVG charts (which reference them by class) follow
   the viewer's scheme; the dark palette is its own validated stepping
   of the same hues, not an automatic flip.  Light-mode aqua, yellow and
   magenta sit below 3:1 contrast on the light surface, which is why
   every chart ships a data-table fallback. *)
let css =
  {css|
:root {
  color-scheme: light dark;
  --bg: #fcfcfb; --ink: #1a1a19; --muted: #6f6e68;
  --grid: #e7e6e2; --axis: #b4b3ac; --card: #ffffff; --edge: #e2e1dc;
  --s0: #2a78d6; --s1: #eb6834; --s2: #1baf7a;
  --s3: #eda100; --s4: #e87ba4; --s5: #008300;
  --seq: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root:not([data-theme="light"]) {
    --bg: #1a1a19; --ink: #fcfcfb; --muted: #a3a29a;
    --grid: #32312e; --axis: #57564f; --card: #232321; --edge: #3a3935;
    --s0: #3987e5; --s1: #d95926; --s2: #199e70;
    --s3: #c98500; --s4: #d55181; --s5: #008300;
    --seq: #3987e5;
  }
}
:root[data-theme="dark"] {
  --bg: #1a1a19; --ink: #fcfcfb; --muted: #a3a29a;
  --grid: #32312e; --axis: #57564f; --card: #232321; --edge: #3a3935;
  --s0: #3987e5; --s1: #d95926; --s2: #199e70;
  --s3: #c98500; --s4: #d55181; --s5: #008300;
  --seq: #3987e5;
}
body {
  background: var(--bg); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif;
  max-width: 1180px; margin: 0 auto; padding: 24px;
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 17px; margin: 28px 0 8px; }
p.meta, p.intro { color: var(--muted); margin: 2px 0 10px; }
section.card {
  background: var(--card); border: 1px solid var(--edge);
  border-radius: 8px; padding: 14px 18px; margin: 14px 0;
}
div.row { display: flex; flex-wrap: wrap; gap: 18px; }
figure { margin: 0; }
figcaption { color: var(--muted); font-size: 13px; margin-top: 2px; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { padding: 3px 10px; text-align: right; border-bottom: 1px solid var(--edge); }
th { color: var(--muted); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
details summary { color: var(--muted); cursor: pointer; font-size: 13px; }
svg { display: block; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .tick, svg .legend, svg .label { fill: var(--ink); font: 11px system-ui, sans-serif; }
svg .tick { fill: var(--muted); }
svg .label { font-size: 12px; }
svg .line { fill: none; stroke-width: 2; }
svg .dot { stroke: var(--bg); stroke-width: 1; }
svg .line.s0 { stroke: var(--s0); } svg .dot.s0 { fill: var(--s0); }
svg .line.s1 { stroke: var(--s1); } svg .dot.s1 { fill: var(--s1); }
svg .line.s2 { stroke: var(--s2); } svg .dot.s2 { fill: var(--s2); }
svg .line.s3 { stroke: var(--s3); } svg .dot.s3 { fill: var(--s3); }
svg .line.s4 { stroke: var(--s4); } svg .dot.s4 { fill: var(--s4); }
svg .line.s5 { stroke: var(--s5); } svg .dot.s5 { fill: var(--s5); }
svg .bar { fill: var(--seq); }
svg .band { fill: var(--s1); opacity: 0.18; }
svg .band-label { fill: var(--s1); font: 10px system-ui, sans-serif; }
|css}

let page ~title ~subtitle body =
  Printf.sprintf
    {|<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>%s</title>
<style>%s</style>
</head>
<body>
<h1>%s</h1>
<p class="meta">%s</p>
%s</body>
</html>
|}
    (escape title) css (escape title) (escape subtitle) body

let section ~title ?intro body =
  let intro =
    match intro with
    | None -> ""
    | Some i -> Printf.sprintf "<p class=\"intro\">%s</p>\n" (escape i)
  in
  Printf.sprintf "<section class=\"card\">\n<h2>%s</h2>\n%s%s</section>\n"
    (escape title) intro body

let figure ~caption svg =
  Printf.sprintf "<figure>\n%s<figcaption>%s</figcaption>\n</figure>\n" svg
    (escape caption)

let row figures = Printf.sprintf "<div class=\"row\">\n%s</div>\n"
    (String.concat "" figures)

let table ~headers ~rows =
  let cells tag r =
    String.concat ""
      (List.map (fun c -> Printf.sprintf "<%s>%s</%s>" tag (escape c) tag) r)
  in
  Printf.sprintf "<table>\n<tr>%s</tr>\n%s</table>\n" (cells "th" headers)
    (String.concat "\n"
       (List.map (fun r -> Printf.sprintf "<tr>%s</tr>" (cells "td" r)) rows))

(* The chart's accessible fallback: same numbers, as text. *)
let details_table ~summary ~headers ~rows =
  Printf.sprintf "<details><summary>%s</summary>\n%s</details>\n"
    (escape summary)
    (table ~headers ~rows)
