(** Hand-rolled SVG charts for the HTML experiment report.

    Both forms color their marks through CSS classes ([s0]..[s5] for
    line series, [bar] for bars) that {!Html.page} binds to the light
    and dark palettes, so the same SVG adapts to the viewer's color
    scheme.  Output is deterministic: same inputs, same bytes. *)

val xml_escape : string -> string

val line_chart :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  ?bands:(float * float * string) list ->
  xlabel:string ->
  ylabel:string ->
  (string * (float * float) list) list ->
  string
(** Multi-series line chart with markers, hairline grid, tick labels, a
    legend (for two or more series) and a [<title>] tooltip per point.
    Non-finite points (and non-positive x under [~logx:true]) are
    dropped.  At most six series are drawn — the categorical palette has
    six slots — and a visible note counts any omitted ones.

    [bands] are annotated x-ranges [(x0, x1, label)] (data coordinates)
    drawn as translucent rectangles behind the data — the dashboard's
    overload tripwires.  Bands outside the data's x-range are clipped;
    with no series nothing is drawn. *)

val bar_chart :
  ?width:int -> xlabel:string -> (string * float) list -> string
(** Horizontal bar chart (single-hue: a bar chart encodes magnitude, not
    identity) with per-bar value labels and tooltips.  Negative and
    non-finite values are dropped. *)
