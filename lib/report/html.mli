(** HTML scaffolding for the self-contained experiment report: one page,
    inline CSS (light and dark palettes as custom properties consumed by
    {!Svg} chart classes), no external assets. *)

val escape : string -> string

val page : title:string -> subtitle:string -> string -> string
(** Complete HTML document around a body. *)

val section : title:string -> ?intro:string -> string -> string
(** A titled card. *)

val figure : caption:string -> string -> string
(** Wrap an SVG chart with a caption. *)

val row : string list -> string
(** Lay figures out side by side, wrapping. *)

val table : headers:string list -> rows:string list list -> string

val details_table :
  summary:string -> headers:string list -> rows:string list list -> string
(** Collapsed data table — every chart's accessible fallback (the light
    palette's low-contrast slots rely on it). *)
