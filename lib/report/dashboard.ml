module Json = Altune_obs.Json

(* --- Record accessors -------------------------------------------------- *)

let mem path j =
  List.fold_left (fun j k -> Option.bind j (fun j -> Json.member k j)) (Some j) path

let fnum path j = Option.bind (mem path j) Json.to_float_opt
let fnum_or d path j = Option.value ~default:d (fnum path j)

let is_snapshot j =
  match Option.bind (Json.member "ev" j) Json.to_string_opt with
  | Some "snapshot" -> true
  | _ -> false

(* Usable records in time order: uptime is monotone within one daemon
   run; a rotation set loaded oldest-first is already ordered, so a
   stable sort only repairs accidental file mixing. *)
let snapshots records =
  List.filter is_snapshot records
  |> List.stable_sort
       (fun a b -> compare (fnum_or 0.0 [ "uptime_s" ] a) (fnum_or 0.0 [ "uptime_s" ] b))

let uptime = fnum_or 0.0 [ "uptime_s" ]

(* --- Tripwires --------------------------------------------------------- *)

let tripwires records =
  let snaps = snapshots records in
  let rec pairs acc = function
    | a :: (b :: _ as rest) ->
        let depth_grows =
          fnum_or 0.0 [ "queued" ] b > fnum_or 0.0 [ "queued" ] a
        in
        let hit_rate_decays =
          fnum_or 1.0 [ "memo"; "hit_rate" ] b
          < fnum_or 1.0 [ "memo"; "hit_rate" ] a
        in
        let acc =
          if depth_grows && hit_rate_decays then (uptime a, uptime b) :: acc
          else acc
        in
        pairs acc rest
    | _ -> List.rev acc
  in
  let merge intervals =
    List.fold_left
      (fun acc (x0, x1) ->
        match acc with
        | (p0, p1) :: rest when x0 <= p1 -> (p0, Float.max p1 x1) :: rest
        | _ -> (x0, x1) :: acc)
      [] intervals
    |> List.rev
  in
  merge (pairs [] snaps)

(* --- Series extraction ------------------------------------------------- *)

let series snaps ~y =
  List.filter_map
    (fun s -> Option.map (fun v -> (uptime s, v)) (y s))
    snaps

(* Per-interval rate of a cumulative field (e.g. requests/s). *)
let rate_series snaps ~y =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let dt = uptime b -. uptime a in
        let acc =
          if dt > 0.0 then (uptime b, (y b -. y a) /. dt) :: acc else acc
        in
        go acc rest
    | _ -> List.rev acc
  in
  go [] snaps

let sketch_ms which q s = Option.map (fun v -> v *. 1000.0) (fnum [ "sketches"; which; q ] s)

(* --- Page -------------------------------------------------------------- *)

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e7 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let render ?(title = "altune ops dashboard") records =
  let snaps = snapshots records in
  let bands =
    List.map (fun (x0, x1) -> (x0, x1, "overload")) (tripwires records)
  in
  let chart ~caption ~ylabel series_list =
    Html.figure ~caption
      (Svg.line_chart ~bands ~xlabel:"uptime (s)" ~ylabel series_list)
  in
  let latency =
    chart ~caption:"request latency quantiles" ~ylabel:"latency (ms)"
      [
        ("wire p50", series snaps ~y:(sketch_ms "wire" "p50"));
        ("wire p90", series snaps ~y:(sketch_ms "wire" "p90"));
        ("wire p99", series snaps ~y:(sketch_ms "wire" "p99"));
        ("step p99", series snaps ~y:(sketch_ms "step" "p99"));
      ]
  in
  let throughput =
    chart ~caption:"throughput (per-interval rates)" ~ylabel:"per second"
      [
        ( "requests/s",
          rate_series snaps ~y:(fnum_or 0.0 [ "requests" ]) );
        ("sessions done/s", rate_series snaps ~y:(fnum_or 0.0 [ "done" ]));
      ]
  in
  let load =
    chart ~caption:"admission load" ~ylabel:"sessions"
      [
        ("live", series snaps ~y:(fnum [ "live" ]));
        ("queued", series snaps ~y:(fnum [ "queued" ]));
      ]
  in
  let memo =
    chart ~caption:"shared-memo hit rate" ~ylabel:"hit rate (%)"
      [
        ( "hit rate",
          series snaps
            ~y:(fun s ->
              Option.map (fun v -> v *. 100.0) (fnum [ "memo"; "hit_rate" ] s))
        );
      ]
  in
  let gc =
    chart ~caption:"GC activity between snapshots" ~ylabel:"per interval"
      [
        ( "minor words (M)",
          series snaps
            ~y:(fun s ->
              Option.map (fun v -> v /. 1e6) (fnum [ "gc"; "minor_words" ] s))
        );
        ( "major collections",
          series snaps ~y:(fnum [ "gc"; "major_collections" ]) );
        ( "heap (Mwords)",
          series snaps
            ~y:(fun s ->
              Option.map (fun v -> v /. 1e6) (fnum [ "gc"; "heap_words" ] s)) );
      ]
  in
  let summary_rows =
    match (snaps, List.rev snaps) with
    | first :: _, last :: _ ->
        let span = uptime last -. uptime first in
        [
          [ "snapshot records"; string_of_int (List.length snaps) ];
          [ "time span (s)"; fmt_num span ];
          [ "requests"; fmt_num (fnum_or 0.0 [ "requests" ] last) ];
          [ "error replies"; fmt_num (fnum_or 0.0 [ "errors" ] last) ];
          [ "sessions done"; fmt_num (fnum_or 0.0 [ "done" ] last) ];
          [
            "memo hit rate";
            Printf.sprintf "%.1f%%"
              (100.0 *. fnum_or 0.0 [ "memo"; "hit_rate" ] last);
          ];
          [
            "wire p99 (ms)";
            fmt_num (Option.value ~default:0.0 (sketch_ms "wire" "p99" last));
          ];
          [
            "peak queue depth";
            fmt_num
              (List.fold_left
                 (fun m s -> Float.max m (fnum_or 0.0 [ "queued" ] s))
                 0.0 snaps);
          ];
          [ "overload intervals"; string_of_int (List.length bands) ];
        ]
    | _ -> [ [ "snapshot records"; "0" ] ]
  in
  let subtitle =
    match snaps with
    | [] -> "no snapshot records"
    | s :: _ ->
        let field k =
          Option.value ~default:"?"
            (Option.bind (Json.member k s) Json.to_string_opt)
        in
        let jobs =
          Option.value ~default:0
            (Option.bind (Json.member "jobs" s) Json.to_int_opt)
        in
        Printf.sprintf "%s · %d jobs · git %s" (field "hostname") jobs
          (field "git_rev")
  in
  Html.page ~title ~subtitle
    (Html.section ~title:"Summary"
       (Html.table ~headers:[ "quantity"; "value" ] ~rows:summary_rows)
    ^ Html.section ~title:"Latency"
        ~intro:
          "Quantiles from the daemon's DDSketch-style latency sketches; \
           shaded bands mark overload tripwires (queue growing while the \
           memo hit rate decays)."
        (Html.row [ latency ])
    ^ Html.section ~title:"Load" (Html.row [ throughput; load ])
    ^ Html.section ~title:"Sharing" (Html.row [ memo ])
    ^ Html.section ~title:"Runtime" (Html.row [ gc ]))
