module Sync = Altune_exec.Sync

type op =
  | O_start
  | O_lock of int
  | O_unlock of int
  | O_wait of int * int
  | O_reacquire of int
  | O_signal of int
  | O_broadcast of int
  | O_spawn
  | O_join of int
  | O_read of int * string
  | O_write of int * string

let op_to_string = function
  | O_start -> "start"
  | O_lock m -> Printf.sprintf "lock m%d" m
  | O_unlock m -> Printf.sprintf "unlock m%d" m
  | O_wait (c, m) -> Printf.sprintf "wait c%d (releasing m%d)" c m
  | O_reacquire m -> Printf.sprintf "reacquire m%d" m
  | O_signal c -> Printf.sprintf "signal c%d" c
  | O_broadcast c -> Printf.sprintf "broadcast c%d" c
  | O_spawn -> "spawn"
  | O_join u -> Printf.sprintf "join thread %d" u
  | O_read (l, site) -> Printf.sprintf "read loc%d (%s)" l site
  | O_write (l, site) -> Printf.sprintf "write loc%d (%s)" l site

(* Objects an operation touches, for the independence relation. *)
type obj = Mu of int | Co of int | Ce of int | Any

let objects = function
  | O_lock m | O_unlock m | O_reacquire m -> [ Mu m ]
  | O_wait (c, m) -> [ Co c; Mu m ]
  | O_signal c | O_broadcast c -> [ Co c ]
  | O_read (l, _) | O_write (l, _) -> [ Ce l ]
  | O_start | O_spawn | O_join _ -> [ Any ]

let independent a b =
  let oa = objects a and ob = objects b in
  (not (List.mem Any oa))
  && (not (List.mem Any ob))
  &&
  (* Two reads of the same cell commute; anything else sharing an
     object does not. *)
  let reads_commute =
    match (a, b) with O_read _, O_read _ -> true | _ -> false
  in
  reads_commute || not (List.exists (fun o -> List.mem o ob) oa)

exception Prune

type deadlock_entry = { d_tid : int; d_pending : string }
type deadlock = deadlock_entry list

type outcome = {
  result : (unit, exn) Result.t;
  races : Racecheck.race list;
  deadlock : deadlock option;
  steps : int;
  trace_hash : int;
  pruned : bool;
}

(* --- Effects performed by the code under test -------------------------- *)

type _ Effect.t +=
  | E_lock : int -> unit Effect.t
  | E_unlock : int -> unit Effect.t
  | E_wait : (int * int) -> unit Effect.t
  | E_signal : int -> unit Effect.t
  | E_broadcast : int -> unit Effect.t
  | E_spawn : (unit -> unit) -> int Effect.t
  | E_join : int -> unit Effect.t
  | E_read : (int * string) -> unit Effect.t
  | E_write : (int * string) -> unit Effect.t

type status =
  | Ready of op * (unit -> unit)
      (* Pending operation plus the action that performs it (updating
         scheduler and detector state) and resumes the thread up to its
         next effect. *)
  | Sleeping of int * int * (unit -> unit)
      (* cond, mutex; the action re-pends the mutex reacquisition. *)
  | Done_ok
  | Done_exn of exn

type tstate = { tid : int; mutable status : status }

type state = {
  mutable threads : tstate list;  (* newest first; small counts *)
  mutable n_threads : int;
  mutable n_mutexes : int;
  mutable n_conds : int;
  mutable n_locs : int;
  loc_names : (int, string) Hashtbl.t;
  mutable owner : (int * int) list;  (* mutex -> owning tid *)
  mutable current : int;
  rc : Racecheck.t;
  mutable trace_hash : int;
  mutable steps : int;
}

let thread st tid = List.find (fun t -> t.tid = tid) st.threads

let set_owner st m tid =
  st.owner <- (m, tid) :: List.remove_assoc m st.owner

let clear_owner st m = st.owner <- List.remove_assoc m st.owner
let owner st m = List.assoc_opt m st.owner

let mix_trace st tid op =
  (* Order-sensitive fold so distinct interleavings hash apart. *)
  let h = Hashtbl.hash (tid, op) in
  st.trace_hash <- (st.trace_hash * 0x01000193) lxor h land max_int

(* Install one thread's effect handler and run its body to the first
   suspension point (or completion). *)
let rec start_thread st tid body =
  let t = thread st tid in
  let open Effect.Deep in
  let pend op action = t.status <- Ready (op, action) in
  match_with body ()
    {
      retc = (fun () -> t.status <- Done_ok);
      exnc = (fun e -> t.status <- Done_exn e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_lock m ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend (O_lock m) (fun () ->
                      set_owner st m tid;
                      Racecheck.acquire st.rc ~tid ~lock:m;
                      continue k ()))
          | E_unlock m ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend (O_unlock m) (fun () ->
                      clear_owner st m;
                      Racecheck.release st.rc ~tid ~lock:m;
                      continue k ()))
          | E_wait (c, m) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend
                    (O_wait (c, m))
                    (fun () ->
                      (* Atomically release the mutex and sleep; a wakeup
                         re-pends the reacquisition as its own scheduling
                         point, exactly like the real primitive. *)
                      clear_owner st m;
                      Racecheck.release st.rc ~tid ~lock:m;
                      t.status <-
                        Sleeping
                          ( c,
                            m,
                            fun () ->
                              pend (O_reacquire m) (fun () ->
                                  set_owner st m tid;
                                  Racecheck.acquire st.rc ~tid ~lock:m;
                                  continue k ()) )))
          | E_signal c ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend (O_signal c) (fun () ->
                      wake_sleepers st c ~all:false;
                      continue k ()))
          | E_broadcast c ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend (O_broadcast c) (fun () ->
                      wake_sleepers st c ~all:true;
                      continue k ()))
          | E_spawn f ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend O_spawn (fun () ->
                      let child = st.n_threads in
                      st.n_threads <- child + 1;
                      let ct = { tid = child; status = Done_ok } in
                      st.threads <- ct :: st.threads;
                      Racecheck.fork st.rc ~parent:tid ~child;
                      ct.status <-
                        Ready (O_start, fun () -> start_thread st child f);
                      continue k child))
          | E_join u ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend (O_join u) (fun () ->
                      Racecheck.join st.rc ~parent:tid ~child:u;
                      match (thread st u).status with
                      | Done_ok -> continue k ()
                      | Done_exn e -> discontinue k e
                      | Ready _ | Sleeping _ ->
                          invalid_arg "Sched: join executed on a live thread"))
          | E_read (l, site) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend
                    (O_read (l, site))
                    (fun () ->
                      Racecheck.read st.rc ~tid ~loc:l
                        ~name:(loc_name st l) ~site;
                      continue k ()))
          | E_write (l, site) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  pend
                    (O_write (l, site))
                    (fun () ->
                      Racecheck.write st.rc ~tid ~loc:l
                        ~name:(loc_name st l) ~site;
                      continue k ()))
          | _ -> None);
    }

and wake_sleepers st c ~all =
  let sleepers =
    List.filter
      (fun t -> match t.status with Sleeping (c', _, _) -> c' = c | _ -> false)
      st.threads
  in
  let sleepers = List.sort (fun a b -> compare a.tid b.tid) sleepers in
  match (all, sleepers) with
  | _, [] -> ()
  | true, ts -> List.iter (fun t -> wake st t) ts
  | false, t :: _ -> wake st t

and wake _st t =
  match t.status with
  | Sleeping (_, _, rearm) -> rearm ()
  | _ -> assert false

and loc_name st l =
  match Hashtbl.find_opt st.loc_names l with
  | Some n -> n
  | None -> Printf.sprintf "loc%d" l

let enabled_op st = function
  | O_lock m | O_reacquire m -> owner st m = None
  | O_join u -> (
      match (thread st u).status with
      | Done_ok | Done_exn _ -> true
      | Ready _ | Sleeping _ -> false)
  | _ -> true

let run ?(max_steps = 200_000) ~policy body =
  let st =
    {
      threads = [];
      n_threads = 1;
      n_mutexes = 0;
      n_conds = 0;
      n_locs = 0;
      loc_names = Hashtbl.create 32;
      owner = [];
      current = 0;
      rc = Racecheck.create ();
      trace_hash = 0;
      steps = 0;
    }
  in
  let ops : Sync.ops =
    {
      o_mutex =
        (fun () ->
          let m = st.n_mutexes in
          st.n_mutexes <- m + 1;
          m);
      o_lock = (fun m -> Effect.perform (E_lock m));
      o_unlock = (fun m -> Effect.perform (E_unlock m));
      o_cond =
        (fun () ->
          let c = st.n_conds in
          st.n_conds <- c + 1;
          c);
      o_wait = (fun ~cond ~mutex -> Effect.perform (E_wait (cond, mutex)));
      o_signal = (fun c -> Effect.perform (E_signal c));
      o_broadcast = (fun c -> Effect.perform (E_broadcast c));
      o_spawn = (fun f -> Effect.perform (E_spawn f));
      o_join = (fun u -> Effect.perform (E_join u));
      o_self = (fun () -> st.current);
      o_loc =
        (fun name ->
          let l = st.n_locs in
          st.n_locs <- l + 1;
          Hashtbl.replace st.loc_names l name;
          l);
      o_read = (fun l ~site -> Effect.perform (E_read (l, site)));
      o_write = (fun l ~site -> Effect.perform (E_write (l, site)));
    }
  in
  let result =
    ref (Result.Error (Failure "Sched: scenario did not complete"))
  in
  let deadlock = ref None in
  let pruned = ref false in
  Sync.with_ops ops (fun () ->
      let main = { tid = 0; status = Done_ok } in
      st.threads <- [ main ];
      Racecheck.start_thread st.rc ~tid:0;
      main.status <-
        Ready
          ( O_start,
            fun () ->
              start_thread st 0 (fun () ->
                  match body () with
                  | () -> result := Ok ()
                  | exception e -> result := Error e) );
      let rec loop () =
        let live =
          List.filter
            (fun t ->
              match t.status with Ready _ | Sleeping _ -> true | _ -> false)
            st.threads
        in
        if live <> [] then begin
          let enabled =
            List.filter_map
              (fun t ->
                match t.status with
                | Ready (op, _) when enabled_op st op -> Some t.tid
                | _ -> None)
              live
          in
          let enabled = List.sort compare enabled in
          if enabled = [] then
            deadlock :=
              Some
                (List.map
                   (fun t ->
                     {
                       d_tid = t.tid;
                       d_pending =
                         (match t.status with
                         | Ready (op, _) ->
                             "blocked on " ^ op_to_string op
                         | Sleeping (c, _, _) ->
                             Printf.sprintf "asleep in wait on c%d" c
                         | _ -> "?");
                     })
                   (List.sort (fun a b -> compare a.tid b.tid) live))
          else if st.steps >= max_steps then
            result :=
              Error
                (Failure
                   (Printf.sprintf
                      "Sched: exceeded %d steps (livelock or runaway \
                       scenario)"
                      max_steps))
          else begin
            let pending tid =
              match (thread st tid).status with
              | Ready (op, _) -> op
              | _ -> invalid_arg "Sched: pending of a non-ready thread"
            in
            match policy ~step:st.steps ~enabled ~pending with
            | exception Prune -> pruned := true
            | tid ->
                let t = thread st tid in
                (match t.status with
                | Ready (op, action) ->
                    mix_trace st tid op;
                    st.steps <- st.steps + 1;
                    st.current <- tid;
                    action ()
                | _ -> invalid_arg "Sched: policy chose a non-ready thread");
                loop ()
          end
        end
      in
      loop ());
  {
    result = (if !pruned then Error Prune else !result);
    races = Racecheck.races st.rc;
    deadlock = !deadlock;
    steps = st.steps;
    trace_hash = st.trace_hash;
    pruned = !pruned;
  }
