(** The concheck scenario catalog: bounded concurrent workloads over the
    real {!Altune_exec} engine (pool, memo, fault injection), plus
    deliberately-broken fixtures that validate the detector itself.

    Each scenario's [run] executes the workload once under whatever
    scheduler is installed and returns a {e fingerprint} string.  For
    [Clean] scenarios the fingerprint must be identical across every
    explored schedule — it canonicalizes whatever the engine promises is
    schedule-invariant (results in input order, sorted event multisets,
    hit/miss counter deltas, first-failure index) and excludes what is
    legitimately schedule-dependent (event arrival order, wall times,
    steal and wait counts). *)

type expect =
  | Clean  (** no races, no deadlocks, fingerprint schedule-invariant *)
  | Race  (** the detector must report at least one race *)
  | Deadlock  (** at least one schedule must reach a global blocked state *)

type t = {
  name : string;
  descr : string;
  expect : expect;
  small : bool;
      (** Small enough for exhaustive DFS enumeration (a few threads,
          short bodies); large scenarios are explored with randomized
          policies only. *)
  run : unit -> string;  (** Execute once; returns the fingerprint. *)
}

val pool_map : jobs:int -> t
(** Parametrized by job count so the jobs-invariance test can compare
    fingerprints at [jobs:1] vs [jobs:4]. *)

val all : t list
val find : string -> t option
