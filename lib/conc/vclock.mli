(** Vector clocks and epochs for happens-before reasoning (the FastTrack
    representation: a full clock per thread/lock, a compact
    [tid@clock] epoch for the common last-access case).

    Clocks grow on demand, so the thread-id universe need not be known
    up front.  A component that was never written reads as [0]. *)

type t
(** A mutable vector clock. *)

val create : unit -> t
(** The zero clock. *)

val of_list : int list -> t
(** [of_list [c0; c1; ...]] — component [i] of the result is [ci]
    (tests and property generators). *)

val to_list : t -> int list
(** Components up to the highest nonzero one (trailing zeros dropped). *)

val get : t -> int -> int
val set : t -> int -> int -> unit

val incr : t -> int -> unit
(** Bump one component (a thread ticking its own clock). *)

val copy : t -> t

val join : into:t -> t -> unit
(** Pointwise maximum, accumulated into [into]. *)

val leq : t -> t -> bool
(** Pointwise [<=]: the happens-before partial order. *)

val compare_po : t -> t -> [ `Equal | `Less | `Greater | `Concurrent ]

(** {1 Epochs} *)

type epoch = private int
(** [tid@clock] packed in one int; the whole-vector comparison
    [epoch_leq] is O(1) against it.  [none] (no access yet) is the
    zero value and is below everything. *)

val none : epoch
val epoch : tid:int -> clock:int -> epoch
(** Requires [0 <= tid < 65536] and [clock >= 1] (a thread's own
    component starts at 1, so a real access is never [none]). *)

val epoch_of : t -> int -> epoch
(** [epoch_of c tid] is [tid] at its current clock in [c]. *)

val epoch_tid : epoch -> int
val epoch_clock : epoch -> int
val epoch_leq : epoch -> t -> bool
(** [epoch_leq e c]: the access stamped [e] happens-before a thread
    whose clock is [c] (true for [none]). *)

val is_none : epoch -> bool
