module Rng = Altune_prng.Rng

type report = {
  scenario : string;
  expect : Scenarios.expect;
  schedules_run : int;
  distinct : int;
  pruned : int;
  exhausted : bool;
  races : Racecheck.race list;
  deadlocks : int;
  violations : string list;
  wall_seconds : float;
  steps_total : int;
  passed : bool;
}

let expect_to_string = function
  | Scenarios.Clean -> "clean"
  | Scenarios.Race -> "race-fixture"
  | Scenarios.Deadlock -> "deadlock-fixture"

let render_deadlock (d : Sched.deadlock) =
  String.concat "; "
    (List.map
       (fun (e : Sched.deadlock_entry) ->
         Printf.sprintf "thread %d blocked on %s" e.Sched.d_tid
           e.Sched.d_pending)
       d)

let run_scenario ?(budget = 1200) ?(seed = 42) ?(max_steps = 200_000)
    (sc : Scenarios.t) =
  let t0 = Unix.gettimeofday () in
  let hashes : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  let race_seen : (string * string * string * string, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let races_rev = ref [] in
  let schedules_run = ref 0 in
  let pruned = ref 0 in
  let deadlocks = ref 0 in
  let deadlock_sample = ref None in
  let steps_total = ref 0 in
  let exhausted = ref false in
  let reference = ref None in
  let violations_rev = ref [] in
  let violation_seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let add_violation msg =
    if not (Hashtbl.mem violation_seen msg) then begin
      Hashtbl.replace violation_seen msg ();
      if Hashtbl.length violation_seen <= 8 then
        violations_rev := msg :: !violations_rev
    end
  in
  let typical_steps = ref 0 in
  let one ~policy =
    let fp = ref None in
    let body () = fp := Some (sc.Scenarios.run ()) in
    let o = Sched.run ~max_steps ~policy body in
    steps_total := !steps_total + o.Sched.steps;
    if !typical_steps = 0 then typical_steps := o.Sched.steps;
    if o.Sched.pruned then incr pruned
    else begin
      incr schedules_run;
      Hashtbl.replace hashes o.Sched.trace_hash ();
      List.iter
        (fun (r : Racecheck.race) ->
          let key =
            ( r.Racecheck.r_loc,
              r.Racecheck.r_kind,
              r.Racecheck.r_first.Racecheck.a_site,
              r.Racecheck.r_second.Racecheck.a_site )
          in
          if not (Hashtbl.mem race_seen key) then begin
            Hashtbl.replace race_seen key ();
            races_rev := r :: !races_rev
          end)
        o.Sched.races;
      (match o.Sched.deadlock with
      | Some d ->
          incr deadlocks;
          if !deadlock_sample = None then
            deadlock_sample := Some (render_deadlock d)
      | None -> (
          (* Only meaningful when the schedule ran to completion. *)
          match (o.Sched.result, !fp) with
          | Ok (), Some f when sc.Scenarios.expect = Scenarios.Clean -> (
              match !reference with
              | None -> reference := Some f
              | Some r ->
                  if r <> f then
                    add_violation
                      (Printf.sprintf
                         "fingerprint diverges across schedules:\n\
                         \  reference: %s\n\
                         \  observed:  %s" r f))
          | Ok (), _ -> ()
          | Error e, _ ->
              if sc.Scenarios.expect = Scenarios.Clean then
                add_violation
                  (Printf.sprintf "scenario body failed: %s"
                     (Printexc.to_string e))))
    end
  in
  let runs_done () = !schedules_run + !pruned in
  (* Phase 1: exhaustive enumeration for small scenarios. *)
  if sc.Scenarios.small then begin
    let d = Policy.Dfs.create () in
    let continue = ref true in
    while !continue && runs_done () < budget do
      match Policy.Dfs.next d with
      | None -> continue := false
      | Some policy ->
          one ~policy;
          Policy.Dfs.finish d
    done;
    exhausted := Policy.Dfs.complete d
  end;
  (* Phase 2: seeded randomized exploration for the remaining budget —
     half PCT-style priority schedules, half uniform random.  Skipped
     when DFS already enumerated the whole space: random replays could
     only repeat equivalent interleavings. *)
  let remaining = if !exhausted then 0 else max 0 (budget - runs_done ()) in
  let n_pct = remaining / 2 in
  let hint = max 32 !typical_steps in
  for i = 0 to n_pct - 1 do
    let rng =
      Rng.create
        ~seed:(Rng.derive ~seed [ S "concheck"; S sc.Scenarios.name; S "pct"; I i ])
    in
    one ~policy:(Policy.pct ~rng ~depth:3 ~length_hint:hint)
  done;
  for i = 0 to remaining - n_pct - 1 do
    let rng =
      Rng.create
        ~seed:
          (Rng.derive ~seed [ S "concheck"; S sc.Scenarios.name; S "rand"; I i ])
    in
    one ~policy:(Policy.random ~rng)
  done;
  (* Expectation checks. *)
  let races = List.rev !races_rev in
  (match sc.Scenarios.expect with
  | Scenarios.Clean ->
      List.iter
        (fun r -> add_violation ("data race: " ^ Racecheck.race_to_string r))
        races;
      (match !deadlock_sample with
      | Some d ->
          add_violation
            (Printf.sprintf "deadlock in %d/%d schedules: %s" !deadlocks
               !schedules_run d)
      | None -> ());
      if !reference = None && !schedules_run > 0 then
        add_violation "no schedule ran the scenario to completion"
  | Scenarios.Race ->
      if races = [] then
        add_violation "fixture expected a data race; none was detected"
  | Scenarios.Deadlock ->
      if !deadlocks = 0 then
        add_violation "fixture expected a deadlock; none was reached");
  let violations = List.rev !violations_rev in
  {
    scenario = sc.Scenarios.name;
    expect = sc.Scenarios.expect;
    schedules_run = !schedules_run;
    distinct = Hashtbl.length hashes;
    pruned = !pruned;
    exhausted = !exhausted;
    races;
    deadlocks = !deadlocks;
    violations;
    wall_seconds = Unix.gettimeofday () -. t0;
    steps_total = !steps_total;
    passed = violations = [];
  }

let summary_line r =
  Printf.sprintf "%-16s %s  %5d schedules (%d distinct%s%s), %d steps, %.2fs"
    r.scenario
    (if r.passed then "PASS" else "FAIL")
    r.schedules_run r.distinct
    (if r.pruned > 0 then Printf.sprintf ", %d pruned" r.pruned else "")
    (if r.exhausted then ", exhausted" else "")
    r.steps_total r.wall_seconds

let report_to_string r =
  let b = Buffer.create 512 in
  Buffer.add_string b (summary_line r);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "  expectation: %s; deadlocked schedules: %d\n"
       (expect_to_string r.expect) r.deadlocks);
  List.iter
    (fun race ->
      Buffer.add_string b ("  race: " ^ Racecheck.race_to_string race);
      Buffer.add_char b '\n')
    r.races;
  List.iter
    (fun v ->
      Buffer.add_string b ("  violation: " ^ v);
      Buffer.add_char b '\n')
    r.violations;
  Buffer.contents b
