type access = { a_tid : int; a_site : string }

type race = {
  r_loc : string;
  r_kind : string;
  r_first : access;
  r_second : access;
}

let race_to_string r =
  Printf.sprintf "%s race on %s: [thread %d] %s  <->  [thread %d] %s" r.r_kind
    r.r_loc r.r_first.a_tid r.r_first.a_site r.r_second.a_tid r.r_second.a_site

(* Per-cell state: the last write as an epoch, reads as an epoch until
   two reads are concurrent, then promoted to a per-thread table (the
   FastTrack read-share representation). *)
type rstate =
  | R_none
  | R_epoch of Vclock.epoch * access
  | R_vec of (int, int * access) Hashtbl.t  (* tid -> (clock, site) *)

type vstate = {
  mutable w : Vclock.epoch;
  mutable w_access : access option;
  mutable r : rstate;
}

type t = {
  threads : (int, Vclock.t) Hashtbl.t;
  locks : (int, Vclock.t) Hashtbl.t;
  vars : (int, vstate) Hashtbl.t;
  mutable races_rev : race list;
  seen : (string * string * string * string, unit) Hashtbl.t;
}

let create () =
  {
    threads = Hashtbl.create 16;
    locks = Hashtbl.create 16;
    vars = Hashtbl.create 64;
    races_rev = [];
    seen = Hashtbl.create 16;
  }

let clock_of t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some c -> c
  | None ->
      let c = Vclock.create () in
      Vclock.set c tid 1;
      Hashtbl.replace t.threads tid c;
      c

let lock_clock t l =
  match Hashtbl.find_opt t.locks l with
  | Some c -> c
  | None ->
      let c = Vclock.create () in
      Hashtbl.replace t.locks l c;
      c

let var t loc =
  match Hashtbl.find_opt t.vars loc with
  | Some v -> v
  | None ->
      let v = { w = Vclock.none; w_access = None; r = R_none } in
      Hashtbl.replace t.vars loc v;
      v

let report t ~name ~kind ~first ~second =
  let key = (name, kind, first.a_site, second.a_site) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.races_rev <-
      { r_loc = name; r_kind = kind; r_first = first; r_second = second }
      :: t.races_rev
  end

let races t = List.rev t.races_rev

let start_thread t ~tid = ignore (clock_of t tid)

let fork t ~parent ~child =
  let cp = clock_of t parent in
  let cc = clock_of t child in
  Vclock.join ~into:cc cp;
  Vclock.incr cp parent

let join t ~parent ~child =
  let cp = clock_of t parent in
  let cc = clock_of t child in
  Vclock.join ~into:cp cc;
  Vclock.incr cc child

let acquire t ~tid ~lock =
  Vclock.join ~into:(clock_of t tid) (lock_clock t lock)

let release t ~tid ~lock =
  let c = clock_of t tid in
  Hashtbl.replace t.locks lock (Vclock.copy c);
  Vclock.incr c tid

let write t ~tid ~loc ~name ~site =
  let c = clock_of t tid in
  let v = var t loc in
  let me = { a_tid = tid; a_site = site } in
  (* Write-write check against the last write... *)
  if not (Vclock.epoch_leq v.w c) then
    report t ~name ~kind:"write-write"
      ~first:(Option.value v.w_access ~default:me)
      ~second:me;
  (* ...and read-write against every read not ordered before us. *)
  (match v.r with
  | R_none -> ()
  | R_epoch (e, a) ->
      if not (Vclock.epoch_leq e c) then
        report t ~name ~kind:"read-write" ~first:a ~second:me
  | R_vec tbl ->
      Hashtbl.iter
        (fun rtid (clk, a) ->
          if clk > Vclock.get c rtid then
            report t ~name ~kind:"read-write" ~first:a ~second:me)
        tbl);
  v.w <- Vclock.epoch_of c tid;
  v.w_access <- Some me;
  (* The reads the write was checked against are now ordered before any
     later access that is ordered after this write; conflating them into
     the write epoch keeps the state compact (a genuinely concurrent
     earlier read was reported above before being dropped). *)
  v.r <- R_none

let read t ~tid ~loc ~name ~site =
  let c = clock_of t tid in
  let v = var t loc in
  let me = { a_tid = tid; a_site = site } in
  if not (Vclock.epoch_leq v.w c) then
    report t ~name ~kind:"write-read"
      ~first:(Option.value v.w_access ~default:me)
      ~second:me;
  let e = Vclock.epoch_of c tid in
  match v.r with
  | R_none -> v.r <- R_epoch (e, me)
  | R_epoch (old, _) when Vclock.epoch_tid old = tid ->
      (* Same thread reading again: its new epoch supersedes. *)
      v.r <- R_epoch (e, me)
  | R_epoch (old, _) when Vclock.epoch_leq old c ->
      (* The previous read happens-before us: still one exclusive
         reader's epoch. *)
      v.r <- R_epoch (e, me)
  | R_epoch (old, a) ->
      (* Two concurrent readers: promote to the read-share vector. *)
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace tbl (Vclock.epoch_tid old) (Vclock.epoch_clock old, a);
      Hashtbl.replace tbl tid (Vclock.epoch_clock e, me);
      v.r <- R_vec tbl
  | R_vec tbl -> Hashtbl.replace tbl tid (Vclock.epoch_clock e, me)
