module Sync = Altune_exec.Sync
module Pool = Altune_exec.Pool
module Memo = Altune_exec.Memo
module Fault = Altune_exec.Fault
module Metrics = Altune_obs.Metrics

type expect = Clean | Race | Deadlock

type t = {
  name : string;
  descr : string;
  expect : expect;
  small : bool;
  run : unit -> string;
}

(* Fingerprints must be schedule-invariant for [Clean] scenarios: they
   include results, canonicalized (sorted) event streams and the
   counter deltas that the engine promises are schedule-free — and
   exclude anything legitimately schedule-dependent (wall times, event
   arrival order, steal counts, memo wait counts). *)

let counters names f =
  let cs = List.map Metrics.counter names in
  let before = List.map Metrics.counter_value cs in
  let v = f () in
  let deltas = List.map2 (fun c b -> Metrics.counter_value c - b) cs before in
  (v, List.map2 (fun n d -> Printf.sprintf "%s=%+d" n d) names deltas)

let event_to_string = function
  | Pool.Task_started { index; label } -> Printf.sprintf "start %d %s" index label
  | Pool.Task_finished { index; label; _ } ->
      Printf.sprintf "finish %d %s" index label

(* A thread spawned directly on the shim, with its outcome slot
   instrumented so the checker sees the join edge ordering it. *)
let spawn_collect site f =
  let slot = ref None in
  let loc = Sync.loc (site ^ ".slot") in
  let h =
    Sync.spawn (fun () ->
        let v = f () in
        Sync.write loc ~site:(site ^ ": store");
        slot := Some v)
  in
  fun () ->
    Sync.join h;
    Sync.read loc ~site:(site ^ ": read-back");
    Option.get !slot

(* --- Pool scenarios ---------------------------------------------------- *)

let pool_map ~jobs =
  {
    name = Printf.sprintf "pool_map_j%d" jobs;
    descr =
      Printf.sprintf
        "Pool.mapi of 5 tasks at jobs=%d with progress events: results and \
         the event multiset are schedule-invariant"
        jobs;
    expect = Clean;
    small = false;
    run =
      (fun () ->
        let events = ref [] in
        let ev_loc = Sync.loc "scenario.events" in
        let on_event e =
          (* The pool serializes this callback under [event_lock]; the
             instrumentation proves it, instead of trusting it. *)
          Sync.write ev_loc ~site:"pool_map: event append";
          events := event_to_string e :: !events
        in
        let results, deltas =
          counters [ "pool.tasks" ] (fun () ->
              Pool.with_pool ~on_event ~jobs (fun p ->
                  Pool.mapi
                    ~label:(fun i -> Printf.sprintf "t%d" i)
                    p
                    (fun i x -> (10 * x) + i)
                    [ 3; 1; 4; 1; 5 ]))
        in
        Sync.read ev_loc ~site:"pool_map: event read-back";
        let events = List.sort compare !events in
        Printf.sprintf "results=%s events=[%s] %s"
          (String.concat ";" (List.map string_of_int results))
          (String.concat "," events)
          (String.concat " " deltas));
  }

let pool_nested =
  {
    name = "pool_nested";
    descr =
      "nested fan-out (a task maps again on the same pool): the helping \
       scheduler must neither deadlock nor reorder results";
    expect = Clean;
    small = false;
    run =
      (fun () ->
        let grids =
          Pool.with_pool ~jobs:2 (fun p ->
              Pool.map p
                (fun row ->
                  Pool.map p (fun col -> (10 * row) + col) [ 0; 1 ])
                [ 1; 2 ])
        in
        Printf.sprintf "grids=%s"
          (String.concat ";"
             (List.map
                (fun g -> String.concat "," (List.map string_of_int g))
                grids)));
  }

exception Boom of int

let pool_exception =
  {
    name = "pool_exception";
    descr =
      "two tasks of five raise: every task still runs and the \
       lowest-indexed failure is re-raised on every schedule";
    expect = Clean;
    small = false;
    run =
      (fun () ->
        let ran = Atomic.make 0 in
        match
          Pool.with_pool ~jobs:3 (fun p ->
              Pool.map p
                (fun i ->
                  Atomic.incr ran;
                  if i = 1 || i = 3 then raise (Boom i);
                  i)
                [ 0; 1; 2; 3; 4 ])
        with
        | _ -> "no exception (bug)"
        | exception Boom i ->
            Printf.sprintf "first-failure=%d ran=%d" i (Atomic.get ran));
  }

(* --- Memo scenarios ---------------------------------------------------- *)

let memo_share =
  {
    name = "memo_share";
    descr =
      "three threads request one key: the computation runs exactly once \
       (1 miss, 2 hits) and everyone shares the value";
    expect = Clean;
    small = true;
    run =
      (fun () ->
        let m : (string, int) Memo.t = Memo.create ~name:"cc.share" () in
        let calls = ref 0 in
        let calls_loc = Sync.loc "cc.share.calls" in
        let compute () =
          (* Instrumented: if compute-once ever breaks, two computers
             racing on this counter is the first thing the checker sees. *)
          Sync.read calls_loc ~site:"memo_share: calls read";
          Sync.write calls_loc ~site:"memo_share: calls increment";
          incr calls;
          42
        in
        let joins =
          List.init 3 (fun i ->
              spawn_collect
                (Printf.sprintf "memo_share.t%d" i)
                (fun () -> Memo.find_or_compute m "k" compute))
        in
        let (vs, deltas) =
          counters [ "cc.share.hits"; "cc.share.misses" ] (fun () ->
              List.map (fun j -> j ()) joins)
        in
        Sync.read calls_loc ~site:"memo_share: calls read-back";
        Printf.sprintf "values=%s calls=%d %s"
          (String.concat ";" (List.map string_of_int vs))
          !calls
          (String.concat " " deltas));
  }

let memo_retry =
  {
    name = "memo_retry";
    descr =
      "the first computation of a key fails: the entry is dropped, \
       exactly one other caller recomputes, the third shares the value";
    expect = Clean;
    small = true;
    run =
      (fun () ->
        let m : (string, int) Memo.t = Memo.create ~name:"cc.retry" () in
        let attempts = ref 0 in
        let att_loc = Sync.loc "cc.retry.attempts" in
        let compute () =
          Sync.read att_loc ~site:"memo_retry: attempts read";
          Sync.write att_loc ~site:"memo_retry: attempts increment";
          incr attempts;
          if !attempts = 1 then failwith "flaky" else 7
        in
        let joins =
          List.init 3 (fun i ->
              spawn_collect
                (Printf.sprintf "memo_retry.t%d" i)
                (fun () ->
                  match Memo.find_or_compute m "k" compute with
                  | v -> Printf.sprintf "ok %d" v
                  | exception Failure _ -> "failed"))
        in
        let (vs, deltas) =
          counters [ "cc.retry.hits"; "cc.retry.misses" ] (fun () ->
              List.map (fun j -> j ()) joins)
        in
        Printf.sprintf "outcomes=%s attempts=%d %s"
          (String.concat ";" (List.sort compare vs))
          !attempts
          (String.concat " " deltas));
  }

let memo_clear =
  {
    name = "memo_clear";
    descr =
      "Memo.clear races an in-flight computation and a waiter: the \
       computer and the waiter still get the value, nothing deadlocks";
    expect = Clean;
    small = true;
    run =
      (fun () ->
        let m : (string, int) Memo.t = Memo.create ~name:"cc.clear" () in
        let pad = Sync.loc "cc.clear.pad" in
        let compute () =
          (* A few instrumented touches so the scheduler can interleave
             the clear inside the computation window. *)
          Sync.write pad ~site:"memo_clear: compute step 1";
          Sync.write pad ~site:"memo_clear: compute step 2";
          9
        in
        let j1 =
          spawn_collect "memo_clear.t1" (fun () ->
              Memo.find_or_compute m "a" compute)
        in
        let j2 =
          spawn_collect "memo_clear.t2" (fun () ->
              Memo.find_or_compute m "a" compute)
        in
        Memo.clear m;
        let v1 = j1 () and v2 = j2 () in
        (* Presence of "a" afterwards is legitimately schedule-dependent
           (cleared before or after publication); the values are not. *)
        Printf.sprintf "values=%d;%d" v1 v2);
  }

(* --- Fault-injection under the pool ------------------------------------ *)

let fault_retry =
  {
    name = "fault_retry";
    descr =
      "pool tasks drawing deterministic fault verdicts with retry: \
       verdicts are a pure function of (seed, key, attempt), so the \
       retry trace is schedule-invariant";
    expect = Clean;
    small = false;
    run =
      (fun () ->
        let spec =
          match Fault.of_string "crash=0.4,max_retries=5" with
          | Ok s -> s
          | Error e -> failwith e
        in
        let injector = Fault.create spec ~seed:11 in
        let outcomes =
          Pool.with_pool ~jobs:2 (fun p ->
              Pool.map p
                (fun i ->
                  let key = Printf.sprintf "task%d" i in
                  let rec attempt n =
                    if n > spec.Fault.max_retries then "dead"
                    else
                      match Fault.draw injector ~key ~attempt:n with
                      | Fault.Ok -> Printf.sprintf "ok@%d" n
                      | Fault.Crash -> attempt (n + 1)
                      | Fault.Timeout _ -> attempt (n + 1)
                      | Fault.Corrupt -> attempt (n + 1)
                  in
                  attempt 0)
                [ 0; 1; 2; 3 ])
        in
        Printf.sprintf "outcomes=%s" (String.concat ";" outcomes));
  }

(* --- Minimal lock demos (exhaustively enumerable) ----------------------- *)

let locked_counter =
  {
    name = "locked_counter";
    descr =
      "two threads increment a shared counter under one mutex: the \
       checker proves mutual exclusion over the whole interleaving space";
    expect = Clean;
    small = true;
    run =
      (fun () ->
        let m = Sync.mutex () in
        let n = ref 0 in
        let loc = Sync.loc "demo.counter" in
        let incr_once tag () =
          Sync.lock m;
          Sync.read loc ~site:(tag ^ ": load");
          let v = !n in
          Sync.write loc ~site:(tag ^ ": store");
          n := v + 1;
          Sync.unlock m
        in
        let j1 = spawn_collect "locked.t1" (incr_once "locked.t1") in
        let j2 = spawn_collect "locked.t2" (incr_once "locked.t2") in
        j1 ();
        j2 ();
        Sync.read loc ~site:"locked: final read";
        Printf.sprintf "n=%d" !n);
  }

(* --- Deliberately-broken fixtures (detector validation) ----------------- *)

let broken_memo =
  {
    name = "broken_memo";
    descr =
      "a memo with its lock removed: lookups and inserts race on the \
       table — the detector must name both access sites";
    expect = Race;
    small = true;
    run =
      (fun () ->
        let tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
        let loc = Sync.loc "broken_memo.tbl" in
        let get_or_compute k =
          Sync.read loc ~site:"broken_memo: unlocked lookup";
          match Hashtbl.find_opt tbl k with
          | Some v -> v
          | None ->
              let v = 42 in
              Sync.write loc ~site:"broken_memo: unlocked insert";
              Hashtbl.replace tbl k v;
              v
        in
        let joins =
          List.init 2 (fun i ->
              spawn_collect
                (Printf.sprintf "broken_memo.t%d" i)
                (fun () -> get_or_compute "k"))
        in
        let vs = List.map (fun j -> j ()) joins in
        Printf.sprintf "values=%s"
          (String.concat ";" (List.map string_of_int vs)));
  }

let broken_counter =
  {
    name = "broken_counter";
    descr = "the locked_counter demo with the mutex deleted: a textbook race";
    expect = Race;
    small = true;
    run =
      (fun () ->
        let n = ref 0 in
        let loc = Sync.loc "broken.counter" in
        let incr_once tag () =
          Sync.read loc ~site:(tag ^ ": unlocked load");
          let v = !n in
          Sync.write loc ~site:(tag ^ ": unlocked store");
          n := v + 1
        in
        let j1 = spawn_collect "broken.t1" (incr_once "broken.t1") in
        let j2 = spawn_collect "broken.t2" (incr_once "broken.t2") in
        j1 ();
        j2 ();
        Printf.sprintf "n=%d" !n);
  }

let broken_wakeup =
  {
    name = "broken_wakeup";
    descr =
      "a producer sets the flag but forgets the broadcast: schedules \
       where the consumer waits first are lost wakeups — the explorer \
       must find the global blocked state";
    expect = Deadlock;
    small = true;
    run =
      (fun () ->
        let m = Sync.mutex () in
        let c = Sync.cond () in
        let flag = ref false in
        let loc = Sync.loc "wakeup.flag" in
        let producer =
          Sync.spawn (fun () ->
              Sync.lock m;
              Sync.write loc ~site:"broken_wakeup: set flag";
              flag := true;
              (* Missing: Sync.broadcast c *)
              Sync.unlock m)
        in
        Sync.lock m;
        let rec await () =
          Sync.read loc ~site:"broken_wakeup: check flag";
          if not !flag then begin
            Sync.wait c m;
            await ()
          end
        in
        await ();
        Sync.unlock m;
        Sync.join producer;
        "woken");
  }

let all =
  [
    pool_map ~jobs:3;
    pool_nested;
    pool_exception;
    memo_share;
    memo_retry;
    memo_clear;
    fault_retry;
    locked_counter;
    broken_memo;
    broken_counter;
    broken_wakeup;
  ]

let find name = List.find_opt (fun s -> s.name = name) all
