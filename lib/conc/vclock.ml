type t = { mutable c : int array }

let create () = { c = [||] }

let of_list l = { c = Array.of_list l }

let to_list t =
  let n = ref (Array.length t.c) in
  while !n > 0 && t.c.(!n - 1) = 0 do decr n done;
  Array.to_list (Array.sub t.c 0 !n)

let get t i = if i < Array.length t.c then t.c.(i) else 0

let grow t n =
  if n > Array.length t.c then begin
    let c = Array.make (max n (2 * Array.length t.c)) 0 in
    Array.blit t.c 0 c 0 (Array.length t.c);
    t.c <- c
  end

let set t i v =
  grow t (i + 1);
  t.c.(i) <- v

let incr t i = set t i (get t i + 1)

let copy t = { c = Array.copy t.c }

let join ~into other =
  grow into (Array.length other.c);
  Array.iteri (fun i v -> if v > into.c.(i) then into.c.(i) <- v) other.c

let leq a b =
  let ok = ref true in
  Array.iteri (fun i v -> if v > get b i then ok := false) a.c;
  !ok

let compare_po a b =
  match (leq a b, leq b a) with
  | true, true -> `Equal
  | true, false -> `Less
  | false, true -> `Greater
  | false, false -> `Concurrent

(* --- Epochs ------------------------------------------------------------ *)

type epoch = int

let tid_bits = 16
let tid_mask = (1 lsl tid_bits) - 1
let none = 0
let is_none e = e = 0

let epoch ~tid ~clock =
  if tid < 0 || tid > tid_mask then invalid_arg "Vclock.epoch: tid out of range";
  if clock < 1 then invalid_arg "Vclock.epoch: clock must be >= 1";
  (clock lsl tid_bits) lor tid

let epoch_of t tid = epoch ~tid ~clock:(max 1 (get t tid))
let epoch_tid e = e land tid_mask
let epoch_clock e = e lsr tid_bits
let epoch_leq e c = is_none e || epoch_clock e <= get c (epoch_tid e)
