(** FastTrack-style vector-clock data-race detector (Flanagan & Freund,
    PLDI 2009) over the instrumented shared accesses that
    [Altune_exec.Sync] routes into the model-checking scheduler.

    The detector maintains a happens-before relation from the sync
    events it is fed (fork/join, lock acquire/release — condition waits
    are a release plus a reacquire) and checks every instrumented
    read/write against the last conflicting accesses of its cell.  Last
    accesses are kept as compact epochs and promoted to a full vector
    only when reads are genuinely concurrent (the read-share case), so
    the common paths are O(1).

    A race report names the cell and {e both} access sites, which is
    what makes a report actionable: the fix is at one of the two. *)

type access = {
  a_tid : int;
  a_site : string;  (** Source site, e.g. ["memo.find_or_compute: publish"]. *)
}

type race = {
  r_loc : string;  (** Cell name, e.g. ["memo.tbl"]. *)
  r_kind : string;  (** ["write-write"], ["read-write"] or ["write-read"]. *)
  r_first : access;
  r_second : access;  (** The access that exposed the race. *)
}

val race_to_string : race -> string

type t

val create : unit -> t

val start_thread : t -> tid:int -> unit
(** Root threads only (the main thread); spawned threads are clocked by
    {!fork}. *)

val fork : t -> parent:int -> child:int -> unit
val join : t -> parent:int -> child:int -> unit
val acquire : t -> tid:int -> lock:int -> unit
val release : t -> tid:int -> lock:int -> unit

val read : t -> tid:int -> loc:int -> name:string -> site:string -> unit
val write : t -> tid:int -> loc:int -> name:string -> site:string -> unit
(** Feed one access.  Races are recorded, not raised, so one schedule
    can surface several. *)

val races : t -> race list
(** All races seen, in detection order, deduplicated by
    (cell, site pair, kind). *)

val clock_of : t -> int -> Vclock.t
(** The thread's current clock (tests). *)
