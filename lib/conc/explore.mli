(** The concheck driver: run a scenario under many schedules and check
    its invariants.

    Exploration mixes policies: for [small] scenarios an exhaustive DFS
    with sleep-set pruning runs first (and may {e prove} the bounded
    space clean); the remaining budget is split between PCT-style
    priority schedules and uniform random ones, all derived
    deterministically from the seed, so a report is reproducible with
    [--seed].

    Checked invariants, per scenario expectation:
    - [Clean]: no data race on any schedule, no deadlock, the scenario
      body never raises, and the fingerprint of every schedule equals
      the first schedule's (results, event multisets and counter deltas
      are schedule-invariant).
    - [Race]: the detector must report at least one race (with both
      access sites) — this validates the detector, not the engine.
    - [Deadlock]: at least one explored schedule must end in a global
      blocked state. *)

type report = {
  scenario : string;
  expect : Scenarios.expect;
  schedules_run : int;  (** completed (non-pruned) runs *)
  distinct : int;  (** distinct interleavings by trace hash *)
  pruned : int;
  exhausted : bool;  (** DFS enumerated the whole bounded space *)
  races : Racecheck.race list;  (** deduplicated across schedules *)
  deadlocks : int;  (** schedules ending in a global blocked state *)
  violations : string list;  (** human-readable; empty = pass *)
  wall_seconds : float;
  steps_total : int;
  passed : bool;
}

val run_scenario :
  ?budget:int -> ?seed:int -> ?max_steps:int -> Scenarios.t -> report
(** [budget] (default 1200) is the target number of schedules; [seed]
    (default 42) drives every policy. *)

val report_to_string : report -> string
(** Multi-line human-readable rendering, including both access sites of
    every race. *)

val summary_line : report -> string
(** One-line [PASS]/[FAIL] rendering for terminal output. *)
