module Rng = Altune_prng.Rng

type t = step:int -> enabled:int list -> pending:(int -> Sched.op) -> int

let random ~rng : t =
 fun ~step:_ ~enabled ~pending:_ ->
  List.nth enabled (Rng.int rng (List.length enabled))

let pct ~rng ~depth ~length_hint : t =
  let priorities : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* High random base priorities; change points demote to 1..depth-1,
     below every base priority, in the order the points are hit. *)
  let change_points =
    List.init (max 0 (depth - 1)) (fun _ -> Rng.int rng (max 1 length_hint))
    |> List.sort_uniq compare
  in
  let remaining = ref change_points in
  let next_demotion = ref 1 in
  let priority tid =
    match Hashtbl.find_opt priorities tid with
    | Some p -> p
    | None ->
        let p = depth + Rng.int rng 1_000_000 in
        Hashtbl.replace priorities tid p;
        p
  in
  fun ~step ~enabled ~pending:_ ->
    let best =
      List.fold_left
        (fun acc tid ->
          match acc with
          | None -> Some tid
          | Some b -> if priority tid > priority b then Some tid else acc)
        None enabled
    in
    let chosen = Option.get best in
    (match !remaining with
    | p :: rest when step >= p ->
        remaining := rest;
        Hashtbl.replace priorities chosen !next_demotion;
        incr next_demotion
    | _ -> ());
    chosen

module Dfs = struct
  (* One node of the explored prefix.  [f_sleep] is the sleep set the
     node inherited; [f_tried] the choices already fully explored here.
     The next candidate at a node is the first enabled thread in
     neither. *)
  type frame = {
    f_enabled : int list;
    f_pend : (int * Sched.op) list;
    f_sleep : int list;
    mutable f_chosen : int;
    mutable f_tried : int list;
  }

  type dfs = {
    mutable path : frame list;  (* root first *)
    mutable started : bool;
    mutable complete : bool;
  }

  let create () = { path = []; started = false; complete = false }
  let complete d = d.complete

  let pend_of frame tid =
    match List.assoc_opt tid frame.f_pend with
    | Some op -> op
    | None -> Sched.O_start

  (* Sleep set a child inherits after taking [chosen] at [frame]:
     threads already explored or asleep here whose pending operation
     commutes with the branch taken. *)
  let child_sleep frame =
    List.filter
      (fun s ->
        Sched.independent (pend_of frame s) (pend_of frame frame.f_chosen))
      (frame.f_sleep @ frame.f_tried)

  let candidates ~enabled ~sleep = List.filter (fun t -> not (List.mem t sleep)) enabled

  let next d =
    if d.complete then None
    else begin
      let depth = ref 0 in
      let policy : t =
       fun ~step:_ ~enabled ~pending ->
        let i = !depth in
        incr depth;
        match List.nth_opt d.path i with
        | Some frame ->
            (* Replaying the committed prefix: the scenario is
               deterministic, so the same state must recur. *)
            if frame.f_enabled <> enabled then
              invalid_arg
                "Policy.Dfs: scenario is not deterministic (enabled set \
                 changed under replay)";
            frame.f_chosen
        | None ->
            let parent_sleep =
              if i = 0 then []
              else
                match List.nth_opt d.path (i - 1) with
                | Some parent -> child_sleep parent
                | None -> []
            in
            (match candidates ~enabled ~sleep:parent_sleep with
            | [] ->
                (* Everything enabled is asleep: any continuation is
                   equivalent to an already-explored schedule. *)
                raise Sched.Prune
            | c :: _ ->
                let frame =
                  {
                    f_enabled = enabled;
                    f_pend = List.map (fun t -> (t, pending t)) enabled;
                    f_sleep = parent_sleep;
                    f_chosen = c;
                    f_tried = [];
                  }
                in
                d.path <- d.path @ [ frame ];
                c)
      in
      d.started <- true;
      Some policy
    end

  let finish d =
    (* Backtrack: drop exhausted suffix frames, advance the deepest
       frame that still has an untried, non-sleeping choice. *)
    let rec back = function
      | [] ->
          d.path <- [];
          d.complete <- true
      | frame :: above ->
          let sleep = frame.f_sleep @ frame.f_tried @ [ frame.f_chosen ] in
          (match candidates ~enabled:frame.f_enabled ~sleep with
          | [] -> back above
          | c :: _ ->
              frame.f_tried <- frame.f_chosen :: frame.f_tried;
              frame.f_chosen <- c;
              d.path <- List.rev (frame :: above))
    in
    back (List.rev d.path)
end
