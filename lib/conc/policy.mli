(** Schedule-selection policies for {!Sched.run}.

    All policies are deterministic functions of their seed, so a failing
    schedule is reproduced by rerunning with the same seed — which is
    what makes a concheck failure debuggable rather than a flake. *)

type t = step:int -> enabled:int list -> pending:(int -> Sched.op) -> int

val random : rng:Altune_prng.Rng.t -> t
(** Uniform choice among the enabled threads at every point. *)

val pct : rng:Altune_prng.Rng.t -> depth:int -> length_hint:int -> t
(** PCT-style priority schedule (Burckhardt et al., ASPLOS 2010): each
    thread gets a random fixed priority on first sight, the
    highest-priority enabled thread always runs, and [depth - 1]
    priority-change points at random step indices in
    [\[0, length_hint)] demote the running thread — biasing exploration
    toward schedules with few, adversarially-placed preemptions, which
    is where ordering bugs concentrate. *)

(** Exhaustive DFS over scheduling choices with sleep-set pruning
    (Godefroid): after a choice is fully explored at a node, it joins
    the node's sleep set; descendants drop sleeping threads whose
    pending operations are {!Sched.independent} of the branch taken, so
    equivalent interleavings are enumerated once.  Replay-based: each
    schedule re-runs the scenario with a forced choice prefix. *)
module Dfs : sig
  type dfs

  val create : unit -> dfs

  val next : dfs -> t option
  (** Policy for the next schedule, or [None] when the space is
      exhausted.  Run it to completion, then call {!finish}. *)

  val finish : dfs -> unit
  (** Advance to the next unexplored branch (backtracking). *)

  val complete : dfs -> bool
  (** Whether {!next} returned [None] because every non-equivalent
      schedule was explored (a bounded proof, not a budget stop). *)
end
