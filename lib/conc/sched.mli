(** Cooperative model-checking scheduler.

    {!run} executes a scenario body as virtual thread 0 under
    [Altune_exec.Sync.with_ops]: every synchronization operation and
    instrumented shared access in the code under test becomes an effect,
    the scheduler regains control there, and a policy callback decides
    which enabled thread performs its pending operation next — so one
    real domain deterministically explores interleavings that the OS
    scheduler may never produce.  Each executed operation is fed to a
    {!Racecheck} detector, and a global state where live threads exist
    but none is enabled is reported as a deadlock (which is also how
    lost wakeups surface: the forgotten signal leaves waiters asleep
    forever).

    Semantics mirror the real primitives: locks block until free,
    [wait] atomically releases its mutex and sleeps until a broadcast or
    signal, then reacquires; [signal] wakes the lowest-id sleeper
    (the engine under test only uses [broadcast], where the choice
    cannot matter); [join] blocks until the target finishes and
    re-raises its exception, as [Domain.join] does. *)

(** A thread's pending operation — what it {e will} do when next
    scheduled.  Exposed so policies can reason about independence
    (sleep sets) and render deadlock states. *)
type op =
  | O_start  (** Begin running the thread body. *)
  | O_lock of int
  | O_unlock of int
  | O_wait of int * int  (** cond, mutex: release and go to sleep. *)
  | O_reacquire of int  (** Mutex reacquisition after a wakeup. *)
  | O_signal of int
  | O_broadcast of int
  | O_spawn
  | O_join of int
  | O_read of int * string  (** loc, site. *)
  | O_write of int * string

val op_to_string : op -> string

val independent : op -> op -> bool
(** Whether two pending operations of {e different} threads commute
    (touch no common lock/condition/cell; reads of one cell commute,
    anything involving spawn/join conservatively does not). *)

exception Prune
(** A policy may raise this from [choose] to cut the current run short
    (sleep-set pruning: every continuation of this prefix is known to
    be equivalent to an already-explored schedule). *)

type deadlock_entry = { d_tid : int; d_pending : string }

type deadlock = deadlock_entry list
(** One entry per live thread, with its blocked operation. *)

type outcome = {
  result : (unit, exn) Result.t;
      (** Thread 0's completion ([Error Prune] when pruned). *)
  races : Racecheck.race list;
  deadlock : deadlock option;
  steps : int;
  trace_hash : int;
      (** Identity of the executed interleaving (distinct-schedule
          counting). *)
  pruned : bool;
}

val run :
  ?max_steps:int ->
  policy:(step:int -> enabled:int list -> pending:(int -> op) -> int) ->
  (unit -> unit) ->
  outcome
(** [run ~policy body] explores one schedule.  [policy] is called at
    every scheduling point with the enabled thread ids (never empty)
    and each thread's pending operation; it returns the thread to run.
    [max_steps] (default 200_000) guards against runaway scenarios:
    exceeding it is reported as a [Failure] result. *)
