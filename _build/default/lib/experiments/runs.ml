module Spapt = Altune_spapt.Spapt
module Rng = Altune_prng.Rng
module Dataset = Altune_core.Dataset
module Learner = Altune_core.Learner
module Experiment = Altune_core.Experiment

type plan_curves = {
  bench : string;
  all_observations : Experiment.curve;
  one_observation : Experiment.curve;
  variable_observations : Experiment.curve;
}

let dataset_cache : (string, Dataset.t) Hashtbl.t = Hashtbl.create 16
let curve_cache : (string, plan_curves) Hashtbl.t = Hashtbl.create 16

let clear_cache () =
  Hashtbl.reset dataset_cache;
  Hashtbl.reset curve_cache

let dataset_for bench (scale : Scale.t) ~seed =
  let key = Printf.sprintf "%s/%s/%d" (Spapt.name bench) scale.label seed in
  match Hashtbl.find_opt dataset_cache key with
  | Some d -> d
  | None ->
      let problem = Adapter.problem_of bench in
      let rng = Rng.create ~seed:(Hashtbl.hash (seed, "dataset", key)) in
      let d =
        Dataset.generate problem ~rng ~n_configs:scale.n_configs
          ~test_fraction:scale.test_fraction ~n_obs:scale.n_obs
      in
      Hashtbl.replace dataset_cache key d;
      d

let run_plan problem dataset settings (scale : Scale.t) ~seed ~tag =
  let seeds =
    List.init scale.reps (fun r -> Hashtbl.hash (seed, tag, r, problem.Altune_core.Problem.name))
  in
  Experiment.repeat problem dataset settings ~seeds None

let curves_for bench (scale : Scale.t) ~seed =
  let key = Printf.sprintf "%s/%s/%d" (Spapt.name bench) scale.label seed in
  match Hashtbl.find_opt curve_cache key with
  | Some c -> c
  | None ->
      let problem = Adapter.problem_of bench in
      let dataset = dataset_for bench scale ~seed in
      let c =
        {
          bench = Spapt.name bench;
          all_observations =
            run_plan problem dataset
              (Scale.fixed scale scale.n_obs)
              scale ~seed ~tag:"fixed";
          one_observation =
            run_plan problem dataset (Scale.fixed scale 1) scale ~seed
              ~tag:"one";
          variable_observations =
            run_plan problem dataset scale.adaptive scale ~seed
              ~tag:"adaptive";
        }
      in
      Hashtbl.replace curve_cache key c;
      c
