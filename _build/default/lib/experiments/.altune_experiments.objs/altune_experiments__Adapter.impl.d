lib/experiments/adapter.ml: Altune_core Altune_spapt
