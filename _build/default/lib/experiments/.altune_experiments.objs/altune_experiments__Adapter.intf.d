lib/experiments/adapter.mli: Altune_core Altune_spapt
