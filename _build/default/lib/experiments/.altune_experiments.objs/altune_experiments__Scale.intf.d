lib/experiments/scale.mli: Altune_core
