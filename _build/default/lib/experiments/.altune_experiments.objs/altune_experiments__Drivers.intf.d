lib/experiments/drivers.mli: Scale
