lib/experiments/runs.mli: Altune_core Altune_spapt Scale
