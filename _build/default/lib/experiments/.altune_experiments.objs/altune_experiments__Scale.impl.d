lib/experiments/scale.ml: Altune_core
