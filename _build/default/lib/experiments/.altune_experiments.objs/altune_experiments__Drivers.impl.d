lib/experiments/drivers.ml: Adapter Altune_core Altune_gp Altune_prng Altune_report Altune_spapt Altune_stats Array Float Hashtbl List Option Printf Runs Scale String
