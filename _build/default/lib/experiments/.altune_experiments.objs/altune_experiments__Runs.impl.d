lib/experiments/runs.ml: Adapter Altune_core Altune_prng Altune_spapt Hashtbl List Printf Scale
