(** One driver per table/figure of the paper's evaluation, each returning
    the rendered text (and optionally writing CSV next to it).

    - {!table1}: lowest common RMSE, per-plan cost, speed-up, geometric
      mean — the paper's headline table.
    - {!table2}: spread of runtime variance and 95% CI/mean at 35 and 5
      samples across each benchmark's space.
    - {!fig1}: MAE over the mm unroll-factor grid for one sample vs. the
      optimal per-point sample count, plus the sample-count map.
    - {!fig2}: runtime vs. unroll factor for adi's j1 loop, single samples.
    - {!fig5}: bar chart of the profiling-cost reduction (Table 1 data).
    - {!fig6}: RMSE-vs-cost curves for the three sampling plans on six
      representative benchmarks.
    - {!ablation}: selection-strategy / revisit / particle-count ablations
      on one benchmark (design-choice experiments beyond the paper). *)

val table1 :
  ?benchmarks:string list -> scale:Scale.t -> seed:int -> unit -> string

val table2 :
  ?benchmarks:string list -> scale:Scale.t -> seed:int -> unit -> string

val fig1 : scale:Scale.t -> seed:int -> unit -> string
val fig2 : scale:Scale.t -> seed:int -> unit -> string

val fig5 :
  ?benchmarks:string list -> scale:Scale.t -> seed:int -> unit -> string

val fig6 :
  ?benchmarks:string list -> scale:Scale.t -> seed:int -> unit -> string

val ablation :
  ?bench:string -> scale:Scale.t -> seed:int -> unit -> string
