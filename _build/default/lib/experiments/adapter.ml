module Spapt = Altune_spapt.Spapt
module Problem = Altune_core.Problem

let problem_of bench =
  {
    Problem.name = Spapt.name bench;
    dim = Spapt.dim bench;
    space_size = Spapt.space_size bench;
    random_config = (fun rng -> Spapt.random_config bench rng);
    features = (fun c -> Spapt.features bench c);
    measure =
      (fun ~rng ~run_index c -> Spapt.measure bench ~rng ~run_index c);
    compile_seconds = (fun c -> Spapt.compile_seconds bench c);
  }
