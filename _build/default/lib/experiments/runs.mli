(** Shared execution of the three sampling plans on a benchmark, with
    per-process caching so Table 1, Figure 5 and Figure 6 do not recompute
    one another's runs. *)

type plan_curves = {
  bench : string;
  all_observations : Altune_core.Experiment.curve;  (** Fixed 35. *)
  one_observation : Altune_core.Experiment.curve;  (** Fixed 1. *)
  variable_observations : Altune_core.Experiment.curve;  (** Adaptive. *)
}

val dataset_for :
  Altune_spapt.Spapt.t -> Scale.t -> seed:int -> Altune_core.Dataset.t
(** Cached dataset for a benchmark at a scale (deterministic per seed). *)

val curves_for :
  Altune_spapt.Spapt.t -> Scale.t -> seed:int -> plan_curves
(** Curves for all three plans, averaged over [scale.reps] repetitions
    with seeds derived from [seed]; cached per (benchmark, scale, seed). *)

val clear_cache : unit -> unit
