(** Adapts a SPAPT benchmark to the active learner's abstract
    {!Altune_core.Problem.t} interface. *)

val problem_of : Altune_spapt.Spapt.t -> Altune_core.Problem.t
