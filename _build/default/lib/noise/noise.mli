(** Measurement-noise simulation.

    The paper's central premise is that runtime measurements are noisy for
    many reasons — interference from other processes, Turbo-Boost-style
    frequency changes, address-space layout randomization, allocator
    behaviour — and that the amount of noise varies wildly across the
    optimization space (its Table 2).  This module simulates a measurement
    pipeline: a deterministic "true" runtime goes in, a noisy observed
    runtime comes out.  Channels compose multiplicatively, and everything
    is driven by an explicit {!Altune_prng.Rng.t}, so experiments remain
    reproducible. *)

type channel =
  | Gaussian_rel of float
      (** Zero-mean Gaussian with standard deviation proportional to the
          true value: baseline timer and scheduler jitter. *)
  | Burst of { probability : float; mu : float; sigma : float }
      (** With the given probability, multiply by [1 + lognormal(mu,
          sigma)]: another process stealing cores or cache for part of the
          run.  Produces the heavy right tail real measurements show. *)
  | Layout of { buckets : int; amplitude : float }
      (** Address-space layout randomization: each run draws one of
          [buckets] layouts, each with a fixed (hash-derived) runtime
          factor within ±[amplitude].  Re-measuring under the same layout
          reproduces the same bias, which is why single measurements
          mislead (Mytkowicz et al.; Curtsinger & Berger). *)
  | Drift of { period : float; amplitude : float }
      (** Slow sinusoidal drift with the run counter: thermal / DVFS
          state. *)

type t

val create : channel list -> t

val quiet : t
(** Near-noiseless environment: 0.2% Gaussian only. *)

val standard : t
(** The default stack: 1% Gaussian, occasional bursts, 8 layout buckets at
    ±2%, slow 1% drift — a lightly loaded desktop. *)

val noisy : t
(** A heavily loaded multi-user machine: bigger everything.  Used by the
    noise-robustness example (the paper's future-work experiment). *)

val scale_gaussian : t -> float -> t
(** [scale_gaussian t f] multiplies the relative Gaussian components by
    [f] — the per-configuration heteroskedasticity hook. *)

val sample :
  t -> rng:Altune_prng.Rng.t -> run_index:int -> true_value:float -> float
(** One noisy measurement of [true_value].  Always positive. *)

val channels : t -> channel list
