module Rng = Altune_prng.Rng

type channel =
  | Gaussian_rel of float
  | Burst of { probability : float; mu : float; sigma : float }
  | Layout of { buckets : int; amplitude : float }
  | Drift of { period : float; amplitude : float }

type t = { channels : channel list }

let create channels =
  List.iter
    (fun c ->
      match c with
      | Gaussian_rel s ->
          if s < 0.0 then invalid_arg "Noise.create: negative sigma"
      | Burst { probability; sigma; _ } ->
          if probability < 0.0 || probability > 1.0 then
            invalid_arg "Noise.create: burst probability out of [0,1]";
          if sigma < 0.0 then invalid_arg "Noise.create: negative sigma"
      | Layout { buckets; amplitude } ->
          if buckets < 1 then invalid_arg "Noise.create: no layout buckets";
          if amplitude < 0.0 || amplitude >= 1.0 then
            invalid_arg "Noise.create: layout amplitude out of [0,1)"
      | Drift { period; amplitude } ->
          if period <= 0.0 then invalid_arg "Noise.create: period <= 0";
          if amplitude < 0.0 || amplitude >= 1.0 then
            invalid_arg "Noise.create: drift amplitude out of [0,1)")
    channels;
  { channels }

let channels t = t.channels

let quiet = create [ Gaussian_rel 0.002 ]

let standard =
  create
    [
      Gaussian_rel 0.01;
      Burst { probability = 0.02; mu = -2.5; sigma = 0.8 };
      Layout { buckets = 8; amplitude = 0.02 };
      Drift { period = 200.0; amplitude = 0.01 };
    ]

let noisy =
  create
    [
      Gaussian_rel 0.05;
      Burst { probability = 0.15; mu = -1.2; sigma = 1.0 };
      Layout { buckets = 16; amplitude = 0.06 };
      Drift { period = 80.0; amplitude = 0.04 };
    ]

let scale_gaussian t f =
  {
    channels =
      List.map
        (fun c ->
          match c with
          | Gaussian_rel s -> Gaussian_rel (s *. f)
          | Burst _ | Layout _ | Drift _ -> c)
        t.channels;
  }

(* Deterministic per-bucket layout factor: hash the bucket id into a
   uniform in [-1, 1].  The same bucket always biases a run the same
   way. *)
let layout_factor bucket buckets amplitude =
  let h = Hashtbl.hash (bucket * 2654435761) land 0xFFFFFF in
  let u = (float_of_int h /. float_of_int 0xFFFFFF *. 2.0) -. 1.0 in
  ignore buckets;
  1.0 +. (amplitude *. u)

let sample t ~rng ~run_index ~true_value =
  let factor =
    List.fold_left
      (fun acc c ->
        match c with
        | Gaussian_rel sigma -> acc *. (1.0 +. Rng.normal ~sigma rng)
        | Burst { probability; mu; sigma } ->
            if Rng.bernoulli rng probability then
              acc *. (1.0 +. Rng.lognormal ~mu ~sigma rng)
            else acc
        | Layout { buckets; amplitude } ->
            acc *. layout_factor (Rng.int rng buckets) buckets amplitude
        | Drift { period; amplitude } ->
            acc
            *. (1.0
               +. amplitude
                  *. sin (2.0 *. Float.pi *. float_of_int run_index /. period)
               ))
      1.0 t.channels
  in
  Float.max (1e-9 *. true_value) (true_value *. factor)
