lib/noise/noise.ml: Altune_prng Float Hashtbl List
