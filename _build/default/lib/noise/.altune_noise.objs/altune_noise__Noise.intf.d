lib/noise/noise.mli: Altune_prng
