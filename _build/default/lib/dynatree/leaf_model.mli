(** Conjugate Normal–Inverse-Gamma leaf model for constant-response
    regression leaves.

    Each dynamic-tree leaf holds observations assumed i.i.d.
    [N(mu, sigma^2)] with the conjugate prior
    [mu | sigma^2 ~ N(m0, sigma^2 / k0)], [sigma^2 ~ IG(a0, b0)].
    Closed forms exist for the marginal likelihood of the leaf's data (used
    to weight stay/grow/prune moves) and the posterior predictive (a
    location-scale Student-t), which is what predictions and the ALC
    expected-variance-reduction computation consume. *)

type prior = { m0 : float; k0 : float; a0 : float; b0 : float }

val default_prior : prior
(** Weak prior centred at zero, intended for standardized responses:
    [m0 = 0, k0 = 0.1, a0 = 2, b0 = 0.5]. *)

type suff = { n : int; sum : float; sumsq : float }
(** Sufficient statistics of a leaf's responses. *)

val empty_suff : suff
val add_suff : suff -> float -> suff
val merge_suff : suff -> suff -> suff

type posterior = { kn : float; mn : float; an : float; bn : float }

val posterior : prior -> suff -> posterior

val log_marginal : prior -> suff -> float
(** Log marginal likelihood of the leaf's data under the prior,
    [log p(y_1..y_n)]; [0.] for an empty leaf. *)

type predictive = {
  mean : float;
  variance : float;
      (** Variance of the posterior predictive (Student-t), [infinity] when
          the degrees of freedom are <= 2. *)
  df : float;
  scale : float;  (** Scale of the Student-t. *)
}

val predict : prior -> suff -> predictive

val log_predictive_density : prior -> suff -> float -> float
(** [log p(y | data)] — the particle reweighting factor. *)

val expected_variance_reduction : prior -> suff -> float
(** Expected drop in the posterior-predictive variance at this leaf from
    one additional observation drawn from the current predictive — the
    per-reference-point ALC payoff of sampling this leaf again.  Never
    negative. *)
