lib/dynatree/leaf_model.ml: Altune_stats Float
