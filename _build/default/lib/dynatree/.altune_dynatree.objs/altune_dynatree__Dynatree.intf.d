lib/dynatree/dynatree.mli: Altune_prng Tree
