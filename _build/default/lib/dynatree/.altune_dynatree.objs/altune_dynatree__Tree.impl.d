lib/dynatree/tree.ml: Altune_prng Array Float Hashtbl Leaf_model List Option
