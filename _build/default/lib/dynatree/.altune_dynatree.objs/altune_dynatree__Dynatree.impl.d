lib/dynatree/dynatree.ml: Altune_prng Array Float Hashtbl Leaf_model Option Tree
