lib/dynatree/tree.mli: Altune_prng Hashtbl Leaf_model
