lib/dynatree/leaf_model.mli:
