module Special = Altune_stats.Special

type prior = { m0 : float; k0 : float; a0 : float; b0 : float }

let default_prior = { m0 = 0.0; k0 = 0.1; a0 = 2.0; b0 = 0.5 }

type suff = { n : int; sum : float; sumsq : float }

let empty_suff = { n = 0; sum = 0.0; sumsq = 0.0 }

let add_suff s y =
  { n = s.n + 1; sum = s.sum +. y; sumsq = s.sumsq +. (y *. y) }

let merge_suff a b =
  { n = a.n + b.n; sum = a.sum +. b.sum; sumsq = a.sumsq +. b.sumsq }

type posterior = { kn : float; mn : float; an : float; bn : float }

let posterior p s =
  let n = float_of_int s.n in
  let kn = p.k0 +. n in
  let mn = ((p.k0 *. p.m0) +. s.sum) /. kn in
  let an = p.a0 +. (n /. 2.0) in
  let bn =
    p.b0
    +. (0.5 *. (s.sumsq +. (p.k0 *. p.m0 *. p.m0) -. (kn *. mn *. mn)))
  in
  (* Numerical floor: bn is mathematically positive but the cancellation
     above can dip below zero for near-constant data. *)
  { kn; mn; an; bn = Float.max 1e-12 bn }

let log_marginal p s =
  if s.n = 0 then 0.0
  else begin
    let { kn; an; bn; _ } = posterior p s in
    let n = float_of_int s.n in
    Special.log_gamma an -. Special.log_gamma p.a0
    +. (p.a0 *. log p.b0)
    -. (an *. log bn)
    +. (0.5 *. (log p.k0 -. log kn))
    -. (n /. 2.0 *. log (2.0 *. Float.pi))
  end

type predictive = { mean : float; variance : float; df : float; scale : float }

let predict p s =
  let { kn; mn; an; bn } = posterior p s in
  let df = 2.0 *. an in
  let scale = sqrt (bn *. (kn +. 1.0) /. (an *. kn)) in
  let variance =
    if df > 2.0 then scale *. scale *. df /. (df -. 2.0) else infinity
  in
  { mean = mn; variance; df; scale }

let log_predictive_density p s y =
  let { mean; df; scale; _ } = predict p s in
  Altune_stats.Distributions.log_student_t_pdf ~mu:mean ~scale ~df y

(* One more observation moves the posterior to kn+1, an+1/2 and, in
   expectation under the current predictive, bn to
   bn * (1 + 1/(2(an-1))) (since E[(y - mn)^2] = bn (kn+1) / (kn (an-1))
   and the bn increment is kn/(kn+1)/2 times that).  The reduction is the
   difference of the Student-t variances before and after. *)
let expected_variance_reduction p s =
  let { kn; an; bn; _ } = posterior p s in
  if an <= 1.5 then
    (* Posterior variance undefined (df <= 3 after update): treat the
       expected payoff as the raw scale, which is large for fresh leaves. *)
    bn *. (kn +. 1.0) /. (an *. kn)
  else begin
    let var_now = bn *. (kn +. 1.0) /. (kn *. (an -. 1.0)) in
    let bn' = bn *. (1.0 +. (1.0 /. (2.0 *. (an -. 1.0)))) in
    let kn' = kn +. 1.0 in
    let an' = an +. 0.5 in
    let var_next = bn' *. (kn' +. 1.0) /. (kn' *. (an' -. 1.0)) in
    Float.max 0.0 (var_now -. var_next)
  end
