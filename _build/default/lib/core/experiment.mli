(** Multi-repetition experiment machinery: averaged error-vs-cost curves
    and the paper's Table 1 comparison (time for two methods to first reach
    their lowest common error). *)

type curve = Learner.eval_point list

val average_curves : curve list -> curve
(** Pointwise average of repetitions (matched by position, as all
    repetitions share the evaluation schedule); costs and errors are both
    averaged, as in the paper's 10-run averages. *)

val repeat :
  Problem.t ->
  Dataset.t ->
  Learner.settings ->
  seeds:int list ->
  (int -> Learner.outcome) option ->
  curve
(** [repeat problem dataset settings ~seeds hook] runs one training per
    seed and averages the curves.  [hook], when provided, replaces the
    runner (used by tests); otherwise {!Learner.run} is used with an rng
    seeded by each seed. *)

val cost_to_reach : curve -> float -> float option
(** [cost_to_reach curve err] is the cumulative cost at the first recorded
    point whose RMSE is [<= err]. *)

val min_rmse : curve -> float

type comparison = {
  lowest_common_rmse : float;
  cost_baseline : float;
  cost_ours : float;
  speedup : float;  (** [cost_baseline /. cost_ours]. *)
}

val compare_curves : baseline:curve -> ours:curve -> comparison
(** The paper's Table 1 metric: the lowest error level both methods
    eventually reach, and each method's cost to first reach it. *)
