(** Training-cost accounting.

    The paper measures training cost as "the cumulative compilation and
    runtimes of any executables used in training" (Section 4.3): every
    profiling run is charged at its measured duration, and every distinct
    configuration's compilation is charged once (binaries are cached). *)

type t

val create : unit -> t

val charge_run : t -> float -> unit
(** Charge one profiling run of the given duration (seconds). *)

val charge_compile : t -> key:string -> float -> unit
(** Charge a compilation unless [key] was already compiled. *)

val run_seconds : t -> float
val compile_seconds : t -> float
val total_seconds : t -> float
val runs : t -> int
val compiles : t -> int
