type t = {
  mutable run_seconds : float;
  mutable compile_seconds : float;
  mutable runs : int;
  compiled : (string, unit) Hashtbl.t;
}

let create () =
  {
    run_seconds = 0.0;
    compile_seconds = 0.0;
    runs = 0;
    compiled = Hashtbl.create 256;
  }

let charge_run t seconds =
  if seconds < 0.0 then invalid_arg "Cost.charge_run: negative duration";
  t.run_seconds <- t.run_seconds +. seconds;
  t.runs <- t.runs + 1

let charge_compile t ~key seconds =
  if not (Hashtbl.mem t.compiled key) then begin
    Hashtbl.replace t.compiled key ();
    t.compile_seconds <- t.compile_seconds +. seconds
  end

let run_seconds t = t.run_seconds
let compile_seconds t = t.compile_seconds
let total_seconds t = t.run_seconds +. t.compile_seconds
let runs t = t.runs
let compiles t = Hashtbl.length t.compiled
