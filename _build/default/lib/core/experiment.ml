module Rng = Altune_prng.Rng

type curve = Learner.eval_point list

let average_curves curves =
  match curves with
  | [] -> []
  | first :: _ ->
      let n = List.length first in
      let shortest =
        List.fold_left (fun acc c -> min acc (List.length c)) n curves
      in
      let arrays = List.map Array.of_list curves in
      List.init shortest (fun i ->
          let points =
            List.map (fun (a : Learner.eval_point array) -> a.(i)) arrays
          in
          let k = float_of_int (List.length points) in
          let avg f =
            List.fold_left (fun acc p -> acc +. f p) 0.0 points /. k
          in
          {
            Learner.iteration = (List.hd points).iteration;
            examples =
              int_of_float
                (Float.round (avg (fun p -> float_of_int p.examples)));
            observations =
              int_of_float
                (Float.round (avg (fun p -> float_of_int p.observations)));
            cost_seconds = avg (fun p -> p.cost_seconds);
            rmse = avg (fun p -> p.rmse);
          })

let repeat problem dataset settings ~seeds hook =
  let curves =
    List.map
      (fun seed ->
        match hook with
        | Some f -> (f seed).Learner.curve
        | None ->
            (Learner.run problem dataset settings
               ~rng:(Rng.create ~seed))
              .curve)
      seeds
  in
  average_curves curves

let cost_to_reach curve err =
  let rec go = function
    | [] -> None
    | (p : Learner.eval_point) :: rest ->
        if p.rmse <= err then Some p.cost_seconds else go rest
  in
  go curve

let min_rmse curve =
  List.fold_left
    (fun acc (p : Learner.eval_point) -> Float.min acc p.rmse)
    infinity curve

type comparison = {
  lowest_common_rmse : float;
  cost_baseline : float;
  cost_ours : float;
  speedup : float;
}

let compare_curves ~baseline ~ours =
  let lowest_common_rmse = Float.max (min_rmse baseline) (min_rmse ours) in
  let cost_of curve =
    match cost_to_reach curve lowest_common_rmse with
    | Some c -> c
    | None ->
        (* By construction both curves reach the common level; floating
           ties can still slip through, so fall back to the final cost. *)
        (match List.rev curve with
        | [] -> nan
        | last :: _ -> last.Learner.cost_seconds)
  in
  let cost_baseline = cost_of baseline in
  let cost_ours = cost_of ours in
  {
    lowest_common_rmse;
    cost_baseline;
    cost_ours;
    speedup = cost_baseline /. cost_ours;
  }
