(** Train/test pools (the paper's Section 4.5 setup).

    The paper profiles 10,000 distinct random configurations per benchmark,
    records each one's mean runtime over 35 executions, and splits 7,500
    for training and 2,500 for testing.  Here the training pool carries
    configurations only (training measurements are drawn live from the
    problem's measurement procedure — statistically the same thing), while
    the held-out test set carries observed mean runtimes, which is what
    model error is computed against. *)

type t = {
  train_configs : Problem.config array;
  test_configs : Problem.config array;
  test_means : float array;
      (** Mean of [n_obs] measurements per test configuration. *)
}

val generate :
  Problem.t ->
  rng:Altune_prng.Rng.t ->
  n_configs:int ->
  test_fraction:float ->
  n_obs:int ->
  t
(** Distinct random configurations, split and labelled.  Raises
    [Invalid_argument] when the space is too small for [n_configs] (after
    a bounded number of rejection-sampling attempts). *)
