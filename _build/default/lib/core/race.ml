module Welford = Altune_stats.Welford

type settings = { level : float; min_obs : int; max_obs : int }

let default_settings = { level = 0.95; min_obs = 2; max_obs = 35 }

type outcome = {
  winner : int;
  mean : float;
  runs_per_candidate : int array;
  total_runs : int;
  total_cost : float;
  eliminated_at : int array;
}

let select ?(settings = default_settings) ~measure n =
  if n < 1 then invalid_arg "Race.select: need at least one candidate";
  if settings.min_obs < 2 then
    invalid_arg "Race.select: min_obs must be >= 2 (CIs need two samples)";
  if settings.max_obs < settings.min_obs then
    invalid_arg "Race.select: max_obs < min_obs";
  if settings.level <= 0.0 || settings.level >= 1.0 then
    invalid_arg "Race.select: level out of (0,1)";
  let stats = Array.make n Welford.empty in
  let alive = Array.make n true in
  let eliminated_at = Array.make n (-1) in
  let total_cost = ref 0.0 in
  let observe i =
    let d = measure i in
    total_cost := !total_cost +. d;
    stats.(i) <- Welford.add stats.(i) d
  in
  for i = 0 to n - 1 do
    for _ = 1 to settings.min_obs do
      observe i
    done
  done;
  let round = ref 0 in
  let continue_ = ref (n > 1) in
  while !continue_ do
    incr round;
    (* The current leader: lowest mean among the living. *)
    let leader = ref (-1) in
    Array.iteri
      (fun i _ ->
        if alive.(i)
           && (!leader < 0
              || Welford.mean stats.(i) < Welford.mean stats.(!leader))
        then leader := i)
      alive;
    let _, leader_hi =
      Welford.confidence_interval ~level:settings.level stats.(!leader)
    in
    (* Eliminate candidates whose whole interval is above the leader's. *)
    Array.iteri
      (fun i _ ->
        if alive.(i) && i <> !leader then begin
          let lo, _ =
            Welford.confidence_interval ~level:settings.level stats.(i)
          in
          if lo > leader_hi then begin
            alive.(i) <- false;
            eliminated_at.(i) <- !round
          end
        end)
      alive;
    (* Another observation for every survivor that has budget left. *)
    let sampled = ref false in
    Array.iteri
      (fun i a ->
        if a && Welford.count stats.(i) < settings.max_obs then begin
          observe i;
          sampled := true
        end)
      alive;
    let survivors =
      Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive
    in
    if survivors <= 1 || not !sampled then continue_ := false
  done;
  let winner = ref 0 in
  Array.iteri
    (fun i _ ->
      if
        alive.(i)
        && ((not alive.(!winner))
           || Welford.mean stats.(i) < Welford.mean stats.(!winner))
      then winner := i)
    alive;
  {
    winner = !winner;
    mean = Welford.mean stats.(!winner);
    runs_per_candidate = Array.map Welford.count stats;
    total_runs = Array.fold_left (fun acc s -> acc + Welford.count s) 0 stats;
    total_cost = !total_cost;
    eliminated_at;
  }
