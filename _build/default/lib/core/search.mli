(** Searching a trained model for good configurations.

    The whole point of building a runtime predictor (paper Section 4.1) is
    that searching the *model* is effectively free compared to profiling,
    so very large configuration spaces can be swept.  This module provides
    the sweep: random sampling, greedy hill climbing over single-knob
    moves, and simulated annealing, all driven by a prediction function
    and a description of the knob space. *)

type space = {
  dim : int;
  cardinality : int -> int;  (** Values of knob [i] are [0 .. c-1]. *)
}

type method_ =
  | Random_sampling of int  (** Number of draws. *)
  | Hill_climbing of { restarts : int; max_steps : int }
  | Annealing of {
      steps : int;
      initial_temperature : float;
      cooling : float;  (** Per-step multiplicative factor in (0,1). *)
    }

type result = {
  best : int array;
  predicted : float;
  evaluations : int;  (** Model queries spent. *)
}

val minimize :
  rng:Altune_prng.Rng.t ->
  space ->
  predict:(int array -> float) ->
  method_ ->
  result
(** Find a configuration minimizing [predict].  Deterministic given the
    rng state.  Raises [Invalid_argument] on empty spaces or nonsensical
    method parameters. *)

val space_of_cardinalities : int array -> space
