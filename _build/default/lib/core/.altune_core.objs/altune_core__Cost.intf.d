lib/core/cost.mli:
