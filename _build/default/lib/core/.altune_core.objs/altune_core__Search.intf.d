lib/core/search.mli: Altune_prng
