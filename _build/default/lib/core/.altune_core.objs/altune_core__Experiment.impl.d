lib/core/experiment.ml: Altune_prng Array Float Learner List
