lib/core/learner.mli: Altune_prng Dataset Problem Surrogate
