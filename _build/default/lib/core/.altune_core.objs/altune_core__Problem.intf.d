lib/core/problem.mli: Altune_prng
