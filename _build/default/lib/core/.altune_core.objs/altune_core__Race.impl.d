lib/core/race.ml: Altune_stats Array
