lib/core/experiment.mli: Dataset Learner Problem
