lib/core/cost.ml: Hashtbl
