lib/core/race.mli:
