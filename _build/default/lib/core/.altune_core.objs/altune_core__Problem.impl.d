lib/core/problem.ml: Altune_prng Array List String
