lib/core/surrogate.ml: Altune_dynatree Altune_prng Float
