lib/core/learner.ml: Altune_prng Altune_stats Array Cost Dataset Float Hashtbl List Problem Surrogate
