lib/core/dataset.mli: Altune_prng Problem
