lib/core/surrogate.mli: Altune_prng
