lib/core/search.ml: Altune_prng Array List
