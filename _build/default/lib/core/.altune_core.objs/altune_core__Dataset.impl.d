lib/core/dataset.ml: Altune_prng Array Float Hashtbl Printf Problem
