module Rng = Altune_prng.Rng

type space = { dim : int; cardinality : int -> int }

type method_ =
  | Random_sampling of int
  | Hill_climbing of { restarts : int; max_steps : int }
  | Annealing of {
      steps : int;
      initial_temperature : float;
      cooling : float;
    }

type result = { best : int array; predicted : float; evaluations : int }

let space_of_cardinalities cards =
  { dim = Array.length cards; cardinality = (fun i -> cards.(i)) }

let validate space =
  if space.dim <= 0 then invalid_arg "Search: empty space";
  for i = 0 to space.dim - 1 do
    if space.cardinality i <= 0 then
      invalid_arg "Search: knob with no values"
  done

let random_config ~rng space =
  Array.init space.dim (fun i -> Rng.int rng (space.cardinality i))

(* Single-knob neighbours: change one coordinate by +-1 (clamped out) or
   to a random other value. *)
let random_neighbour ~rng space config =
  let c = Array.copy config in
  let i = Rng.int rng space.dim in
  let card = space.cardinality i in
  if card > 1 then begin
    let v =
      match Rng.int rng 3 with
      | 0 when c.(i) + 1 < card -> c.(i) + 1
      | 1 when c.(i) > 0 -> c.(i) - 1
      | _ ->
          let rec draw () =
            let v = Rng.int rng card in
            if v = c.(i) then draw () else v
          in
          draw ()
    in
    c.(i) <- v
  end;
  c

let minimize ~rng space ~predict method_ =
  validate space;
  let evaluations = ref 0 in
  let eval c =
    incr evaluations;
    predict c
  in
  let best = ref (random_config ~rng space) in
  let best_score = ref (eval !best) in
  let consider c score =
    if score < !best_score then begin
      best := c;
      best_score := score
    end
  in
  (match method_ with
  | Random_sampling n ->
      if n < 1 then invalid_arg "Search: need at least one draw";
      for _ = 2 to n do
        let c = random_config ~rng space in
        consider c (eval c)
      done
  | Hill_climbing { restarts; max_steps } ->
      if restarts < 1 || max_steps < 1 then
        invalid_arg "Search: hill climbing needs positive parameters";
      for _ = 1 to restarts do
        let current = ref (random_config ~rng space) in
        let current_score = ref (eval !current) in
        consider !current !current_score;
        (* Steepest single-knob descent with a step budget. *)
        let steps = ref 0 in
        let improved = ref true in
        while !improved && !steps < max_steps do
          improved := false;
          incr steps;
          let best_move = ref None in
          for i = 0 to space.dim - 1 do
            let card = space.cardinality i in
            List.iter
              (fun v ->
                if v >= 0 && v < card && v <> !current.(i) then begin
                  let c = Array.copy !current in
                  c.(i) <- v;
                  let score = eval c in
                  match !best_move with
                  | Some (_, s) when s <= score -> ()
                  | Some _ | None ->
                      if score < !current_score then
                        best_move := Some (c, score)
                end)
              [ !current.(i) - 1; !current.(i) + 1; 0; card - 1 ]
          done;
          match !best_move with
          | Some (c, score) ->
              current := c;
              current_score := score;
              consider c score;
              improved := true
          | None -> ()
        done
      done
  | Annealing { steps; initial_temperature; cooling } ->
      if steps < 1 then invalid_arg "Search: annealing needs steps";
      if initial_temperature <= 0.0 then
        invalid_arg "Search: temperature must be positive";
      if cooling <= 0.0 || cooling >= 1.0 then
        invalid_arg "Search: cooling must be in (0,1)";
      let current = ref (Array.copy !best) in
      let current_score = ref !best_score in
      let temperature = ref initial_temperature in
      for _ = 1 to steps do
        let c = random_neighbour ~rng space !current in
        let score = eval c in
        let delta = score -. !current_score in
        if delta <= 0.0 || Rng.uniform rng < exp (-.delta /. !temperature)
        then begin
          current := c;
          current_score := score;
          consider c score
        end;
        temperature := !temperature *. cooling
      done);
  { best = !best; predicted = !best_score; evaluations = !evaluations }
