type t = { n : int; mean : float; m2 : float }

let empty = { n = 0; mean = 0.0; m2 = 0.0 }
let singleton x = { n = 1; mean = x; m2 = 0.0 }

let add t x =
  let n = t.n + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int n) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  { n; mean; m2 }

let merge a b =
  if a.n = 0 then b
  else if b.n = 0 then a
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    { n; mean; m2 }
  end

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let std t = sqrt (variance t)
let sum t = t.mean *. float_of_int t.n

let std_error t =
  if t.n = 0 then infinity else std t /. sqrt (float_of_int t.n)

let ci_halfwidth ?(level = 0.95) t =
  if t.n < 2 then infinity
  else begin
    let df = float_of_int (t.n - 1) in
    let q =
      Distributions.student_t_quantile ~df (1.0 -. ((1.0 -. level) /. 2.0))
    in
    q *. std_error t
  end

let confidence_interval ?(level = 0.95) t =
  if t.n < 2 then (nan, nan)
  else begin
    let h = ci_halfwidth ~level t in
    (t.mean -. h, t.mean +. h)
  end

let ci_over_mean ?(level = 0.95) t =
  if t.n < 2 || t.mean = 0.0 then infinity
  else Float.abs (ci_halfwidth ~level t /. t.mean)

let of_array a = Array.fold_left add empty a

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.6g std=%.6g" t.n (mean t) (std t)
