(** Numerically stable online accumulation of mean and variance
    (Welford's algorithm), with parallel merging (Chan et al.).  Used for
    per-configuration runtime summaries, where observations arrive one at a
    time as the sequential-analysis loop revisits a configuration. *)

type t

val empty : t
val singleton : float -> t

val add : t -> float -> t
(** Functional update: [add t x] is [t] with one more observation. *)

val merge : t -> t -> t
(** Combine two accumulators as if their observations were concatenated. *)

val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] when fewer than two observations. *)

val std : t -> float
val sum : t -> float

val std_error : t -> float
(** Standard error of the mean, [std/sqrt n]. *)

val confidence_interval : ?level:float -> t -> float * float
(** [confidence_interval ~level t] is the Student-t CI for the mean at the
    given two-sided confidence [level] (default [0.95]).  Requires at least
    two observations; returns [(nan, nan)] otherwise. *)

val ci_halfwidth : ?level:float -> t -> float
(** Half-width of {!confidence_interval}; [infinity] with <2 observations. *)

val ci_over_mean : ?level:float -> t -> float
(** The CI-halfwidth / mean ratio used by the paper's post-hoc sampling-plan
    validation (Section 4.3). *)

val of_array : float array -> t

val pp : Format.formatter -> t -> unit
