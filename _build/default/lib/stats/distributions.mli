(** Cumulative distribution functions and quantiles for the distributions
    used in confidence-interval computation and in the dynamic-tree leaf
    posteriors (Gaussian and Student-t). *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float

val normal_quantile : float -> float
(** [normal_quantile p] is the standard-normal inverse CDF for
    [0 < p < 1] (Acklam's rational approximation, |error| < 1.15e-9). *)

val student_t_cdf : df:float -> float -> float
(** CDF of the standard Student-t distribution. *)

val student_t_quantile : df:float -> float -> float
(** [student_t_quantile ~df p] inverts {!student_t_cdf} for [0 < p < 1];
    closed-form for df = 1 and 2, otherwise bisection refined to ~1e-10. *)

val student_t_pdf : df:float -> float -> float

val log_student_t_pdf : ?mu:float -> ?scale:float -> df:float -> float -> float
(** Log-density of the location-scale Student-t: used by dynamic-tree
    marginal likelihoods. *)
