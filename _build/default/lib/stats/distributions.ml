let sqrt2 = sqrt 2.0

let normal_cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  0.5 *. Special.erfc (-.(x -. mu) /. (sigma *. sqrt2))

(* Acklam's inverse normal CDF. *)
let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Distributions.normal_quantile: p out of (0,1)";
  let a =
    [|
      -3.969683028665376e+01;
      2.209460984245205e+02;
      -2.759285104469687e+02;
      1.383577518672690e+02;
      -3.066479806614716e+01;
      2.506628277459239e+00;
    |]
  in
  let b =
    [|
      -5.447609879822406e+01;
      1.615858368580409e+02;
      -1.556989798598866e+02;
      6.680131188771972e+01;
      -1.328068155288572e+01;
    |]
  in
  let c =
    [|
      -7.784894002430293e-03;
      -3.223964580411365e-01;
      -2.400758277161838e+00;
      -2.549732539343734e+00;
      4.374664141464968e+00;
      2.938163982698783e+00;
    |]
  in
  let d =
    [|
      7.784695709041462e-03;
      3.224671290700398e-01;
      2.445134137142996e+00;
      3.754408661907416e+00;
    |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      let num =
        (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q
        +. c.(4))
        *. q
        +. c.(5)
      in
      let den =
        ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0
      in
      num /. den
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. (((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r
           +. b.(4))
           *. r)
         +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log1p (-.p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q
         +. c.(4))
         *. q
        +. c.(5))
      /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
  in
  (* One step of Halley refinement pushes the error to ~1e-15. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let student_t_cdf ~df x =
  if df <= 0.0 then invalid_arg "Distributions.student_t_cdf: df <= 0";
  let ib =
    Special.incomplete_beta ~a:(df /. 2.0) ~b:0.5 (df /. (df +. (x *. x)))
  in
  if x >= 0.0 then 1.0 -. (0.5 *. ib) else 0.5 *. ib

let student_t_quantile ~df p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Distributions.student_t_quantile: p out of (0,1)";
  if df <= 0.0 then invalid_arg "Distributions.student_t_quantile: df <= 0";
  if p = 0.5 then 0.0
  else if df = 1.0 then tan (Float.pi *. (p -. 0.5))
  else if df = 2.0 then
    let a = (2.0 *. p) -. 1.0 in
    a *. sqrt (2.0 /. (1.0 -. (a *. a)))
  else begin
    (* Bracket from the normal quantile (the t quantile always has larger
       magnitude), then bisect. *)
    let target = if p > 0.5 then p else 1.0 -. p in
    let lo = ref 0.0 in
    let hi = ref (Float.max 1.0 (2.0 *. normal_quantile target)) in
    while student_t_cdf ~df !hi < target do
      hi := !hi *. 2.0
    done;
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if student_t_cdf ~df mid < target then lo := mid else hi := mid
    done;
    let q = 0.5 *. (!lo +. !hi) in
    if p > 0.5 then q else -.q
  end

let student_t_pdf ~df x =
  let l =
    Special.log_gamma ((df +. 1.0) /. 2.0)
    -. Special.log_gamma (df /. 2.0)
    -. (0.5 *. log (df *. Float.pi))
    -. ((df +. 1.0) /. 2.0 *. log1p (x *. x /. df))
  in
  exp l

let log_student_t_pdf ?(mu = 0.0) ?(scale = 1.0) ~df x =
  if scale <= 0.0 then
    invalid_arg "Distributions.log_student_t_pdf: scale <= 0";
  let z = (x -. mu) /. scale in
  Special.log_gamma ((df +. 1.0) /. 2.0)
  -. Special.log_gamma (df /. 2.0)
  -. (0.5 *. log (df *. Float.pi))
  -. log scale
  -. ((df +. 1.0) /. 2.0 *. log1p (z *. z /. df))
