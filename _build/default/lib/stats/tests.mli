(** Non-parametric hypothesis tests for comparing runtime samples, the
    statistical companions of raced-profile selection: runtimes are
    heavy-tailed, so rank tests beat t-tests for "is binary A faster than
    binary B?" questions. *)

val mann_whitney_u : float array -> float array -> float * float
(** [mann_whitney_u a b] is [(u, p)]: the Mann-Whitney U statistic of the
    first sample and the two-sided p-value under the normal approximation
    (with tie correction).  Requires both samples non-empty; the
    approximation needs roughly 8+ observations per side to be taken
    seriously. *)

val significantly_less : ?alpha:float -> float array -> float array -> bool
(** [significantly_less a b] — are [a]'s values stochastically smaller
    than [b]'s at level [alpha] (default 0.05)?  One-sided decision from
    the U test. *)
