lib/stats/linalg.ml: Array
