lib/stats/distributions.mli:
