lib/stats/tests.mli:
