lib/stats/descriptive.mli:
