lib/stats/metrics.ml: Array Float
