lib/stats/special.mli:
