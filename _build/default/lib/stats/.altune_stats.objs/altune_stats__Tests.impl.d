lib/stats/tests.ml: Array Distributions Float List
