lib/stats/linalg.mli:
