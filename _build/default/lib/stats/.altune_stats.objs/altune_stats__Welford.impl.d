lib/stats/welford.ml: Array Distributions Float Format
