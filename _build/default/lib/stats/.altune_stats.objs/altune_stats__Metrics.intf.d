lib/stats/metrics.mli:
