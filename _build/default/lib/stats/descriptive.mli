(** Batch descriptive statistics over float arrays. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (two-pass). *)

val std : float array -> float
val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** [quantile a p] for [0 <= p <= 1], linear interpolation between order
    statistics (type-7).  The input is not modified. *)

val median : float array -> float

val geometric_mean : float array -> float
(** Geometric mean; all entries must be positive. *)

val summary : float array -> float * float * float
(** [(min, mean, max)] triple, as reported in the paper's Table 2. *)

val normalize : float array -> float array
(** Scale-and-centre to zero mean, unit variance (the paper's feature
    normalization, Section 4.5).  Constant arrays map to all zeros. *)

val normalize_with : mean:float -> std:float -> float -> float
(** Apply a precomputed normalization to one value. *)
