let rank_all a b =
  let n1 = Array.length a and n2 = Array.length b in
  let tagged =
    Array.append
      (Array.map (fun x -> (x, `A)) a)
      (Array.map (fun x -> (x, `B)) b)
  in
  Array.sort (fun (x, _) (y, _) -> Float.compare x y) tagged;
  let n = n1 + n2 in
  let ranks = Array.make n 0.0 in
  (* Average ranks over tie groups; collect tie sizes for the variance
     correction. *)
  let ties = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && fst tagged.(!j + 1) = fst tagged.(!i) do
      incr j
    done;
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      ranks.(k) <- avg
    done;
    let t = !j - !i + 1 in
    if t > 1 then ties := t :: !ties;
    i := !j + 1
  done;
  (tagged, ranks, !ties)

let mann_whitney_u a b =
  let n1 = Array.length a and n2 = Array.length b in
  if n1 = 0 || n2 = 0 then invalid_arg "Tests.mann_whitney_u: empty sample";
  let tagged, ranks, ties = rank_all a b in
  let r1 = ref 0.0 in
  Array.iteri
    (fun i (_, side) -> if side = `A then r1 := !r1 +. ranks.(i))
    tagged;
  let n1f = float_of_int n1 and n2f = float_of_int n2 in
  let u1 = !r1 -. (n1f *. (n1f +. 1.0) /. 2.0) in
  let nf = n1f +. n2f in
  let mu = n1f *. n2f /. 2.0 in
  let tie_term =
    List.fold_left
      (fun acc t ->
        let tf = float_of_int t in
        acc +. ((tf *. tf *. tf) -. tf))
      0.0 ties
  in
  let sigma2 =
    n1f *. n2f /. 12.0
    *. (nf +. 1.0 -. (tie_term /. (nf *. (nf -. 1.0))))
  in
  let p =
    if sigma2 <= 0.0 then 1.0
    else begin
      let z = (u1 -. mu) /. sqrt sigma2 in
      2.0 *. (1.0 -. Distributions.normal_cdf (Float.abs z))
    end
  in
  (u1, Float.min 1.0 p)

let significantly_less ?(alpha = 0.05) a b =
  let u1, p = mann_whitney_u a b in
  let mu = float_of_int (Array.length a) *. float_of_int (Array.length b) /. 2.0 in
  (* One-sided: halve the two-sided p, require U below its mean (a ranks
     lower). *)
  u1 < mu && p /. 2.0 < alpha
