(** Small dense linear algebra: just enough for exact Gaussian-process
    regression (symmetric positive-definite solves via Cholesky).
    Matrices are row-major [float array array]. *)

val cholesky : float array array -> float array array
(** Lower-triangular [L] with [L L^T = A] for a symmetric
    positive-definite [A].  Raises [Failure] if [A] is not (numerically)
    positive definite. *)

val solve_lower : float array array -> float array -> float array
(** [solve_lower l b] solves [L x = b] by forward substitution. *)

val solve_upper_transposed : float array array -> float array -> float array
(** [solve_upper_transposed l b] solves [L^T x = b] (backward substitution
    on the transpose of the stored lower factor). *)

val cholesky_solve : float array array -> float array -> float array
(** [cholesky_solve l b] solves [A x = b] given [A]'s Cholesky factor. *)

val dot : float array -> float array -> float

val mat_vec : float array array -> float array -> float array

val log_det_from_cholesky : float array array -> float
(** [log det A = 2 sum_i log L_ii]. *)
