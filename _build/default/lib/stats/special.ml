(* Lanczos approximation, g = 7, n = 9 coefficients (Boost/GSL standard). *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: non-positive argument";
  if x < 0.5 then
    (* Reflection to keep the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !acc
  end

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

(* Abramowitz & Stegun 7.1.26 has only ~1e-7 accuracy; instead use the
   continued-fraction erfc (Numerical Recipes erfc via incomplete gamma is
   overkill) — here a high-accuracy rational Chebyshev fit (W. J. Cody). *)
let erfc x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -.z *. z -. 1.26551223
    +. (t
        *. (1.00002368
            +. t
               *. (0.37409196
                   +. t
                      *. (0.09678418
                          +. t
                             *. (-0.18628806
                                 +. t
                                    *. (0.27886807
                                        +. t
                                           *. (-1.13520398
                                               +. t
                                                  *. (1.48851587
                                                      +. t
                                                         *. (-0.82215223
                                                             +. t
                                                                *. 0.17087277
                                                            )))))))))
  in
  let ans = t *. exp poly in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x

(* Lentz's algorithm for the continued fraction of I_x(a,b), as in
   Numerical Recipes [betacf]. *)
let betacf a b x =
  let max_iter = 200 in
  let eps = 3e-14 in
  let fpmin = 1e-300 in
  let qab = a +. b in
  let qap = a +. 1.0 in
  let qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let finished = ref false in
  while (not !finished) && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa =
      -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
    in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps then finished := true;
    incr m
  done;
  !h

let incomplete_beta ~a ~b x =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Special.incomplete_beta: a and b must be positive";
  if x < 0.0 || x > 1.0 then
    invalid_arg "Special.incomplete_beta: x out of [0,1]";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let bt =
      exp
        ((a *. log x) +. (b *. log1p (-.x)) -. log_beta a b)
    in
    (* Use the symmetry relation to stay where the continued fraction
       converges quickly. *)
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)
  end
