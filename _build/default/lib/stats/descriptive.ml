let check_nonempty name a =
  if Array.length a = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty")

let mean a =
  check_nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  check_nonempty "variance" a;
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      a;
    !acc /. float_of_int (n - 1)
  end

let std a = sqrt (variance a)

let min a =
  check_nonempty "min" a;
  Array.fold_left Float.min a.(0) a

let max a =
  check_nonempty "max" a;
  Array.fold_left Float.max a.(0) a

let quantile a p =
  check_nonempty "quantile" a;
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p out of [0,1]";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median a = quantile a 0.5

let geometric_mean a =
  check_nonempty "geometric_mean" a;
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      if x <= 0.0 then
        invalid_arg "Descriptive.geometric_mean: non-positive entry";
      acc := !acc +. log x)
    a;
  exp (!acc /. float_of_int (Array.length a))

let summary a = (min a, mean a, max a)

let normalize a =
  check_nonempty "normalize" a;
  let m = mean a in
  let s = std a in
  if s = 0.0 then Array.map (fun _ -> 0.0) a
  else Array.map (fun x -> (x -. m) /. s) a

let normalize_with ~mean ~std x = if std = 0.0 then 0.0 else (x -. mean) /. std
