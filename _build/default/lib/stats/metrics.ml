let check predicted observed name =
  let n = Array.length predicted in
  if n = 0 then invalid_arg ("Metrics." ^ name ^ ": empty input");
  if n <> Array.length observed then
    invalid_arg ("Metrics." ^ name ^ ": length mismatch");
  n

let rmse ~predicted ~observed =
  let n = check predicted observed "rmse" in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = predicted.(i) -. observed.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let mae ~predicted ~observed =
  let n = check predicted observed "mae" in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (predicted.(i) -. observed.(i))
  done;
  !acc /. float_of_int n

let max_abs_error ~predicted ~observed =
  let n = check predicted observed "max_abs_error" in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := Float.max !acc (Float.abs (predicted.(i) -. observed.(i)))
  done;
  !acc

let r_squared ~predicted ~observed =
  let n = check predicted observed "r_squared" in
  let mean_obs = Array.fold_left ( +. ) 0.0 observed /. float_of_int n in
  let ss_res = ref 0.0 in
  let ss_tot = ref 0.0 in
  for i = 0 to n - 1 do
    let r = observed.(i) -. predicted.(i) in
    let t = observed.(i) -. mean_obs in
    ss_res := !ss_res +. (r *. r);
    ss_tot := !ss_tot +. (t *. t)
  done;
  if !ss_tot = 0.0 then if !ss_res = 0.0 then 1.0 else 0.0
  else 1.0 -. (!ss_res /. !ss_tot)
