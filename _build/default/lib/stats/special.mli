(** Special functions needed for confidence intervals and Bayesian leaf
    posteriors: log-gamma, error function, and the regularized incomplete
    beta function.  Implementations follow the classical Lanczos /
    continued-fraction formulations and are accurate to ~1e-10 over the
    ranges used in this project. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0]. *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function, accurate for large arguments. *)

val incomplete_beta : a:float -> b:float -> float -> float
(** [incomplete_beta ~a ~b x] is the regularized incomplete beta function
    I_x(a, b) for [0 <= x <= 1], computed with Lentz's continued fraction. *)

val log_beta : float -> float -> float
(** [log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)]. *)
