(** Model-accuracy metrics used throughout the evaluation. *)

val rmse : predicted:float array -> observed:float array -> float
(** Root mean squared error, Equation (1) of the paper.  Arrays must have
    equal, non-zero length. *)

val mae : predicted:float array -> observed:float array -> float
(** Mean absolute error (used by the paper's Figure 1 motivation study). *)

val max_abs_error : predicted:float array -> observed:float array -> float

val r_squared : predicted:float array -> observed:float array -> float
(** Coefficient of determination relative to the observed mean. *)
