(** DSL sources of the 11 SPAPT kernels used in the paper's evaluation
    (Balaprakash, Wild & Norris, ICCS 2012), re-expressed in the kernel IR.

    Each kernel computes the same mathematical operation as its SPAPT
    counterpart (dense linear algebra and stencils); default problem sizes
    are chosen so the machine model places each benchmark in an
    interesting regime (some memory-bound, some compute-bound) with
    runtimes of the same order as the paper's.  Tests exercise the kernels
    at small sizes through the reference interpreter. *)

val source : string -> string
(** [source name] is the DSL text for the named kernel.
    Raises [Not_found] for unknown names. *)

val kernel : string -> Altune_kernellang.Ast.kernel
(** Parsed and validated kernel. *)

val names : string list
(** The 11 kernel names, in the paper's Table 1 order: adi, atax,
    bicgkernel, correlation, dgemv3, gemver, hessian, jacobi, lu, mm,
    mvt. *)
