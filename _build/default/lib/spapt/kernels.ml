(* Kernel problem sizes are tuned so that, under the default machine
   model, baseline runtimes land between ~0.05 s and ~3 s (the paper's
   range) and the memory/compute balance differs across benchmarks.  The
   [T] repeat parameters on the small-footprint kernels mimic the repeated
   invocations a timed benchmark harness performs. *)

(* Alternating-direction-implicit sweeps: two in-place line recurrences
   over a 2D grid.  Compute-bound at this size (grid fits in L2), which is
   what gives unrolling its Figure-2 climb-and-plateau shape. *)
let adi =
  {|
kernel adi(N = 64, T = 28000) {
  array X[N][N];
  array A[N][N];
  array B[N][N];
  for t = 0 to T - 1 {
    for i1 = 0 to N - 1 {
      for j1 = 1 to N - 1 {
        X[i1][j1] = X[i1][j1] - X[i1][j1 - 1] * A[i1][j1] / B[i1][j1 - 1];
      }
    }
    for i2 = 1 to N - 1 {
      for j2 = 0 to N - 1 {
        X[i2][j2] = X[i2][j2] - X[i2 - 1][j2] * A[i2][j2] / B[i2 - 1][j2];
      }
    }
  }
}
|}

(* y = A^T (A x): two dependent matrix-vector products. *)
let atax =
  {|
kernel atax(N = 1800, T = 20) {
  array A[N][N];
  array x[N];
  array y[N];
  array tmp[N];
  for t = 0 to T - 1 {
    for i1 = 0 to N - 1 {
      tmp[i1] = 0.0;
      for j1 = 0 to N - 1 {
        tmp[i1] = tmp[i1] + A[i1][j1] * x[j1];
      }
    }
    for i2 = 0 to N - 1 {
      for j2 = 0 to N - 1 {
        y[j2] = y[j2] + A[i2][j2] * tmp[i2];
      }
    }
  }
}
|}

(* BiCG kernel: q = A p and s = A^T r in one pass structure. *)
let bicgkernel =
  {|
kernel bicgkernel(N = 1500, T = 25) {
  array A[N][N];
  array p[N];
  array q[N];
  array r[N];
  array s[N];
  for t = 0 to T - 1 {
    for i1 = 0 to N - 1 {
      q[i1] = 0.0;
      for j1 = 0 to N - 1 {
        q[i1] = q[i1] + A[i1][j1] * p[j1];
      }
    }
    for i2 = 0 to N - 1 {
      for j2 = 0 to N - 1 {
        s[j2] = s[j2] + A[i2][j2] * r[i2];
      }
    }
  }
}
|}

(* Upper-triangular correlation matrix over M variables and N samples. *)
let correlation =
  {|
kernel correlation(M = 220, N = 220, T = 12) {
  array D[M][N];
  array mean[M];
  array stddev[M];
  array corr[M][M];
  for t = 0 to T - 1 {
    for i1 = 0 to M - 1 {
      mean[i1] = 0.0;
      for j1 = 0 to N - 1 {
        mean[i1] = mean[i1] + D[i1][j1];
      }
      mean[i1] = mean[i1] / N;
    }
    for i2 = 0 to M - 1 {
      stddev[i2] = 0.0;
      for j2 = 0 to N - 1 {
        stddev[i2] = stddev[i2]
          + (D[i2][j2] - mean[i2]) * (D[i2][j2] - mean[i2]);
      }
      stddev[i2] = sqrt(stddev[i2] / N) + 0.000001;
    }
    for i3 = 0 to M - 1 {
      for j3 = i3 to M - 1 {
        corr[i3][j3] = 0.0;
        for k3 = 0 to N - 1 {
          corr[i3][j3] = corr[i3][j3]
            + (D[i3][k3] - mean[i3]) * (D[j3][k3] - mean[j3]);
        }
        corr[i3][j3] = corr[i3][j3] / (N * stddev[i3] * stddev[j3]);
      }
    }
  }
}
|}

(* Three chained matrix-vector products (the SPAPT composed GEMV): its
   many independent loops give the paper's largest search space. *)
let dgemv3 =
  {|
kernel dgemv3(N = 1200, T = 12) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  array x[N];
  array u[N];
  array v[N];
  array w[N];
  for t = 0 to T - 1 {
    for i1 = 0 to N - 1 {
      u[i1] = 0.0;
      for j1 = 0 to N - 1 {
        u[i1] = u[i1] + A[i1][j1] * x[j1];
      }
    }
    for i2 = 0 to N - 1 {
      v[i2] = 0.0;
      for j2 = 0 to N - 1 {
        v[i2] = v[i2] + B[i2][j2] * u[j2];
      }
    }
    for i3 = 0 to N - 1 {
      w[i3] = 0.0;
      for j3 = 0 to N - 1 {
        w[i3] = w[i3] + C[i3][j3] * v[j3];
      }
    }
  }
}
|}

(* GEMVER: B = A + u1 v1^T + u2 v2^T; x = beta B^T y + z; w = alpha B x. *)
let gemver =
  {|
kernel gemver(N = 1400, T = 15) {
  array A[N][N];
  array B[N][N];
  array u1[N];
  array v1[N];
  array u2[N];
  array v2[N];
  array x[N];
  array y[N];
  array z[N];
  array w[N];
  for t = 0 to T - 1 {
    for i1 = 0 to N - 1 {
      for j1 = 0 to N - 1 {
        B[i1][j1] = A[i1][j1] + u1[i1] * v1[j1] + u2[i1] * v2[j1];
      }
    }
    for i2 = 0 to N - 1 {
      for j2 = 0 to N - 1 {
        x[j2] = x[j2] + 1.2 * B[i2][j2] * y[i2];
      }
    }
    for i3 = 0 to N - 1 {
      x[i3] = x[i3] + z[i3];
    }
    for i4 = 0 to N - 1 {
      w[i4] = 0.0;
      for j4 = 0 to N - 1 {
        w[i4] = w[i4] + 1.5 * B[i4][j4] * x[j4];
      }
    }
  }
}
|}

(* Hessian update: a 9-point second-derivative stencil, compute-bound. *)
let hessian =
  {|
kernel hessian(N = 80, T = 14000) {
  array F[N][N];
  array Hxx[N][N];
  array Hyy[N][N];
  array Hxy[N][N];
  for t = 0 to T - 1 {
    for i = 1 to N - 2 {
      for j = 1 to N - 2 {
        Hxx[i][j] = F[i][j + 1] - 2.0 * F[i][j] + F[i][j - 1];
        Hyy[i][j] = F[i + 1][j] - 2.0 * F[i][j] + F[i - 1][j];
        Hxy[i][j] = 0.25 * (F[i + 1][j + 1] - F[i + 1][j - 1]
          - F[i - 1][j + 1] + F[i - 1][j - 1]);
      }
    }
  }
}
|}

(* 2D Jacobi relaxation with explicit ping-pong buffers. *)
let jacobi =
  {|
kernel jacobi(N = 112, T = 8400) {
  array A[N][N];
  array B[N][N];
  for t = 0 to T - 1 {
    for i1 = 1 to N - 2 {
      for j1 = 1 to N - 2 {
        B[i1][j1] = 0.2 * (A[i1][j1] + A[i1][j1 - 1] + A[i1][j1 + 1]
          + A[i1 - 1][j1] + A[i1 + 1][j1]);
      }
    }
    for i2 = 1 to N - 2 {
      for j2 = 1 to N - 2 {
        A[i2][j2] = B[i2][j2];
      }
    }
  }
}
|}

(* Right-looking LU factorization (no pivoting), triangular loops. *)
let lu =
  {|
kernel lu(N = 180, T = 60) {
  array A[N][N];
  array L[N][N];
  for t = 0 to T - 1 {
    for k = 0 to N - 2 {
      for i = k + 1 to N - 1 {
        L[i][k] = A[i][k] / (A[k][k] + 1.000001);
        for j = k + 1 to N - 1 {
          A[i][j] = A[i][j] - L[i][k] * A[k][j];
        }
      }
    }
  }
}
|}

(* Dense matrix multiplication, the motivating kernel of Figure 1. *)
let mm =
  {|
kernel mm(N = 256, T = 3) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for t = 0 to T - 1 {
    for i = 0 to N - 1 {
      for j = 0 to N - 1 {
        for k = 0 to N - 1 {
          C[i][j] = C[i][j] + A[i][k] * B[k][j];
        }
      }
    }
  }
}
|}

(* MVT: x1 += A y1 and x2 += A^T y2. *)
let mvt =
  {|
kernel mvt(N = 1300, T = 30) {
  array A[N][N];
  array x1[N];
  array x2[N];
  array y1[N];
  array y2[N];
  for t = 0 to T - 1 {
    for i1 = 0 to N - 1 {
      for j1 = 0 to N - 1 {
        x1[i1] = x1[i1] + A[i1][j1] * y1[j1];
      }
    }
    for i2 = 0 to N - 1 {
      for j2 = 0 to N - 1 {
        x2[j2] = x2[j2] + A[i2][j2] * y2[i2];
      }
    }
  }
}
|}

let table =
  [
    ("adi", adi);
    ("atax", atax);
    ("bicgkernel", bicgkernel);
    ("correlation", correlation);
    ("dgemv3", dgemv3);
    ("gemver", gemver);
    ("hessian", hessian);
    ("jacobi", jacobi);
    ("lu", lu);
    ("mm", mm);
    ("mvt", mvt);
  ]

let names = List.map fst table

let source name =
  match List.assoc_opt name table with
  | Some s -> s
  | None -> raise Not_found

let kernel name = Altune_kernellang.Parser.parse_kernel (source name)
