lib/spapt/spapt.mli: Altune_kernellang Altune_machine Altune_prng
