lib/spapt/kernels.mli: Altune_kernellang
