lib/spapt/kernels.ml: Altune_kernellang List
