lib/spapt/spapt.ml: Altune_kernellang Altune_machine Altune_noise Altune_prng Altune_stats Array Hashtbl Kernels List Printf Result
