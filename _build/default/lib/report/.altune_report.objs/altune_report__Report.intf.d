lib/report/report.mli:
