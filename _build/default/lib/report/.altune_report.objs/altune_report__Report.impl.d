lib/report/report.ml: Array Buffer Float Fun List Printf String
