(** Plain-text rendering of the reproduction's tables and figures: aligned
    ASCII tables, unicode line/bar plots for the error-over-cost figures,
    and CSV export for external plotting. *)

module Table : sig
  val render : headers:string list -> rows:string list list -> string
  (** Aligned table with a header rule.  Numeric-looking cells are
      right-aligned, text cells left-aligned. *)
end

module Plot : sig
  val line :
    ?width:int ->
    ?height:int ->
    ?logx:bool ->
    title:string ->
    xlabel:string ->
    ylabel:string ->
    (string * (float * float) list) list ->
    string
  (** Multi-series scatter/line plot on a character grid; each series gets
      a distinct glyph, with a legend. *)

  val bars :
    ?width:int -> title:string -> (string * float) list -> string
  (** Horizontal bar chart (used for the paper's Figure 5). *)

  val heat :
    title:string ->
    xlabel:string ->
    ylabel:string ->
    rows:int ->
    cols:int ->
    (int -> int -> float) ->
    string
  (** Character heat map over a grid (used for Figure 1), darker glyph =
      larger value. *)
end

module Csv : sig
  val to_string : header:string list -> rows:string list list -> string
  val write : path:string -> header:string list -> rows:string list list -> unit
end

val f3 : float -> string
(** Compact significant-digit formatting for table cells. *)

val sci : float -> string
(** Scientific notation like the paper's Table 1 ("3.78e14"). *)
