let f3 x =
  if Float.is_nan x then "nan"
  else if Float.is_integer x && Float.abs x < 1e7 then
    Printf.sprintf "%.0f" x
  else if Float.abs x >= 1000.0 || (Float.abs x < 0.001 && x <> 0.0) then
    Printf.sprintf "%.3g" x
  else Printf.sprintf "%.3f" x

let sci x = Printf.sprintf "%.2e" x

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E' || c = 'x')
       s

module Table = struct
  let render ~headers ~rows =
    let all = headers :: rows in
    let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
    let pad r = r @ List.init (cols - List.length r) (fun _ -> "") in
    let all = List.map pad all in
    let widths = Array.make cols 0 in
    List.iter
      (List.iteri (fun i cell ->
           widths.(i) <- max widths.(i) (String.length cell)))
      all;
    (* A column is right-aligned if every non-header cell looks numeric. *)
    let right = Array.make cols true in
    List.iteri
      (fun r row ->
        if r > 0 then
          List.iteri
            (fun i cell ->
              if cell <> "" && not (looks_numeric cell) then
                right.(i) <- false)
            row)
      all;
    let buf = Buffer.create 1024 in
    let emit row =
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          let pad = widths.(i) - String.length cell in
          if right.(i) then begin
            Buffer.add_string buf (String.make pad ' ');
            Buffer.add_string buf cell
          end
          else begin
            Buffer.add_string buf cell;
            Buffer.add_string buf (String.make pad ' ')
          end)
        row;
      Buffer.add_char buf '\n'
    in
    (match all with
    | header :: body ->
        emit header;
        let rule_width =
          Array.fold_left ( + ) 0 widths + (2 * (cols - 1))
        in
        Buffer.add_string buf (String.make rule_width '-');
        Buffer.add_char buf '\n';
        List.iter emit body
    | [] -> ());
    Buffer.contents buf
end

module Plot = struct
  let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

  let line ?(width = 72) ?(height = 20) ?(logx = false) ~title ~xlabel
      ~ylabel series =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let points =
      List.concat_map
        (fun (_, pts) ->
          List.filter
            (fun (x, y) ->
              Float.is_finite x && Float.is_finite y
              && ((not logx) || x > 0.0))
            pts)
        series
    in
    if points = [] then begin
      Buffer.add_string buf "  (no data)\n";
      Buffer.contents buf
    end
    else begin
      let tx x = if logx then log10 x else x in
      let xs = List.map (fun (x, _) -> tx x) points in
      let ys = List.map snd points in
      let xmin = List.fold_left Float.min (List.hd xs) xs in
      let xmax = List.fold_left Float.max (List.hd xs) xs in
      let ymin = List.fold_left Float.min (List.hd ys) ys in
      let ymax = List.fold_left Float.max (List.hd ys) ys in
      let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
      let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (_, pts) ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          List.iter
            (fun (x, y) ->
              if
                Float.is_finite x && Float.is_finite y
                && ((not logx) || x > 0.0)
              then begin
                let cx =
                  int_of_float
                    (Float.round
                       ((tx x -. xmin) /. xspan *. float_of_int (width - 1)))
                in
                let cy =
                  height - 1
                  - int_of_float
                      (Float.round
                         ((y -. ymin) /. yspan *. float_of_int (height - 1)))
                in
                if cx >= 0 && cx < width && cy >= 0 && cy < height then
                  grid.(cy).(cx) <- glyph
              end)
            pts)
        series;
      Buffer.add_string buf
        (Printf.sprintf "%s (top %s, bottom %s)\n" ylabel (f3 ymax) (f3 ymin));
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf "  +";
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "   %s%s: %s .. %s\n"
           (if logx then "log " else "")
           xlabel
           (f3 (if logx then 10.0 ** xmin else xmin))
           (f3 (if logx then 10.0 ** xmax else xmax)));
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "   %c %s\n"
               glyphs.(si mod Array.length glyphs)
               name))
        series;
      Buffer.contents buf
    end

  let bars ?(width = 50) ~title entries =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let vmax =
      List.fold_left (fun m (_, v) -> Float.max m v) 0.0 entries
    in
    let label_width =
      List.fold_left (fun m (l, _) -> max m (String.length l)) 0 entries
    in
    List.iter
      (fun (label, v) ->
        let n =
          if vmax <= 0.0 then 0
          else
            int_of_float
              (Float.round (v /. vmax *. float_of_int width))
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-*s | %s %s\n" label_width label
             (String.make (max n (if v > 0.0 then 1 else 0)) '#')
             (f3 v)))
      entries;
    Buffer.contents buf

  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

  let heat ~title ~xlabel ~ylabel ~rows ~cols f =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let values =
      Array.init rows (fun r -> Array.init cols (fun c -> f r c))
    in
    let vmin = ref infinity and vmax = ref neg_infinity in
    Array.iter
      (Array.iter (fun v ->
           if Float.is_finite v then begin
             vmin := Float.min !vmin v;
             vmax := Float.max !vmax v
           end))
      values;
    let span = if !vmax > !vmin then !vmax -. !vmin else 1.0 in
    for r = rows - 1 downto 0 do
      Buffer.add_string buf "  |";
      for c = 0 to cols - 1 do
        let v = values.(r).(c) in
        let g =
          if not (Float.is_finite v) then '?'
          else begin
            let i =
              int_of_float
                ((v -. !vmin) /. span *. float_of_int (Array.length shades - 1))
            in
            shades.(max 0 (min (Array.length shades - 1) i))
          end
        in
        Buffer.add_char buf g
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf "  +";
    Buffer.add_string buf (String.make cols '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "   x: %s, y: %s; scale %s (' ') .. %s ('@')\n" xlabel
         ylabel (f3 !vmin) (f3 !vmax));
    Buffer.contents buf
end

module Csv = struct
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell

  let to_string ~header ~rows =
    let buf = Buffer.create 1024 in
    let emit row =
      Buffer.add_string buf (String.concat "," (List.map escape row));
      Buffer.add_char buf '\n'
    in
    emit header;
    List.iter emit rows;
    Buffer.contents buf

  let write ~path ~header ~rows =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string ~header ~rows))
end
