lib/kernellang/interp.ml: Array Ast Float Format Hashtbl List Option Stdlib
