lib/kernellang/dependence.mli: Ast Format
