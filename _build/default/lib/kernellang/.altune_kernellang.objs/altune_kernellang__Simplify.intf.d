lib/kernellang/simplify.mli: Ast
