lib/kernellang/analysis.ml: Array Ast Float List
