lib/kernellang/transform.ml: Ast Dependence Format List Option Printf Result Simplify String
