lib/kernellang/ast.mli: Format
