lib/kernellang/interp.mli: Ast
