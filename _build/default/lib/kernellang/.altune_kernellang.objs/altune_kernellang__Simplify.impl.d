lib/kernellang/simplify.ml: Ast List Option
