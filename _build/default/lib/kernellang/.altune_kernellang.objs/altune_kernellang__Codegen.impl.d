lib/kernellang/codegen.ml: Ast Buffer Filename Fun Hashtbl List Printf String Sys
