lib/kernellang/pretty.ml: Ast Format List Printf String
