lib/kernellang/dependence.ml: Array Ast Format Hashtbl List Option String
