lib/kernellang/lexer.mli:
