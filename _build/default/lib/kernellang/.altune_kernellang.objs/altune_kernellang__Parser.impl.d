lib/kernellang/parser.ml: Array Ast Format Lexer List
