lib/kernellang/pretty.mli: Ast Format
