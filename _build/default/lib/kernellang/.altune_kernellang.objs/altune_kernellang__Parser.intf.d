lib/kernellang/parser.mli: Ast Lexer
