lib/kernellang/codegen.mli: Ast
