lib/kernellang/analysis.mli: Ast
