lib/kernellang/ast.ml: Format List Option
