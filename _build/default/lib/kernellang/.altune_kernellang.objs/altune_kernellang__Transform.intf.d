lib/kernellang/transform.mli: Ast Format
