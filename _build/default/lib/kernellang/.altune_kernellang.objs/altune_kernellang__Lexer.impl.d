lib/kernellang/lexer.ml: Array List Printf String
