type access = {
  array : string;
  is_write : bool;
  coeffs : (string * float) list;
  offset : float;
  affine : bool;
}

type loop_node = {
  index : string;
  trips : float;
  step : int;
  accesses : access list;
  flops : float;
  iops : float;
  stmts : float;
  children : loop_node list;
}

type t = {
  roots : loop_node list;
  array_elements : (string * float) list;
  straightline_stmts : float;
}

(* Environment: parameters and average values of live loop indices.
   [expansion] maps a live index whose lower bound depends on enclosing
   indices (strip-mined point loops: [for i = i_t to min(i_t + T - 1, ...)])
   to the fully-folded affine coefficients of that bound, so that an access
   subscripted by [i] is correctly seen to sweep with [i_t] as well. *)
type env = {
  values : (string * float) list;
  live : string list;
  expansion : (string * (string * float) list) list;
}

exception Non_affine

(* Numeric evaluation of an expression under average index values.  Used
   for loop bounds; Min/Max/Idiv are common there (tile edges, unroll
   remainder bounds). *)
let rec eval_avg env (e : Ast.expr) : float =
  match e with
  | Int_lit n -> float_of_int n
  | Float_lit x -> x
  | Var x -> (
      match List.assoc_opt x env.values with
      | Some v -> v
      | None -> raise Non_affine)
  | Index _ -> raise Non_affine
  | Binop (op, a, b) -> (
      let x = eval_avg env a and y = eval_avg env b in
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
      | Idiv -> if y = 0.0 then raise Non_affine else Float.of_int (int_of_float x / int_of_float y)
      | Mod -> if y = 0.0 then raise Non_affine else Float.rem x y
      | Min -> Float.min x y
      | Max -> Float.max x y)
  | Neg a -> -.eval_avg env a
  | Sqrt a -> sqrt (eval_avg env a)

(* Affine coefficient of [var] in an integer expression, with all other
   live indices treated as symbolic (coefficient extraction) and parameters
   as constants.  Raises [Non_affine] on products of two var-dependent
   terms, or Idiv/Mod/Min/Max applied to var-dependent operands. *)
let rec coeff env var (e : Ast.expr) : float =
  let depends e = List.exists (fun v -> List.mem v env.live) (Ast.free_vars e) in
  match e with
  | Int_lit _ | Float_lit _ -> 0.0
  | Var x -> if x = var then 1.0 else 0.0
  | Index _ -> raise Non_affine
  | Neg a -> -.coeff env var a
  | Sqrt a -> if depends a then raise Non_affine else 0.0
  | Binop (Add, a, b) -> coeff env var a +. coeff env var b
  | Binop (Sub, a, b) -> coeff env var a -. coeff env var b
  | Binop (Mul, a, b) ->
      if not (depends a) then eval_avg env a *. coeff env var b
      else if not (depends b) then coeff env var a *. eval_avg env b
      else raise Non_affine
  | Binop ((Div | Idiv | Mod | Min | Max), a, b) ->
      if depends a || depends b then raise Non_affine else 0.0

let count_ops (e : Ast.expr) =
  (* flops: operators outside subscripts; iops: operators inside them. *)
  let rec go in_subscript e =
    match e with
    | Ast.Int_lit _ | Float_lit _ | Var _ -> (0, 0)
    | Index (_, subs) ->
        List.fold_left
          (fun (f, i) s ->
            let f', i' = go true s in
            (f + f', i + i'))
          (0, 0) subs
    | Binop (_, a, b) ->
        let fa, ia = go in_subscript a in
        let fb, ib = go in_subscript b in
        if in_subscript then (fa + fb, ia + ib + 1) else (fa + fb + 1, ia + ib)
    | Neg a | Sqrt a ->
        let f, i = go in_subscript a in
        if in_subscript then (f, i + 1) else (f + 1, i)
  in
  go false e

(* Row-major flat-offset coefficient: sum over dimensions of the subscript
   coefficient times the product of the extents of later dimensions. *)
let access_of ~env ~dims ~is_write array subs =
  let rank = List.length subs in
  let extents =
    match List.assoc_opt array dims with
    | Some e -> e
    | None -> Array.make rank 1.0
  in
  let row_stride k =
    let s = ref 1.0 in
    for j = k + 1 to Array.length extents - 1 do
      s := !s *. extents.(j)
    done;
    !s
  in
  let env0 =
    (* All live indices at zero: evaluating a subscript in env0 yields the
       constant term of its affine form. *)
    {
      env with
      values =
        List.map
          (fun (name, v) -> if List.mem name env.live then (name, 0.0) else (name, v))
          env.values;
    }
  in
  match
    let raw =
      List.map
        (fun var ->
          let c = ref 0.0 in
          List.iteri
            (fun k sub -> c := !c +. (coeff env var sub *. row_stride k))
            subs;
          (var, !c))
        env.live
    in
    let lookup alist v =
      match List.assoc_opt v alist with Some c -> c | None -> 0.0
    in
    (* Fold bound-induced dependence: a subscript coefficient on a
       strip-mined point index also sweeps with the indices its lower
       bound ranges over. *)
    let coeffs =
      List.map
        (fun v ->
          let extra =
            List.fold_left
              (fun acc (u, cu) ->
                match List.assoc_opt u env.expansion with
                | Some exp_u -> acc +. (cu *. lookup exp_u v)
                | None -> acc)
              0.0 raw
          in
          (v, lookup raw v +. extra))
        env.live
    in
    let offset = ref 0.0 in
    List.iteri
      (fun k sub -> offset := !offset +. (eval_avg env0 sub *. row_stride k))
      subs;
    (coeffs, !offset)
  with
  | coeffs, offset ->
      let coeffs = List.filter (fun (_, c) -> c <> 0.0) coeffs in
      { array; is_write; coeffs; offset; affine = true }
  | exception Non_affine ->
      { array; is_write; coeffs = []; offset = 0.0; affine = false }

let rec exprs_of_cond (c : Ast.cond) =
  match c with
  | Cmp (_, a, b) -> [ a; b ]
  | And (a, b) | Or (a, b) -> exprs_of_cond a @ exprs_of_cond b
  | Not a -> exprs_of_cond a

(* Direct statistics of statements under [s], stopping at nested loops,
   which are returned separately for recursion. *)
let rec direct_stats ~env ~dims (s : Ast.stmt) =
  match s with
  | Assign (lhs, rhs) ->
      let rec accesses_of_expr e =
        match e with
        | Ast.Int_lit _ | Float_lit _ | Var _ -> []
        | Index (a, subs) ->
            access_of ~env ~dims ~is_write:false a subs
            :: List.concat_map accesses_of_expr subs
        | Binop (_, a, b) -> accesses_of_expr a @ accesses_of_expr b
        | Neg a | Sqrt a -> accesses_of_expr a
      in
      let write, wf, wi =
        match lhs with
        | Scalar_lhs _ -> ([], 0, 0)
        | Array_lhs (a, subs) ->
            let f, i =
              List.fold_left
                (fun (f, i) s ->
                  let f', i' = count_ops s in
                  (f + f', i + i' + 1))
                (0, 0) subs
            in
            ([ access_of ~env ~dims ~is_write:true a subs ], f, i)
      in
      let rf, ri = count_ops rhs in
      let reads = accesses_of_expr rhs in
      ( write @ reads,
        float_of_int (rf + wf),
        float_of_int (ri + wi),
        1.0,
        [] )
  | Seq ss ->
      List.fold_left
        (fun (a, f, i, n, loops) s ->
          let a', f', i', n', loops' = direct_stats ~env ~dims s in
          (a @ a', f +. f', i +. i', n +. n', loops @ loops'))
        ([], 0.0, 0.0, 0.0, []) ss
  | For l -> ([], 0.0, 0.0, 0.0, [ l ])
  | If (c, t, e) ->
      (* Count both branches at half weight: a cheap expected-cost model of
         data-dependent branches. *)
      let cond_iops =
        List.fold_left
          (fun acc e ->
            let f, i = count_ops e in
            acc + f + i)
          0 (exprs_of_cond c)
      in
      let at, ft, it, nt, lt = direct_stats ~env ~dims t in
      let ae, fe, ie, ne, le =
        match e with
        | None -> ([], 0.0, 0.0, 0.0, [])
        | Some e -> direct_stats ~env ~dims e
      in
      ( at @ ae,
        ((ft +. fe) /. 2.0) +. float_of_int cond_iops,
        (it +. ie) /. 2.0,
        ((nt +. ne) /. 2.0) +. 1.0,
        lt @ le )

let rec build_loop ~env ~dims (l : Ast.loop) : loop_node =
  let lo = try eval_avg env l.lo with Non_affine -> 0.0 in
  let hi = try eval_avg env l.hi with Non_affine -> lo -. 1.0 in
  (* Constant bounds get the exact floored trip count; bounds involving
     enclosing indices are mid-range averages, where keeping the
     fractional part is the better estimator (e.g. triangular loops). *)
  let depends_on_live e =
    List.exists (fun v -> List.mem v env.live) (Ast.free_vars e)
  in
  let raw = (hi -. lo) /. float_of_int l.step in
  let trips =
    if depends_on_live l.lo || depends_on_live l.hi then
      Float.max 0.0 (raw +. 1.0)
    else Float.max 0.0 (Float.floor raw +. 1.0)
  in
  let mid = (lo +. hi) /. 2.0 in
  (* Fully-folded expansion of this loop's lower bound over enclosing
     indices. *)
  let lo_expansion =
    let raw =
      List.filter_map
        (fun v ->
          match coeff env v l.lo with
          | c when c <> 0.0 -> Some (v, c)
          | _ -> None
          | exception Non_affine -> None)
        env.live
    in
    let lookup alist v =
      match List.assoc_opt v alist with Some c -> c | None -> 0.0
    in
    List.filter_map
      (fun v ->
        let extra =
          List.fold_left
            (fun acc (u, cu) ->
              match List.assoc_opt u env.expansion with
              | Some exp_u -> acc +. (cu *. lookup exp_u v)
              | None -> acc)
            0.0 raw
        in
        let total = lookup raw v +. extra in
        if total = 0.0 then None else Some (v, total))
      env.live
  in
  let env' =
    {
      values = (l.index, mid) :: env.values;
      live = l.index :: env.live;
      expansion =
        (if lo_expansion = [] then env.expansion
         else (l.index, lo_expansion) :: env.expansion);
    }
  in
  let accesses, flops, iops, stmts, loops =
    direct_stats ~env:env' ~dims l.body
  in
  let children = List.map (build_loop ~env:env' ~dims) loops in
  { index = l.index; trips; step = l.step; accesses; flops; iops; stmts;
    children }

let analyze ?(param_overrides = []) (kernel : Ast.kernel) =
  let params =
    List.map
      (fun (name, v) ->
        match List.assoc_opt name param_overrides with
        | Some v' -> (name, float_of_int v')
        | None -> (name, float_of_int v))
      kernel.params
  in
  let env = { values = params; live = []; expansion = [] } in
  let dims =
    List.map
      (fun (d : Ast.array_decl) ->
        let extents =
          Array.of_list
            (List.map
               (fun e -> try eval_avg env e with Non_affine -> 1.0)
               d.dims)
        in
        (d.array_name, extents))
      kernel.arrays
  in
  let array_elements =
    List.map
      (fun (name, extents) -> (name, Array.fold_left ( *. ) 1.0 extents))
      dims
  in
  let _, _, _, straightline, loops = direct_stats ~env ~dims kernel.body in
  let roots = List.map (build_loop ~env ~dims) loops in
  { roots; array_elements; straightline_stmts = straightline }

let rec fold_loops f acc ~entered node =
  let acc = f acc ~entered node in
  let inner_entered = entered *. node.trips in
  List.fold_left
    (fun acc child -> fold_loops f acc ~entered:inner_entered child)
    acc node.children

let fold t f init =
  List.fold_left (fun acc root -> fold_loops f acc ~entered:1.0 root) init
    t.roots

let total_iterations t =
  fold t (fun acc ~entered node -> acc +. (entered *. node.trips)) 0.0

let total_flops t =
  fold t (fun acc ~entered node -> acc +. (entered *. node.trips *. node.flops))
    0.0

let total_memory_accesses t =
  fold t
    (fun acc ~entered node ->
      acc
      +. entered *. node.trips
         *. float_of_int (List.length node.accesses))
    0.0

let rec innermost_code_size node =
  (* Instruction estimate: each assignment ~2 insts + its op counts; each
     nested loop contributes its body size once (code, not iterations). *)
  let own = (2.0 *. node.stmts) +. node.flops +. node.iops in
  List.fold_left
    (fun acc child -> acc +. innermost_code_size child +. 2.0)
    own node.children
