(** Abstract syntax for the loop-nest kernel IR.

    Kernels are the computational substrate of this reproduction: each SPAPT
    benchmark is expressed as a [kernel] value (either built programmatically
    or parsed from the textual DSL, see {!Parser}), optimization decisions
    are source-to-source transformations over it (see {!Transform}), and the
    machine model consumes static summaries of the transformed nest (see
    {!Analysis}).

    Index computations are integer-valued; array elements and scalar
    accumulators are floats.  Loop index variables are required to be unique
    within a kernel so that transformations can address loops by index name,
    mirroring the paper's "unroll factor for loop i1" phrasing. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** Float division. *)
  | Idiv  (** Truncated integer division. *)
  | Mod
  | Min
  | Max

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string  (** Scalar variable or loop index. *)
  | Index of string * expr list  (** Array element reference. *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Sqrt of expr

type cond =
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type lhs = Scalar_lhs of string | Array_lhs of string * expr list

type stmt =
  | Assign of lhs * expr
  | Seq of stmt list
  | For of loop
  | If of cond * stmt * stmt option

and loop = {
  index : string;  (** Loop index variable, unique within the kernel. *)
  lo : expr;  (** Inclusive lower bound. *)
  hi : expr;  (** Inclusive upper bound. *)
  step : int;  (** Positive constant stride. *)
  body : stmt;
}

type array_decl = {
  array_name : string;
  dims : expr list;  (** Dimension extents, in terms of kernel parameters. *)
}

type kernel = {
  kernel_name : string;
  params : (string * int) list;
      (** Problem-size parameters with default values. *)
  arrays : array_decl list;
  scalars : string list;  (** Float scalar temporaries, initialised to 0. *)
  body : stmt;
}

val for_ : string -> lo:expr -> hi:expr -> ?step:int -> stmt -> stmt
(** Smart constructor for a loop statement. *)

val seq : stmt list -> stmt
(** Flattens nested sequences and drops empty ones. *)

val i : int -> expr
val f : float -> expr
val v : string -> expr
val idx : string -> expr list -> expr

(** Expression-building operators, kept in a submodule so that opening
    {!Ast} does not shadow integer arithmetic. *)
module Infix : sig
  val ( + ) : expr -> expr -> expr
  val ( - ) : expr -> expr -> expr
  val ( * ) : expr -> expr -> expr
  val ( / ) : expr -> expr -> expr
end

val free_vars : expr -> string list
(** Scalar / index variables referenced by an expression, without
    duplicates. *)

val loop_indices : stmt -> string list
(** Index variables of all loops in the statement, outermost first
    (pre-order). *)

val find_loop : stmt -> string -> loop option
(** [find_loop s index] is the loop with the given index variable. *)

val subst : var:string -> by:expr -> stmt -> stmt
(** Capture-avoiding-enough substitution of a loop index by an expression:
    loops binding [var] shadow it. *)

val subst_expr : var:string -> by:expr -> expr -> expr

type validation_error =
  | Duplicate_loop_index of string
  | Unbound_variable of string
  | Unknown_array of string
  | Arity_mismatch of string * int * int
      (** array, declared rank, used rank *)
  | Nonpositive_step of string

val pp_validation_error : Format.formatter -> validation_error -> unit

val validate : kernel -> (unit, validation_error) result
(** Structural well-formedness: loop indices unique, every variable bound
    (parameter, scalar, or enclosing loop index), arrays declared and used
    at their declared rank, steps positive. *)
