(** Reference interpreter for the kernel IR.

    The interpreter exists to give the IR an executable semantics against
    which transformations are checked: the property-test suite runs original
    and transformed kernels on identical random inputs and compares outputs
    bit-for-bit.  Array elements are floats; index expressions must evaluate
    to integers. *)

type env
(** Mutable execution environment: parameter bindings, scalar values, and
    array storage. *)

exception Runtime_error of string
(** Raised on out-of-bounds access, type confusion (float used as index),
    division by zero in index arithmetic, or a reference to a missing
    variable. *)

val init :
  ?param_overrides:(string * int) list ->
  ?array_init:(string -> int -> float) ->
  Ast.kernel ->
  env
(** [init kernel] allocates every declared array (flattened, row-major) and
    binds parameters to their defaults, overridden by [param_overrides].
    [array_init name i] gives the initial value of flat element [i] of array
    [name]; default is [0.]. *)

val run : env -> Ast.kernel -> unit
(** Execute the kernel body. *)

val read_array : env -> string -> float array
(** Copy of an array's current contents (flattened row-major). *)

val read_scalar : env -> string -> float

val param : env -> string -> int
(** Value of a problem-size parameter. *)

val eval_int_expr : env -> Ast.expr -> int
(** Evaluate an index-typed expression in the current environment (loop
    indices visible only during {!run}; intended for bounds made of
    parameters and literals). *)

val set_access_hook : env -> (string -> int -> bool -> unit) -> unit
(** Install a callback invoked on every array load/store with the array
    name, the flat element offset, and whether it is a write — the hook
    the trace-driven cache simulator uses to observe the exact memory
    access stream of a kernel execution. *)

val array_extent : env -> string -> int
(** Total flattened element count of an array (for address-space
    layout). *)

val run_kernel :
  ?param_overrides:(string * int) list ->
  ?array_init:(string -> int -> float) ->
  Ast.kernel ->
  (string * float array) list
(** Convenience: init, run, and return all arrays' final contents. *)
