type token =
  | Kernel
  | Array
  | Scalar
  | For
  | To
  | Step
  | If
  | Else
  | Sqrt_kw
  | Min_kw
  | Max_kw
  | Ident of string
  | Int of int
  | Float of float
  | Plus
  | Minus
  | Star
  | Slash
  | Percent_slash
  | Percent
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Assign_op
  | Eq_op
  | Ne_op
  | Lt_op
  | Le_op
  | Gt_op
  | Ge_op
  | And_op
  | Or_op
  | Bang
  | Eof

type position = { line : int; column : int }
type located = { token : token; pos : position }

exception Lex_error of string * position

let keyword_table =
  [
    ("kernel", Kernel);
    ("array", Array);
    ("scalar", Scalar);
    ("for", For);
    ("to", To);
    ("step", Step);
    ("if", If);
    ("else", Else);
    ("sqrt", Sqrt_kw);
    ("min", Min_kw);
    ("max", Max_kw);
  ]

let token_to_string = function
  | Kernel -> "kernel"
  | Array -> "array"
  | Scalar -> "scalar"
  | For -> "for"
  | To -> "to"
  | Step -> "step"
  | If -> "if"
  | Else -> "else"
  | Sqrt_kw -> "sqrt"
  | Min_kw -> "min"
  | Max_kw -> "max"
  | Ident s -> s
  | Int n -> string_of_int n
  | Float x -> string_of_float x
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent_slash -> "%/"
  | Percent -> "%"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semicolon -> ";"
  | Assign_op -> "="
  | Eq_op -> "=="
  | Ne_op -> "!="
  | Lt_op -> "<"
  | Le_op -> "<="
  | Gt_op -> ">"
  | Ge_op -> ">="
  | And_op -> "&&"
  | Or_op -> "||"
  | Bang -> "!"
  | Eof -> "<eof>"

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable column : int;
}

let peek st =
  if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1]
  else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.column <- 1
  | Some _ -> st.column <- st.column + 1
  | None -> ());
  st.offset <- st.offset + 1

let position st = { line = st.line; column = st.column }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '#' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some _ | None -> ()

let lex_number st pos =
  let start = st.offset in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with
      | Some ('+' | '-') -> advance st
      | _ -> ());
      if not (match peek st with Some c -> is_digit c | None -> false) then
        raise (Lex_error ("malformed exponent", position st));
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  let text = String.sub st.src start (st.offset - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> raise (Lex_error ("integer literal out of range", pos))

let lex_ident st =
  let start = st.offset in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.offset - start) in
  match List.assoc_opt text keyword_table with
  | Some kw -> kw
  | None -> Ident text

let next_token st =
  skip_trivia st;
  let pos = position st in
  let tok =
    match peek st with
    | None -> Eof
    | Some c when is_digit c -> lex_number st pos
    | Some c when is_ident_start c -> lex_ident st
    | Some c ->
        let two first second result =
          advance st;
          match peek st with
          | Some c when c = second ->
              advance st;
              result
          | _ -> first
        in
        (match c with
        | '+' ->
            advance st;
            Plus
        | '-' ->
            advance st;
            Minus
        | '*' ->
            advance st;
            Star
        | '/' ->
            advance st;
            Slash
        | '%' -> two Percent '/' Percent_slash
        | '(' ->
            advance st;
            Lparen
        | ')' ->
            advance st;
            Rparen
        | '{' ->
            advance st;
            Lbrace
        | '}' ->
            advance st;
            Rbrace
        | '[' ->
            advance st;
            Lbracket
        | ']' ->
            advance st;
            Rbracket
        | ',' ->
            advance st;
            Comma
        | ';' ->
            advance st;
            Semicolon
        | '=' -> two Assign_op '=' Eq_op
        | '<' -> two Lt_op '=' Le_op
        | '>' -> two Gt_op '=' Ge_op
        | '!' -> two Bang '=' Ne_op
        | '&' -> (
            advance st;
            match peek st with
            | Some '&' ->
                advance st;
                And_op
            | _ -> raise (Lex_error ("expected && ", pos)))
        | '|' -> (
            advance st;
            match peek st with
            | Some '|' ->
                advance st;
                Or_op
            | _ -> raise (Lex_error ("expected ||", pos)))
        | c ->
            raise
              (Lex_error (Printf.sprintf "illegal character %C" c, pos)))
  in
  { token = tok; pos }

let tokenize src =
  let st = { src; offset = 0; line = 1; column = 1 } in
  let acc = ref [] in
  let rec loop () =
    let t = next_token st in
    acc := t :: !acc;
    if t.token <> Eof then loop ()
  in
  loop ();
  Array.of_list (List.rev !acc)
