exception Parse_error of string * Lexer.position

type state = { tokens : Lexer.located array; mutable cursor : int }

let current st = st.tokens.(st.cursor)

let fail st fmt =
  Format.kasprintf (fun s -> raise (Parse_error (s, (current st).pos))) fmt

let advance st =
  if st.cursor < Array.length st.tokens - 1 then st.cursor <- st.cursor + 1

let expect st token =
  let { Lexer.token = t; _ } = current st in
  if t = token then advance st
  else
    fail st "expected %s but found %s" (Lexer.token_to_string token)
      (Lexer.token_to_string t)

let accept st token =
  if (current st).token = token then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match (current st).token with
  | Ident name ->
      advance st;
      name
  | t -> fail st "expected an identifier, found %s" (Lexer.token_to_string t)

let expect_int st =
  match (current st).token with
  | Int n ->
      advance st;
      n
  | t -> fail st "expected an integer, found %s" (Lexer.token_to_string t)

let rec parse_expr_prec st =
  let lhs = parse_term st in
  let rec loop lhs =
    match (current st).token with
    | Plus ->
        advance st;
        loop (Ast.Binop (Add, lhs, parse_term st))
    | Minus ->
        advance st;
        loop (Ast.Binop (Sub, lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop lhs =
    match (current st).token with
    | Star ->
        advance st;
        loop (Ast.Binop (Mul, lhs, parse_factor st))
    | Slash ->
        advance st;
        loop (Ast.Binop (Div, lhs, parse_factor st))
    | Percent_slash ->
        advance st;
        loop (Ast.Binop (Idiv, lhs, parse_factor st))
    | Percent ->
        advance st;
        loop (Ast.Binop (Mod, lhs, parse_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_factor st =
  match (current st).token with
  | Int n ->
      advance st;
      Ast.Int_lit n
  | Float x ->
      advance st;
      Ast.Float_lit x
  | Minus ->
      advance st;
      Ast.Neg (parse_factor st)
  | Sqrt_kw ->
      advance st;
      expect st Lexer.Lparen;
      let e = parse_expr_prec st in
      expect st Lexer.Rparen;
      Ast.Sqrt e
  | Min_kw | Max_kw ->
      let op =
        if (current st).token = Lexer.Min_kw then Ast.Min else Ast.Max
      in
      advance st;
      expect st Lexer.Lparen;
      let a = parse_expr_prec st in
      expect st Lexer.Comma;
      let b = parse_expr_prec st in
      expect st Lexer.Rparen;
      Ast.Binop (op, a, b)
  | Lparen ->
      advance st;
      let e = parse_expr_prec st in
      expect st Lexer.Rparen;
      e
  | Ident name ->
      advance st;
      let rec indices acc =
        if accept st Lexer.Lbracket then begin
          let e = parse_expr_prec st in
          expect st Lexer.Rbracket;
          indices (e :: acc)
        end
        else List.rev acc
      in
      let idx = indices [] in
      if idx = [] then Ast.Var name else Ast.Index (name, idx)
  | t -> fail st "expected an expression, found %s" (Lexer.token_to_string t)

let cmpop_of_token = function
  | Lexer.Eq_op -> Some Ast.Eq
  | Lexer.Ne_op -> Some Ast.Ne
  | Lexer.Lt_op -> Some Ast.Lt
  | Lexer.Le_op -> Some Ast.Le
  | Lexer.Gt_op -> Some Ast.Gt
  | Lexer.Ge_op -> Some Ast.Ge
  | _ -> None

let rec parse_cond st =
  let lhs = parse_conj st in
  if accept st Lexer.Or_op then Ast.Or (lhs, parse_cond st) else lhs

and parse_conj st =
  let lhs = parse_cond_atom st in
  if accept st Lexer.And_op then Ast.And (lhs, parse_conj st) else lhs

and parse_cond_atom st =
  match (current st).token with
  | Bang ->
      advance st;
      expect st Lexer.Lparen;
      let c = parse_cond st in
      expect st Lexer.Rparen;
      Ast.Not c
  | Lparen -> (
      (* "(" is ambiguous between a parenthesized condition and a
         parenthesized arithmetic sub-expression; speculate on the
         condition reading and backtrack to the comparison reading. *)
      let saved = st.cursor in
      match
        advance st;
        let c = parse_cond st in
        expect st Lexer.Rparen;
        c
      with
      | c -> c
      | exception Parse_error _ ->
          st.cursor <- saved;
          parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
  let lhs = parse_expr_prec st in
  match cmpop_of_token (current st).token with
  | Some op ->
      advance st;
      Ast.Cmp (op, lhs, parse_expr_prec st)
  | None ->
      fail st "expected a comparison operator, found %s"
        (Lexer.token_to_string (current st).token)

let rec parse_stmt_one st =
  match (current st).token with
  | For ->
      advance st;
      let index = expect_ident st in
      expect st Lexer.Assign_op;
      let lo = parse_expr_prec st in
      expect st Lexer.To;
      let hi = parse_expr_prec st in
      let step = if accept st Lexer.Step then expect_int st else 1 in
      let body = parse_block st in
      Ast.For { index; lo; hi; step; body }
  | If ->
      advance st;
      let c = parse_cond st in
      let then_ = parse_block st in
      let else_ =
        if accept st Lexer.Else then Some (parse_block st) else None
      in
      Ast.If (c, then_, else_)
  | Ident name ->
      advance st;
      let rec indices acc =
        if accept st Lexer.Lbracket then begin
          let e = parse_expr_prec st in
          expect st Lexer.Rbracket;
          indices (e :: acc)
        end
        else List.rev acc
      in
      let idx = indices [] in
      expect st Lexer.Assign_op;
      let rhs = parse_expr_prec st in
      expect st Lexer.Semicolon;
      let lhs =
        if idx = [] then Ast.Scalar_lhs name else Ast.Array_lhs (name, idx)
      in
      Ast.Assign (lhs, rhs)
  | t -> fail st "expected a statement, found %s" (Lexer.token_to_string t)

and parse_block st =
  expect st Lexer.Lbrace;
  let rec loop acc =
    if (current st).token = Lexer.Rbrace then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt_one st :: acc)
  in
  Ast.seq (loop [])

let parse_decls st =
  let arrays = ref [] in
  let scalars = ref [] in
  let rec loop () =
    match (current st).token with
    | Array ->
        advance st;
        let name = expect_ident st in
        let rec dims acc =
          if accept st Lexer.Lbracket then begin
            let e = parse_expr_prec st in
            expect st Lexer.Rbracket;
            dims (e :: acc)
          end
          else List.rev acc
        in
        let dims = dims [] in
        if dims = [] then fail st "array %s needs at least one dimension" name;
        expect st Lexer.Semicolon;
        arrays := { Ast.array_name = name; dims } :: !arrays;
        loop ()
    | Scalar ->
        advance st;
        let name = expect_ident st in
        expect st Lexer.Semicolon;
        scalars := name :: !scalars;
        loop ()
    | _ -> ()
  in
  loop ();
  (List.rev !arrays, List.rev !scalars)

let parse_kernel_state st =
  expect st Lexer.Kernel;
  let name = expect_ident st in
  expect st Lexer.Lparen;
  let rec params acc =
    match (current st).token with
    | Rparen ->
        advance st;
        List.rev acc
    | _ ->
        let p = expect_ident st in
        expect st Lexer.Assign_op;
        let value = expect_int st in
        let acc = (p, value) :: acc in
        if accept st Lexer.Comma then params acc
        else begin
          expect st Lexer.Rparen;
          List.rev acc
        end
  in
  let params = params [] in
  expect st Lexer.Lbrace;
  let arrays, scalars = parse_decls st in
  let rec stmts acc =
    if (current st).token = Lexer.Rbrace then begin
      advance st;
      List.rev acc
    end
    else stmts (parse_stmt_one st :: acc)
  in
  let body = Ast.seq (stmts []) in
  let kernel = { Ast.kernel_name = name; params; arrays; scalars; body } in
  (match Ast.validate kernel with
  | Ok () -> ()
  | Error err ->
      fail st "invalid kernel: %a" Ast.pp_validation_error err);
  kernel

let with_tokens src f =
  let st = { tokens = Lexer.tokenize src; cursor = 0 } in
  let result = f st in
  (match (current st).token with
  | Eof -> ()
  | t -> fail st "trailing input starting at %s" (Lexer.token_to_string t));
  result

let parse_kernel src = with_tokens src parse_kernel_state
let parse_expr src = with_tokens src parse_expr_prec

let parse_stmt src =
  with_tokens src (fun st ->
      let rec loop acc =
        if (current st).token = Lexer.Eof then List.rev acc
        else loop (parse_stmt_one st :: acc)
      in
      Ast.seq (loop []))
