exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type value = Vint of int | Vfloat of float

type array_storage = { data : float array; dims : int array }

type env = {
  params : (string, int) Hashtbl.t;
  scalars : (string, float) Hashtbl.t;
  arrays : (string, array_storage) Hashtbl.t;
  indices : (string, int) Hashtbl.t;  (* live loop indices *)
  mutable access_hook : (string -> int -> bool -> unit) option;
      (* array, flat offset, is_write: called on every load/store *)
}

let param env name =
  match Hashtbl.find_opt env.params name with
  | Some v -> v
  | None -> error "unknown parameter %s" name

let as_int = function
  | Vint n -> n
  | Vfloat x -> error "expected an integer value, got float %g" x

let as_float = function Vint n -> float_of_int n | Vfloat x -> x

let rec eval env (e : Ast.expr) =
  match e with
  | Int_lit n -> Vint n
  | Float_lit x -> Vfloat x
  | Var x -> (
      match Hashtbl.find_opt env.indices x with
      | Some n -> Vint n
      | None -> (
          match Hashtbl.find_opt env.params x with
          | Some n -> Vint n
          | None -> (
              match Hashtbl.find_opt env.scalars x with
              | Some f -> Vfloat f
              | None -> error "unbound variable %s" x)))
  | Index (a, indices) -> Vfloat (load env a indices)
  | Binop (op, a, b) -> eval_binop env op a b
  | Neg a -> (
      match eval env a with
      | Vint n -> Vint (-n)
      | Vfloat x -> Vfloat (-.x))
  | Sqrt a -> Vfloat (sqrt (as_float (eval env a)))

and eval_binop env (op : Ast.binop) a b =
  let va = eval env a and vb = eval env b in
  match (op, va, vb) with
  | Min, Vint x, Vint y -> Vint (Stdlib.min x y)
  | Max, Vint x, Vint y -> Vint (Stdlib.max x y)
  | Min, _, _ -> Vfloat (Float.min (as_float va) (as_float vb))
  | Max, _, _ -> Vfloat (Float.max (as_float va) (as_float vb))
  | Add, Vint x, Vint y -> Vint (x + y)
  | Sub, Vint x, Vint y -> Vint (x - y)
  | Mul, Vint x, Vint y -> Vint (x * y)
  | Idiv, Vint x, Vint y ->
      if y = 0 then error "integer division by zero" else Vint (x / y)
  | Mod, Vint x, Vint y ->
      if y = 0 then error "modulo by zero" else Vint (x mod y)
  | (Idiv | Mod), _, _ -> error "integer division applied to float operands"
  | Add, _, _ -> Vfloat (as_float va +. as_float vb)
  | Sub, _, _ -> Vfloat (as_float va -. as_float vb)
  | Mul, _, _ -> Vfloat (as_float va *. as_float vb)
  | Div, _, _ -> Vfloat (as_float va /. as_float vb)

and flat_offset env a indices =
  match Hashtbl.find_opt env.arrays a with
  | None -> error "unknown array %s" a
  | Some storage ->
      let rank = Array.length storage.dims in
      if List.length indices <> rank then
        error "array %s used with rank %d, declared %d" a
          (List.length indices) rank;
      let offset = ref 0 in
      List.iteri
        (fun k e ->
          let idx = as_int (eval env e) in
          let extent = storage.dims.(k) in
          if idx < 0 || idx >= extent then
            error "index %d out of bounds [0,%d) in dimension %d of %s" idx
              extent k a;
          offset := (!offset * extent) + idx)
        indices;
      (storage, !offset)

and load env a indices =
  let storage, off = flat_offset env a indices in
  (match env.access_hook with Some f -> f a off false | None -> ());
  storage.data.(off)

let store env a indices value =
  let storage, off = flat_offset env a indices in
  (match env.access_hook with Some f -> f a off true | None -> ());
  storage.data.(off) <- value

let rec eval_cond env (c : Ast.cond) =
  match c with
  | Cmp (op, a, b) ->
      let x = as_float (eval env a) and y = as_float (eval env b) in
      (match op with
      | Eq -> x = y
      | Ne -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y)
  | And (a, b) -> eval_cond env a && eval_cond env b
  | Or (a, b) -> eval_cond env a || eval_cond env b
  | Not a -> not (eval_cond env a)

let rec exec env (s : Ast.stmt) =
  match s with
  | Assign (Scalar_lhs x, e) ->
      if not (Hashtbl.mem env.scalars x) then error "unknown scalar %s" x;
      Hashtbl.replace env.scalars x (as_float (eval env e))
  | Assign (Array_lhs (a, indices), e) ->
      store env a indices (as_float (eval env e))
  | Seq ss -> List.iter (exec env) ss
  | For { index; lo; hi; step; body } ->
      let lo = as_int (eval env lo) and hi = as_int (eval env hi) in
      let saved = Hashtbl.find_opt env.indices index in
      let i = ref lo in
      while !i <= hi do
        Hashtbl.replace env.indices index !i;
        exec env body;
        i := !i + step
      done;
      (match saved with
      | Some v -> Hashtbl.replace env.indices index v
      | None -> Hashtbl.remove env.indices index)
  | If (c, t, e) ->
      if eval_cond env c then exec env t
      else Option.iter (exec env) e

let init ?(param_overrides = []) ?(array_init = fun _ _ -> 0.0)
    (kernel : Ast.kernel) =
  let env =
    {
      params = Hashtbl.create 8;
      scalars = Hashtbl.create 8;
      arrays = Hashtbl.create 8;
      indices = Hashtbl.create 8;
      access_hook = None;
    }
  in
  List.iter (fun (name, value) -> Hashtbl.replace env.params name value)
    kernel.params;
  List.iter
    (fun (name, value) ->
      if not (Hashtbl.mem env.params name) then
        error "override for unknown parameter %s" name;
      Hashtbl.replace env.params name value)
    param_overrides;
  List.iter (fun s -> Hashtbl.replace env.scalars s 0.0) kernel.scalars;
  List.iter
    (fun (d : Ast.array_decl) ->
      let dims =
        Array.of_list (List.map (fun e -> as_int (eval env e)) d.dims)
      in
      Array.iter
        (fun extent ->
          if extent <= 0 then
            error "array %s has non-positive extent %d" d.array_name extent)
        dims;
      let size = Array.fold_left ( * ) 1 dims in
      let data = Array.init size (array_init d.array_name) in
      Hashtbl.replace env.arrays d.array_name { data; dims })
    kernel.arrays;
  env

let run env (kernel : Ast.kernel) = exec env kernel.body

let read_array env name =
  match Hashtbl.find_opt env.arrays name with
  | Some storage -> Array.copy storage.data
  | None -> error "unknown array %s" name

let read_scalar env name =
  match Hashtbl.find_opt env.scalars name with
  | Some v -> v
  | None -> error "unknown scalar %s" name

let eval_int_expr env e = as_int (eval env e)

let run_kernel ?param_overrides ?array_init (kernel : Ast.kernel) =
  let env = init ?param_overrides ?array_init kernel in
  run env kernel;
  List.map
    (fun (d : Ast.array_decl) -> (d.array_name, read_array env d.array_name))
    kernel.arrays

let set_access_hook env f = env.access_hook <- Some f

let array_extent env name =
  match Hashtbl.find_opt env.arrays name with
  | Some storage -> Array.length storage.data
  | None -> error "unknown array %s" name
