(** Source-to-source loop transformations over the kernel IR.

    These are the optimization decisions whose parameters the active
    learner tunes: per-loop unroll factors, cache-tile sizes (strip-mine +
    interchange), and register tiling (unroll-and-jam).  Every transformation
    is semantics-preserving for the programs it accepts; legality is checked
    structurally and violations are reported as {!error} rather than
    silently producing wrong code. *)

type error =
  | Loop_not_found of string
  | Bad_factor of string * int  (** loop, offending factor *)
  | Not_perfectly_nested of string * string  (** outer, inner *)
  | Unsafe_jam of string
      (** Unroll-and-jam refused: some array write does not depend on the
          jammed index, so copies could collide. *)
  | Name_clash of string  (** Generated index name already in use. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val unroll :
  index:string -> factor:int -> Ast.kernel -> (Ast.kernel, error) result
(** [unroll ~index ~factor k] replicates the body of loop [index] [factor]
    times, multiplying its step, and appends a remainder loop covering trip
    counts not divisible by [factor].  [factor = 1] is the identity. *)

val strip_mine :
  index:string ->
  tile:int ->
  tile_index:string ->
  Ast.kernel ->
  (Ast.kernel, error) result
(** [strip_mine ~index ~tile ~tile_index k] splits loop [index] into an
    outer loop [tile_index] over tile origins and an inner loop [index]
    over at most [tile] iterations.  Always legal. *)

val interchange :
  outer:string -> inner:string -> Ast.kernel -> (Ast.kernel, error) result
(** Swap two adjacent loops of a perfect nest ([inner] must be the entire
    body of [outer], and its bounds must not depend on [outer]'s index). *)

val tile_nest :
  (string * int) list -> Ast.kernel -> (Ast.kernel, error) result
(** [tile_nest [(i1, t1); (i2, t2); ...] k] rectangularly tiles the perfect
    nest formed by the listed loops (outermost first): each loop is
    strip-mined by its tile size and all tile loops are hoisted above all
    point loops.  A tile size of 1 leaves that loop untouched.  Tile-loop
    indices are derived as ["<index>_t"]. *)

val unroll_and_jam :
  index:string -> factor:int -> Ast.kernel -> (Ast.kernel, error) result
(** Register tiling: unroll the non-innermost loop [index] by [factor] and
    fuse the copies of its (single, perfectly nested) inner loop.  Refused
    with [Unsafe_jam] unless every array write under the loop uses [index]
    in its subscripts.  A remainder loop handles leftover iterations. *)

val skew :
  outer:string -> inner:string -> factor:int -> Ast.kernel ->
  (Ast.kernel, error) result
(** Loop skewing: reindex the perfectly nested [inner] loop as
    [inner' = inner + factor * outer].  A unimodular change of basis —
    always semantics-preserving — whose point is to make interchange legal
    on wavefront-style recurrences (a [(<, >)] dependence becomes
    [(<, <=)] once skewed far enough). *)

val reverse : index:string -> Ast.kernel -> (Ast.kernel, error) result
(** Iterate the loop backwards (via [i -> lo + hi - i]).  Refused with
    [Unsafe_jam] when the loop carries a dependence (reversal flips its
    direction). *)

val fuse :
  first:string -> second:string -> Ast.kernel -> (Ast.kernel, error) result
(** Fuse two adjacent sibling loops with identical bounds and step into
    one loop running both bodies.  Conservatively refused (as
    [Unsafe_jam first]) unless every dependence between the two bodies is
    iteration-wise aligned (direction [=] at the fused index), which rules
    out the classic fusion-preventing backward dependence. *)

val distribute : index:string -> Ast.kernel -> (Ast.kernel, error) result
(** Split a loop whose body is a sequence into one loop per statement
    (loop fission).  Conservatively refused unless all dependences between
    different body statements are aligned ([=]) at the loop index, so no
    cross-statement value flows between iterations get reordered. *)

val apply_all :
  (Ast.kernel -> (Ast.kernel, error) result) list ->
  Ast.kernel ->
  (Ast.kernel, error) result
(** Left-to-right composition, stopping at the first error. *)
