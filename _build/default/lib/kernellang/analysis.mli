(** Static analysis of (transformed) kernels for the machine cost model.

    The analysis reduces a kernel to a tree of {!loop_node}s annotated with
    average trip counts and, for every array access, the affine stride of
    its flattened element offset with respect to each live loop index.
    Bounds that depend on enclosing indices (triangular loops, tile edges)
    are handled by evaluating them with enclosing indices bound to their
    mid-range value, giving average trip counts; this keeps the analysis a
    fast closed form, which matters because the autotuning experiments
    evaluate hundreds of thousands of configurations. *)

type access = {
  array : string;
  is_write : bool;
  coeffs : (string * float) list;
      (** Flat element-offset stride per unit increment of each loop index
          appearing in the subscripts.  Indices with zero coefficient are
          omitted. *)
  offset : float;
      (** Constant term of the flattened affine offset (all live indices at
          zero); distinguishes translated copies of the same stream, which
          unrolling produces. *)
  affine : bool;
      (** [false] when some subscript is not affine in the loop indices;
          such accesses are treated as worst-case (gather) by the machine
          model. *)
}

type loop_node = {
  index : string;
  trips : float;  (** Average trip count (>= 0). *)
  step : int;
  accesses : access list;
      (** Accesses of statements directly under this loop, excluding
          statements inside nested loops. *)
  flops : float;  (** Float operations per iteration in direct statements. *)
  iops : float;  (** Integer (subscript) operations per iteration. *)
  stmts : float;  (** Direct assignment count per iteration. *)
  children : loop_node list;
}

type t = {
  roots : loop_node list;
  array_elements : (string * float) list;
      (** Total element count per declared array. *)
  straightline_stmts : float;
      (** Assignments outside any loop (usually initialisation). *)
}

val total_iterations : t -> float
(** Sum over all loops of (times entered × trips): total loop iterations
    executed, the quantity the per-iteration loop overhead multiplies. *)

val total_flops : t -> float
val total_memory_accesses : t -> float

val innermost_code_size : loop_node -> float
(** Rough instruction count of one iteration of this loop including nested
    loops' bodies — the quantity compared against the I-cache capacity to
    model unrolling's code bloat. *)

val analyze : ?param_overrides:(string * int) list -> Ast.kernel -> t
(** Analyze a kernel under its default (or overridden) problem-size
    parameters. *)
