(** Pretty-printing of kernels back to the textual DSL accepted by
    {!Parser}.  [Parser.parse_kernel (to_string k)] round-trips any valid
    kernel, which the test suite checks by property. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_cond : Format.formatter -> Ast.cond -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_kernel : Format.formatter -> Ast.kernel -> unit
val to_string : Ast.kernel -> string
val stmt_to_string : Ast.stmt -> string
