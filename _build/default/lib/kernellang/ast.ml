type binop = Add | Sub | Mul | Div | Idiv | Mod | Min | Max
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list
  | Binop of binop * expr * expr
  | Neg of expr
  | Sqrt of expr

type cond =
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type lhs = Scalar_lhs of string | Array_lhs of string * expr list

type stmt =
  | Assign of lhs * expr
  | Seq of stmt list
  | For of loop
  | If of cond * stmt * stmt option

and loop = { index : string; lo : expr; hi : expr; step : int; body : stmt }

type array_decl = { array_name : string; dims : expr list }

type kernel = {
  kernel_name : string;
  params : (string * int) list;
  arrays : array_decl list;
  scalars : string list;
  body : stmt;
}

let for_ index ~lo ~hi ?(step = 1) body = For { index; lo; hi; step; body }

let seq stmts =
  let rec flatten s acc =
    match s with
    | Seq ss -> List.fold_right flatten ss acc
    | other -> other :: acc
  in
  match List.fold_right flatten stmts [] with
  | [ single ] -> single
  | ss -> Seq ss

let i n = Int_lit n
let f x = Float_lit x
let v name = Var name
let idx name indices = Index (name, indices)
module Infix = struct
  let ( + ) a b = Binop (Add, a, b)
  let ( - ) a b = Binop (Sub, a, b)
  let ( * ) a b = Binop (Mul, a, b)
  let ( / ) a b = Binop (Div, a, b)
end

let rec free_vars_acc e acc =
  match e with
  | Int_lit _ | Float_lit _ -> acc
  | Var x -> if List.mem x acc then acc else x :: acc
  | Index (_, indices) -> List.fold_right free_vars_acc indices acc
  | Binop (_, a, b) -> free_vars_acc a (free_vars_acc b acc)
  | Neg a | Sqrt a -> free_vars_acc a acc

let free_vars e = free_vars_acc e []

let rec loop_indices = function
  | Assign _ -> []
  | Seq ss -> List.concat_map loop_indices ss
  | For l -> l.index :: loop_indices l.body
  | If (_, t, e) -> (
      loop_indices t @ match e with None -> [] | Some e -> loop_indices e)

let rec find_loop s index =
  match s with
  | Assign _ -> None
  | Seq ss -> List.find_map (fun s -> find_loop s index) ss
  | For l -> if l.index = index then Some l else find_loop l.body index
  | If (_, t, e) -> (
      match find_loop t index with
      | Some _ as r -> r
      | None -> ( match e with None -> None | Some e -> find_loop e index))

let rec subst_expr ~var ~by e =
  match e with
  | Int_lit _ | Float_lit _ -> e
  | Var x -> if x = var then by else e
  | Index (a, indices) -> Index (a, List.map (subst_expr ~var ~by) indices)
  | Binop (op, a, b) -> Binop (op, subst_expr ~var ~by a, subst_expr ~var ~by b)
  | Neg a -> Neg (subst_expr ~var ~by a)
  | Sqrt a -> Sqrt (subst_expr ~var ~by a)

let rec subst_cond ~var ~by c =
  match c with
  | Cmp (op, a, b) -> Cmp (op, subst_expr ~var ~by a, subst_expr ~var ~by b)
  | And (a, b) -> And (subst_cond ~var ~by a, subst_cond ~var ~by b)
  | Or (a, b) -> Or (subst_cond ~var ~by a, subst_cond ~var ~by b)
  | Not a -> Not (subst_cond ~var ~by a)

let subst_lhs ~var ~by l =
  match l with
  | Scalar_lhs _ -> l
  | Array_lhs (a, indices) ->
      Array_lhs (a, List.map (subst_expr ~var ~by) indices)

let rec subst ~var ~by s =
  match s with
  | Assign (l, e) -> Assign (subst_lhs ~var ~by l, subst_expr ~var ~by e)
  | Seq ss -> Seq (List.map (subst ~var ~by) ss)
  | For l ->
      let lo = subst_expr ~var ~by l.lo and hi = subst_expr ~var ~by l.hi in
      (* A loop binding [var] shadows the substitution in its body. *)
      if l.index = var then For { l with lo; hi }
      else For { l with lo; hi; body = subst ~var ~by l.body }
  | If (c, t, e) ->
      If
        ( subst_cond ~var ~by c,
          subst ~var ~by t,
          Option.map (subst ~var ~by) e )

type validation_error =
  | Duplicate_loop_index of string
  | Unbound_variable of string
  | Unknown_array of string
  | Arity_mismatch of string * int * int
  | Nonpositive_step of string

let pp_validation_error ppf = function
  | Duplicate_loop_index x -> Format.fprintf ppf "duplicate loop index %s" x
  | Unbound_variable x -> Format.fprintf ppf "unbound variable %s" x
  | Unknown_array a -> Format.fprintf ppf "unknown array %s" a
  | Arity_mismatch (a, declared, used) ->
      Format.fprintf ppf "array %s declared with rank %d but used with rank %d"
        a declared used
  | Nonpositive_step x ->
      Format.fprintf ppf "loop %s has a non-positive step" x

exception Invalid of validation_error

let validate kernel =
  let array_rank =
    List.map (fun d -> (d.array_name, List.length d.dims)) kernel.arrays
  in
  let check_array a used =
    match List.assoc_opt a array_rank with
    | None -> raise (Invalid (Unknown_array a))
    | Some declared ->
        if declared <> used then
          raise (Invalid (Arity_mismatch (a, declared, used)))
  in
  let check_var bound x =
    let known =
      List.mem x bound
      || List.mem_assoc x kernel.params
      || List.mem x kernel.scalars
    in
    if not known then raise (Invalid (Unbound_variable x))
  in
  let rec check_expr bound e =
    match e with
    | Int_lit _ | Float_lit _ -> ()
    | Var x -> check_var bound x
    | Index (a, indices) ->
        check_array a (List.length indices);
        List.iter (check_expr bound) indices
    | Binop (_, a, b) ->
        check_expr bound a;
        check_expr bound b
    | Neg a | Sqrt a -> check_expr bound a
  in
  let rec check_cond bound c =
    match c with
    | Cmp (_, a, b) ->
        check_expr bound a;
        check_expr bound b
    | And (a, b) | Or (a, b) ->
        check_cond bound a;
        check_cond bound b
    | Not a -> check_cond bound a
  in
  let rec check_stmt bound s =
    match s with
    | Assign (Scalar_lhs x, e) ->
        check_var bound x;
        check_expr bound e
    | Assign (Array_lhs (a, indices), e) ->
        check_array a (List.length indices);
        List.iter (check_expr bound) indices;
        check_expr bound e
    | Seq ss -> List.iter (check_stmt bound) ss
    | For l ->
        if l.step <= 0 then raise (Invalid (Nonpositive_step l.index));
        check_expr bound l.lo;
        check_expr bound l.hi;
        check_stmt (l.index :: bound) l.body
    | If (c, t, e) ->
        check_cond bound c;
        check_stmt bound t;
        Option.iter (check_stmt bound) e
  in
  let check_unique_indices () =
    let indices = loop_indices kernel.body in
    let rec dup = function
      | [] -> None
      | x :: rest -> if List.mem x rest then Some x else dup rest
    in
    match dup indices with
    | Some x -> raise (Invalid (Duplicate_loop_index x))
    | None -> ()
  in
  match
    check_unique_indices ();
    List.iter
      (fun d -> List.iter (check_expr []) d.dims)
      kernel.arrays;
    check_stmt [] kernel.body
  with
  | () -> Ok ()
  | exception Invalid err -> Error err
