(** Hand-written lexer for the kernel DSL.  Produces the token stream
    consumed by {!Parser}; every token carries its source position for
    error reporting. *)

type token =
  | Kernel
  | Array
  | Scalar
  | For
  | To
  | Step
  | If
  | Else
  | Sqrt_kw
  | Min_kw
  | Max_kw
  | Ident of string
  | Int of int
  | Float of float
  | Plus
  | Minus
  | Star
  | Slash
  | Percent_slash  (** [%/], integer division. *)
  | Percent  (** [%], modulo. *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Assign_op  (** [=] *)
  | Eq_op  (** [==] *)
  | Ne_op
  | Lt_op
  | Le_op
  | Gt_op
  | Ge_op
  | And_op
  | Or_op
  | Bang
  | Eof

type position = { line : int; column : int }
type located = { token : token; pos : position }

exception Lex_error of string * position

val tokenize : string -> located array
(** Full tokenization of a source string; comments run from [#] to end of
    line.  Raises {!Lex_error} on an illegal character or malformed
    number. *)

val token_to_string : token -> string
