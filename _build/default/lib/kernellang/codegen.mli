(** Native code generation: compile a kernel to a standalone OCaml
    program, build it with [ocamlopt], and time real executions.

    This closes the loop the simulator abstracts away: the same IR the
    transformations rewrite can be lowered to machine code and measured on
    the machine the reproduction actually runs on.  It exists as a
    demonstration backend (see the [native_tune] example) and as an
    end-to-end oracle for the test suite — generated programs must compute
    exactly what the reference interpreter computes.

    Arrays are flattened [float array]s with explicitly generated index
    arithmetic, so the emitted code corresponds directly to the IR
    (including whatever unrolling/tiling was applied); the emitted program
    initializes arrays from a deterministic hash, runs the kernel body,
    and prints either a checksum or the median runtime of repeated
    executions. *)

val expr_to_ocaml : Ast.expr -> string
(** OCaml source for an index (integer) expression. *)

val reference_init : string -> int -> float
(** The deterministic initial value generated programs give element [i] of
    the named array — pass it as [array_init] to {!Interp.run_kernel} to
    compare interpreter and native results on identical inputs. *)

val program :
  ?param_overrides:(string * int) list ->
  mode:[ `Checksum | `Time of int ] ->
  Ast.kernel ->
  string
(** Complete OCaml program text.  [`Checksum] prints the sum of all array
    elements after one execution (the equivalence oracle); [`Time n] runs
    the body [n] times and prints the median wall-clock seconds. *)

type compiled

val build : ?workdir:string -> string -> compiled
(** Compile program text with [ocamlopt] in a scratch directory (a fresh
    temporary one by default).  Raises [Failure] with the compiler output
    on error. *)

val run : compiled -> string
(** Execute and return stdout (trimmed).  Raises [Failure] on a non-zero
    exit. *)

val cleanup : compiled -> unit
(** Remove the scratch directory. *)

val checksum :
  ?param_overrides:(string * int) list -> Ast.kernel -> float
(** Convenience: generate, build, run in checksum mode, clean up, and
    parse the checksum. *)

val time_native :
  ?param_overrides:(string * int) list -> ?repeats:int -> Ast.kernel -> float
(** Convenience: median wall-clock seconds of a real native execution. *)
