(** Constant folding and algebraic simplification.

    The loop transformations generate symbolic bound expressions like
    [0 + ((((N - 1) - 0) %/ 1 + 1) %/ 4 * 4 - 1) * 1]; this pass folds
    constants and applies the safe identities ([e + 0], [e * 1],
    [e %/ 1], [min(e, e)], double negation, constant conditions, loops
    with statically empty ranges), yielding readable output from
    [altune show] and slightly cheaper interpretation.  All rewrites are
    semantics-preserving for the IR's pure expressions; the test suite
    checks this by property against the reference interpreter. *)

val expr : Ast.expr -> Ast.expr
val cond : Ast.cond -> Ast.cond option
(** [None] means the condition folded to a constant; use {!cond_value}. *)

val cond_value : Ast.cond -> bool option
(** [Some b] when the condition is statically [b]. *)

val stmt : Ast.stmt -> Ast.stmt
val kernel : Ast.kernel -> Ast.kernel
