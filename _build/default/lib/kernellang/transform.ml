type error =
  | Loop_not_found of string
  | Bad_factor of string * int
  | Not_perfectly_nested of string * string
  | Unsafe_jam of string
  | Name_clash of string

let pp_error ppf = function
  | Loop_not_found x -> Format.fprintf ppf "loop %s not found" x
  | Bad_factor (x, n) -> Format.fprintf ppf "bad factor %d for loop %s" n x
  | Not_perfectly_nested (o, i) ->
      Format.fprintf ppf "loops %s and %s are not perfectly nested" o i
  | Unsafe_jam x ->
      Format.fprintf ppf
        "unroll-and-jam of loop %s refused: writes do not all depend on it" x
  | Name_clash x -> Format.fprintf ppf "generated name %s already in use" x

let error_to_string e = Format.asprintf "%a" pp_error e

exception Fail of error

let used_names (k : Ast.kernel) =
  Ast.loop_indices k.body
  @ List.map fst k.params
  @ k.scalars
  @ List.map (fun (d : Ast.array_decl) -> d.array_name) k.arrays

(* Derive a fresh identifier from [base] and [suffix], appending a counter
   on clash. *)
let fresh_name k base suffix =
  let taken = used_names k in
  let candidate = base ^ suffix in
  if not (List.mem candidate taken) then candidate
  else begin
    let rec go n =
      let c = Printf.sprintf "%s%s%d" base suffix n in
      if List.mem c taken then go (n + 1) else c
    in
    go 1
  end

(* Rewrite the unique loop with index [index], replacing it by [f loop].
   Raises [Fail (Loop_not_found index)] if absent. *)
let rewrite_loop (k : Ast.kernel) index f =
  let found = ref false in
  let rec go (s : Ast.stmt) : Ast.stmt =
    match s with
    | Assign _ -> s
    | Seq ss -> Seq (List.map go ss)
    | For l when l.index = index && not !found ->
        found := true;
        f l
    | For l -> For { l with body = go l.body }
    | If (c, t, e) -> If (c, go t, Option.map go e)
  in
  let body = go k.body in
  if not !found then raise (Fail (Loop_not_found index));
  { k with body = Ast.seq [ body ] }

let int_lit n = Ast.Int_lit n
let add a b = Ast.Binop (Add, a, b)
let sub a b = Ast.Binop (Sub, a, b)
let mul a b = Ast.Binop (Mul, a, b)
let idiv a b = Ast.Binop (Idiv, a, b)
let emin a b = Ast.Binop (Min, a, b)

(* Trip count of a loop: ((hi - lo) %/ step) + 1 (negative if empty, which
   downstream arithmetic tolerates because the main loop bound then falls
   below lo). *)
let trip_count (l : Ast.loop) =
  add (idiv (sub l.hi l.lo) (int_lit l.step)) (int_lit 1)

let wrap f = match f () with k -> Ok k | exception Fail e -> Error e

(* Alpha-rename every loop bound in [stmt] to a fresh name, so that
   replicating a body (unroll copies, remainder loops) preserves the
   kernel-wide uniqueness of loop indices.  [taken] accumulates names in
   use across all replicas. *)
let freshen_loops taken stmt =
  let fresh base =
    let rec go n =
      let c = Printf.sprintf "%s_c%d" base n in
      if List.mem c !taken then go (n + 1) else c
    in
    let name = go 0 in
    taken := name :: !taken;
    name
  in
  let rec go (s : Ast.stmt) : Ast.stmt =
    match s with
    | Assign _ -> s
    | Seq ss -> Seq (List.map go ss)
    | If (c, t, e) -> If (c, go t, Option.map go e)
    | For l ->
        let name = fresh l.index in
        let body = Ast.subst ~var:l.index ~by:(Ast.Var name) l.body in
        For { l with index = name; body = go body }
  in
  go stmt

let unroll ~index ~factor k =
  wrap (fun () ->
      if factor < 1 then raise (Fail (Bad_factor (index, factor)));
      if factor = 1 then
        (* Identity, but still require the loop to exist. *)
        rewrite_loop k index (fun l -> For l)
      else begin
        let rem_index = fresh_name k index "_r" in
        let taken = ref (rem_index :: used_names k) in
        rewrite_loop k index (fun l ->
            let copies =
              List.init factor (fun c ->
                  if c = 0 then l.body
                  else
                    freshen_loops taken
                      (Ast.subst ~var:l.index
                         ~by:(add (Ast.Var l.index) (int_lit (c * l.step)))
                         l.body))
            in
            let main_trips = idiv (trip_count l) (int_lit factor) in
            let main_hi =
              add l.lo
                (mul
                   (sub (mul main_trips (int_lit factor)) (int_lit 1))
                   (int_lit l.step))
            in
            let rem_lo =
              add l.lo
                (mul (mul main_trips (int_lit factor)) (int_lit l.step))
            in
            let main_loop =
              Ast.For
                {
                  index = l.index;
                  lo = l.lo;
                  hi = main_hi;
                  step = l.step * factor;
                  body = Ast.seq copies;
                }
            in
            let remainder =
              Ast.For
                {
                  index = rem_index;
                  lo = rem_lo;
                  hi = l.hi;
                  step = l.step;
                  body =
                    freshen_loops taken
                      (Ast.subst ~var:l.index ~by:(Ast.Var rem_index) l.body);
                }
            in
            Ast.seq [ main_loop; remainder ])
      end)

let strip_mine ~index ~tile ~tile_index k =
  wrap (fun () ->
      if tile < 1 then raise (Fail (Bad_factor (index, tile)));
      if List.mem tile_index (used_names k) then
        raise (Fail (Name_clash tile_index));
      rewrite_loop k index (fun l ->
          let tile_step = l.step * tile in
          let inner_hi =
            emin
              (add (Ast.Var tile_index) (int_lit ((tile - 1) * l.step)))
              l.hi
          in
          Ast.For
            {
              index = tile_index;
              lo = l.lo;
              hi = l.hi;
              step = tile_step;
              body =
                Ast.For
                  {
                    index = l.index;
                    lo = Ast.Var tile_index;
                    hi = inner_hi;
                    step = l.step;
                    body = l.body;
                  };
            }))

(* The inner loop must be the entire body of the outer one. *)
let immediate_inner (l : Ast.loop) =
  match l.body with
  | For inner -> Some inner
  | Seq [ For inner ] -> Some inner
  | Assign _ | Seq _ | If _ -> None

let interchange ~outer ~inner k =
  wrap (fun () ->
      if not (Dependence.interchange_legal k ~outer ~inner) then
        raise (Fail (Unsafe_jam outer));
      rewrite_loop k outer (fun l ->
          match immediate_inner l with
          | Some il when il.index = inner ->
              let bounds_independent =
                (not (List.mem outer (Ast.free_vars il.lo)))
                && not (List.mem outer (Ast.free_vars il.hi))
              in
              if not bounds_independent then
                raise (Fail (Not_perfectly_nested (outer, inner)));
              Ast.For
                {
                  il with
                  body = Ast.For { l with body = il.body };
                }
          | Some il -> raise (Fail (Not_perfectly_nested (outer, il.index)))
          | None -> raise (Fail (Not_perfectly_nested (outer, inner)))))

let tile_nest spec k =
  (* Strip-mine innermost-first so outer indices remain addressable, then
     bubble every tile loop above every point loop by repeated
     interchange. *)
  let to_tile = List.filter (fun (_, t) -> t > 1) spec in
  let strip acc (index, tile) =
    Result.bind acc (fun k ->
        strip_mine ~index ~tile ~tile_index:(fresh_name k index "_t") k)
  in
  let stripped = List.fold_left strip (Ok k) (List.rev to_tile) in
  Result.bind stripped (fun k ->
      (* After strip-mining, the nest looks like
         i1_t i1 i2_t i2 ... ; point loops of earlier dims must sink below
         tile loops of later dims.  Sort by interchanging adjacent pairs
         (tile loops keep their relative order, as do point loops). *)
      let point_indices = List.map fst to_tile in
      let tile_indices =
        List.filter_map
          (fun (index, tile) ->
            if tile > 1 then
              (* The fresh name chosen during stripping: recover it by
                 looking for "<index>_t" variants present in the kernel. *)
              List.find_opt
                (fun n ->
                  String.length n > String.length index
                  && String.sub n 0 (String.length index + 2)
                     = index ^ "_t")
                (Ast.loop_indices k.body)
            else None)
          spec
      in
      let rec sink k =
        (* Find a point loop immediately containing a tile loop and swap. *)
        let rec find_violation (s : Ast.stmt) =
          match s with
          | Assign _ -> None
          | Seq ss -> List.find_map find_violation ss
          | If (_, t, e) -> (
              match find_violation t with
              | Some _ as r -> r
              | None -> Option.bind e find_violation)
          | For l -> (
              match immediate_inner l with
              | Some il
                when List.mem l.index point_indices
                     && List.mem il.index tile_indices ->
                  Some (l.index, il.index)
              | _ -> find_violation l.body)
        in
        match find_violation k.Ast.body with
        | None -> Ok k
        | Some (outer, inner) ->
            Result.bind (interchange ~outer ~inner k) sink
      in
      sink k)

let unroll_and_jam ~index ~factor k =
  wrap (fun () ->
      if factor < 1 then raise (Fail (Bad_factor (index, factor)));
      if factor = 1 then rewrite_loop k index (fun l -> For l)
      else begin
        (* Dependence-based legality: jamming sinks [index] innermost, so
           it must not reverse any dependence. *)
        let jam_ok = Dependence.jam_legal k index in
        let rem_index = fresh_name k index "_j" in
        let taken = ref (rem_index :: used_names k) in
        rewrite_loop k index (fun l ->
            match immediate_inner l with
            | None -> raise (Fail (Not_perfectly_nested (index, "<body>")))
            | Some inner ->
                if
                  List.mem l.index (Ast.free_vars inner.lo)
                  || List.mem l.index (Ast.free_vars inner.hi)
                then raise (Fail (Not_perfectly_nested (index, inner.index)));
                if not jam_ok then raise (Fail (Unsafe_jam index));
                let jammed_body =
                  Ast.seq
                    (List.init factor (fun c ->
                         if c = 0 then inner.body
                         else
                           freshen_loops taken
                             (Ast.subst ~var:l.index
                                ~by:
                                  (add (Ast.Var l.index)
                                     (int_lit (c * l.step)))
                                inner.body)))
                in
                let main_trips = idiv (trip_count l) (int_lit factor) in
                let main_hi =
                  add l.lo
                    (mul
                       (sub (mul main_trips (int_lit factor)) (int_lit 1))
                       (int_lit l.step))
                in
                let rem_lo =
                  add l.lo
                    (mul (mul main_trips (int_lit factor)) (int_lit l.step))
                in
                let main_loop =
                  Ast.For
                    {
                      index = l.index;
                      lo = l.lo;
                      hi = main_hi;
                      step = l.step * factor;
                      body = Ast.For { inner with body = jammed_body };
                    }
                in
                let remainder =
                  Ast.For
                    {
                      index = rem_index;
                      lo = rem_lo;
                      hi = l.hi;
                      step = l.step;
                      body =
                        freshen_loops taken
                          (Ast.subst ~var:l.index ~by:(Ast.Var rem_index)
                             l.body);
                    }
                in
                Ast.seq [ main_loop; remainder ])
      end)

(* Skewing: inner' = inner + factor * outer.  The loop runs over skewed
   values while the body keeps seeing the original index, recovered as
   inner' - factor * outer.  Iteration order is untouched, so this is
   always exact. *)
let skew ~outer ~inner ~factor k =
  wrap (fun () ->
      rewrite_loop k outer (fun l ->
          match immediate_inner l with
          | Some il when il.index = inner ->
              let shift = mul (int_lit factor) (Ast.Var l.index) in
              let unskewed = sub (Ast.Var il.index) shift in
              let body = Ast.subst ~var:il.index ~by:unskewed il.body in
              Ast.For
                {
                  l with
                  body =
                    Ast.For
                      {
                        il with
                        lo = add il.lo shift;
                        hi = add il.hi shift;
                        body;
                      };
                }
          | Some il -> raise (Fail (Not_perfectly_nested (outer, il.index)))
          | None -> raise (Fail (Not_perfectly_nested (outer, inner)))))

let reverse ~index k =
  wrap (fun () ->
      if Dependence.carried_by k index <> [] then
        raise (Fail (Unsafe_jam index));
      rewrite_loop k index (fun l ->
          if l.step <> 1 then raise (Fail (Bad_factor (index, l.step)));
          let mirrored = sub (add l.lo l.hi) (Ast.Var l.index) in
          Ast.For { l with body = Ast.subst ~var:l.index ~by:mirrored l.body }))

(* Structural helper: rewrite the (unique) Seq containing For(first)
   immediately followed by For(second). *)
let rewrite_adjacent (k : Ast.kernel) first second f =
  let found = ref false in
  let rec scan = function
    | Ast.For l1 :: Ast.For l2 :: rest
      when l1.index = first && l2.index = second && not !found ->
        found := true;
        f l1 l2 :: List.map go rest
    | s :: rest -> go s :: scan rest
    | [] -> []
  and go (s : Ast.stmt) : Ast.stmt =
    match s with
    | Assign _ -> s
    | Seq ss -> Ast.seq (scan ss)
    | For l -> For { l with body = go l.body }
    | If (c, t, e) -> If (c, go t, Option.map go e)
  in
  let body = go k.body in
  if not !found then raise (Fail (Loop_not_found first));
  { k with body = Ast.seq [ body ] }

let fuse ~first ~second k =
  wrap (fun () ->
      if not (Dependence.fusion_legal k ~first ~second) then
        raise (Fail (Unsafe_jam first));
      rewrite_adjacent k first second (fun l1 l2 ->
          let compatible =
            Simplify.expr l1.lo = Simplify.expr l2.lo
            && Simplify.expr l1.hi = Simplify.expr l2.hi
            && l1.step = l2.step
          in
          if not compatible then
            raise (Fail (Not_perfectly_nested (first, second)));
          let renamed =
            Ast.subst ~var:l2.index ~by:(Ast.Var l1.index) l2.body
          in
          Ast.For { l1 with body = Ast.seq [ l1.body; renamed ] }))

let distribute ~index k =
  wrap (fun () ->
      if not (Dependence.distribution_legal k index) then
        raise (Fail (Unsafe_jam index));
      let taken = ref (used_names k) in
      rewrite_loop k index (fun l ->
          match l.body with
          | Seq (_ :: _ :: _ as stmts) ->
              Ast.seq
                (List.mapi
                   (fun i body ->
                     if i = 0 then Ast.For { l with body }
                     else begin
                       (* Later copies need fresh loop indices to keep the
                          kernel-wide uniqueness invariant. *)
                       let rec fresh n =
                         let c = Printf.sprintf "%s_d%d" l.index n in
                         if List.mem c !taken then fresh (n + 1) else c
                       in
                       let name = fresh i in
                       taken := name :: !taken;
                       let body =
                         freshen_loops taken
                           (Ast.subst ~var:l.index ~by:(Ast.Var name) body)
                       in
                       Ast.For { l with index = name; body }
                     end)
                   stmts)
          | Assign _ | For _ | If _ | Seq _ ->
              (* Nothing to split. *)
              For l))

let apply_all fs k =
  List.fold_left (fun acc f -> Result.bind acc f) (Ok k) fs
