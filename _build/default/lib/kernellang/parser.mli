(** Recursive-descent parser for the kernel DSL.

    Grammar (informal):
    {v
    kernel  ::= "kernel" IDENT "(" [param ("," param)*] ")" "{" decl* stmt* "}"
    param   ::= IDENT "=" INT
    decl    ::= "array" IDENT ("[" expr "]")+ ";"
              | "scalar" IDENT ";"
    stmt    ::= lhs "=" expr ";"
              | "for" IDENT "=" expr "to" expr ["step" INT] "{" stmt* "}"
              | "if" cond "{" stmt* "}" ["else" "{" stmt* "}"]
    expr    ::= term (("+" | "-") term)*
    term    ::= factor (("*" | "/" | "%/" | "%") factor)*
    factor  ::= INT | FLOAT | IDENT ("[" expr "]")*
              | "(" expr ")" | "-" factor | "sqrt" "(" expr ")"
    cond    ::= conj ("||" conj)*
    conj    ::= atom ("&&" atom)*
    atom    ::= "!" "(" cond ")" | "(" cond ")" | expr cmp expr
    v}

    Comments start with [#] and run to end of line. *)

exception Parse_error of string * Lexer.position

val parse_kernel : string -> Ast.kernel
(** Parse a full kernel definition.  The result is additionally passed
    through {!Ast.validate}; validation failures are reported as
    {!Parse_error}. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests). *)

val parse_stmt : string -> Ast.stmt
(** Parse a standalone statement (used by tests). *)
