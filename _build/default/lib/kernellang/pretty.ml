let binop_string (op : Ast.binop) =
  match op with
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Idiv -> "%/"
  | Mod -> "%"
  | Min | Max -> assert false (* printed as function calls *)

let cmpop_string (op : Ast.cmpop) =
  match op with
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Precedence levels: higher binds tighter.  Parentheses are emitted
   whenever a child has strictly lower precedence (or equal, for the
   non-associative right operand of - / %). *)
let binop_prec (op : Ast.binop) =
  match op with
  | Add | Sub -> 1
  | Mul | Div | Idiv | Mod -> 2
  | Min | Max -> 3

let rec pp_expr_prec prec ppf (e : Ast.expr) =
  match e with
  | Int_lit n -> Format.fprintf ppf "%d" n
  | Float_lit x ->
      (* %h or %g: keep it parseable; force a dot or exponent so the lexer
         reads it back as a float. *)
      let s = Printf.sprintf "%.17g" x in
      if String.contains s '.' || String.contains s 'e' then
        Format.pp_print_string ppf s
      else Format.fprintf ppf "%s.0" s
  | Var x -> Format.pp_print_string ppf x
  | Index (a, indices) ->
      Format.pp_print_string ppf a;
      List.iter (fun e -> Format.fprintf ppf "[%a]" (pp_expr_prec 0) e) indices
  | Binop ((Min | Max) as op, a, b) ->
      let name = match op with Ast.Min -> "min" | _ -> "max" in
      Format.fprintf ppf "%s(%a, %a)" name (pp_expr_prec 0) a (pp_expr_prec 0)
        b
  | Binop (op, a, b) ->
      let p = binop_prec op in
      let needs_paren = p < prec in
      if needs_paren then Format.pp_print_char ppf '(';
      Format.fprintf ppf "%a %s %a" (pp_expr_prec p) a (binop_string op)
        (pp_expr_prec (p + 1))
        b;
      if needs_paren then Format.pp_print_char ppf ')'
  | Neg a -> Format.fprintf ppf "(-%a)" (pp_expr_prec 3) a
  | Sqrt a -> Format.fprintf ppf "sqrt(%a)" (pp_expr_prec 0) a

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec pp_cond_prec prec ppf (c : Ast.cond) =
  match c with
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_expr a (cmpop_string op) pp_expr b
  | And (a, b) ->
      if prec > 2 then
        Format.fprintf ppf "(%a && %a)" (pp_cond_prec 2) a (pp_cond_prec 2) b
      else
        Format.fprintf ppf "%a && %a" (pp_cond_prec 2) a (pp_cond_prec 2) b
  | Or (a, b) ->
      if prec > 1 then
        Format.fprintf ppf "(%a || %a)" (pp_cond_prec 1) a (pp_cond_prec 1) b
      else
        Format.fprintf ppf "%a || %a" (pp_cond_prec 1) a (pp_cond_prec 1) b
  | Not a -> Format.fprintf ppf "!(%a)" (pp_cond_prec 0) a

let pp_cond ppf c = pp_cond_prec 0 ppf c

let pp_lhs ppf (l : Ast.lhs) =
  match l with
  | Scalar_lhs x -> Format.pp_print_string ppf x
  | Array_lhs (a, indices) ->
      Format.pp_print_string ppf a;
      List.iter (fun e -> Format.fprintf ppf "[%a]" pp_expr e) indices

let rec pp_stmt ppf (s : Ast.stmt) =
  match s with
  | Assign (l, e) -> Format.fprintf ppf "@[<h>%a = %a;@]" pp_lhs l pp_expr e
  | Seq ss ->
      Format.pp_open_vbox ppf 0;
      List.iteri
        (fun i s ->
          if i > 0 then Format.pp_print_cut ppf ();
          pp_stmt ppf s)
        ss;
      Format.pp_close_box ppf ()
  | For { index; lo; hi; step; body } ->
      if step = 1 then
        Format.fprintf ppf "@[<v 2>for %s = %a to %a {@,%a@]@,}" index pp_expr
          lo pp_expr hi pp_stmt body
      else
        Format.fprintf ppf "@[<v 2>for %s = %a to %a step %d {@,%a@]@,}" index
          pp_expr lo pp_expr hi step pp_stmt body
  | If (c, t, None) ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" pp_cond c pp_stmt t
  | If (c, t, Some e) ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,} else {@,@[<v 2>  %a@]@,}"
        pp_cond c pp_stmt t pp_stmt e

let pp_kernel ppf (k : Ast.kernel) =
  Format.fprintf ppf "@[<v 2>kernel %s(" k.kernel_name;
  List.iteri
    (fun i (name, value) ->
      if i > 0 then Format.pp_print_string ppf ", ";
      Format.fprintf ppf "%s = %d" name value)
    k.params;
  Format.fprintf ppf ") {@,";
  List.iter
    (fun (d : Ast.array_decl) ->
      Format.fprintf ppf "array %s" d.array_name;
      List.iter (fun e -> Format.fprintf ppf "[%a]" pp_expr e) d.dims;
      Format.fprintf ppf ";@,")
    k.arrays;
  List.iter (fun s -> Format.fprintf ppf "scalar %s;@," s) k.scalars;
  pp_stmt ppf k.body;
  Format.fprintf ppf "@]@,}@."

let to_string k = Format.asprintf "%a" pp_kernel k
let stmt_to_string s = Format.asprintf "%a" pp_stmt s
