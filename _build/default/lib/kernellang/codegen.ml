(* Identifier conventions in emitted code: parameters [p_<name>], arrays
   [a_<name>], scalars [s_<name>] (refs), loop indices [i_<name>].  The
   prefixes keep everything a valid lowercase OCaml identifier whatever
   the DSL called it. *)

let p_ name = "p_" ^ name
let a_ name = "a_" ^ name
let s_ name = "s_" ^ name
let i_ name = "i_" ^ name

exception Codegen_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

type context = {
  kernel : Ast.kernel;
  dims : (string * Ast.expr list) list;  (* array -> dimension extents *)
}

let classify ctx name =
  if List.mem_assoc name ctx.kernel.params then `Param
  else if List.mem name ctx.kernel.scalars then `Scalar
  else `Index

(* Integer-typed expression (subscripts, bounds). *)
let rec int_expr ctx (e : Ast.expr) : string =
  match e with
  | Int_lit n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Float_lit x -> error "float literal %g in integer context" x
  | Var x -> (
      match classify ctx x with
      | `Param -> p_ x
      | `Index -> i_ x
      | `Scalar -> error "scalar %s in integer context" x)
  | Index (a, _) -> error "array element %s in integer context" a
  | Neg a -> Printf.sprintf "(- %s)" (int_expr ctx a)
  | Sqrt _ -> error "sqrt in integer context"
  | Binop (op, a, b) ->
      let sa = int_expr ctx a and sb = int_expr ctx b in
      let infix op = Printf.sprintf "(%s %s %s)" sa op sb in
      (match op with
      | Add -> infix "+"
      | Sub -> infix "-"
      | Mul -> infix "*"
      | Idiv | Div -> infix "/"
      | Mod -> infix "mod"
      | Min -> Printf.sprintf "(min %s %s)" sa sb
      | Max -> Printf.sprintf "(max %s %s)" sa sb)

(* Flattened row-major element index of an array access. *)
let flat_index ctx array subscripts =
  let dims =
    match List.assoc_opt array ctx.dims with
    | Some d -> d
    | None -> error "unknown array %s" array
  in
  if List.length dims <> List.length subscripts then
    error "array %s rank mismatch" array;
  match subscripts with
  | [] -> "0"
  | first :: rest ->
      List.fold_left2
        (fun acc sub extent ->
          Printf.sprintf "((%s * %s) + %s)" acc (int_expr ctx extent)
            (int_expr ctx sub))
        (int_expr ctx first)
        rest
        (List.tl dims)

(* Float-typed expression (right-hand sides). *)
let rec float_expr ctx (e : Ast.expr) : string =
  match e with
  | Int_lit n -> Printf.sprintf "%d." n
  | Float_lit x -> Printf.sprintf "(%h)" x
  | Var x -> (
      match classify ctx x with
      | `Param -> Printf.sprintf "(float_of_int %s)" (p_ x)
      | `Index -> Printf.sprintf "(float_of_int %s)" (i_ x)
      | `Scalar -> Printf.sprintf "!%s" (s_ x))
  | Index (a, subs) ->
      Printf.sprintf "%s.(%s)" (a_ a) (flat_index ctx a subs)
  | Neg a -> Printf.sprintf "(-. %s)" (float_expr ctx a)
  | Sqrt a -> Printf.sprintf "(sqrt %s)" (float_expr ctx a)
  | Binop (op, a, b) ->
      let sa = float_expr ctx a and sb = float_expr ctx b in
      let infix op = Printf.sprintf "(%s %s %s)" sa op sb in
      (match op with
      | Add -> infix "+."
      | Sub -> infix "-."
      | Mul -> infix "*."
      | Div -> infix "/."
      | Idiv | Mod ->
          (* Integer-only operators: compute in ints, promote.  The
             validator keeps these out of float positions in practice. *)
          Printf.sprintf "(float_of_int %s)" (int_expr ctx e)
      | Min -> Printf.sprintf "(Float.min %s %s)" sa sb
      | Max -> Printf.sprintf "(Float.max %s %s)" sa sb)

(* Conditions mirror the interpreter: compare as floats. *)
let rec cond ctx (c : Ast.cond) : string =
  match c with
  | Cmp (op, a, b) ->
      let sa = float_expr ctx a and sb = float_expr ctx b in
      let sym =
        match op with
        | Eq -> "="
        | Ne -> "<>"
        | Lt -> "<"
        | Le -> "<="
        | Gt -> ">"
        | Ge -> ">="
      in
      Printf.sprintf "(%s %s %s)" sa sym sb
  | And (a, b) -> Printf.sprintf "(%s && %s)" (cond ctx a) (cond ctx b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (cond ctx a) (cond ctx b)
  | Not a -> Printf.sprintf "(not %s)" (cond ctx a)

let indent n = String.make (2 * n) ' '

let rec stmt ctx depth buf (s : Ast.stmt) =
  let pad = indent depth in
  match s with
  | Assign (Scalar_lhs x, e) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s := %s;\n" pad (s_ x) (float_expr ctx e))
  | Assign (Array_lhs (a, subs), e) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s.(%s) <- %s;\n" pad (a_ a)
           (flat_index ctx a subs) (float_expr ctx e))
  | Seq ss -> List.iter (stmt ctx depth buf) ss
  | For l ->
      let v = i_ l.index in
      if l.step = 1 then begin
        Buffer.add_string buf
          (Printf.sprintf "%sfor %s = %s to %s do\n" pad v
             (int_expr ctx l.lo) (int_expr ctx l.hi));
        stmt ctx (depth + 1) buf l.body;
        Buffer.add_string buf (Printf.sprintf "%sdone;\n" pad)
      end
      else begin
        (* Strided loops as tail-recursive functions, keeping upper-bound
           evaluation out of the loop. *)
        Buffer.add_string buf
          (Printf.sprintf
             "%s(let hi_%s = %s in\n%s let rec loop_%s %s = if %s <= hi_%s \
              then begin\n"
             pad v (int_expr ctx l.hi) pad v v v v);
        stmt ctx (depth + 1) buf l.body;
        Buffer.add_string buf
          (Printf.sprintf "%s loop_%s (%s + %d) end in loop_%s (%s));\n" pad
             v v l.step v (int_expr ctx l.lo))
      end
  | If (c, t, e) ->
      Buffer.add_string buf
        (Printf.sprintf "%sif %s then begin\n" pad (cond ctx c));
      stmt ctx (depth + 1) buf t;
      (match e with
      | None -> ()
      | Some e ->
          Buffer.add_string buf (Printf.sprintf "%send else begin\n" pad);
          stmt ctx (depth + 1) buf e);
      Buffer.add_string buf (Printf.sprintf "%send;\n" pad)

(* Deterministic array initialisation shared (by construction) with the
   test oracle: a multiplicative hash of the flat element position mixed
   with a per-array constant computed at generation time. *)
let init_value_formula name =
  let name_hash = Hashtbl.hash name land 0xFFFF in
  Printf.sprintf
    "(float_of_int (((i * 2654435761) + %d) land 0xFFFF) /. 65536.) +. 0.5"
    name_hash

let reference_init name i =
  let name_hash = Hashtbl.hash name land 0xFFFF in
  (float_of_int (((i * 2654435761) + name_hash) land 0xFFFF) /. 65536.0)
  +. 0.5

let program ?(param_overrides = []) ~mode (kernel : Ast.kernel) =
  let ctx =
    {
      kernel;
      dims =
        List.map
          (fun (d : Ast.array_decl) -> (d.array_name, d.dims))
          kernel.arrays;
    }
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "(* Generated by altune codegen from kernel %s. *)\n" kernel.kernel_name;
  List.iter
    (fun (name, default) ->
      let v =
        match List.assoc_opt name param_overrides with
        | Some v -> v
        | None -> default
      in
      out "let %s = %d\n" (p_ name) v)
    kernel.params;
  List.iter
    (fun (d : Ast.array_decl) ->
      let size =
        String.concat " * "
          (List.map (fun e -> int_expr ctx e) d.dims)
      in
      out "let %s = Array.make (%s) 0.0\n" (a_ d.array_name) size)
    kernel.arrays;
  List.iter (fun sname -> out "let %s = ref 0.0\n" (s_ sname)) kernel.scalars;
  out "\nlet initialize () =\n";
  if kernel.arrays = [] then out "  ()\n"
  else
    List.iter
      (fun (d : Ast.array_decl) ->
        out "  Array.iteri (fun i _ -> %s.(i) <- %s) %s;\n"
          (a_ d.array_name)
          (init_value_formula d.array_name)
          (a_ d.array_name))
      kernel.arrays;
  List.iter (fun sname -> out "  %s := 0.0;\n" (s_ sname)) kernel.scalars;
  out "  ()\n";
  out "\nlet kernel () =\n";
  let body_buf = Buffer.create 4096 in
  stmt ctx 1 body_buf kernel.body;
  if Buffer.length body_buf = 0 then out "  ()\n"
  else begin
    Buffer.add_buffer buf body_buf;
    out "  ()\n"
  end;
  out "\nlet checksum () =\n";
  out "  let acc = ref 0.0 in\n";
  List.iter
    (fun (d : Ast.array_decl) ->
      out "  Array.iter (fun v -> acc := !acc +. v) %s;\n" (a_ d.array_name))
    kernel.arrays;
  out "  !acc\n";
  (match mode with
  | `Checksum ->
      out
        "\nlet () =\n  initialize ();\n  kernel ();\n  Printf.printf \
         \"%%.17g\\n\" (checksum ())\n"
  | `Time repeats ->
      out "\nlet () =\n";
      out "  initialize ();\n";
      out "  kernel ();\n";
      out "  let times = Array.init %d (fun _ ->\n" (max 1 repeats);
      out "    initialize ();\n";
      out "    let t0 = Unix.gettimeofday () in\n";
      out "    kernel ();\n";
      out "    Unix.gettimeofday () -. t0)\n";
      out "  in\n";
      out "  Array.sort compare times;\n";
      out "  Printf.printf \"%%.9f\\n\" times.(Array.length times / 2)\n");
  Buffer.contents buf

type compiled = { dir : string; exe : string }

let sh dir cmd =
  let log = Filename.concat dir "cmd.log" in
  let full = Printf.sprintf "cd %s && %s > %s 2>&1" (Filename.quote dir) cmd
      (Filename.quote log) in
  let status = Sys.command full in
  let output =
    if Sys.file_exists log then begin
      let ic = open_in log in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    end
    else ""
  in
  (status, output)

let build ?workdir source =
  let dir =
    match workdir with
    | Some d -> d
    | None -> Filename.temp_dir "altune_codegen" ""
  in
  let src = Filename.concat dir "main.ml" in
  let oc = open_out src in
  output_string oc source;
  close_out oc;
  let status, output =
    sh dir "ocamlfind ocamlopt -package unix -linkpkg main.ml -o kernel_exe"
  in
  if status <> 0 then
    failwith (Printf.sprintf "codegen build failed (%d):\n%s" status output);
  { dir; exe = Filename.concat dir "kernel_exe" }

let run c =
  let status, output = sh c.dir (Filename.quote c.exe) in
  if status <> 0 then
    failwith (Printf.sprintf "codegen run failed (%d):\n%s" status output);
  String.trim output

let cleanup c =
  let _, _ = sh c.dir "rm -f main.ml main.cmi main.cmx main.o kernel_exe" in
  (try Sys.remove (Filename.concat c.dir "cmd.log") with Sys_error _ -> ());
  ignore (Sys.command (Printf.sprintf "rmdir %s" (Filename.quote c.dir)))

let expr_to_ocaml e =
  let empty =
    { kernel = { kernel_name = ""; params = []; arrays = []; scalars = [];
                 body = Ast.Seq [] };
      dims = [] }
  in
  int_expr empty e

let checksum ?param_overrides kernel =
  let c = build (program ?param_overrides ~mode:`Checksum kernel) in
  Fun.protect
    ~finally:(fun () -> cleanup c)
    (fun () -> float_of_string (run c))

let time_native ?param_overrides ?(repeats = 5) kernel =
  let c = build (program ?param_overrides ~mode:(`Time repeats) kernel) in
  Fun.protect
    ~finally:(fun () -> cleanup c)
    (fun () -> float_of_string (run c))
