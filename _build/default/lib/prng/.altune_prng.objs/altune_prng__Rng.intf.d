lib/prng/rng.mli:
