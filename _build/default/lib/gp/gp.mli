(** Exact Gaussian-process regression with a squared-exponential kernel.

    This is the model the paper argues {e against} (Section 3.2): accurate
    and with calibrated uncertainty, but every update costs O(n^3) because
    the kernel matrix must be refactorized, where the dynamic tree updates
    incrementally.  It is provided behind the {!Altune_core.Surrogate}
    interface so the trade-off is measurable: the ablation and the micro
    benchmarks compare both on equal terms.

    Hyperparameters are set by standard heuristics at each refit:
    lengthscale from the median pairwise distance, signal variance from
    the response variance, and noise variance from the learner's seed-phase
    estimate (or a fraction of the signal variance). *)

type params = {
  lengthscale : float option;  (** [None]: median-distance heuristic. *)
  noise_variance : float option;
      (** [None]: the surrogate [noise_hint], or 5% of signal variance. *)
  jitter : float;  (** Diagonal stabilizer (default 1e-8). *)
  max_points : int;
      (** Refuse (ignore) observations beyond this count, guarding against
          accidental O(n^3) blow-ups; default 2,000. *)
}

val default_params : params

type t

val create : ?params:params -> ?noise_hint:float -> dim:int -> unit -> t
val observe : t -> float array -> float -> unit
val predict : t -> float array -> Altune_core.Surrogate.prediction

val alc_scores :
  t -> candidates:float array array -> refs:float array array -> float array
(** Closed-form GP ALC: adding an observation at candidate [x] reduces the
    posterior variance at [z] by [cov(z, x)^2 / (var(x) + noise)]. *)

val n_observations : t -> int

val factory : ?params:params -> unit -> Altune_core.Surrogate.factory
(** Use the GP as the active learner's surrogate. *)
