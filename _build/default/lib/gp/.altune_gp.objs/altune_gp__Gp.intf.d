lib/gp/gp.mli: Altune_core
