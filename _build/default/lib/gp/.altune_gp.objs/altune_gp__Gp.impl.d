lib/gp/gp.ml: Altune_core Altune_stats Array Float
