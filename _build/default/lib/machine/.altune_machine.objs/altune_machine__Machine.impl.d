lib/machine/machine.ml: Altune_kernellang Array Float List Map
