lib/machine/machine.mli: Altune_kernellang
