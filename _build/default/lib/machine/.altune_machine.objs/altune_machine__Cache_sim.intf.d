lib/machine/cache_sim.mli: Altune_kernellang
