lib/machine/cache_sim.ml: Altune_kernellang Array Hashtbl List
