module Interp = Altune_kernellang.Interp
module Ast = Altune_kernellang.Ast

let is_power_of_two n = n > 0 && n land (n - 1) = 0

type cache = {
  sets : int;
  ways : int;
  line_bytes : int;
  (* tags.(set) is an array of line tags, most recently used first;
     -1 = empty way. *)
  tags : int array array;
}

let create_cache ~size_bytes ~line_bytes ~ways =
  if not (is_power_of_two size_bytes && is_power_of_two line_bytes) then
    invalid_arg "Cache_sim.create_cache: sizes must be powers of two";
  if ways <= 0 then invalid_arg "Cache_sim.create_cache: ways must be positive";
  let lines = size_bytes / line_bytes in
  if lines = 0 || lines mod ways <> 0 then
    invalid_arg "Cache_sim.create_cache: ways must divide the line count";
  let sets = lines / ways in
  { sets; ways; line_bytes; tags = Array.make_matrix sets ways (-1) }

let cache_reset c =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) c.tags

(* LRU within a set implemented as a move-to-front array: order is
   recency, so eviction removes the last element. *)
let cache_access c address =
  let line = address / c.line_bytes in
  let set = c.tags.(line mod c.sets) in
  let tag = line / c.sets in
  let rec find i = if i >= c.ways then -1 else if set.(i) = tag then i else find (i + 1) in
  let pos = find 0 in
  if pos >= 0 then begin
    (* Hit: move to front. *)
    for k = pos downto 1 do
      set.(k) <- set.(k - 1)
    done;
    set.(0) <- tag;
    true
  end
  else begin
    (* Miss: insert at front, evicting the LRU way. *)
    for k = c.ways - 1 downto 1 do
      set.(k) <- set.(k - 1)
    done;
    set.(0) <- tag;
    false
  end

type stats = { accesses : int; l1_misses : int; l2_misses : int }

type hierarchy = {
  l1 : cache;
  l2 : cache;
  mutable accesses : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
}

let create_hierarchy ?(l1_bytes = 32_768) ?(l2_bytes = 262_144)
    ?(line_bytes = 64) ?(l1_ways = 8) ?(l2_ways = 8) () =
  {
    l1 = create_cache ~size_bytes:l1_bytes ~line_bytes ~ways:l1_ways;
    l2 = create_cache ~size_bytes:l2_bytes ~line_bytes ~ways:l2_ways;
    accesses = 0;
    l1_misses = 0;
    l2_misses = 0;
  }

let hierarchy_access h address =
  h.accesses <- h.accesses + 1;
  if not (cache_access h.l1 address) then begin
    h.l1_misses <- h.l1_misses + 1;
    if not (cache_access h.l2 address) then h.l2_misses <- h.l2_misses + 1
  end

let hierarchy_stats h =
  { accesses = h.accesses; l1_misses = h.l1_misses; l2_misses = h.l2_misses }

let hierarchy_reset h =
  cache_reset h.l1;
  cache_reset h.l2;
  h.accesses <- 0;
  h.l1_misses <- 0;
  h.l2_misses <- 0

let simulate_kernel ?param_overrides ?(element_bytes = 8) h
    (kernel : Ast.kernel) =
  let env = Interp.init ?param_overrides kernel in
  (* Contiguous layout, line-aligned bases, declaration order. *)
  let line = h.l1.line_bytes in
  let align a = (a + line - 1) / line * line in
  let bases = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun (d : Ast.array_decl) ->
      Hashtbl.replace bases d.array_name !next;
      next :=
        align (!next + (Interp.array_extent env d.array_name * element_bytes)))
    kernel.arrays;
  Interp.set_access_hook env (fun array offset _is_write ->
      let base = Hashtbl.find bases array in
      hierarchy_access h (base + (offset * element_bytes)));
  Interp.run env kernel;
  hierarchy_stats h
