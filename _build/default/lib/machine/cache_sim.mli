(** Trace-driven set-associative cache simulation.

    The analytic model in {!Machine} estimates miss counts in closed form;
    this simulator computes them exactly for a concrete access trace
    (LRU replacement, inclusive two-level hierarchy).  Its role in the
    project is validation: the test suite replays small kernels through
    the instrumented interpreter and checks that the analytic model's
    qualitative calls (tiling reduces L1 misses, strides defeat lines)
    agree with ground truth.  It is too slow to sit inside the autotuning
    loop — which is exactly why the analytic model exists. *)

type cache

val create_cache : size_bytes:int -> line_bytes:int -> ways:int -> cache
(** Raises [Invalid_argument] unless sizes are positive, powers of two,
    and consistent ([ways] divides the line count). *)

val cache_access : cache -> int -> bool
(** [cache_access c address] touches the line holding [address] and
    reports whether it hit; LRU state updates either way. *)

val cache_reset : cache -> unit

type stats = {
  accesses : int;
  l1_misses : int;
  l2_misses : int;
}

type hierarchy

val create_hierarchy :
  ?l1_bytes:int ->
  ?l2_bytes:int ->
  ?line_bytes:int ->
  ?l1_ways:int ->
  ?l2_ways:int ->
  unit ->
  hierarchy
(** Defaults mirror {!Machine.default}: 32 KB 8-way L1, 256 KB 8-way L2,
    64-byte lines. *)

val hierarchy_access : hierarchy -> int -> unit
val hierarchy_stats : hierarchy -> stats
val hierarchy_reset : hierarchy -> unit

val simulate_kernel :
  ?param_overrides:(string * int) list ->
  ?element_bytes:int ->
  hierarchy ->
  Altune_kernellang.Ast.kernel ->
  stats
(** Run a kernel through the reference interpreter with every array
    access fed to the hierarchy.  Arrays are laid out contiguously in a
    single address space, each base aligned to a line boundary. *)
