(* Quickstart: build a runtime model for one kernel with the adaptive
   active learner and query it.

   Run with: dune exec examples/quickstart.exe *)

module Spapt = Altune_spapt.Spapt
module Adapter = Altune_experiments.Adapter
module Dataset = Altune_core.Dataset
module Learner = Altune_core.Learner
module Rng = Altune_prng.Rng

let () =
  let rng = Rng.create ~seed:7 in

  (* 1. Pick a benchmark: mvt, the matrix-vector transpose kernel. *)
  let bench = Spapt.create "mvt" in
  Printf.printf "benchmark %s: %d tunable knobs, %.2e configurations\n"
    (Spapt.name bench) (Spapt.dim bench) (Spapt.space_size bench);

  (* 2. Wrap it as an abstract tuning problem and draw a train/test pool. *)
  let problem = Adapter.problem_of bench in
  let dataset =
    Dataset.generate problem ~rng ~n_configs:600 ~test_fraction:0.25
      ~n_obs:35
  in

  (* 3. Train with the paper's adaptive plan: one profiling run at a time,
     revisiting a configuration only when its measurements contradict the
     model. *)
  let settings = { Learner.scaled_settings with n_max = 150 } in
  let outcome = Learner.run problem dataset settings ~rng in
  Printf.printf
    "trained: %d distinct configurations, %d profiling runs, %.0f simulated \
     seconds of profiling, final RMSE %.4f s\n\n"
    outcome.distinct_examples outcome.total_runs outcome.total_cost
    outcome.final_rmse;

  (* 4. Query the model: predicted vs. true runtime on a few random
     configurations. *)
  Printf.printf "%-28s %12s %12s\n" "configuration" "predicted(s)" "true(s)";
  for _ = 1 to 8 do
    let c = Spapt.random_config bench rng in
    Printf.printf "%-28s %12.4f %12.4f\n"
      (String.concat ";" (List.map string_of_int (Array.to_list c)))
      (outcome.predict c) (Spapt.true_runtime bench c)
  done
