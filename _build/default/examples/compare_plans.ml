(* Compare the three sampling plans of the paper on one benchmark: the
   classical 35-observation plan, the naive single-observation plan, and
   the adaptive sequential-analysis plan.  A miniature of Figure 6.

   Run with: dune exec examples/compare_plans.exe *)

module Spapt = Altune_spapt.Spapt
module Runs = Altune_experiments.Runs
module Scale = Altune_experiments.Scale
module Experiment = Altune_core.Experiment
module Learner = Altune_core.Learner
module Report = Altune_report.Report

let () =
  let bench = Spapt.create "gemver" in
  Printf.printf "running the three sampling plans on %s (this takes a \
                 minute)...\n\n" (Spapt.name bench);
  let pc = Runs.curves_for bench Scale.quick ~seed:3 in
  let points curve =
    List.map
      (fun (p : Learner.eval_point) -> (p.cost_seconds, p.rmse))
      curve
  in
  print_string
    (Report.Plot.line ~logx:true
       ~title:"gemver: model error vs profiling cost"
       ~xlabel:"cumulative profiling cost (simulated s)" ~ylabel:"RMSE (s)"
       [
         ("all observations (35 per example)", points pc.all_observations);
         ("one observation per example", points pc.one_observation);
         ("variable observations (adaptive)", points pc.variable_observations);
       ]);
  let cmp =
    Experiment.compare_curves ~baseline:pc.all_observations
      ~ours:pc.variable_observations
  in
  Printf.printf
    "\nlowest common RMSE %.4f s: baseline needs %.0f simulated s, the \
     adaptive plan %.0f s -> %.1fx less profiling\n"
    cmp.lowest_common_rmse cmp.cost_baseline cmp.cost_ours cmp.speedup
