examples/native_tune.ml: Altune_core Altune_kernellang Altune_prng Altune_spapt Array Hashtbl List Printf String Unix
