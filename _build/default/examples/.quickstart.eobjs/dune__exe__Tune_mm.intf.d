examples/tune_mm.mli:
