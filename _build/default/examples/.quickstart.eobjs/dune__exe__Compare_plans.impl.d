examples/compare_plans.ml: Altune_core Altune_experiments Altune_report Altune_spapt List Printf
