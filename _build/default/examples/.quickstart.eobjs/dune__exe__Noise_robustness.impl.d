examples/noise_robustness.ml: Altune_core Altune_experiments Altune_prng Altune_report Altune_spapt Float List Printf
