examples/compare_plans.mli:
