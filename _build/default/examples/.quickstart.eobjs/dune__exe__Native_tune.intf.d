examples/native_tune.mli:
