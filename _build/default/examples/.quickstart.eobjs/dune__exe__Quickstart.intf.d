examples/quickstart.mli:
