examples/tune_mm.ml: Altune_core Altune_experiments Altune_prng Altune_report Altune_spapt Array List Printf String
