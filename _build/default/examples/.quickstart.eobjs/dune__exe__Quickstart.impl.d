examples/quickstart.ml: Altune_core Altune_experiments Altune_prng Altune_spapt Array List Printf String
