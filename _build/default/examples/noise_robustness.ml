(* The paper's future-work experiment: artificially inject rising amounts
   of measurement noise and watch how each sampling plan copes — the
   scenario of a heavily loaded multi-user machine.

   Run with: dune exec examples/noise_robustness.exe *)

module Spapt = Altune_spapt.Spapt
module Adapter = Altune_experiments.Adapter
module Problem = Altune_core.Problem
module Dataset = Altune_core.Dataset
module Learner = Altune_core.Learner
module Experiment = Altune_core.Experiment
module Rng = Altune_prng.Rng
module Report = Altune_report.Report

(* Wrap a problem with an extra multiplicative Gaussian noise channel on
   every measurement. *)
let with_extra_noise sigma (p : Problem.t) =
  {
    p with
    name = Printf.sprintf "%s+noise%.0f%%" p.name (100.0 *. sigma);
    measure =
      (fun ~rng ~run_index c ->
        let y = p.measure ~rng ~run_index c in
        Float.max (1e-9 *. y) (y *. (1.0 +. Rng.normal ~sigma rng)));
  }

let () =
  let bench = Spapt.create "jacobi" in
  let base_problem = Adapter.problem_of bench in
  let rng = Rng.create ~seed:17 in
  let settings = { Learner.scaled_settings with n_max = 180 } in
  let rows =
    List.map
      (fun sigma ->
        let problem = with_extra_noise sigma base_problem in
        let dataset =
          Dataset.generate problem ~rng ~n_configs:600 ~test_fraction:0.25
            ~n_obs:35
        in
        let outcome plan =
          Learner.run problem dataset { settings with plan }
            ~rng:(Rng.create ~seed:23)
        in
        let adaptive = outcome (Learner.Adaptive { max_obs = 35 }) in
        let one = outcome (Learner.Fixed 1) in
        let revisit_rate =
          1.0
          -. (float_of_int adaptive.distinct_examples
             /. float_of_int
                  (adaptive.total_runs - (settings.n_init * 34)))
        in
        [
          Printf.sprintf "%.0f%%" (100.0 *. sigma);
          Report.f3 one.final_rmse;
          Report.f3 adaptive.final_rmse;
          Printf.sprintf "%.0f%%" (100.0 *. Float.max 0.0 revisit_rate);
        ])
      [ 0.0; 0.02; 0.05; 0.10; 0.20 ]
  in
  print_string
    (Report.Table.render
       ~headers:
         [
           "injected noise";
           "one-obs final RMSE";
           "adaptive final RMSE";
           "adaptive revisit share";
         ]
       ~rows);
  print_newline ();
  print_endline
    "As injected noise grows, the one-observation plan's error degrades \
     while the adaptive plan spends a growing share of its budget on \
     revisits to compensate."
