(* End-to-end autotuning of matrix multiplication: train a model, search
   it for the best configuration, and compare against the -O2-style
   default — the workload the paper's introduction motivates.

   Run with: dune exec examples/tune_mm.exe *)

module Spapt = Altune_spapt.Spapt
module Adapter = Altune_experiments.Adapter
module Dataset = Altune_core.Dataset
module Learner = Altune_core.Learner
module Search = Altune_core.Search
module Rng = Altune_prng.Rng
module Report = Altune_report.Report

let () =
  let rng = Rng.create ~seed:11 in
  let bench = Spapt.create "mm" in
  let problem = Adapter.problem_of bench in
  let dataset =
    Dataset.generate problem ~rng ~n_configs:1500 ~test_fraction:0.25
      ~n_obs:35
  in
  Printf.printf "tuning %s over %.2e configurations...\n" (Spapt.name bench)
    (Spapt.space_size bench);
  let settings =
    { Learner.scaled_settings with n_max = 600; n_candidates = 80 }
  in
  let outcome = Learner.run problem dataset settings ~rng in
  Printf.printf
    "model trained: RMSE %.4f s after %.0f simulated profiling seconds\n"
    outcome.final_rmse outcome.total_cost;
  Printf.printf
    "(the RMSE is dominated by the catastrophic unroll corner; what matters\n\
    \ for tuning is that the model ranks the good basin correctly)\n\n";

  (* Exhaustive search is impossible (1.4M configurations would mean weeks
     of profiling); searching the *model* costs microseconds per query, so
     hill-climb it from several restarts. *)
  let space =
    Search.space_of_cardinalities
      (Array.of_list (List.map Spapt.knob_cardinality (Spapt.knobs bench)))
  in
  let found =
    Search.minimize ~rng space ~predict:outcome.predict
      (Search.Hill_climbing { restarts = 12; max_steps = 80 })
  in
  let best = ref found.best in
  let best_pred = ref found.predicted in
  let default = Array.make (Spapt.dim bench) 0 in
  let show config =
    String.concat ";" (List.map string_of_int (Array.to_list config))
  in
  let rows =
    [
      [
        "default (-O2)"; show default; "-";
        Report.f3 (Spapt.true_runtime bench default);
      ];
      [
        "model's choice"; show !best; Report.f3 !best_pred;
        Report.f3 (Spapt.true_runtime bench !best);
      ];
    ]
  in
  print_string
    (Report.Table.render
       ~headers:[ "variant"; "config"; "predicted (s)"; "true (s)" ]
       ~rows);
  let speedup =
    Spapt.true_runtime bench default /. Spapt.true_runtime bench !best
  in
  Printf.printf "\ntuned speedup over default: %.2fx\n" speedup;
  (* Show what the chosen transformations look like. *)
  List.iteri
    (fun i knob ->
      Printf.printf "  %-12s -> level %d\n" (Spapt.knob_name knob) (!best).(i))
    (Spapt.knobs bench)
