(* Tests for special functions, distribution quantiles, online statistics,
   and model-accuracy metrics. *)

module Special = Altune_stats.Special
module Distributions = Altune_stats.Distributions
module Welford = Altune_stats.Welford
module Descriptive = Altune_stats.Descriptive
module Metrics = Altune_stats.Metrics
module Linalg = Altune_stats.Linalg
module Rng = Altune_prng.Rng

let test_log_gamma () =
  (* Gamma(n) = (n-1)! *)
  Alcotest.(check (float 1e-9)) "G(1)" 0.0 (Special.log_gamma 1.0);
  Alcotest.(check (float 1e-9)) "G(2)" 0.0 (Special.log_gamma 2.0);
  Alcotest.(check (float 1e-8)) "G(5)" (log 24.0) (Special.log_gamma 5.0);
  Alcotest.(check (float 1e-8))
    "G(0.5)"
    (log (sqrt Float.pi))
    (Special.log_gamma 0.5);
  Alcotest.(check (float 1e-6))
    "G(10.3) recurrence"
    (Special.log_gamma 11.3)
    (Special.log_gamma 10.3 +. log 10.3)

let test_erf () =
  Alcotest.(check (float 1e-6)) "erf 0" 0.0 (Special.erf 0.0);
  Alcotest.(check (float 1e-6)) "erf 1" 0.8427007929 (Special.erf 1.0);
  Alcotest.(check (float 1e-6)) "erf -1" (-0.8427007929) (Special.erf (-1.0));
  Alcotest.(check (float 1e-6)) "erf 2" 0.9953222650 (Special.erf 2.0);
  Alcotest.(check (float 1e-9)) "erfc large" 0.0 (Special.erfc 10.0)

let test_incomplete_beta () =
  Alcotest.(check (float 1e-9)) "I_x(1,1)=x" 0.37
    (Special.incomplete_beta ~a:1.0 ~b:1.0 0.37);
  Alcotest.(check (float 1e-8))
    "I_0.5(2,2)" 0.5
    (Special.incomplete_beta ~a:2.0 ~b:2.0 0.5);
  (* I_x(2,3) has closed form 6x^2 - 8x^3 + 3x^4. *)
  let x = 0.3 in
  Alcotest.(check (float 1e-8))
    "I_0.3(2,3)"
    ((6.0 *. x *. x) -. (8.0 *. x *. x *. x) +. (3.0 *. x *. x *. x *. x))
    (Special.incomplete_beta ~a:2.0 ~b:3.0 x)

let test_normal_quantile () =
  Alcotest.(check (float 1e-6)) "median" 0.0
    (Distributions.normal_quantile 0.5);
  Alcotest.(check (float 1e-6))
    "97.5%" 1.959963985 (Distributions.normal_quantile 0.975);
  Alcotest.(check (float 1e-6))
    "2.5%" (-1.959963985)
    (Distributions.normal_quantile 0.025);
  Alcotest.(check (float 1e-5))
    "99.9%" 3.090232306 (Distributions.normal_quantile 0.999)

let test_normal_cdf_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-8))
        (Printf.sprintf "cdf(q(%g))" p)
        p
        (Distributions.normal_cdf (Distributions.normal_quantile p)))
    [ 0.001; 0.025; 0.2; 0.5; 0.8; 0.975; 0.999 ]

let test_student_t_quantile () =
  (* Reference values from standard t-tables (two-sided 95%). *)
  let cases =
    [ (1.0, 12.7062); (2.0, 4.30265); (5.0, 2.57058); (10.0, 2.22814);
      (30.0, 2.04227); (34.0, 2.03224) ]
  in
  List.iter
    (fun (df, expected) ->
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "t(%g, 0.975)" df)
        expected
        (Distributions.student_t_quantile ~df 0.975))
    cases;
  Alcotest.(check (float 1e-9))
    "median" 0.0
    (Distributions.student_t_quantile ~df:7.0 0.5)

let test_student_t_cdf () =
  Alcotest.(check (float 1e-9)) "cdf 0" 0.5
    (Distributions.student_t_cdf ~df:5.0 0.0);
  Alcotest.(check (float 1e-6))
    "symmetry" 1.0
    (Distributions.student_t_cdf ~df:5.0 1.3
    +. Distributions.student_t_cdf ~df:5.0 (-1.3));
  (* t cdf approaches the normal cdf for large df. *)
  Alcotest.(check (float 1e-3))
    "large df" (Distributions.normal_cdf 1.0)
    (Distributions.student_t_cdf ~df:1000.0 1.0)

let test_welford_basic () =
  let t = Welford.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "count" 8 (Welford.count t);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Welford.mean t);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Welford.variance t);
  Alcotest.(check (float 1e-9)) "sum" 40.0 (Welford.sum t)

let test_welford_empty_and_single () =
  Alcotest.(check int) "empty count" 0 (Welford.count Welford.empty);
  Alcotest.(check bool) "empty mean nan" true
    (Float.is_nan (Welford.mean Welford.empty));
  let s = Welford.singleton 3.0 in
  Alcotest.(check (float 1e-9)) "single mean" 3.0 (Welford.mean s);
  Alcotest.(check (float 1e-9)) "single variance" 0.0 (Welford.variance s);
  Alcotest.(check bool) "single ci infinite" true
    (Welford.ci_halfwidth s = infinity)

let test_welford_ci () =
  (* n=8, std known: CI halfwidth = t(7, .975) * s / sqrt(8). *)
  let t = Welford.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  let expected =
    Distributions.student_t_quantile ~df:7.0 0.975
    *. Welford.std t /. sqrt 8.0
  in
  Alcotest.(check (float 1e-9)) "halfwidth" expected (Welford.ci_halfwidth t);
  let lo, hi = Welford.confidence_interval t in
  Alcotest.(check (float 1e-9)) "centered" (Welford.mean t) ((lo +. hi) /. 2.0)

let test_ci_coverage () =
  (* The 95% CI of a Gaussian sample should cover the true mean roughly 95%
     of the time; allow a generous band for a 1000-trial estimate. *)
  let rng = Rng.create ~seed:99 in
  let trials = 1000 in
  let covered = ref 0 in
  for _ = 1 to trials do
    let acc = ref Welford.empty in
    for _ = 1 to 10 do
      acc := Welford.add !acc (Rng.normal ~mu:3.0 ~sigma:2.0 rng)
    done;
    let lo, hi = Welford.confidence_interval !acc in
    if lo <= 3.0 && 3.0 <= hi then incr covered
  done;
  let rate = float_of_int !covered /. float_of_int trials in
  if rate < 0.92 || rate > 0.98 then
    Alcotest.failf "coverage %.3f outside [0.92, 0.98]" rate

let test_descriptive () =
  let a = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.875 (Descriptive.mean a);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Descriptive.min a);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Descriptive.max a);
  Alcotest.(check (float 1e-9)) "median" 3.5 (Descriptive.median a);
  Alcotest.(check (float 1e-9)) "q0" 1.0 (Descriptive.quantile a 0.0);
  Alcotest.(check (float 1e-9)) "q1" 9.0 (Descriptive.quantile a 1.0);
  let m, mean, x = Descriptive.summary a in
  Alcotest.(check (float 1e-9)) "summary min" 1.0 m;
  Alcotest.(check (float 1e-9)) "summary mean" 3.875 mean;
  Alcotest.(check (float 1e-9)) "summary max" 9.0 x

let test_geometric_mean () =
  Alcotest.(check (float 1e-9))
    "gm" 4.0
    (Descriptive.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Descriptive.geometric_mean: non-positive entry")
    (fun () -> ignore (Descriptive.geometric_mean [| 1.0; 0.0 |]))

let test_normalize () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let z = Descriptive.normalize a in
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 (Descriptive.mean z);
  Alcotest.(check (float 1e-9)) "std 1" 1.0 (Descriptive.std z);
  let c = Descriptive.normalize [| 7.0; 7.0; 7.0 |] in
  Alcotest.(check (float 1e-9)) "constant maps to 0" 0.0 (Descriptive.max c)

let test_metrics () =
  let predicted = [| 1.0; 2.0; 3.0 |] and observed = [| 1.0; 2.0; 5.0 |] in
  Alcotest.(check (float 1e-9))
    "rmse"
    (sqrt (4.0 /. 3.0))
    (Metrics.rmse ~predicted ~observed);
  Alcotest.(check (float 1e-9))
    "mae" (2.0 /. 3.0)
    (Metrics.mae ~predicted ~observed);
  Alcotest.(check (float 1e-9))
    "max abs" 2.0
    (Metrics.max_abs_error ~predicted ~observed);
  Alcotest.(check (float 1e-9))
    "perfect r2" 1.0
    (Metrics.r_squared ~predicted:observed ~observed)

(* --- Linear algebra --- *)

let test_cholesky_known () =
  (* A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt 2]]. *)
  let l = Linalg.cholesky [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  Alcotest.(check (float 1e-12)) "L00" 2.0 l.(0).(0);
  Alcotest.(check (float 1e-12)) "L10" 1.0 l.(1).(0);
  Alcotest.(check (float 1e-12)) "L11" (sqrt 2.0) l.(1).(1);
  Alcotest.(check (float 1e-12)) "upper zero" 0.0 l.(0).(1)

let test_cholesky_not_spd () =
  match Linalg.cholesky [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on indefinite matrix"

let test_cholesky_solve () =
  let a = [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  let l = Linalg.cholesky a in
  let b = [| 10.0; 9.0 |] in
  let x = Linalg.cholesky_solve l b in
  let ax = Linalg.mat_vec a x in
  Alcotest.(check (float 1e-9)) "Ax=b (0)" b.(0) ax.(0);
  Alcotest.(check (float 1e-9)) "Ax=b (1)" b.(1) ax.(1)

let test_log_det () =
  let a = [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  (* det = 12 - 4 = 8. *)
  Alcotest.(check (float 1e-9))
    "log det" (log 8.0)
    (Linalg.log_det_from_cholesky (Linalg.cholesky a))

(* Random SPD matrix via A = M M^T + eps I. *)
let random_spd rng n =
  let m =
    Array.init n (fun _ -> Array.init n (fun _ -> Rng.normal rng))
  in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let s = ref 0.0 in
          for k = 0 to n - 1 do
            s := !s +. (m.(i).(k) *. m.(j).(k))
          done;
          !s +. if i = j then 0.1 else 0.0))

let prop_cholesky_reconstructs =
  QCheck.Test.make ~name:"cholesky reconstructs A" ~count:100
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let a = random_spd rng n in
      let l = Linalg.cholesky a in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let s = ref 0.0 in
          for k = 0 to n - 1 do
            s := !s +. (l.(i).(k) *. l.(j).(k))
          done;
          if Float.abs (!s -. a.(i).(j)) > 1e-8 then ok := false
        done
      done;
      !ok)

let prop_cholesky_solve_correct =
  QCheck.Test.make ~name:"cholesky_solve solves Ax=b" ~count:100
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let a = random_spd rng n in
      let b = Array.init n (fun _ -> Rng.normal rng) in
      let x = Linalg.cholesky_solve (Linalg.cholesky a) b in
      let ax = Linalg.mat_vec a x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) ax b)

(* --- Rank tests --- *)

module Tests = Altune_stats.Tests

let gaussian_sample rng n mu sigma =
  Array.init n (fun _ -> Rng.normal ~mu ~sigma rng)

let test_mann_whitney_separated () =
  let rng = Rng.create ~seed:61 in
  let a = gaussian_sample rng 30 1.0 0.1 in
  let b = gaussian_sample rng 30 2.0 0.1 in
  let _, p = Tests.mann_whitney_u a b in
  Alcotest.(check bool) "tiny p" true (p < 1e-6);
  Alcotest.(check bool) "a less" true (Tests.significantly_less a b);
  Alcotest.(check bool) "b not less" false (Tests.significantly_less b a)

let test_mann_whitney_identical () =
  let rng = Rng.create ~seed:67 in
  let false_positives = ref 0 in
  for _ = 1 to 200 do
    let a = gaussian_sample rng 15 1.0 0.2 in
    let b = gaussian_sample rng 15 1.0 0.2 in
    if Tests.significantly_less a b then incr false_positives
  done;
  (* One-sided at alpha 0.05: expect ~5% false positives. *)
  Alcotest.(check bool)
    (Printf.sprintf "false positive rate ~5%% (%d/200)" !false_positives)
    true
    (!false_positives < 25)

let test_mann_whitney_ties () =
  let a = [| 1.0; 1.0; 2.0 |] and b = [| 1.0; 2.0; 2.0 |] in
  let u, p = Tests.mann_whitney_u a b in
  Alcotest.(check bool) "finite" true (Float.is_finite u && Float.is_finite p);
  Alcotest.(check bool) "p sane" true (p >= 0.0 && p <= 1.0)

let test_mann_whitney_exact_u () =
  (* Classic small example: a = [1,2], b = [3,4]: U1 = 0. *)
  let u, _ = Tests.mann_whitney_u [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "u" 0.0 u

(* Property tests. *)

let float_array_gen =
  QCheck.(array_of_size Gen.(int_range 1 40) (float_bound_exclusive 100.0))

let prop_welford_matches_two_pass =
  QCheck.Test.make ~name:"welford matches two-pass statistics" ~count:300
    float_array_gen (fun a ->
      let w = Welford.of_array a in
      let ok_mean = Float.abs (Welford.mean w -. Descriptive.mean a) < 1e-7 in
      let ok_var =
        Float.abs (Welford.variance w -. Descriptive.variance a) < 1e-6
      in
      ok_mean && ok_var)

let prop_welford_merge =
  QCheck.Test.make ~name:"welford merge equals concatenation" ~count:300
    QCheck.(pair float_array_gen float_array_gen)
    (fun (a, b) ->
      let merged = Welford.merge (Welford.of_array a) (Welford.of_array b) in
      let whole = Welford.of_array (Array.append a b) in
      Welford.count merged = Welford.count whole
      && Float.abs (Welford.mean merged -. Welford.mean whole) < 1e-7
      && Float.abs (Welford.variance merged -. Welford.variance whole) < 1e-6)

let prop_rmse_dominates_mae =
  QCheck.Test.make ~name:"rmse >= mae" ~count:300
    QCheck.(
      pair float_array_gen float_array_gen)
    (fun (a, b) ->
      let n = min (Array.length a) (Array.length b) in
      QCheck.assume (n > 0);
      let a = Array.sub a 0 n and b = Array.sub b 0 n in
      Metrics.rmse ~predicted:a ~observed:b
      >= Metrics.mae ~predicted:a ~observed:b -. 1e-9)

let prop_incomplete_beta_symmetry =
  QCheck.Test.make ~name:"incomplete beta symmetry" ~count:200
    QCheck.(
      triple (float_range 0.1 5.0) (float_range 0.1 5.0)
        (float_range 0.01 0.99))
    (fun (a, b, x) ->
      let lhs = Special.incomplete_beta ~a ~b x in
      let rhs = 1.0 -. Special.incomplete_beta ~a:b ~b:a (1.0 -. x) in
      Float.abs (lhs -. rhs) < 1e-7)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"array quantile is monotone in p" ~count:200
    QCheck.(triple float_array_gen (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (a, p1, p2) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Descriptive.quantile a lo <= Descriptive.quantile a hi +. 1e-9)

let prop_ci_shrinks =
  QCheck.Test.make ~name:"ci halfwidth shrinks as samples accumulate"
    ~count:50 QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed in
      let acc = ref Welford.empty in
      for _ = 1 to 10 do
        acc := Welford.add !acc (Rng.normal rng)
      done;
      let h10 = Welford.ci_halfwidth !acc in
      for _ = 1 to 990 do
        acc := Welford.add !acc (Rng.normal rng)
      done;
      let h1000 = Welford.ci_halfwidth !acc in
      h1000 < h10)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_welford_matches_two_pass;
        prop_welford_merge;
        prop_rmse_dominates_mae;
        prop_incomplete_beta_symmetry;
        prop_quantile_monotone;
        prop_ci_shrinks;
      ]
  in
  Alcotest.run "stats"
    [
      ( "special",
        [
          Alcotest.test_case "log_gamma" `Quick test_log_gamma;
          Alcotest.test_case "erf" `Quick test_erf;
          Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
          Alcotest.test_case "normal cdf roundtrip" `Quick
            test_normal_cdf_roundtrip;
          Alcotest.test_case "student-t quantile" `Quick
            test_student_t_quantile;
          Alcotest.test_case "student-t cdf" `Quick test_student_t_cdf;
        ] );
      ( "welford",
        [
          Alcotest.test_case "basic" `Quick test_welford_basic;
          Alcotest.test_case "empty and single" `Quick
            test_welford_empty_and_single;
          Alcotest.test_case "confidence interval" `Quick test_welford_ci;
          Alcotest.test_case "ci coverage" `Slow test_ci_coverage;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "summary stats" `Quick test_descriptive;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "normalize" `Quick test_normalize;
        ] );
      ("metrics", [ Alcotest.test_case "rmse mae r2" `Quick test_metrics ]);
      ( "rank tests",
        [
          Alcotest.test_case "separated samples" `Quick
            test_mann_whitney_separated;
          Alcotest.test_case "identical samples" `Quick
            test_mann_whitney_identical;
          Alcotest.test_case "ties" `Quick test_mann_whitney_ties;
          Alcotest.test_case "exact U" `Quick test_mann_whitney_exact_u;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "cholesky known" `Quick test_cholesky_known;
          Alcotest.test_case "cholesky not spd" `Quick test_cholesky_not_spd;
          Alcotest.test_case "cholesky solve" `Quick test_cholesky_solve;
          Alcotest.test_case "log det" `Quick test_log_det;
          QCheck_alcotest.to_alcotest prop_cholesky_reconstructs;
          QCheck_alcotest.to_alcotest prop_cholesky_solve_correct;
        ] );
      ("properties", qsuite);
    ]
