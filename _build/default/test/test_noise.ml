(* Tests for the measurement-noise simulation. *)

module Noise = Altune_noise.Noise
module Rng = Altune_prng.Rng
module Welford = Altune_stats.Welford

let sample_stats ?(n = 20_000) model ~true_value =
  let rng = Rng.create ~seed:9 in
  let acc = ref Welford.empty in
  for run_index = 1 to n do
    acc :=
      Welford.add !acc (Noise.sample model ~rng ~run_index ~true_value)
  done;
  !acc

let test_positive () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun model ->
      for run_index = 1 to 2000 do
        let y = Noise.sample model ~rng ~run_index ~true_value:2.0 in
        if y <= 0.0 then Alcotest.failf "non-positive sample %g" y
      done)
    [ Noise.quiet; Noise.standard; Noise.noisy ]

let test_gaussian_moments () =
  let model = Noise.create [ Noise.Gaussian_rel 0.05 ] in
  let s = sample_stats model ~true_value:10.0 in
  Alcotest.(check (float 0.02)) "mean preserved" 10.0 (Welford.mean s);
  Alcotest.(check (float 0.02)) "std = 5% of value" 0.5 (Welford.std s)

let test_unbiased_when_quiet () =
  let s = sample_stats Noise.quiet ~true_value:1.0 in
  Alcotest.(check (float 0.001)) "mean ~ true" 1.0 (Welford.mean s)

let test_burst_right_tail () =
  let model =
    Noise.create [ Noise.Burst { probability = 0.2; mu = 0.0; sigma = 0.5 } ]
  in
  let s = sample_stats model ~true_value:1.0 in
  (* Bursts only ever slow a run down. *)
  Alcotest.(check bool) "mean above true" true (Welford.mean s > 1.0)

let test_layout_bounded_and_deterministic () =
  let model = Noise.create [ Noise.Layout { buckets = 4; amplitude = 0.1 } ] in
  let rng = Rng.create ~seed:5 in
  let values = Hashtbl.create 8 in
  for run_index = 1 to 5000 do
    let y = Noise.sample model ~rng ~run_index ~true_value:1.0 in
    if y < 0.9 -. 1e-9 || y > 1.1 +. 1e-9 then
      Alcotest.failf "layout factor out of bounds: %g" y;
    Hashtbl.replace values (Printf.sprintf "%.12f" y) ()
  done;
  (* Only [buckets] distinct factors can occur. *)
  Alcotest.(check bool)
    (Printf.sprintf "at most 4 distinct factors, got %d"
       (Hashtbl.length values))
    true
    (Hashtbl.length values <= 4)

let test_drift_depends_on_run_index () =
  let model =
    Noise.create [ Noise.Drift { period = 40.0; amplitude = 0.1 } ]
  in
  let rng = Rng.create ~seed:1 in
  (* Drift is deterministic given run_index: peak vs trough differ. *)
  let peak = Noise.sample model ~rng ~run_index:10 ~true_value:1.0 in
  let trough = Noise.sample model ~rng ~run_index:30 ~true_value:1.0 in
  Alcotest.(check (float 1e-9)) "peak" 1.1 peak;
  Alcotest.(check (float 1e-9)) "trough" 0.9 trough

let test_scale_gaussian () =
  let model = Noise.create [ Noise.Gaussian_rel 0.01 ] in
  let scaled = Noise.scale_gaussian model 5.0 in
  let s = sample_stats scaled ~true_value:1.0 in
  Alcotest.(check (float 0.005)) "sigma scaled" 0.05 (Welford.std s);
  (* Non-Gaussian channels are untouched. *)
  match Noise.channels (Noise.scale_gaussian Noise.standard 2.0) with
  | channels ->
      let bursts =
        List.filter (function Noise.Burst _ -> true | _ -> false) channels
      in
      Alcotest.(check int) "burst preserved" 1 (List.length bursts)

let test_validation () =
  let invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Noise.create [ Noise.Gaussian_rel (-0.1) ]);
  invalid (fun () ->
      Noise.create [ Noise.Burst { probability = 1.5; mu = 0.0; sigma = 1.0 } ]);
  invalid (fun () ->
      Noise.create [ Noise.Layout { buckets = 0; amplitude = 0.1 } ]);
  invalid (fun () ->
      Noise.create [ Noise.Drift { period = 0.0; amplitude = 0.1 } ])

let prop_sample_positive =
  QCheck.Test.make ~name:"samples always positive" ~count:200
    QCheck.(pair small_int (float_range 1e-6 100.0))
    (fun (seed, true_value) ->
      let rng = Rng.create ~seed in
      let y = Noise.sample Noise.noisy ~rng ~run_index:1 ~true_value in
      y > 0.0)

let () =
  Alcotest.run "noise"
    [
      ( "channels",
        [
          Alcotest.test_case "positivity" `Quick test_positive;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "quiet unbiased" `Quick test_unbiased_when_quiet;
          Alcotest.test_case "burst right tail" `Quick test_burst_right_tail;
          Alcotest.test_case "layout bounded deterministic" `Quick
            test_layout_bounded_and_deterministic;
          Alcotest.test_case "drift periodic" `Quick
            test_drift_depends_on_run_index;
          Alcotest.test_case "scale gaussian" `Quick test_scale_gaussian;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_sample_positive ] );
    ]
