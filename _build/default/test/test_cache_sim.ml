(* Tests for the trace-driven cache simulator, including the validation
   runs that check the analytic machine model's qualitative calls against
   exact miss counts. *)

module Cache_sim = Altune_machine.Cache_sim
module Machine = Altune_machine.Machine
module Analysis = Altune_kernellang.Analysis
module Parser = Altune_kernellang.Parser
module Transform = Altune_kernellang.Transform

let ok = function
  | Ok k -> k
  | Error e -> Alcotest.failf "transform: %s" (Transform.error_to_string e)

(* --- Single cache --- *)

let test_cold_miss_then_hit () =
  let c = Cache_sim.create_cache ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  Alcotest.(check bool) "cold miss" false (Cache_sim.cache_access c 0);
  Alcotest.(check bool) "hit" true (Cache_sim.cache_access c 0);
  Alcotest.(check bool) "same line hits" true (Cache_sim.cache_access c 63);
  Alcotest.(check bool) "next line misses" false (Cache_sim.cache_access c 64)

let test_lru_eviction () =
  (* 2-way, 64 B lines, 8 sets (1024 B): addresses 0, 512, 1024 all map to
     set 0.  After touching 0 and 512, touching 1024 evicts the LRU (0). *)
  let c = Cache_sim.create_cache ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  ignore (Cache_sim.cache_access c 0);
  ignore (Cache_sim.cache_access c 512);
  ignore (Cache_sim.cache_access c 1024);
  Alcotest.(check bool) "512 still resident" true
    (Cache_sim.cache_access c 512);
  Alcotest.(check bool) "1024 still resident" true
    (Cache_sim.cache_access c 1024);
  Alcotest.(check bool) "0 was evicted" false (Cache_sim.cache_access c 0)

let test_lru_recency_update () =
  let c = Cache_sim.create_cache ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  ignore (Cache_sim.cache_access c 0);
  ignore (Cache_sim.cache_access c 512);
  ignore (Cache_sim.cache_access c 0) |> ignore;
  (* 0 is now most recent; inserting 1024 evicts 512. *)
  ignore (Cache_sim.cache_access c 1024);
  Alcotest.(check bool) "0 survived" true (Cache_sim.cache_access c 0);
  Alcotest.(check bool) "512 evicted" false (Cache_sim.cache_access c 512)

let test_full_associativity_within_set () =
  (* 4-way single-set cache: four conflicting lines all fit. *)
  let c = Cache_sim.create_cache ~size_bytes:256 ~line_bytes:64 ~ways:4 in
  List.iter (fun a -> ignore (Cache_sim.cache_access c a)) [ 0; 64; 128; 192 ];
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "%d resident" a)
        true
        (Cache_sim.cache_access c a))
    [ 0; 64; 128; 192 ]

let test_reset () =
  let c = Cache_sim.create_cache ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  ignore (Cache_sim.cache_access c 0);
  Cache_sim.cache_reset c;
  Alcotest.(check bool) "cold again" false (Cache_sim.cache_access c 0)

let test_create_validation () =
  let invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () ->
      Cache_sim.create_cache ~size_bytes:1000 ~line_bytes:64 ~ways:2);
  invalid (fun () ->
      Cache_sim.create_cache ~size_bytes:1024 ~line_bytes:64 ~ways:0);
  invalid (fun () ->
      Cache_sim.create_cache ~size_bytes:1024 ~line_bytes:64 ~ways:3)

(* --- Hierarchy --- *)

let test_hierarchy_counts () =
  let h =
    Cache_sim.create_hierarchy ~l1_bytes:1024 ~l2_bytes:4096 ~line_bytes:64
      ~l1_ways:2 ~l2_ways:4 ()
  in
  (* Stream 64 distinct lines (4 KB): all miss L1 (1 KB) on first touch;
     all miss L2 cold too. *)
  for i = 0 to 63 do
    Cache_sim.hierarchy_access h (i * 64)
  done;
  let s = Cache_sim.hierarchy_stats h in
  Alcotest.(check int) "accesses" 64 s.accesses;
  Alcotest.(check int) "l1 cold misses" 64 s.l1_misses;
  Alcotest.(check int) "l2 cold misses" 64 s.l2_misses;
  (* Second pass: fits L2 (4 KB), not L1. *)
  for i = 0 to 63 do
    Cache_sim.hierarchy_access h (i * 64)
  done;
  let s = Cache_sim.hierarchy_stats h in
  Alcotest.(check int) "l2 absorbed the second pass" 64 s.l2_misses;
  Alcotest.(check bool) "l1 missed again" true (s.l1_misses > 100)

(* --- Kernel traces --- *)

let mm n =
  Parser.parse_kernel
    (Printf.sprintf
       {|
kernel mm(N = %d) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      for k = 0 to N - 1 {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}
       n)

let simulate kernel =
  let h = Cache_sim.create_hierarchy () in
  Cache_sim.simulate_kernel h kernel

let test_access_count_matches_analysis () =
  let k = mm 24 in
  let s = simulate k in
  (* 4 accesses per innermost iteration. *)
  Alcotest.(check int) "access count" (4 * 24 * 24 * 24) s.accesses

let test_unit_stride_spatial_locality () =
  (* A streaming kernel touches each line once: miss rate ~ 1/8 for
     8-byte elements on 64-byte lines. *)
  let k =
    Parser.parse_kernel
      {|
kernel stream(N = 65536) {
  array X[N];
  for i = 0 to N - 1 {
    X[i] = X[i] + 1.0;
  }
}
|}
  in
  let s = simulate k in
  let rate = float_of_int s.l1_misses /. float_of_int s.accesses in
  (* Two accesses (read+write) per element, one line fill per 8 elements:
     expected miss rate 1/16. *)
  Alcotest.(check (float 0.005)) "spatial locality" (1.0 /. 16.0) rate

let test_tiling_cuts_l1_misses () =
  (* The validation run: the analytic model says tiling mm reduces memory
     cost; the simulator must agree on actual miss counts. *)
  let k = mm 64 in
  let tiled = ok (Transform.tile_nest [ ("i", 16); ("j", 16); ("k", 16) ] k) in
  let s_plain = simulate k in
  let s_tiled = simulate tiled in
  Alcotest.(check bool)
    (Printf.sprintf "tiling cuts L1 misses (%d -> %d)" s_plain.l1_misses
       s_tiled.l1_misses)
    true
    (float_of_int s_tiled.l1_misses < 0.5 *. float_of_int s_plain.l1_misses);
  (* And the analytic model agrees on the direction. *)
  let cost kern =
    (Machine.estimate Machine.default (Analysis.analyze kern)).memory_cycles
  in
  Alcotest.(check bool) "analytic model agrees" true (cost tiled < cost k)

let test_unroll_preserves_misses () =
  (* Unrolling reorders nothing across iterations: essentially identical
     miss counts. *)
  let k = mm 32 in
  let unrolled = ok (Transform.unroll ~index:"k" ~factor:4 k) in
  let s0 = simulate k in
  let s1 = simulate unrolled in
  Alcotest.(check int) "same accesses" s0.accesses s1.accesses;
  let rel =
    Float.abs (float_of_int (s0.l1_misses - s1.l1_misses))
    /. float_of_int (max 1 s0.l1_misses)
  in
  Alcotest.(check bool)
    (Printf.sprintf "miss counts close (%d vs %d)" s0.l1_misses s1.l1_misses)
    true (rel < 0.05)

let test_transpose_stride_misses () =
  (* Column-major traversal of a big row-major array misses far more than
     row-major traversal. *)
  let row =
    Parser.parse_kernel
      {|
kernel row(N = 512) {
  array A[N][N];
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      A[i][j] = A[i][j] + 1.0;
    }
  }
}
|}
  in
  let col =
    Parser.parse_kernel
      {|
kernel col(N = 512) {
  array A[N][N];
  for j = 0 to N - 1 {
    for i = 0 to N - 1 {
      A[i][j] = A[i][j] + 1.0;
    }
  }
}
|}
  in
  let s_row = simulate row and s_col = simulate col in
  Alcotest.(check bool)
    (Printf.sprintf "column order misses more (%d vs %d)" s_col.l1_misses
       s_row.l1_misses)
    true
    (s_col.l1_misses > 4 * s_row.l1_misses)

let () =
  Alcotest.run "cache_sim"
    [
      ( "cache",
        [
          Alcotest.test_case "cold miss then hit" `Quick
            test_cold_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "lru recency" `Quick test_lru_recency_update;
          Alcotest.test_case "associativity" `Quick
            test_full_associativity_within_set;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "validation" `Quick test_create_validation;
        ] );
      ( "hierarchy",
        [ Alcotest.test_case "counts" `Quick test_hierarchy_counts ] );
      ( "kernel traces",
        [
          Alcotest.test_case "access counts" `Quick
            test_access_count_matches_analysis;
          Alcotest.test_case "spatial locality" `Quick
            test_unit_stride_spatial_locality;
          Alcotest.test_case "tiling cuts misses" `Slow
            test_tiling_cuts_l1_misses;
          Alcotest.test_case "unroll preserves misses" `Slow
            test_unroll_preserves_misses;
          Alcotest.test_case "transpose strides" `Slow
            test_transpose_stride_misses;
        ] );
    ]
