(* Tests for the plain-text rendering library. *)

module Report = Altune_report.Report

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else go (i + 1)
  in
  go 0

let test_table_basic () =
  let s =
    Report.Table.render ~headers:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1.5" ]; [ "beta"; "22.0" ] ]
  in
  Alcotest.(check bool) "has header" true (contains s "name");
  Alcotest.(check bool) "has rule" true (contains s "---");
  Alcotest.(check bool) "has rows" true
    (contains s "alpha" && contains s "22.0");
  (* Numeric column right-aligned: "1.5" should be padded on the left to
     the width of "22.0"/"value". *)
  Alcotest.(check bool) "right aligned" true (contains s "  1.5")

let test_table_ragged_rows () =
  let s =
    Report.Table.render ~headers:[ "a"; "b"; "c" ] ~rows:[ [ "x" ]; [] ]
  in
  Alcotest.(check bool) "renders without error" true (String.length s > 0)

let test_csv_escaping () =
  let s =
    Report.Csv.to_string ~header:[ "x"; "note" ]
      ~rows:[ [ "1"; "has, comma" ]; [ "2"; "has \"quote\"" ] ]
  in
  Alcotest.(check bool) "comma quoted" true (contains s "\"has, comma\"");
  Alcotest.(check bool) "quote doubled" true (contains s "\"\"quote\"\"")

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "altune" ".csv" in
  Report.Csv.write ~path ~header:[ "a" ] ~rows:[ [ "1" ]; [ "2" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "contents" [ "a"; "1"; "2" ]
    (List.rev !lines)

let test_line_plot () =
  let s =
    Report.Plot.line ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [
        ("s1", [ (0.0, 0.0); (1.0, 1.0) ]);
        ("s2", [ (0.0, 1.0); (1.0, 0.0) ]);
      ]
  in
  Alcotest.(check bool) "title" true (contains s "t");
  Alcotest.(check bool) "glyph s1" true (contains s "*");
  Alcotest.(check bool) "glyph s2" true (contains s "o");
  Alcotest.(check bool) "legend" true (contains s "s1" && contains s "s2");
  Alcotest.(check bool) "axis range" true (contains s "0 .. 1")

let test_line_plot_empty () =
  let s = Report.Plot.line ~title:"t" ~xlabel:"x" ~ylabel:"y" [ ("e", []) ] in
  Alcotest.(check bool) "no data marker" true (contains s "(no data)")

let test_line_plot_logx_filters () =
  let s =
    Report.Plot.line ~logx:true ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [ ("s", [ (0.0, 1.0); (10.0, 2.0); (100.0, 3.0) ]) ]
  in
  (* The zero-x point must be dropped, not crash the log scale. *)
  Alcotest.(check bool) "renders" true (contains s "log x")

let test_bars () =
  let s = Report.Plot.bars ~title:"speedups" [ ("a", 2.0); ("b", 4.0) ] in
  Alcotest.(check bool) "labels" true (contains s "a" && contains s "b");
  Alcotest.(check bool) "bars drawn" true (contains s "####")

let test_heat () =
  let s =
    Report.Plot.heat ~title:"h" ~xlabel:"x" ~ylabel:"y" ~rows:4 ~cols:6
      (fun r c -> float_of_int (r * c))
  in
  Alcotest.(check bool) "max glyph" true (contains s "@");
  Alcotest.(check bool) "scale note" true (contains s "scale")

let test_formatting () =
  Alcotest.(check string) "f3 small" "0.123" (Report.f3 0.1234);
  Alcotest.(check string) "f3 integer" "42" (Report.f3 42.0);
  Alcotest.(check string) "f3 tiny" "1.2e-05" (Report.f3 1.2e-5);
  Alcotest.(check string) "sci" "3.78e+14" (Report.sci 3.78e14)

let prop_table_never_raises =
  QCheck.Test.make ~name:"table renders arbitrary cells" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 5)
      (list_of_size (Gen.int_range 0 5) string))
    (fun rows ->
      let s = Report.Table.render ~headers:[ "h1"; "h2" ] ~rows in
      String.length s >= 0)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "write roundtrip" `Quick
            test_csv_write_roundtrip;
        ] );
      ( "plots",
        [
          Alcotest.test_case "line" `Quick test_line_plot;
          Alcotest.test_case "line empty" `Quick test_line_plot_empty;
          Alcotest.test_case "line logx" `Quick test_line_plot_logx_filters;
          Alcotest.test_case "bars" `Quick test_bars;
          Alcotest.test_case "heat" `Quick test_heat;
        ] );
      ( "formatting",
        [ Alcotest.test_case "f3 and sci" `Quick test_formatting ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_table_never_raises ]);
    ]
