(* Tests for the analytic machine model: basic sanity, and the qualitative
   response shapes the autotuning experiments rely on (tiling benefit,
   unroll overhead reduction, spill cliffs, compile-time growth). *)

module Parser = Altune_kernellang.Parser
module Transform = Altune_kernellang.Transform
module Analysis = Altune_kernellang.Analysis
module Machine = Altune_machine.Machine

let mm n =
  Parser.parse_kernel
    (Printf.sprintf
       {|
kernel mm(N = %d) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      for k = 0 to N - 1 {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}
       n)

let vec_scale n =
  Parser.parse_kernel
    (Printf.sprintf
       {|
kernel vs(N = %d) {
  array X[N];
  array Y[N];
  for i = 0 to N - 1 {
    Y[i] = 2.5 * X[i];
  }
}
|}
       n)

let cfg = Machine.default
let rt k = Machine.runtime_seconds cfg (Analysis.analyze k)

let ok = function
  | Ok k -> k
  | Error e -> Alcotest.failf "transform failed: %s" (Transform.error_to_string e)

let test_positive_finite () =
  List.iter
    (fun k ->
      let t = rt k in
      if not (Float.is_finite t) || t <= 0.0 then
        Alcotest.failf "runtime not positive finite: %g" t)
    [ mm 8; mm 64; mm 256; vec_scale 1024 ]

let test_monotone_in_problem_size () =
  Alcotest.(check bool) "mm grows with N" true (rt (mm 128) < rt (mm 256));
  Alcotest.(check bool)
    "vector grows with N" true
    (rt (vec_scale 1024) < rt (vec_scale 1_000_000))

let test_breakdown_adds_up () =
  let b = Machine.estimate cfg (Analysis.analyze (mm 64)) in
  let parts =
    b.compute_cycles +. b.memory_cycles +. b.overhead_cycles
    +. b.spill_penalty_cycles +. b.icache_penalty_cycles
  in
  Alcotest.(check bool)
    "components close to total" true
    (Float.abs (parts -. b.total_cycles) /. b.total_cycles < 0.01);
  Alcotest.(check (float 1e-12))
    "seconds = cycles / frequency"
    (b.total_cycles /. (cfg.frequency_ghz *. 1e9))
    b.seconds

let test_unroll_reduces_overhead () =
  (* Overhead-dominated loop: unrolling must strictly reduce the overhead
     component. *)
  let k = vec_scale 100_000 in
  let base = Machine.estimate cfg (Analysis.analyze k) in
  let unrolled =
    Machine.estimate cfg
      (Analysis.analyze (ok (Transform.unroll ~index:"i" ~factor:4 k)))
  in
  Alcotest.(check bool)
    "overhead shrinks" true
    (unrolled.overhead_cycles < 0.5 *. base.overhead_cycles);
  Alcotest.(check bool)
    "total improves" true
    (unrolled.seconds < base.seconds)

let test_extreme_unroll_spills () =
  let k = vec_scale 100_000 in
  let at factor =
    Machine.estimate cfg
      (Analysis.analyze (ok (Transform.unroll ~index:"i" ~factor k)))
  in
  let moderate = at 4 and extreme = at 64 in
  Alcotest.(check bool)
    "no spills at moderate factors" true
    (moderate.spill_penalty_cycles = 0.0);
  Alcotest.(check bool)
    "spills at extreme factors" true
    (extreme.spill_penalty_cycles > 0.0)

let test_tiling_helps_large_mm () =
  let k = mm 256 in
  let tiled = ok (Transform.tile_nest [ ("i", 16); ("j", 16); ("k", 16) ] k) in
  let speedup = rt k /. rt tiled in
  if speedup < 2.0 then
    Alcotest.failf "tiling speedup only %.2fx (expected > 2x)" speedup

let test_tiling_memory_component () =
  let k = mm 256 in
  let tiled = ok (Transform.tile_nest [ ("i", 16); ("j", 16); ("k", 16) ] k) in
  let b = Machine.estimate cfg (Analysis.analyze k) in
  let bt = Machine.estimate cfg (Analysis.analyze tiled) in
  Alcotest.(check bool)
    "memory cycles shrink" true
    (bt.memory_cycles < 0.5 *. b.memory_cycles)

let test_tiling_has_sweet_spot () =
  (* Tiny tiles pay overhead; huge tiles stop fitting in cache: runtime as
     a function of tile size must not be monotone. *)
  let k = mm 256 in
  let at t = rt (ok (Transform.tile_nest [ ("i", t); ("j", t); ("k", t) ] k)) in
  let t2 = at 2 and t16 = at 16 and t128 = at 128 in
  Alcotest.(check bool) "2 worse than 16" true (t16 < t2);
  Alcotest.(check bool) "128 worse than 16" true (t16 < t128)

let test_tiling_useless_when_fits () =
  (* For a matrix already resident in L1, tiling can only add overhead. *)
  let k = mm 16 in
  let tiled = ok (Transform.tile_nest [ ("i", 4); ("j", 4); ("k", 4) ] k) in
  Alcotest.(check bool) "no benefit" true (rt tiled >= rt k)

let test_icache_penalty_extreme_unroll () =
  let k = vec_scale 100_000 in
  let at factor =
    Machine.estimate cfg
      (Analysis.analyze (ok (Transform.unroll ~index:"i" ~factor k)))
  in
  Alcotest.(check bool)
    "small body: no icache penalty" true
    ((at 4).icache_penalty_cycles = 0.0);
  Alcotest.(check bool)
    "huge body: icache penalty" true
    ((at 2048).icache_penalty_cycles > 0.0)

let test_compile_time_grows () =
  let k = mm 64 in
  let t0 = Machine.compile_seconds cfg k in
  let t1 =
    Machine.compile_seconds cfg (ok (Transform.unroll ~index:"k" ~factor:16 k))
  in
  Alcotest.(check bool) "positive" true (t0 > 0.0);
  Alcotest.(check bool) "unrolled compiles slower" true (t1 > t0)

let test_ast_size () =
  let k = Parser.parse_kernel "kernel t(N = 4) { array A[N]; A[0] = 1.0; }" in
  Alcotest.(check bool) "small kernel, small size" true
    (Machine.ast_size k < 20);
  let k64 = mm 64 in
  let unrolled = ok (Transform.unroll ~index:"k" ~factor:8 k64) in
  Alcotest.(check bool) "unroll multiplies size" true
    (Machine.ast_size unrolled > 4 * Machine.ast_size k64)

let test_determinism () =
  let k = mm 100 in
  Alcotest.(check (float 0.0)) "same input same estimate" (rt k) (rt k)

(* Property tests. *)

let prop_runtime_positive_under_transform =
  QCheck.Test.make ~name:"runtime stays positive and finite under transforms"
    ~count:80
    QCheck.(
      triple (int_range 1 12) (int_range 1 32) (int_range 16 128))
    (fun (unroll_factor, tile, n) ->
      let k = mm n in
      let k =
        match Transform.tile_nest [ ("i", tile); ("j", tile) ] k with
        | Ok k -> k
        | Error _ -> k
      in
      let k =
        match Transform.unroll ~index:"k" ~factor:unroll_factor k with
        | Ok k -> k
        | Error _ -> k
      in
      let t = rt k in
      Float.is_finite t && t > 0.0)

let prop_flops_invariant_runtime_bounded =
  QCheck.Test.make
    ~name:"transformed runtime within sane factor of baseline" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 16))
    (fun (f, t) ->
      let k = mm 64 in
      let k' =
        Result.bind (Transform.tile_nest [ ("j", t); ("k", t) ] k)
          (Transform.unroll ~index:"k" ~factor:f)
      in
      match k' with
      | Error _ -> true
      | Ok k' ->
          let r = rt k' /. rt k in
          r > 0.05 && r < 20.0)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_runtime_positive_under_transform;
        prop_flops_invariant_runtime_bounded ]
  in
  Alcotest.run "machine"
    [
      ( "sanity",
        [
          Alcotest.test_case "positive finite" `Quick test_positive_finite;
          Alcotest.test_case "monotone in size" `Quick
            test_monotone_in_problem_size;
          Alcotest.test_case "breakdown adds up" `Quick
            test_breakdown_adds_up;
          Alcotest.test_case "deterministic" `Quick test_determinism;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "unroll reduces overhead" `Quick
            test_unroll_reduces_overhead;
          Alcotest.test_case "extreme unroll spills" `Quick
            test_extreme_unroll_spills;
          Alcotest.test_case "tiling helps large mm" `Quick
            test_tiling_helps_large_mm;
          Alcotest.test_case "tiling shrinks memory cycles" `Quick
            test_tiling_memory_component;
          Alcotest.test_case "tiling sweet spot" `Quick
            test_tiling_has_sweet_spot;
          Alcotest.test_case "tiling useless when resident" `Quick
            test_tiling_useless_when_fits;
          Alcotest.test_case "icache penalty" `Quick
            test_icache_penalty_extreme_unroll;
        ] );
      ( "compile model",
        [
          Alcotest.test_case "compile time grows" `Quick
            test_compile_time_grows;
          Alcotest.test_case "ast size" `Quick test_ast_size;
        ] );
      ("properties", qsuite);
    ]
