(* Tests for the kernel IR: parsing, printing round-trips, the reference
   interpreter, semantics preservation of every loop transformation, and
   the static analysis. *)

module Ast = Altune_kernellang.Ast
module Parser = Altune_kernellang.Parser
module Pretty = Altune_kernellang.Pretty
module Interp = Altune_kernellang.Interp
module Transform = Altune_kernellang.Transform
module Analysis = Altune_kernellang.Analysis
module Simplify = Altune_kernellang.Simplify
module Rng = Altune_prng.Rng

let mm_src =
  {|
kernel mm(N = 8) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      for k = 0 to N - 1 {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}

let jacobi_src =
  {|
kernel jacobi(N = 16, T = 4) {
  array A[N];
  array B[N];
  for t = 0 to T - 1 {
    for i = 1 to N - 2 {
      B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    }
    for i2 = 1 to N - 2 {
      A[i2] = B[i2];
    }
  }
}
|}

let triangular_src =
  {|
kernel tri(N = 10) {
  array L[N][N];
  for i = 0 to N - 1 {
    for j = 0 to i {
      L[i][j] = L[i][j] + 1.0;
    }
  }
}
|}

let mm () = Parser.parse_kernel mm_src
let jacobi () = Parser.parse_kernel jacobi_src

(* Deterministic pseudo-random initial contents so runs are comparable. *)
let array_init name i =
  let h = Hashtbl.hash (name, i) land 0xFFFF in
  (float_of_int h /. 65536.0) -. 0.5

let run_with_init ?param_overrides kernel =
  Interp.run_kernel ?param_overrides ~array_init kernel

let arrays_equal ?(eps = 0.0) a b =
  List.length a = List.length b
  && List.for_all2
       (fun (na, va) (nb, vb) ->
         na = nb
         && Array.length va = Array.length vb
         && Array.for_all2
              (fun x y ->
                if eps = 0.0 then x = y
                else
                  Float.abs (x -. y)
                  <= eps *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)))
              va vb)
       a b

let check_same_semantics ?eps ~msg original transformed =
  (match Ast.validate transformed with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "%s: transformed kernel invalid: %s" msg
        (Format.asprintf "%a" Ast.pp_validation_error e));
  let ra = run_with_init original and rb = run_with_init transformed in
  if not (arrays_equal ?eps ra rb) then
    Alcotest.failf "%s: outputs differ\n%s" msg (Pretty.to_string transformed)

let ok = function
  | Ok k -> k
  | Error e -> Alcotest.failf "transform failed: %s" (Transform.error_to_string e)

(* --- Parser tests --- *)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  (match e with
  | Ast.Binop (Add, Int_lit 1, Binop (Mul, Int_lit 2, Int_lit 3)) -> ()
  | _ -> Alcotest.fail "precedence wrong");
  let e = Parser.parse_expr "(1 + 2) * 3" in
  match e with
  | Ast.Binop (Mul, Binop (Add, Int_lit 1, Int_lit 2), Int_lit 3) -> ()
  | _ -> Alcotest.fail "parenthesized precedence wrong"

let test_parse_associativity () =
  match Parser.parse_expr "10 - 4 - 3" with
  | Ast.Binop (Sub, Binop (Sub, Int_lit 10, Int_lit 4), Int_lit 3) -> ()
  | _ -> Alcotest.fail "subtraction must associate left"

let test_parse_min_max_sqrt () =
  (match Parser.parse_expr "min(a, 3)" with
  | Ast.Binop (Min, Var "a", Int_lit 3) -> ()
  | _ -> Alcotest.fail "min");
  (match Parser.parse_expr "max(1, 2)" with
  | Ast.Binop (Max, Int_lit 1, Int_lit 2) -> ()
  | _ -> Alcotest.fail "max");
  match Parser.parse_expr "sqrt(x + 1.5)" with
  | Ast.Sqrt (Binop (Add, Var "x", Float_lit 1.5)) -> ()
  | _ -> Alcotest.fail "sqrt"

let test_parse_kernel_shape () =
  let k = mm () in
  Alcotest.(check string) "name" "mm" k.kernel_name;
  Alcotest.(check (list (pair string int))) "params" [ ("N", 8) ] k.params;
  Alcotest.(check int) "arrays" 3 (List.length k.arrays);
  Alcotest.(check (list string))
    "loop indices" [ "i"; "j"; "k" ]
    (Ast.loop_indices k.body)

let test_parse_comments_and_step () =
  let k =
    Parser.parse_kernel
      "kernel s(N = 6) { # comment line\narray A[N];\nfor i = 0 to N - 1 \
       step 2 { A[i] = 1.0; } }"
  in
  match Ast.find_loop k.body "i" with
  | Some l -> Alcotest.(check int) "step" 2 l.step
  | None -> Alcotest.fail "loop not found"

let test_parse_if_cond () =
  let s =
    Parser.parse_stmt
      "if (a < 3 || b >= 2) && !(a == b) { x = 1.0; } else { x = 2.0; }"
  in
  match s with
  | Ast.If (And (Or (Cmp (Lt, _, _), Cmp (Ge, _, _)), Not (Cmp (Eq, _, _))),
      _, Some _) ->
      ()
  | _ -> Alcotest.fail "condition structure wrong"

let test_parse_errors () =
  let expect_error src =
    match Parser.parse_kernel src with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" src
  in
  expect_error "kernel k(N = 4) { array A[N]; A[zzz] = 1.0; }";
  expect_error
    "kernel k(N = 4) { array A[N]; for i = 0 to 3 { for i = 0 to 3 { A[i] = \
     1.0; } } }";
  expect_error "kernel k(N = 4) { array A[N]; B[0] = 1.0; }";
  expect_error "kernel k(N = 4) { array A[N][N]; A[0] = 1.0; }";
  expect_error "kernel k(N = 4) { array A[N]; for i = 0 to 3 step 0 { A[i] = 1.0; } }";
  expect_error "kernel k(N = 4) { array A[N]; A[0] = 1.0 }"

let test_roundtrip kernel_src () =
  let k = Parser.parse_kernel kernel_src in
  let printed = Pretty.to_string k in
  let k' = Parser.parse_kernel printed in
  if k <> k' then
    Alcotest.failf "round-trip mismatch:\n%s\nvs\n%s" printed
      (Pretty.to_string k')

let test_roundtrip_transformed () =
  (* The printer must round-trip the min/Idiv-heavy bounds produced by the
     transformations. *)
  let k = mm () in
  let k = ok (Transform.tile_nest [ ("i", 4); ("j", 4) ] k) in
  let k = ok (Transform.unroll ~index:"k" ~factor:3 k) in
  let printed = Pretty.to_string k in
  let k' = Parser.parse_kernel printed in
  if k <> k' then Alcotest.fail "transformed round-trip mismatch"

(* --- Interpreter tests --- *)

let test_interp_mm () =
  let k = mm () in
  let n = 8 in
  let results = run_with_init k in
  let a = List.assoc "A" results and b = List.assoc "B" results in
  let c = List.assoc "C" results in
  (* Reference product computed directly, plus the initial C contents. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref (array_init "C" ((i * n) + j)) in
      for kk = 0 to n - 1 do
        acc := !acc +. (a.((i * n) + kk) *. b.((kk * n) + j))
      done;
      if Float.abs (!acc -. c.((i * n) + j)) > 1e-12 then
        Alcotest.failf "C[%d][%d] mismatch" i j
    done
  done

let test_interp_param_override () =
  let k = mm () in
  let results = run_with_init ~param_overrides:[ ("N", 3) ] k in
  Alcotest.(check int) "resized" 9 (Array.length (List.assoc "C" results))

let test_interp_triangular () =
  let k = Parser.parse_kernel triangular_src in
  let results = Interp.run_kernel k in
  let l = List.assoc "L" results in
  let total = Array.fold_left ( +. ) 0.0 l in
  (* Sum over i of (i+1) ones = N(N+1)/2 = 55 for N=10. *)
  Alcotest.(check (float 1e-9)) "triangular iteration count" 55.0 total

let test_interp_scalar_and_if () =
  let k =
    Parser.parse_kernel
      {|
kernel s(N = 5) {
  array A[N];
  scalar acc;
  for i = 0 to N - 1 {
    if i % 2 == 0 { A[i] = 2.0; } else { A[i] = 1.0; }
    acc = acc + A[i];
  }
  A[0] = acc;
}
|}
  in
  let results = Interp.run_kernel k in
  let a = List.assoc "A" results in
  (* 3 evens (2.0) + 2 odds (1.0) = 8. *)
  Alcotest.(check (float 1e-9)) "accumulated" 8.0 a.(0)

let test_interp_out_of_bounds () =
  let k =
    Parser.parse_kernel
      "kernel bad(N = 4) { array A[N]; for i = 0 to N { A[i] = 1.0; } }"
  in
  match Interp.run_kernel k with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds error"

(* --- Transformation tests --- *)

let test_unroll_exact () =
  let k = mm () in
  List.iter
    (fun factor ->
      let t = ok (Transform.unroll ~index:"k" ~factor k) in
      check_same_semantics ~msg:(Printf.sprintf "unroll k by %d" factor) k t)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16 ]

let test_unroll_outer_loop () =
  let k = mm () in
  List.iter
    (fun factor ->
      let t = ok (Transform.unroll ~index:"i" ~factor k) in
      check_same_semantics ~msg:(Printf.sprintf "unroll i by %d" factor) k t)
    [ 2; 3; 5 ]

let test_unroll_triangular () =
  let k = Parser.parse_kernel triangular_src in
  let t = ok (Transform.unroll ~index:"j" ~factor:3 k) in
  check_same_semantics ~msg:"unroll triangular inner" k t

let test_unroll_composes () =
  let k = mm () in
  let t = ok (Transform.unroll ~index:"k" ~factor:2 k) in
  let t = ok (Transform.unroll ~index:"j" ~factor:3 t) in
  check_same_semantics ~msg:"unroll j after k" k t

let test_unroll_errors () =
  let k = mm () in
  (match Transform.unroll ~index:"z" ~factor:2 k with
  | Error (Loop_not_found "z") -> ()
  | _ -> Alcotest.fail "expected Loop_not_found");
  match Transform.unroll ~index:"i" ~factor:0 k with
  | Error (Bad_factor ("i", 0)) -> ()
  | _ -> Alcotest.fail "expected Bad_factor"

let test_strip_mine () =
  let k = mm () in
  List.iter
    (fun tile ->
      let t = ok (Transform.strip_mine ~index:"j" ~tile ~tile_index:"jt" k) in
      check_same_semantics ~msg:(Printf.sprintf "strip-mine %d" tile) k t)
    [ 1; 2; 3; 4; 8; 16 ]

let test_strip_mine_name_clash () =
  let k = mm () in
  match Transform.strip_mine ~index:"j" ~tile:4 ~tile_index:"i" k with
  | Error (Name_clash "i") -> ()
  | _ -> Alcotest.fail "expected Name_clash"

let test_interchange () =
  let k = mm () in
  (* i and j are interchangeable in mm without changing results at all:
     the reduction order over k is untouched. *)
  let t = ok (Transform.interchange ~outer:"i" ~inner:"j" k) in
  check_same_semantics ~msg:"interchange i j" k t

let test_interchange_reduction_order () =
  let k = mm () in
  (* Interchanging j and k reorders the floating-point reduction, so allow
     a relative tolerance. *)
  let t = ok (Transform.interchange ~outer:"j" ~inner:"k" k) in
  check_same_semantics ~eps:1e-10 ~msg:"interchange j k" k t

let test_interchange_not_nested () =
  let k = jacobi () in
  (* The t loop contains two inner loops: not a perfect nest. *)
  match Transform.interchange ~outer:"t" ~inner:"i" k with
  | Error (Not_perfectly_nested _) -> ()
  | _ -> Alcotest.fail "expected Not_perfectly_nested"

let test_interchange_triangular_rejected () =
  let k = Parser.parse_kernel triangular_src in
  match Transform.interchange ~outer:"i" ~inner:"j" k with
  | Error (Not_perfectly_nested _) -> ()
  | _ -> Alcotest.fail "expected rejection: inner bound depends on outer"

let test_tile_nest () =
  let k = mm () in
  List.iter
    (fun (ti, tj, tk) ->
      let t = ok (Transform.tile_nest [ ("i", ti); ("j", tj); ("k", tk) ] k) in
      check_same_semantics ~eps:1e-10
        ~msg:(Printf.sprintf "tile %dx%dx%d" ti tj tk)
        k t)
    [ (2, 2, 2); (4, 4, 4); (3, 5, 2); (1, 4, 1); (8, 8, 8); (16, 16, 16) ]

let test_tile_nest_partial () =
  let k = mm () in
  let t = ok (Transform.tile_nest [ ("j", 3) ] k) in
  check_same_semantics ~msg:"tile single loop" k t

let test_unroll_and_jam () =
  let k = mm () in
  List.iter
    (fun factor ->
      let t = ok (Transform.unroll_and_jam ~index:"j" ~factor k) in
      check_same_semantics ~eps:1e-10
        ~msg:(Printf.sprintf "unroll-and-jam j by %d" factor)
        k t)
    [ 1; 2; 3; 4; 5; 8 ]

let test_unroll_and_jam_outer () =
  let k = mm () in
  let t = ok (Transform.unroll_and_jam ~index:"i" ~factor:2 k) in
  check_same_semantics ~eps:1e-10 ~msg:"unroll-and-jam i" k t

let test_unroll_and_jam_unsafe () =
  let k =
    Parser.parse_kernel
      {|
kernel dot(N = 8) {
  array A[N][N];
  array x[N];
  scalar acc;
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      acc = acc + A[i][j] * x[j];
    }
  }
}
|}
  in
  match Transform.unroll_and_jam ~index:"i" ~factor:2 k with
  | Error (Unsafe_jam "i") -> ()
  | _ -> Alcotest.fail "expected Unsafe_jam for scalar accumulator"

let test_full_recipe () =
  (* The composition used by the SPAPT problems: cache tile, register tile,
     then unroll the innermost point loop. *)
  let k = mm () in
  let t = ok (Transform.tile_nest [ ("i", 4); ("j", 4); ("k", 4) ] k) in
  let t = ok (Transform.unroll_and_jam ~index:"i" ~factor:2 t) in
  let t = ok (Transform.unroll ~index:"k" ~factor:3 t) in
  check_same_semantics ~eps:1e-10 ~msg:"full recipe" k t

(* --- Skew / reverse / fuse / distribute --- *)

let producer_consumer_src =
  {|
kernel pc(N = 20) {
  array A[N];
  array B[N];
  array C[N];
  for i1 = 0 to N - 1 {
    B[i1] = A[i1] * 2.0;
  }
  for i2 = 0 to N - 1 {
    C[i2] = B[i2] + 1.0;
  }
}
|}

let test_skew_exact () =
  let k = mm () in
  List.iter
    (fun factor ->
      let t = ok (Transform.skew ~outer:"i" ~inner:"j" ~factor k) in
      check_same_semantics ~msg:(Printf.sprintf "skew by %d" factor) k t)
    [ 1; 2; 3 ]

let test_skew_changes_directions () =
  (* The classic wavefront: dependence (<, >) becomes (<, =) after
     skewing the inner loop by 1. *)
  let module Dep = Altune_kernellang.Dependence in
  let k =
    Parser.parse_kernel
      {|
kernel w(N = 10) {
  array A[N][N];
  for i = 1 to N - 1 {
    for j = 0 to N - 2 {
      A[i][j] = A[i - 1][j + 1] + 1.0;
    }
  }
}
|}
  in
  Alcotest.(check bool) "interchange illegal before" false
    (Dep.interchange_legal k ~outer:"i" ~inner:"j");
  let skewed = ok (Transform.skew ~outer:"i" ~inner:"j" ~factor:1 k) in
  check_same_semantics ~msg:"wavefront skew" k skewed;
  Alcotest.(check bool) "interchange legal after skewing" true
    (Dep.interchange_legal skewed ~outer:"i" ~inner:"j")

let test_reverse_parallel_loop () =
  let k = Parser.parse_kernel producer_consumer_src in
  let t = ok (Transform.reverse ~index:"i1" k) in
  check_same_semantics ~msg:"reverse parallel loop" k t

let test_reverse_refused_on_recurrence () =
  let k =
    Parser.parse_kernel
      {|
kernel r(N = 10) {
  array X[N];
  for i = 1 to N - 1 {
    X[i] = X[i] + X[i - 1];
  }
}
|}
  in
  match Transform.reverse ~index:"i" k with
  | Error (Transform.Unsafe_jam _) -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Transform.error_to_string e)
  | Ok _ -> Alcotest.fail "reversal of a recurrence must be refused"

let test_fuse_producer_consumer () =
  let k = Parser.parse_kernel producer_consumer_src in
  let t = ok (Transform.fuse ~first:"i1" ~second:"i2" k) in
  check_same_semantics ~msg:"fuse" k t;
  (* Fusion really merged: only one loop remains. *)
  Alcotest.(check int) "one loop" 1 (List.length (Ast.loop_indices t.body))

let test_fuse_refused_on_stencil () =
  (* jacobi's update+copy loops: the copy overwrites values the stencil
     still needs from the previous sweep. *)
  let k =
    Parser.parse_kernel
      {|
kernel j(N = 16) {
  array A[N];
  array B[N];
  for i1 = 1 to N - 2 {
    B[i1] = A[i1 - 1] + A[i1 + 1];
  }
  for i2 = 1 to N - 2 {
    A[i2] = B[i2];
  }
}
|}
  in
  match Transform.fuse ~first:"i1" ~second:"i2" k with
  | Error (Transform.Unsafe_jam _) -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Transform.error_to_string e)
  | Ok _ -> Alcotest.fail "stencil fusion must be refused"

let test_fuse_incompatible_bounds () =
  let k =
    Parser.parse_kernel
      {|
kernel b(N = 16) {
  array A[N];
  array B[N];
  for i1 = 0 to N - 1 {
    A[i1] = 1.0;
  }
  for i2 = 0 to N - 2 {
    B[i2] = 2.0;
  }
}
|}
  in
  match Transform.fuse ~first:"i1" ~second:"i2" k with
  | Error (Transform.Not_perfectly_nested _) -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Transform.error_to_string e)
  | Ok _ -> Alcotest.fail "bound mismatch must be refused"

let test_distribute_and_refuse () =
  let k =
    Parser.parse_kernel
      {|
kernel d(N = 20) {
  array A[N];
  array B[N];
  array C[N];
  for i = 0 to N - 1 {
    B[i] = A[i] * 2.0;
    C[i] = B[i] + 1.0;
  }
}
|}
  in
  let t = ok (Transform.distribute ~index:"i" k) in
  check_same_semantics ~msg:"distribute" k t;
  Alcotest.(check int) "two loops" 2 (List.length (Ast.loop_indices t.body));
  (* A cross-statement recurrence blocks distribution. *)
  let bad =
    Parser.parse_kernel
      {|
kernel d2(N = 20) {
  array A[N];
  array B[N];
  for i = 1 to N - 1 {
    A[i] = B[i - 1];
    B[i] = A[i] + 1.0;
  }
}
|}
  in
  match Transform.distribute ~index:"i" bad with
  | Error (Transform.Unsafe_jam _) -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Transform.error_to_string e)
  | Ok _ -> Alcotest.fail "recurrence distribution must be refused"

let test_fuse_then_distribute_roundtrip () =
  let k = Parser.parse_kernel producer_consumer_src in
  let fused = ok (Transform.fuse ~first:"i1" ~second:"i2" k) in
  let redistributed = ok (Transform.distribute ~index:"i1" fused) in
  check_same_semantics ~msg:"fuse; distribute" k redistributed

(* --- Analysis tests --- *)

let test_analysis_mm () =
  let k = mm () in
  let a = Analysis.analyze k in
  let n = 8.0 in
  Alcotest.(check (float 1e-6))
    "flops 2N^3"
    (2.0 *. (n ** 3.0))
    (Analysis.total_flops a);
  Alcotest.(check (float 1e-6))
    "iterations N + N^2 + N^3"
    (n +. (n ** 2.0) +. (n ** 3.0))
    (Analysis.total_iterations a);
  Alcotest.(check (float 1e-6))
    "4 accesses per innermost iteration"
    (4.0 *. (n ** 3.0))
    (Analysis.total_memory_accesses a);
  match a.roots with
  | [ root ] -> (
      Alcotest.(check string) "outer loop" "i" root.index;
      Alcotest.(check (float 1e-9)) "outer trips" 8.0 root.trips;
      match root.children with
      | [ j ] -> (
          match j.children with
          | [ kk ] ->
              Alcotest.(check int) "4 accesses" 4 (List.length kk.accesses);
              let b =
                List.find (fun (x : Analysis.access) -> x.array = "B")
                  kk.accesses
              in
              Alcotest.(check (float 1e-9))
                "B stride over k is N" 8.0
                (List.assoc "k" b.coeffs);
              Alcotest.(check (float 1e-9))
                "B stride over j is 1" 1.0
                (List.assoc "j" b.coeffs)
          | _ -> Alcotest.fail "expected single k loop")
      | _ -> Alcotest.fail "expected single j loop")
  | _ -> Alcotest.fail "expected single root"

let test_analysis_param_override () =
  let k = mm () in
  let a = Analysis.analyze ~param_overrides:[ ("N", 16) ] k in
  Alcotest.(check (float 1e-6))
    "flops scale" (2.0 *. (16.0 ** 3.0))
    (Analysis.total_flops a)

let test_analysis_triangular () =
  let k = Parser.parse_kernel triangular_src in
  let a = Analysis.analyze k in
  (* Inner trips average (lo=0, hi=i, i mid-range 4.5): 5.5 per outer
     iteration; the analysis sees 10 * 5.5 = 55 inner iterations, matching
     the true triangular count. *)
  Alcotest.(check (float 1e-6))
    "triangular iterations" (10.0 +. 55.0)
    (Analysis.total_iterations a)

let test_analysis_unroll_reduces_iterations () =
  let k = mm () in
  let before = Analysis.total_iterations (Analysis.analyze k) in
  let t = ok (Transform.unroll ~index:"k" ~factor:4 k) in
  let after = Analysis.total_iterations (Analysis.analyze t) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer iterations after unroll (%g < %g)" after before)
    true (after < before);
  (* Flops must be conserved by unrolling. *)
  Alcotest.(check (float 1.0))
    "flops conserved"
    (Analysis.total_flops (Analysis.analyze k))
    (Analysis.total_flops (Analysis.analyze t))

let test_analysis_code_size_grows () =
  let k = mm () in
  let size roots =
    match roots with
    | [ r ] -> Analysis.innermost_code_size r
    | _ -> Alcotest.fail "one root expected"
  in
  let before = size (Analysis.analyze k).roots in
  let t = ok (Transform.unroll ~index:"k" ~factor:8 k) in
  let after = size (Analysis.analyze t).roots in
  Alcotest.(check bool) "code grows with unrolling" true (after > before)

(* --- Simplify tests --- *)

let test_simplify_expr_folds () =
  let e = Parser.parse_expr in
  let check name input expected =
    Alcotest.(check bool) name true (Simplify.expr (e input) = e expected)
  in
  check "constants" "1 + 2 * 3" "7";
  check "identity add" "x + 0" "x";
  check "identity mul" "1 * x" "x";
  check "zero mul" "x * 0" "0";
  check "idiv one" "x %/ 1" "x";
  check "min equal" "min(x + 1, x + 1)" "x + 1";
  check "x - x" "(a + b) - (a + b)" "0";
  check "reassociate" "(x + 3) + 4" "x + 7";
  check "reassociate sub" "(x - 3) + 1" "x - 2"

let test_simplify_unrolled_bounds () =
  (* The unroll transformation generates gnarly symbolic bounds; after
     simplification with constant N they should fold to literals. *)
  let k =
    Parser.parse_kernel
      "kernel u(N = 16) { array A[N]; for i = 0 to 15 { A[i] = 1.0; } }"
  in
  let t = ok (Transform.unroll ~index:"i" ~factor:4 k) in
  let simplified = Simplify.kernel t in
  match Ast.find_loop simplified.body "i" with
  | Some l ->
      Alcotest.(check bool) "hi folded to a literal" true
        (match l.hi with Ast.Int_lit _ -> true | _ -> false)
  | None -> Alcotest.fail "unrolled loop disappeared"

let test_simplify_dead_branches () =
  let s =
    Parser.parse_stmt
      "if 1 < 2 { x = 1.0; } else { x = 2.0; } if 2 < 1 { x = 3.0; }"
  in
  match Simplify.stmt s with
  | Ast.Assign (Scalar_lhs "x", Float_lit 1.0) -> ()
  | other ->
      Alcotest.failf "unexpected: %s" (Pretty.stmt_to_string other)

let test_simplify_empty_loop () =
  let s = Parser.parse_stmt "for i = 5 to 2 { x = 1.0; }" in
  Alcotest.(check bool) "removed" true (Simplify.stmt s = Ast.Seq []);
  let single = Parser.parse_stmt "for i = 3 to 3 { x = i * 1.0; }" in
  match Simplify.stmt single with
  | Ast.Assign (_, Binop (Mul, Int_lit 3, Float_lit 1.0)) -> ()
  | other -> Alcotest.failf "unexpected: %s" (Pretty.stmt_to_string other)

(* --- Property tests --- *)

let transform_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun f -> `Unroll ("k", 1 + f)) (int_bound 9);
        map (fun f -> `Unroll ("j", 1 + f)) (int_bound 5);
        map (fun f -> `Unroll ("i", 1 + f)) (int_bound 5);
        map (fun t -> `Jam ("i", 1 + t)) (int_bound 4);
        map (fun t -> `Jam ("j", 1 + t)) (int_bound 4);
        map2
          (fun a b -> `Tile [ ("i", 1 + a); ("j", 1 + b) ])
          (int_bound 7) (int_bound 7);
      ])

let apply_spec k spec =
  match spec with
  | `Unroll (index, factor) -> Transform.unroll ~index ~factor k
  | `Jam (index, factor) -> Transform.unroll_and_jam ~index ~factor k
  | `Tile spec -> Transform.tile_nest spec k

let spec_to_string spec =
  match spec with
  | `Unroll (i, f) -> Printf.sprintf "unroll %s %d" i f
  | `Jam (i, f) -> Printf.sprintf "jam %s %d" i f
  | `Tile l ->
      "tile "
      ^ String.concat ","
          (List.map (fun (i, t) -> Printf.sprintf "%s:%d" i t) l)

let prop_random_transform_pipelines =
  QCheck.Test.make ~name:"random transformation pipelines preserve semantics"
    ~count:60
    (QCheck.make
       ~print:(fun specs -> String.concat "; " (List.map spec_to_string specs))
       QCheck.Gen.(list_size (int_range 1 3) transform_gen))
    (fun specs ->
      let k = mm () in
      (* Apply specs in sequence; a spec may legitimately fail (loop renamed
         away by an earlier unroll) — treat failures as skips. *)
      let t =
        List.fold_left
          (fun acc spec ->
            match apply_spec acc spec with Ok k' -> k' | Error _ -> acc)
          k specs
      in
      (match Ast.validate t with Ok () -> true | Error _ -> false)
      &&
      let ra = run_with_init ~param_overrides:[ ("N", 7) ] k in
      let rb = run_with_init ~param_overrides:[ ("N", 7) ] t in
      arrays_equal ~eps:1e-9 ra rb)

let prop_simplify_preserves_semantics =
  QCheck.Test.make ~name:"simplify preserves kernel semantics" ~count:40
    (QCheck.make
       ~print:(fun specs -> String.concat "; " (List.map spec_to_string specs))
       QCheck.Gen.(list_size (int_range 1 3) transform_gen))
    (fun specs ->
      let k = mm () in
      let t =
        List.fold_left
          (fun acc spec ->
            match apply_spec acc spec with Ok k' -> k' | Error _ -> acc)
          k specs
      in
      let s = Simplify.kernel t in
      (match Ast.validate s with Ok () -> true | Error _ -> false)
      && arrays_equal
           (run_with_init ~param_overrides:[ ("N", 7) ] t)
           (run_with_init ~param_overrides:[ ("N", 7) ] s))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_random_transform_pipelines ]
  in
  Alcotest.run "kernellang"
    [
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "associativity" `Quick test_parse_associativity;
          Alcotest.test_case "min/max/sqrt" `Quick test_parse_min_max_sqrt;
          Alcotest.test_case "kernel shape" `Quick test_parse_kernel_shape;
          Alcotest.test_case "comments and step" `Quick
            test_parse_comments_and_step;
          Alcotest.test_case "if conditions" `Quick test_parse_if_cond;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "mm" `Quick (test_roundtrip mm_src);
          Alcotest.test_case "jacobi" `Quick (test_roundtrip jacobi_src);
          Alcotest.test_case "triangular" `Quick
            (test_roundtrip triangular_src);
          Alcotest.test_case "transformed" `Quick test_roundtrip_transformed;
        ] );
      ( "interp",
        [
          Alcotest.test_case "mm matches reference" `Quick test_interp_mm;
          Alcotest.test_case "param override" `Quick
            test_interp_param_override;
          Alcotest.test_case "triangular" `Quick test_interp_triangular;
          Alcotest.test_case "scalar and if" `Quick test_interp_scalar_and_if;
          Alcotest.test_case "out of bounds" `Quick test_interp_out_of_bounds;
        ] );
      ( "transform",
        [
          Alcotest.test_case "unroll innermost exact" `Quick test_unroll_exact;
          Alcotest.test_case "unroll outer" `Quick test_unroll_outer_loop;
          Alcotest.test_case "unroll triangular" `Quick test_unroll_triangular;
          Alcotest.test_case "unroll composes" `Quick test_unroll_composes;
          Alcotest.test_case "unroll errors" `Quick test_unroll_errors;
          Alcotest.test_case "strip-mine" `Quick test_strip_mine;
          Alcotest.test_case "strip-mine name clash" `Quick
            test_strip_mine_name_clash;
          Alcotest.test_case "interchange" `Quick test_interchange;
          Alcotest.test_case "interchange reduction order" `Quick
            test_interchange_reduction_order;
          Alcotest.test_case "interchange not nested" `Quick
            test_interchange_not_nested;
          Alcotest.test_case "interchange triangular rejected" `Quick
            test_interchange_triangular_rejected;
          Alcotest.test_case "tile nest" `Quick test_tile_nest;
          Alcotest.test_case "tile nest partial" `Quick test_tile_nest_partial;
          Alcotest.test_case "unroll-and-jam" `Quick test_unroll_and_jam;
          Alcotest.test_case "unroll-and-jam outer" `Quick
            test_unroll_and_jam_outer;
          Alcotest.test_case "unroll-and-jam unsafe" `Quick
            test_unroll_and_jam_unsafe;
          Alcotest.test_case "full recipe" `Quick test_full_recipe;
        ] );
      ( "restructuring",
        [
          Alcotest.test_case "skew exact" `Quick test_skew_exact;
          Alcotest.test_case "skew enables interchange" `Quick
            test_skew_changes_directions;
          Alcotest.test_case "reverse parallel" `Quick
            test_reverse_parallel_loop;
          Alcotest.test_case "reverse refused" `Quick
            test_reverse_refused_on_recurrence;
          Alcotest.test_case "fuse producer-consumer" `Quick
            test_fuse_producer_consumer;
          Alcotest.test_case "fuse refused stencil" `Quick
            test_fuse_refused_on_stencil;
          Alcotest.test_case "fuse bound mismatch" `Quick
            test_fuse_incompatible_bounds;
          Alcotest.test_case "distribute" `Quick test_distribute_and_refuse;
          Alcotest.test_case "fuse/distribute roundtrip" `Quick
            test_fuse_then_distribute_roundtrip;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "mm statistics" `Quick test_analysis_mm;
          Alcotest.test_case "param override" `Quick
            test_analysis_param_override;
          Alcotest.test_case "triangular trips" `Quick
            test_analysis_triangular;
          Alcotest.test_case "unroll reduces iterations" `Quick
            test_analysis_unroll_reduces_iterations;
          Alcotest.test_case "code size grows" `Quick
            test_analysis_code_size_grows;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "expression folds" `Quick
            test_simplify_expr_folds;
          Alcotest.test_case "unrolled bounds fold" `Quick
            test_simplify_unrolled_bounds;
          Alcotest.test_case "dead branches" `Quick
            test_simplify_dead_branches;
          Alcotest.test_case "empty and single loops" `Quick
            test_simplify_empty_loop;
          QCheck_alcotest.to_alcotest prop_simplify_preserves_semantics;
        ] );
      ("properties", qsuite);
    ]
