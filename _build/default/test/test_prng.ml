(* Tests for the deterministic splittable PRNG: reproducibility, stream
   independence, bound respect, and distribution moments. *)

module Rng = Altune_prng.Rng

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy () =
  let a = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    ignore (Rng.bits64 a)
  done;
  let b = Rng.copy a in
  for _ = 1 to 100 do
    Alcotest.(check int64) "copy tracks parent" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_copy_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.copy a in
  ignore (Rng.bits64 b);
  ignore (Rng.bits64 b);
  let a1 = Rng.bits64 a in
  let a2 = Rng.bits64 a in
  (* Advancing the copy must not perturb the parent: the parent still
     produces the same two first values the copy did. *)
  let c = Rng.copy (Rng.create ~seed:7) in
  Alcotest.(check int64) "first" (Rng.bits64 c) a1;
  Alcotest.(check int64) "second" (Rng.bits64 c) a2

let test_split_diverges () =
  let a = Rng.create ~seed:3 in
  let b = Rng.split a in
  let collisions = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bits64 a = Rng.bits64 b then incr collisions
  done;
  Alcotest.(check int) "no collisions" 0 !collisions

let test_uniform_range () =
  let t = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let x = Rng.uniform t in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "uniform out of range: %g" x
  done

let test_uniform_moments () =
  let t = Rng.create ~seed:13 in
  let n = 200_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.uniform t in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.01)) "mean 1/2" 0.5 mean;
  Alcotest.(check (float 0.01)) "variance 1/12" (1.0 /. 12.0) var

let moments f n =
  let t = Rng.create ~seed:17 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = f t in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  (mean, (!sumsq /. float_of_int n) -. (mean *. mean))

let test_normal_moments () =
  let mean, var = moments (fun t -> Rng.normal t) 200_000 in
  Alcotest.(check (float 0.02)) "mean 0" 0.0 mean;
  Alcotest.(check (float 0.03)) "variance 1" 1.0 var

let test_normal_location_scale () =
  let mean, var = moments (fun t -> Rng.normal ~mu:5.0 ~sigma:2.0 t) 200_000 in
  Alcotest.(check (float 0.05)) "mean 5" 5.0 mean;
  Alcotest.(check (float 0.15)) "variance 4" 4.0 var

let test_exponential_moments () =
  let mean, var = moments (fun t -> Rng.exponential ~rate:2.0 t) 200_000 in
  Alcotest.(check (float 0.01)) "mean 1/2" 0.5 mean;
  Alcotest.(check (float 0.02)) "variance 1/4" 0.25 var

let test_gamma_moments () =
  let shape = 3.5 and scale = 0.8 in
  let mean, var = moments (Rng.gamma ~shape ~scale) 200_000 in
  Alcotest.(check (float 0.03)) "mean k*theta" (shape *. scale) mean;
  Alcotest.(check (float 0.08)) "variance k*theta^2" (shape *. scale *. scale)
    var

let test_gamma_small_shape () =
  let mean, _ = moments (Rng.gamma ~shape:0.4 ~scale:1.0) 200_000 in
  Alcotest.(check (float 0.02)) "mean k" 0.4 mean

let test_chi_square_moments () =
  let mean, var = moments (Rng.chi_square ~df:6.0) 200_000 in
  Alcotest.(check (float 0.08)) "mean df" 6.0 mean;
  Alcotest.(check (float 0.5)) "variance 2 df" 12.0 var

let test_student_t_symmetry () =
  let mean, _ = moments (Rng.student_t ~df:8.0) 200_000 in
  Alcotest.(check (float 0.03)) "mean 0" 0.0 mean

let test_beta_range_and_mean () =
  let t = Rng.create ~seed:23 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.beta ~a:2.0 ~b:5.0 t in
    if x < 0.0 || x > 1.0 then Alcotest.failf "beta out of range: %g" x;
    sum := !sum +. x
  done;
  check_float "within tolerance" 0.0 0.0;
  Alcotest.(check (float 0.01))
    "mean a/(a+b)"
    (2.0 /. 7.0)
    (!sum /. float_of_int n)

let test_lognormal_positive () =
  let t = Rng.create ~seed:29 in
  for _ = 1 to 10_000 do
    if Rng.lognormal t <= 0.0 then Alcotest.fail "lognormal not positive"
  done

let test_bernoulli_rate () =
  let t = Rng.create ~seed:31 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli t 0.3 then incr hits
  done;
  Alcotest.(check (float 0.01))
    "rate" 0.3
    (float_of_int !hits /. float_of_int n)

let test_invalid_args () =
  let t = Rng.create ~seed:1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0));
  Alcotest.check_raises "int_in empty"
    (Invalid_argument "Rng.int_in: empty range") (fun () ->
      ignore (Rng.int_in t 3 2));
  Alcotest.check_raises "swr k>n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Rng.sample_without_replacement t 4 3))

(* Property tests. *)

let prop_int_bound =
  QCheck.Test.make ~name:"int stays within bound" ~count:500
    QCheck.(pair (int_bound 1000) small_int)
    (fun (bound, seed) ->
      let bound = bound + 1 in
      let t = Rng.create ~seed in
      let x = Rng.int t bound in
      x >= 0 && x < bound)

let prop_int_in_bound =
  QCheck.Test.make ~name:"int_in stays within range" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_bound 100))
    (fun (seed, lo, extent) ->
      let hi = lo + extent in
      let t = Rng.create ~seed in
      let x = Rng.int_in t lo hi in
      x >= lo && x <= hi)

let prop_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 0 50) small_int) small_int)
    (fun (a, seed) ->
      let t = Rng.create ~seed in
      let b = Array.copy a in
      Rng.shuffle t b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let prop_sample_without_replacement =
  QCheck.Test.make ~name:"sample_without_replacement distinct and in-range"
    ~count:300
    QCheck.(triple small_int (int_bound 60) (int_bound 60))
    (fun (seed, a, b) ->
      let n = max a b + 1 and k = min a b in
      let t = Rng.create ~seed in
      let s = Rng.sample_without_replacement t k n in
      let module IS = Set.Make (Int) in
      let set = IS.of_list (Array.to_list s) in
      Array.length s = k
      && IS.cardinal set = k
      && IS.for_all (fun i -> i >= 0 && i < n) set)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_int_bound;
        prop_int_in_bound;
        prop_shuffle_multiset;
        prop_sample_without_replacement;
      ]
  in
  Alcotest.run "prng"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy tracks parent" `Quick test_copy;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_split_diverges;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "normal location-scale" `Quick
            test_normal_location_scale;
          Alcotest.test_case "exponential moments" `Quick
            test_exponential_moments;
          Alcotest.test_case "gamma moments" `Quick test_gamma_moments;
          Alcotest.test_case "gamma small shape" `Quick test_gamma_small_shape;
          Alcotest.test_case "chi-square moments" `Quick
            test_chi_square_moments;
          Alcotest.test_case "student-t symmetry" `Quick
            test_student_t_symmetry;
          Alcotest.test_case "beta range and mean" `Quick
            test_beta_range_and_mean;
          Alcotest.test_case "lognormal positive" `Quick
            test_lognormal_positive;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        ] );
      ( "validation",
        [ Alcotest.test_case "invalid arguments" `Quick test_invalid_args ] );
      ("properties", qsuite);
    ]
