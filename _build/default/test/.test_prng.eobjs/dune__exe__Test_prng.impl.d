test/test_prng.ml: Alcotest Altune_prng Array Gen Int List QCheck QCheck_alcotest Set
