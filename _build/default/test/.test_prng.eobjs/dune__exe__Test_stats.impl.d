test/test_stats.ml: Alcotest Altune_prng Altune_stats Array Float Gen List Printf QCheck QCheck_alcotest
