test/test_dynatree.mli:
