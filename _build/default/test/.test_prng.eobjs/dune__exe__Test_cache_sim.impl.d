test/test_cache_sim.ml: Alcotest Altune_kernellang Altune_machine Float List Printf
