test/test_cache_sim.mli:
