test/test_experiments.ml: Alcotest Altune_core Altune_experiments Altune_prng Altune_spapt Array Printf String Unix
