test/test_spapt.mli:
