test/test_kernellang.mli:
