test/test_dependence.ml: Alcotest Altune_kernellang Format List String
