test/test_spapt.ml: Alcotest Altune_kernellang Altune_prng Altune_spapt Altune_stats Array Float Format Hashtbl List Printf QCheck QCheck_alcotest String
