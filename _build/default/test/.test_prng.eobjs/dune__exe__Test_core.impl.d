test/test_core.ml: Alcotest Altune_core Altune_prng Array Float Hashtbl List Printf
