test/test_machine.ml: Alcotest Altune_kernellang Altune_machine Float List Printf QCheck QCheck_alcotest Result
