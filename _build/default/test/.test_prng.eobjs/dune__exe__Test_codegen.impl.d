test/test_codegen.ml: Alcotest Altune_kernellang Array List Printf String
