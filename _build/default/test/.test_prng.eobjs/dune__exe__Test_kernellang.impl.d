test/test_kernellang.ml: Alcotest Altune_kernellang Altune_prng Array Float Format Hashtbl List Printf QCheck QCheck_alcotest String
