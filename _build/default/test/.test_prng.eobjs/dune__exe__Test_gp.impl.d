test/test_gp.ml: Alcotest Altune_core Altune_gp Altune_prng Array Float Gen List Printf QCheck QCheck_alcotest
