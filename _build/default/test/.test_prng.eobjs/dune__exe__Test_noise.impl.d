test/test_noise.ml: Alcotest Altune_noise Altune_prng Altune_stats Hashtbl List Printf QCheck QCheck_alcotest
