test/test_report.ml: Alcotest Altune_report Filename Gen List QCheck QCheck_alcotest String Sys
