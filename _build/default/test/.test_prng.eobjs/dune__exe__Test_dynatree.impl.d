test/test_dynatree.ml: Alcotest Altune_dynatree Altune_prng Altune_stats Array Float Gen Hashtbl List Printf QCheck QCheck_alcotest
