(* Tests for the data-dependence analysis: classic textbook cases for
   direction vectors, parallelism, interchange and unroll-and-jam
   legality. *)

module Parser = Altune_kernellang.Parser
module Dependence = Altune_kernellang.Dependence
module Transform = Altune_kernellang.Transform

let k src = Parser.parse_kernel src

let mm =
  k
    {|
kernel mm(N = 8) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      for k = 0 to N - 1 {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}

let test_mm_parallel_loops () =
  Alcotest.(check bool) "i parallel" true (Dependence.parallel mm "i");
  Alcotest.(check bool) "j parallel" true (Dependence.parallel mm "j");
  Alcotest.(check bool) "k carries the reduction" false
    (Dependence.parallel mm "k")

let test_mm_legality () =
  Alcotest.(check bool) "interchange i j" true
    (Dependence.interchange_legal mm ~outer:"i" ~inner:"j");
  Alcotest.(check bool) "interchange j k" true
    (Dependence.interchange_legal mm ~outer:"j" ~inner:"k");
  Alcotest.(check bool) "jam i" true (Dependence.jam_legal mm "i");
  Alcotest.(check bool) "jam j" true (Dependence.jam_legal mm "j")

let recurrence_j =
  (* The adi pattern: recurrence along j, independent along i. *)
  k
    {|
kernel r(N = 8) {
  array X[N][N];
  for i = 0 to N - 1 {
    for j = 1 to N - 1 {
      X[i][j] = X[i][j] + X[i][j - 1];
    }
  }
}
|}

let test_recurrence_direction () =
  let carried = Dependence.carried_by recurrence_j "j" in
  Alcotest.(check bool) "j carries" true (carried <> []);
  Alcotest.(check bool) "i parallel" true
    (Dependence.parallel recurrence_j "i");
  (* The flow dependence X[i][j] -> X[i][j-1] has distance +1 in j. *)
  let has_lt =
    List.exists
      (fun (d : Dependence.dependence) ->
        d.kind = Flow && List.assoc_opt "j" d.directions = Some Lt)
      carried
  in
  Alcotest.(check bool) "flow with j:<" true has_lt

let test_recurrence_jam_i_legal () =
  (* Jamming i interleaves independent rows: legal. *)
  Alcotest.(check bool) "jam i" true
    (Dependence.jam_legal recurrence_j "i");
  (* Jamming j would interleave the recurrence itself.  The dependence is
     (i:=, j:<); sinking j innermost keeps it forward: also legal (and
     indeed unrolling a recurrence loop is valid). *)
  Alcotest.(check bool) "interchange i j legal" true
    (Dependence.interchange_legal recurrence_j ~outer:"i" ~inner:"j")

let skewed =
  (* A[i][j] depends on A[i-1][j+1]: direction (<, >) — the classic case
     where interchange is ILLEGAL. *)
  k
    {|
kernel s(N = 8) {
  array A[N][N];
  for i = 1 to N - 1 {
    for j = 0 to N - 2 {
      A[i][j] = A[i - 1][j + 1] + 1.0;
    }
  }
}
|}

let test_skewed_interchange_illegal () =
  Alcotest.(check bool) "(<,>) blocks interchange" false
    (Dependence.interchange_legal skewed ~outer:"i" ~inner:"j");
  Alcotest.(check bool) "(<,>) blocks jam of i" false
    (Dependence.jam_legal skewed "i")

let test_skewed_transform_refused () =
  (match Transform.interchange ~outer:"i" ~inner:"j" skewed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "interchange must be refused");
  match Transform.unroll_and_jam ~index:"i" ~factor:2 skewed with
  | Error (Transform.Unsafe_jam _) -> ()
  | Error e ->
      Alcotest.failf "wrong error: %s" (Transform.error_to_string e)
  | Ok _ -> Alcotest.fail "jam must be refused"

let forward_only =
  (* A[i][j] reads A[i-1][j]: direction (<, =): interchange legal, jam of
     i legal (copies read rows finished... actually written by the same
     jammed body earlier in statement order). *)
  k
    {|
kernel f(N = 8) {
  array A[N][N];
  for i = 1 to N - 1 {
    for j = 0 to N - 1 {
      A[i][j] = A[i - 1][j] * 0.5;
    }
  }
}
|}

let test_forward_only () =
  Alcotest.(check bool) "interchange legal" true
    (Dependence.interchange_legal forward_only ~outer:"i" ~inner:"j");
  Alcotest.(check bool) "jam legal" true
    (Dependence.jam_legal forward_only "i");
  Alcotest.(check bool) "i carries" false
    (Dependence.parallel forward_only "i");
  Alcotest.(check bool) "j parallel" true
    (Dependence.parallel forward_only "j")

let test_ziv_independent () =
  let k0 =
    k
      {|
kernel z(N = 8) {
  array A[N];
  for i = 0 to N - 1 {
    A[0] = A[1] + 1.0;
  }
}
|}
  in
  (* A[0] write vs A[1] read never alias; but A[0] write-write across
     iterations is an output dependence carried by i. *)
  let deps = Dependence.dependences k0 in
  Alcotest.(check bool) "no flow between A[0] and A[1]" true
    (List.for_all
       (fun (d : Dependence.dependence) -> d.kind <> Anti || d.array <> "A"
        || List.assoc_opt "i" d.directions = Some Star)
       deps);
  Alcotest.(check bool) "output dependence carried" false
    (Dependence.parallel k0 "i")

let test_strided_disjoint () =
  (* A[2i] and A[2i+1] touch disjoint elements: the loop is parallel. *)
  let k0 =
    k
      {|
kernel d(N = 8) {
  array A[N][N];
  for i = 0 to 3 {
    A[2 * i][0] = A[2 * i + 1][0] + 1.0;
  }
}
|}
  in
  Alcotest.(check bool) "parallel" true (Dependence.parallel k0 "i")

let test_scalar_blocks_everything () =
  let k0 =
    k
      {|
kernel sc(N = 8) {
  array A[N][N];
  scalar acc;
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      acc = acc + A[i][j];
    }
  }
}
|}
  in
  Alcotest.(check bool) "not parallel" false (Dependence.parallel k0 "i");
  (* Jamming i would interleave the scalar reduction across rows. *)
  Alcotest.(check bool) "jam refused" false (Dependence.jam_legal k0 "i")

let test_different_arrays_independent () =
  let k0 =
    k
      {|
kernel two(N = 8) {
  array A[N];
  array B[N];
  for i = 0 to N - 1 {
    A[i] = B[i] + 1.0;
  }
}
|}
  in
  Alcotest.(check bool) "parallel" true (Dependence.parallel k0 "i");
  Alcotest.(check bool) "no dependences at all" true
    (Dependence.dependences k0 = [])

let test_tiled_kernel_precision () =
  (* After tiling, point-loop Eq constraints must propagate to tile loops
     so tiled recipes stay legal. *)
  let tiled =
    match
      Transform.tile_nest [ ("i", 4); ("j", 4) ] recurrence_j
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "tiling failed: %s" (Transform.error_to_string e)
  in
  (* The i-direction stays parallel in the tiled form. *)
  Alcotest.(check bool) "tiled i still parallel" true
    (Dependence.parallel tiled "i")

let test_pp_dependence () =
  let deps = Dependence.dependences recurrence_j in
  Alcotest.(check bool) "printable" true
    (List.for_all
       (fun d ->
         String.length (Format.asprintf "%a" Dependence.pp_dependence d) > 0)
       deps)

let () =
  Alcotest.run "dependence"
    [
      ( "mm",
        [
          Alcotest.test_case "parallel loops" `Quick test_mm_parallel_loops;
          Alcotest.test_case "legality" `Quick test_mm_legality;
        ] );
      ( "directions",
        [
          Alcotest.test_case "recurrence direction" `Quick
            test_recurrence_direction;
          Alcotest.test_case "recurrence jam" `Quick
            test_recurrence_jam_i_legal;
          Alcotest.test_case "skewed illegal" `Quick
            test_skewed_interchange_illegal;
          Alcotest.test_case "skewed transform refused" `Quick
            test_skewed_transform_refused;
          Alcotest.test_case "forward only" `Quick test_forward_only;
        ] );
      ( "tests",
        [
          Alcotest.test_case "ziv" `Quick test_ziv_independent;
          Alcotest.test_case "strided disjoint" `Quick test_strided_disjoint;
          Alcotest.test_case "scalar blocks" `Quick
            test_scalar_blocks_everything;
          Alcotest.test_case "different arrays" `Quick
            test_different_arrays_independent;
          Alcotest.test_case "tiled precision" `Quick
            test_tiled_kernel_precision;
          Alcotest.test_case "printer" `Quick test_pp_dependence;
        ] );
    ]
