(* Tests for the native code generator: generated programs must compute
   exactly what the reference interpreter computes (bit-identical
   checksums), including on transformed kernels. *)

module Parser = Altune_kernellang.Parser
module Transform = Altune_kernellang.Transform
module Interp = Altune_kernellang.Interp
module Codegen = Altune_kernellang.Codegen
module Ast = Altune_kernellang.Ast

let ok = function
  | Ok k -> k
  | Error e -> Alcotest.failf "transform: %s" (Transform.error_to_string e)

let interp_checksum ?param_overrides k =
  let results =
    Interp.run_kernel ?param_overrides ~array_init:Codegen.reference_init k
  in
  List.fold_left
    (fun acc (_, a) -> acc +. Array.fold_left ( +. ) 0.0 a)
    0.0 results

let check_equiv ?param_overrides name k =
  let native = Codegen.checksum ?param_overrides k in
  let interp = interp_checksum ?param_overrides k in
  if native <> interp then
    Alcotest.failf "%s: native %.17g <> interp %.17g" name native interp

let mm =
  Parser.parse_kernel
    {|
kernel mm(N = 16, T = 2) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for t = 0 to T - 1 {
    for i = 0 to N - 1 {
      for j = 0 to N - 1 {
        for k = 0 to N - 1 {
          C[i][j] = C[i][j] + A[i][k] * B[k][j];
        }
      }
    }
  }
}
|}

let test_expr_to_ocaml () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check string) "precedence kept by parens" "(1 + (2 * 3))"
    (Codegen.expr_to_ocaml e);
  let e = Parser.parse_expr "min(4, 7) %/ 2" in
  Alcotest.(check string) "min and idiv" "((min 4 7) / 2)"
    (Codegen.expr_to_ocaml e)

let test_program_text () =
  let src = Codegen.program ~mode:`Checksum mm in
  let contains needle =
    let nl = String.length needle and hl = String.length src in
    let rec go i =
      i + nl <= hl && (String.sub src i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "declares params" true (contains "let p_N = 16");
  Alcotest.(check bool) "declares arrays" true
    (contains "let a_A = Array.make");
  Alcotest.(check bool) "has kernel function" true (contains "let kernel ()");
  Alcotest.(check bool) "prints checksum" true (contains "checksum")

let test_native_matches_interp () = check_equiv "mm" mm

let test_native_matches_on_transformed () =
  let t = ok (Transform.tile_nest [ ("i", 4); ("j", 4); ("k", 4) ] mm) in
  let t = ok (Transform.unroll_and_jam ~index:"i" ~factor:2 t) in
  let t = ok (Transform.unroll ~index:"k" ~factor:3 t) in
  check_equiv "transformed mm" t

let test_native_param_override () =
  check_equiv ~param_overrides:[ ("N", 9) ] "mm N=9" mm

let test_scalars_and_conditionals () =
  let k =
    Parser.parse_kernel
      {|
kernel s(N = 12) {
  array A[N];
  scalar acc;
  for i = 0 to N - 1 {
    if i % 3 == 0 { A[i] = 2.0 * A[i]; } else { A[i] = A[i] + 1.0; }
    acc = acc + A[i];
  }
  A[0] = acc + sqrt(A[1]);
}
|}
  in
  check_equiv "scalars and ifs" k

let test_strided_loops () =
  let k =
    Parser.parse_kernel
      {|
kernel st(N = 40) {
  array A[N];
  for i = 0 to N - 1 step 3 {
    A[i] = A[i] + 1.0;
  }
}
|}
  in
  check_equiv "strided" k

let test_triangular () =
  let k =
    Parser.parse_kernel
      {|
kernel tri(N = 10) {
  array L[N][N];
  for i = 0 to N - 1 {
    for j = 0 to i {
      L[i][j] = L[i][j] + 1.0;
    }
  }
}
|}
  in
  check_equiv "triangular" k

let test_time_native_positive () =
  let t = Codegen.time_native ~repeats:3 mm in
  Alcotest.(check bool)
    (Printf.sprintf "positive time %g" t)
    true
    (t > 0.0 && t < 1.0)

let test_build_failure_reported () =
  match Codegen.build "let x = this is not ocaml" with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions failure" true
        (String.length msg > 10)
  | compiled ->
      Codegen.cleanup compiled;
      Alcotest.fail "expected build failure"

let () =
  Alcotest.run "codegen"
    [
      ( "emission",
        [
          Alcotest.test_case "expressions" `Quick test_expr_to_ocaml;
          Alcotest.test_case "program text" `Quick test_program_text;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "mm" `Slow test_native_matches_interp;
          Alcotest.test_case "transformed mm" `Slow
            test_native_matches_on_transformed;
          Alcotest.test_case "param override" `Slow
            test_native_param_override;
          Alcotest.test_case "scalars and ifs" `Slow
            test_scalars_and_conditionals;
          Alcotest.test_case "strided" `Slow test_strided_loops;
          Alcotest.test_case "triangular" `Slow test_triangular;
        ] );
      ( "execution",
        [
          Alcotest.test_case "timing" `Slow test_time_native_positive;
          Alcotest.test_case "build failure" `Slow
            test_build_failure_reported;
        ] );
    ]
