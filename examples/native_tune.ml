(* Real iterative compilation: tune matrix multiplication against actual
   native executions on THIS machine — no simulator anywhere in the loop.

   Every measurement compiles the transformed kernel to OCaml with
   ocamlopt (cached per configuration, as the paper's cost model assumes)
   and times a real run.  The problem is deliberately small (N = 64) so
   the example finishes in about a minute; the point is that the active
   learner drives real compile-and-profile work through exactly the same
   Problem interface the simulator uses.

   Run with: dune exec examples/native_tune.exe *)

module Spapt = Altune_spapt.Spapt
module Codegen = Altune_kernellang.Codegen
module Problem = Altune_core.Problem
module Dataset = Altune_core.Dataset
module Learner = Altune_core.Learner
module Search = Altune_core.Search
module Rng = Altune_prng.Rng

let bench = Spapt.create "mm"
let overrides = [ ("N", 64); ("T", 1) ]

(* Compile cache: one binary per distinct configuration, real compile
   seconds charged through the problem's compile cost. *)
let binaries : (string, Codegen.compiled * float) Hashtbl.t =
  Hashtbl.create 64

let compiled_for config =
  let key = Problem.key config in
  match Hashtbl.find_opt binaries key with
  | Some (c, _) -> c
  | None ->
      let kernel = Spapt.transformed bench config in
      let t0 = Unix.gettimeofday () in
      let c =
        Codegen.build (Codegen.program ~param_overrides:overrides
                         ~mode:(`Time 1) kernel)
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Hashtbl.replace binaries key (c, elapsed);
      c

let compile_seconds config =
  ignore (compiled_for config);
  snd (Hashtbl.find binaries (Problem.key config))

let measure_native config =
  float_of_string (Codegen.run (compiled_for config))

let problem =
  {
    Problem.name = "mm-native";
    dim = Spapt.dim bench;
    space_size = Spapt.space_size bench;
    random_config = (fun rng -> Spapt.random_config bench rng);
    features = (fun c -> Spapt.features bench c);
    measure = (fun ~rng ~run_index c ->
        ignore rng;
        ignore run_index;
        measure_native c);
    compile_seconds;
    prepare = ignore;
  }

let () =
  let rng = Rng.create ~seed:5 in
  print_endline
    "native autotuning of mm (N = 64) — compiling and timing real binaries";
  let dataset =
    Dataset.generate problem ~rng ~n_configs:120 ~test_fraction:0.3 ~n_obs:3
  in
  let settings =
    {
      Learner.scaled_settings with
      n_init = 3;
      n_obs_init = 5;
      n_candidates = 12;
      n_max = 45;
      eval_every = 10;
      ref_size = 40;
      model = Altune_core.Surrogate.dynatree ~particles:60 ();
    }
  in
  let t0 = Unix.gettimeofday () in
  let outcome = Learner.run problem dataset settings ~rng in
  Printf.printf
    "trained on %d real configurations (%d native runs) in %.1f wall \
     seconds; model RMSE %.6f s\n"
    outcome.distinct_examples outcome.total_runs
    (Unix.gettimeofday () -. t0)
    outcome.final_rmse;
  let space =
    Search.space_of_cardinalities
      (Array.of_list (List.map Spapt.knob_cardinality (Spapt.knobs bench)))
  in
  (* Model-guided candidate generation, then empirical validation of the
     shortlist — the model proposes, real measurements dispose. *)
  let candidates =
    List.map
      (fun seed ->
        (Search.minimize ~rng:(Rng.create ~seed) space
           ~predict:outcome.predict
           (Search.Hill_climbing { restarts = 3; max_steps = 30 }))
          .best)
      [ 1; 2; 3; 4; 5 ]
  in
  let default = Array.make (Spapt.dim bench) 0 in
  let t_default = measure_native default in
  Printf.printf "default config: %.6f s measured\n" t_default;
  let best_config = ref default in
  let best_time = ref t_default in
  List.iter
    (fun c ->
      let t = measure_native c in
      Printf.printf "candidate [%s]: predicted %.6f s, measured %.6f s\n"
        (String.concat ";" (List.map string_of_int (Array.to_list c)))
        (outcome.predict c) t;
      if t < !best_time then begin
        best_time := t;
        best_config := c
      end)
    candidates;
  Printf.printf "best measured [%s]: %.6f s -> real speedup %.2fx\n"
    (String.concat ";"
       (List.map string_of_int (Array.to_list !best_config)))
    !best_time
    (t_default /. !best_time);
  Hashtbl.iter (fun _ (c, _) -> Codegen.cleanup c) binaries
